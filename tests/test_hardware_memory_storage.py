"""Tests for the DDR4 subsystem and node-local storage."""

import pytest

from repro.hardware.memory import DDR4Subsystem, OutOfMemoryError
from repro.hardware.storage import MicroSDCard, NVMeDrive


class TestDDR4:
    def _mem(self):
        mem = DDR4Subsystem()
        mem.initialise()
        return mem

    def test_allocation_requires_training(self):
        mem = DDR4Subsystem()
        with pytest.raises(RuntimeError, match="initialisation"):
            mem.allocate("x", 100)

    def test_allocate_and_release(self):
        mem = self._mem()
        mem.allocate("hpl", 1000)
        assert mem.allocated_bytes == 1000
        assert mem.release("hpl") == 1000
        assert mem.allocated_bytes == 0

    def test_release_unknown_owner_returns_zero(self):
        assert self._mem().release("ghost") == 0

    def test_overcommit_raises(self):
        mem = self._mem()
        with pytest.raises(OutOfMemoryError):
            mem.allocate("greedy", mem.capacity_bytes + 1)

    def test_cumulative_allocations_per_owner(self):
        mem = self._mem()
        mem.allocate("job", 100)
        mem.allocate("job", 200)
        assert mem.allocated_bytes == 300
        assert mem.release("job") == 300

    def test_reinitialise_clears_allocations(self):
        # DRAM does not survive a power cycle.
        mem = self._mem()
        mem.allocate("job", 5000)
        mem.initialise()
        assert mem.allocated_bytes == 0

    def test_activity_bounds(self):
        mem = self._mem()
        mem.set_activity(0.5)
        assert mem.activity == 0.5
        with pytest.raises(ValueError):
            mem.set_activity(1.5)

    def test_usage_splits_sum_to_capacity(self):
        mem = self._mem()
        mem.allocate("job", 2 * 1024 ** 3)
        usage = mem.usage()
        assert usage["used"] == 2 * 1024 ** 3
        total = sum(usage.values())
        assert total == pytest.approx(mem.capacity_bytes, rel=0.001)


class TestNVMe:
    def test_read_accounts_and_times(self):
        drive = NVMeDrive()
        dt = drive.read(1_600_000_000)
        assert dt == pytest.approx(1.0)
        assert drive.bytes_read == 1_600_000_000

    def test_write_slower_than_read(self):
        drive = NVMeDrive()
        assert drive.write(10 ** 9) > drive.read(10 ** 9)

    def test_negative_sizes_rejected(self):
        drive = NVMeDrive()
        with pytest.raises(ValueError):
            drive.read(-1)
        with pytest.raises(ValueError):
            drive.write(-1)

    def test_capacity_is_one_tb(self):
        assert NVMeDrive().capacity_bytes == 10 ** 12


class TestMicroSD:
    def test_firmware_load_time_is_seconds(self):
        card = MicroSDCard()
        # 24 MiB at 20 MB/s ≈ 1.26 s — part of the R2 duration.
        assert 0.5 < card.firmware_load_time() < 5.0
