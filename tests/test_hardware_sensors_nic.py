"""Tests for thermal sensors/hwmon (Table IV) and the network interfaces."""

import pytest

from repro.hardware.nic import (
    GigabitEthernet,
    IBState,
    InfinibandHCA,
    RDMAUnsupportedError,
)
from repro.hardware.sensors import HWMON_PATHS, HwmonTree, ThermalSensor


class TestThermalSensor:
    def test_trip_at_107(self):
        sensor = ThermalSensor(name="cpu_temp")
        sensor.set(106.9)
        assert not sensor.tripped
        sensor.set(107.0)
        assert sensor.tripped

    def test_millidegrees(self):
        sensor = ThermalSensor(name="cpu_temp", temperature_c=42.5)
        assert sensor.millidegrees() == 42500


class TestHwmonTree:
    def test_table_iv_paths(self):
        # Table IV verbatim.
        assert HWMON_PATHS["nvme_temp"] == "/sys/class/hwmon/hwmon0/temp1_input"
        assert HWMON_PATHS["mb_temp"] == "/sys/class/hwmon/hwmon1/temp1_input"
        assert HWMON_PATHS["cpu_temp"] == "/sys/class/hwmon/hwmon1/temp2_input"

    def test_read_returns_kernel_format(self):
        tree = HwmonTree()
        tree.set_celsius("cpu_temp", 55.0)
        raw = tree.read("/sys/class/hwmon/hwmon1/temp2_input")
        assert raw == "55000\n"

    def test_read_unknown_path_raises_filenotfound(self):
        with pytest.raises(FileNotFoundError):
            HwmonTree().read("/sys/class/hwmon/hwmon9/temp1_input")

    def test_any_tripped(self):
        tree = HwmonTree()
        assert not tree.any_tripped()
        tree.set_celsius("cpu_temp", 107.0)
        assert tree.any_tripped()


class TestGigabitEthernet:
    def test_transfer_time_latency_plus_serialisation(self):
        nic = GigabitEthernet()
        small = nic.transfer_time(0)
        assert small == pytest.approx(nic.latency_s)
        # 1 Gbit/s: 125 MB takes ~1 s.
        assert nic.transfer_time(125_000_000) == pytest.approx(1.0, rel=0.01)

    def test_traffic_accounting(self):
        nic = GigabitEthernet()
        nic.account_send(100)
        nic.account_receive(200)
        assert nic.bytes_sent == 100
        assert nic.bytes_received == 200

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            GigabitEthernet().account_send(-1)


class TestInfinibandHCA:
    def test_bringup_state_machine(self):
        hca = InfinibandHCA()
        assert hca.state is IBState.DETECTED
        hca.load_driver()
        assert hca.state is IBState.DRIVER_LOADED
        hca.activate_link()
        assert hca.state is IBState.LINK_ACTIVE

    def test_link_needs_driver(self):
        hca = InfinibandHCA()
        with pytest.raises(RuntimeError, match="driver"):
            hca.activate_link()

    def test_absent_hca(self):
        hca = InfinibandHCA(installed=False)
        assert not hca.installed
        with pytest.raises(RuntimeError):
            hca.load_driver()

    def test_ibping_needs_both_links_active(self):
        a, b = InfinibandHCA(), InfinibandHCA()
        for hca in (a, b):
            hca.load_driver()
        assert not a.ibping(b)
        a.activate_link()
        b.activate_link()
        assert a.ibping(b)

    def test_rdma_always_unsupported(self):
        # §III: RDMA capabilities unusable on Monte Cimone.
        a, b = InfinibandHCA(), InfinibandHCA()
        for hca in (a, b):
            hca.load_driver()
            hca.activate_link()
        with pytest.raises(RDMAUnsupportedError):
            a.rdma_write(b, 4096)
