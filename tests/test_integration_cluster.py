"""Integration tests: the full machine, ExaMon, scheduler and thermal story.

These run multi-minute (simulated) scenarios on the assembled cluster and
assert the cross-cutting behaviours that no unit test can see.
"""

import pytest

from repro.cluster.cluster import MonteCimoneCluster
from repro.cluster.node import NodeState
from repro.examon.deployment import ExamonDeployment
from repro.power.model import HPL_PROFILE, STREAM_DDR_PROFILE
from repro.slurm.api import SlurmAPI
from repro.slurm.job import JobState
from repro.thermal.enclosure import EnclosureConfig


@pytest.fixture
def mitigated_cluster():
    cluster = MonteCimoneCluster(enclosure_config=EnclosureConfig.mitigated())
    cluster.boot_all()
    return cluster


class TestClusterBoot:
    def test_all_eight_nodes_boot_to_idle(self, mitigated_cluster):
        states = mitigated_cluster.node_states().values()
        assert all(state is NodeState.IDLE for state in states)

    def test_boot_takes_21_simulated_seconds(self, mitigated_cluster):
        assert mitigated_cluster.engine.now == pytest.approx(21.0)

    def test_idle_cluster_power_is_8x_node_idle(self, mitigated_cluster):
        assert mitigated_cluster.total_power_w() == pytest.approx(8 * 4.810,
                                                                  abs=0.2)

    def test_two_nodes_have_infiniband(self, mitigated_cluster):
        with_ib = [name for name, node in mitigated_cluster.nodes.items()
                   if node.board.infiniband is not None]
        assert with_ib == ["mc-node-1", "mc-node-2"]

    def test_services_configured(self, mitigated_cluster):
        assert mitigated_cluster.nfs.is_exported("/home")
        assert mitigated_cluster.nfs.is_exported("/opt/spack")
        mitigated_cluster.ldap.add_user("alice", "pw", "hpc-users")
        assert mitigated_cluster.ldap.bind("alice", "pw").uid == "alice"


class TestJobExecution:
    def test_full_machine_job_completes(self, mitigated_cluster):
        api = SlurmAPI(mitigated_cluster.slurm)
        job = api.srun("hpl", "alice", 8, duration_s=120.0,
                       profile=HPL_PROFILE)
        assert job.state is JobState.COMPLETED
        assert len(job.allocated_nodes) == 8

    def test_power_rises_during_job(self, mitigated_cluster):
        api = SlurmAPI(mitigated_cluster.slurm)
        api.sbatch("hpl", "alice", nodes=8, duration_s=300.0,
                   profile=HPL_PROFILE)
        mitigated_cluster.run_for(30.0)
        # All 8 nodes under HPL: ~8 × 5.935 W.
        assert mitigated_cluster.total_power_w() == pytest.approx(8 * 5.935,
                                                                  rel=0.03)

    def test_concurrent_jobs_share_the_machine(self, mitigated_cluster):
        api = SlurmAPI(mitigated_cluster.slurm)
        first = api.sbatch("hpl", "alice", nodes=4, duration_s=60.0,
                           profile=HPL_PROFILE)
        second = api.sbatch("stream", "bob", nodes=4, duration_s=60.0,
                            profile=STREAM_DDR_PROFILE)
        api.wait_all()
        jobs = mitigated_cluster.slurm.jobs
        assert jobs[first].state is JobState.COMPLETED
        assert jobs[second].state is JobState.COMPLETED
        # They ran concurrently: disjoint node sets.
        assert not set(jobs[first].allocated_nodes) & \
            set(jobs[second].allocated_nodes)


class TestThermalStory:
    """The Fig. 6 narrative, end to end."""

    def test_runaway_and_mitigation(self):
        cluster = MonteCimoneCluster(
            enclosure_config=EnclosureConfig.original())
        cluster.boot_all()
        api = SlurmAPI(cluster.slurm)
        job = api.srun("hpl", "bench", 8, duration_s=1800.0,
                       profile=HPL_PROFILE)
        # Node 7 runs away and the job dies with a node failure.
        assert job.state is JobState.NODE_FAIL
        assert cluster.watchdog.tripped_nodes() == ["mc-node-7"]
        assert cluster.nodes["mc-node-7"].state is NodeState.TRIPPED
        # The scheduler marked the node down.
        sinfo = "\n".join(cluster.slurm.sinfo())
        assert "down" in sinfo
        # Mitigate, service, rerun: completes, hottest node ≈ 39 °C.
        cluster.apply_thermal_mitigation()
        cluster.service_node("mc-node-7")
        retry = api.srun("hpl-retry", "bench", 8, duration_s=1800.0,
                         profile=HPL_PROFILE)
        assert retry.state is JobState.COMPLETED
        _host, temperature = cluster.hottest_node()
        assert temperature < 45.0

    def test_no_runaway_with_mitigated_enclosure(self, mitigated_cluster):
        api = SlurmAPI(mitigated_cluster.slurm)
        job = api.srun("hpl", "bench", 8, duration_s=1800.0,
                       profile=HPL_PROFILE)
        assert job.state is JobState.COMPLETED
        assert mitigated_cluster.watchdog.tripped_nodes() == []


class TestExamonIntegration:
    def test_plugins_feed_the_database(self, mitigated_cluster):
        deployment = ExamonDeployment(mitigated_cluster)
        deployment.start()
        mitigated_cluster.run_for(30.0)
        # 8 nodes × (2 Hz pmu + 0.2 Hz stats) for 30 s: thousands of points.
        assert deployment.db.points_stored > 1000
        assert deployment.db.decode_errors == 0

    def test_heatmap_shows_hpl_phases(self, mitigated_cluster):
        deployment = ExamonDeployment(mitigated_cluster)
        deployment.start()
        api = SlurmAPI(mitigated_cluster.slurm)
        start = mitigated_cluster.engine.now
        api.srun("hpl", "bench", 8, duration_s=120.0, profile=HPL_PROFILE)
        end = mitigated_cluster.engine.now
        heatmap = deployment.dashboard.instructions_heatmap(start, end, 10.0)
        means = [heatmap.node_mean(h) for h in mitigated_cluster.nodes]
        assert all(m > 1e9 for m in means)  # GHz-scale instruction rates

    def test_network_heatmap_nonzero_for_multi_node_job(self, mitigated_cluster):
        deployment = ExamonDeployment(mitigated_cluster)
        deployment.start()
        api = SlurmAPI(mitigated_cluster.slurm)
        start = mitigated_cluster.engine.now
        api.srun("hpl", "bench", 8, duration_s=120.0, profile=HPL_PROFILE)
        end = mitigated_cluster.engine.now
        heatmap = deployment.dashboard.network_heatmap(start, end, 10.0)
        assert heatmap.node_mean("mc-node-1") > 1e6  # MB/s-scale traffic

    def test_rest_api_serves_cluster_data(self, mitigated_cluster):
        deployment = ExamonDeployment(mitigated_cluster)
        deployment.start()
        mitigated_cluster.run_for(20.0)
        topics = deployment.rest.get("/api/topics",
                                     {"pattern": "org/#"})
        assert len(topics) > 100

    def test_monitoring_overhead_summary(self, mitigated_cluster):
        deployment = ExamonDeployment(mitigated_cluster)
        deployment.start()
        mitigated_cluster.run_for(10.0)
        overhead = deployment.monitoring_overhead_summary()
        assert overhead["messages_published"] == \
            overhead["messages_delivered"]
        assert overhead["bytes_published"] > 0

    def test_stop_halts_sampling(self, mitigated_cluster):
        deployment = ExamonDeployment(mitigated_cluster)
        deployment.start()
        mitigated_cluster.run_for(10.0)
        deployment.stop()
        mitigated_cluster.run_for(2.0)  # let daemons observe the stop flag
        count = deployment.db.points_stored
        mitigated_cluster.run_for(20.0)
        assert deployment.db.points_stored == count
