"""Tests for the STREAM model (Table V) and the QE-LAX model (§V-A)."""

import pytest

from repro.analysis import paper
from repro.benchmarks.qe_lax import QELaxConfig, QELaxModel
from repro.benchmarks.stream import (
    CodeModelError,
    STREAM_KERNELS,
    StreamConfig,
    StreamModel,
)
from repro.hardware.specs import ARMIDA_NODE, MARCONI100_NODE


class TestStreamConfig:
    def test_paper_ddr_size_fits_medany(self):
        # 1945.5 MiB is deliberately just under the 2 GiB medany cap.
        StreamConfig(array_mib=1945.5).validate_code_model()

    def test_static_arrays_over_2gib_fail_to_link(self):
        with pytest.raises(CodeModelError, match="medany"):
            StreamConfig(array_mib=2049.0).validate_code_model()

    def test_dynamic_arrays_escape_the_limit(self):
        StreamConfig(array_mib=4096.0, static_arrays=False).validate_code_model()

    def test_validation(self):
        with pytest.raises(ValueError):
            StreamConfig(array_mib=0)
        with pytest.raises(ValueError):
            StreamConfig(n_threads=0)


class TestTableV:
    RESULTS = StreamModel().table_v()

    @pytest.mark.parametrize("kernel,expected",
                             list(paper.TABLE_V_DDR_MB_S.items()))
    def test_ddr_kernels(self, kernel, expected):
        measured = self.RESULTS["STREAM.DDR"].kernel_mean(kernel)
        assert measured == pytest.approx(expected, rel=0.01)

    @pytest.mark.parametrize("kernel,expected",
                             list(paper.TABLE_V_L2_MB_S.items()))
    def test_l2_kernels(self, kernel, expected):
        measured = self.RESULTS["STREAM.L2"].kernel_mean(kernel)
        assert measured == pytest.approx(expected, rel=0.01)

    def test_regimes_detected(self):
        assert self.RESULTS["STREAM.DDR"].regime == "ddr"
        assert self.RESULTS["STREAM.L2"].regime == "l2"

    def test_ddr_best_fraction_15_5_percent(self):
        # §V-A: "no more than 15.5% of the available peak bandwidth".
        assert self.RESULTS["STREAM.DDR"].best_fraction_of_peak == \
            pytest.approx(0.155, abs=0.003)

    def test_l2_copy_dominates(self):
        l2 = self.RESULTS["STREAM.L2"]
        assert l2.kernel_mean("copy") > l2.kernel_mean("add") > \
            l2.kernel_mean("scale")


class TestStreamModelBehaviour:
    def test_over_limit_run_raises_before_measuring(self):
        with pytest.raises(CodeModelError):
            StreamModel().run(StreamConfig(array_mib=3000.0))

    def test_bitmanip_toolchain_recovers_bandwidth(self):
        # §V-A item (iii): GCC 12 + binutils 2.37 emit Zba/Zbb.
        base = StreamModel().run(StreamConfig(array_mib=1945.5))
        zbb = StreamModel().run(StreamConfig(array_mib=1945.5, bitmanip=True))
        for kernel in STREAM_KERNELS:
            assert zbb.kernel_mean(kernel) > base.kernel_mean(kernel)

    def test_comparison_machines_use_aggregate_fraction(self):
        result = StreamModel(node=MARCONI100_NODE).run(
            StreamConfig(array_mib=1945.5))
        assert result.best_fraction_of_peak == pytest.approx(0.482, abs=0.003)
        result = StreamModel(node=ARMIDA_NODE).run(
            StreamConfig(array_mib=1945.5))
        assert result.best_fraction_of_peak == pytest.approx(0.6321, abs=0.003)

    def test_deterministic(self):
        a = StreamModel().run(StreamConfig())
        b = StreamModel().run(StreamConfig())
        assert a.kernel_mean("triad") == b.kernel_mean("triad")

    def test_spread_magnitude_matches_table_v(self):
        # Table V σ values are a few MB/s on ~1100 MB/s.
        result = StreamModel().run(StreamConfig())
        for stats in result.bandwidth_mb_s.values():
            assert stats.std < 0.02 * stats.mean


class TestQELax:
    RESULT = QELaxModel().run()

    def test_gflops(self):
        # Paper: 1.44 ± 0.05 GFLOP/s.
        assert self.RESULT.throughput.mean == pytest.approx(1.44, abs=0.05)

    def test_runtime(self):
        # Paper: 37.40 ± 0.14 s.
        assert self.RESULT.runtime_s.mean == pytest.approx(37.40, abs=0.4)

    def test_efficiency_36_percent(self):
        assert self.RESULT.efficiency == pytest.approx(0.36)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            QELaxConfig(n=1)
        with pytest.raises(ValueError):
            QELaxConfig(n_nodes=0)

    def test_efficiency_sits_between_stream_and_hpl(self):
        # The LAX mix lands between bandwidth-bound and compute-bound.
        assert 0.155 < self.RESULT.efficiency < 0.465

    def test_summary_renders(self):
        text = self.RESULT.summary()
        assert "qe_lax" in text and "GFLOP/s" in text
