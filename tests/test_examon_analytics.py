"""Tests for the ExaMon analytics layer (anomaly detection)."""

import pytest

from repro.cluster.cluster import MonteCimoneCluster
from repro.examon.analytics import (
    TrendDetector,
    ZScoreDetector,
    scan_cluster_temperatures,
)
from repro.examon.deployment import ExamonDeployment
from repro.power.model import HPL_PROFILE
from repro.slurm.api import SlurmAPI
from repro.thermal.enclosure import EnclosureConfig


class TestZScoreDetector:
    def test_outlier_detected(self):
        detector = ZScoreDetector(threshold=2.0)
        readings = {f"n{i}": 60.0 for i in range(7)}
        readings["n7"] = 95.0
        anomalies = detector.scan(100.0, readings)
        assert [a.subject for a in anomalies] == ["n7"]
        assert anomalies[0].kind == "outlier"

    def test_uniform_cluster_is_clean(self):
        detector = ZScoreDetector()
        readings = {f"n{i}": 60.0 + 0.1 * i for i in range(8)}
        assert detector.scan(100.0, readings) == []

    def test_common_mode_heating_is_not_anomalous(self):
        """All nodes getting hot together (HPL start) is not an anomaly."""
        detector = ZScoreDetector()
        cold = {f"n{i}": 30.0 for i in range(8)}
        hot = {f"n{i}": 70.0 for i in range(8)}
        assert detector.scan(1.0, cold) == []
        assert detector.scan(2.0, hot) == []

    def test_too_few_nodes_skipped(self):
        detector = ZScoreDetector()
        assert detector.scan(1.0, {"a": 10.0, "b": 99.0}) == []

    def test_small_absolute_spread_ignored(self):
        # 0.5 °C of spread is sensor noise, not an incident.
        detector = ZScoreDetector(min_absolute_spread=2.0)
        readings = {f"n{i}": 60.0 for i in range(7)}
        readings["n7"] = 60.5
        assert detector.scan(1.0, readings) == []

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            ZScoreDetector(threshold=0.0)


class TestTrendDetector:
    def test_rising_series_predicts_crossing(self):
        detector = TrendDetector(threshold=107.0, window_s=100.0,
                                 horizon_s=500.0)
        points = [(float(t), 80.0 + 0.1 * t) for t in range(0, 100, 5)]
        anomalies = detector.scan("n7", points)
        assert len(anomalies) == 1
        assert anomalies[0].kind == "trend"
        # 80 + 0.1t = 107 → t = 270; last sample at 95 → ~175 s away.
        assert "in 1" in anomalies[0].detail

    def test_flat_series_is_clean(self):
        detector = TrendDetector(threshold=107.0)
        points = [(float(t), 65.0) for t in range(0, 100, 5)]
        assert detector.scan("n1", points) == []

    def test_cooling_series_is_clean(self):
        detector = TrendDetector(threshold=107.0)
        points = [(float(t), 90.0 - 0.2 * t) for t in range(0, 100, 5)]
        assert detector.scan("n1", points) == []

    def test_crossing_beyond_horizon_ignored(self):
        detector = TrendDetector(threshold=107.0, window_s=100.0,
                                 horizon_s=60.0)
        points = [(float(t), 30.0 + 0.01 * t) for t in range(0, 100, 5)]
        assert detector.scan("n1", points) == []

    def test_too_few_points(self):
        detector = TrendDetector(threshold=107.0)
        assert detector.predict_crossing([(0.0, 50.0), (1.0, 60.0)]) is None


class TestClusterScan:
    def test_detects_node7_before_trip(self):
        """The analytics catch the Fig. 6 runaway while it develops."""
        cluster = MonteCimoneCluster(
            enclosure_config=EnclosureConfig.original())
        cluster.boot_all()
        deployment = ExamonDeployment(cluster)
        deployment.start()
        api = SlurmAPI(cluster.slurm)
        start = cluster.engine.now
        api.sbatch("hpl", "bench", nodes=8, duration_s=1800.0,
                   profile=HPL_PROFILE)
        cluster.run_for(480.0)  # 8 minutes in: hot, but below the trip
        assert cluster.watchdog.tripped_nodes() == []
        anomalies = scan_cluster_temperatures(
            deployment.db, list(cluster.nodes), start, cluster.engine.now)
        subjects = {anomaly.subject for anomaly in anomalies}
        assert "mc-node-7" in subjects
        kinds = {a.kind for a in anomalies if a.subject == "mc-node-7"}
        assert "outlier" in kinds or "trend" in kinds

    def test_mitigated_cluster_is_clean(self):
        cluster = MonteCimoneCluster(
            enclosure_config=EnclosureConfig.mitigated())
        cluster.boot_all()
        deployment = ExamonDeployment(cluster)
        deployment.start()
        api = SlurmAPI(cluster.slurm)
        start = cluster.engine.now
        api.srun("hpl", "bench", 8, duration_s=400.0, profile=HPL_PROFILE)
        anomalies = scan_cluster_temperatures(
            deployment.db, list(cluster.nodes), start, cluster.engine.now)
        trend_alarms = [a for a in anomalies if a.kind == "trend"]
        assert trend_alarms == []
