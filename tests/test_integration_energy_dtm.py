"""Cross-subsystem integration: energy integrals, DTM quiescence, boots."""

import pytest

from repro.cluster.cluster import MonteCimoneCluster
from repro.cluster.node import ComputeNode
from repro.events import Engine
from repro.power.model import HPL_PROFILE
from repro.slurm.api import SlurmAPI
from repro.thermal.dtm import ClusterDTM
from repro.thermal.enclosure import EnclosureConfig


class TestEnergyIntegrals:
    def test_boot_energy_matches_phase_model(self):
        """The rail energy accumulated through a boot equals the piecewise
        phase powers × durations (R1: 1.385 W × 6 s, R2: 4.024 W × 15 s)."""
        engine = Engine()
        node = ComputeNode(hostname="n")
        engine.run_until_complete(engine.spawn(node.boot_process(engine)))
        # Close the integrals at the boot-complete instant.
        node.sync_to(engine.now)
        total_j = sum(rail.energy_j for rail in node.board.rails)
        expected = 1.385 * 6.0 + 4.024 * 15.0
        assert total_j == pytest.approx(expected, rel=0.02)

    def test_idle_hour_energy(self):
        engine = Engine()
        node = ComputeNode(hostname="n")
        engine.run_until_complete(engine.spawn(node.boot_process(engine)))
        node.advance(3600.0)
        energy_after_boot = sum(rail.energy_j for rail in node.board.rails)
        # Idle hour at 4.81 W plus the boot's ~69 J.
        assert energy_after_boot == pytest.approx(4.81 * 3600.0 + 69.0,
                                                  rel=0.02)


class TestDTMQuiescence:
    def test_no_throttling_in_mitigated_enclosure(self):
        """DTM is a no-op on the fixed machine: no governor ever steps."""
        cluster = MonteCimoneCluster(
            enclosure_config=EnclosureConfig.mitigated())
        cluster.boot_all()
        dtm = ClusterDTM(cluster.nodes)
        dtm.start(cluster.engine)
        api = SlurmAPI(cluster.slurm)
        api.srun("hpl", "bench", 8, duration_s=1200.0, profile=HPL_PROFILE)
        assert dtm.all_events() == []
        assert dtm.mean_frequency_scale() == 1.0

    def test_governor_releases_only_after_mechanical_fix(self):
        """With the lids on, slot 4 is so starved that even *idle* heat
        keeps the governor engaged (steady ~99 °C at 4.8 W); the throttle
        releases once the §V-C mechanical mitigation is applied — DTM is
        a survival tool, not a substitute for fixing the airflow."""
        cluster = MonteCimoneCluster(
            enclosure_config=EnclosureConfig.original())
        cluster.boot_all()
        dtm = ClusterDTM(cluster.nodes)
        dtm.start(cluster.engine)
        api = SlurmAPI(cluster.slurm)
        api.srun("hpl", "bench", 8, duration_s=1800.0, profile=HPL_PROFILE)
        governor = dtm.governors["mc-node-7"]
        assert governor.throttled
        cluster.run_for(600.0)              # idle, lids still on:
        assert governor.throttled           # still too hot to release
        cluster.apply_thermal_mitigation()  # the paper's fix
        cluster.run_for(600.0)
        assert not governor.throttled
        assert cluster.nodes["mc-node-7"].frequency_scale == 1.0


class TestRepeatedCampaigns:
    def test_back_to_back_full_machine_runs_stay_stable(self):
        """Three consecutive full-machine HPL runs: temperatures and the
        scheduler stay in steady state (no drift, no leaks)."""
        cluster = MonteCimoneCluster(
            enclosure_config=EnclosureConfig.mitigated())
        cluster.boot_all()
        api = SlurmAPI(cluster.slurm)
        peaks = []
        for i in range(3):
            api.srun(f"hpl-{i}", "bench", 8, duration_s=600.0,
                     profile=HPL_PROFILE)
            peaks.append(cluster.hottest_node()[1])
        # Thermal steady state: later runs peak where the first did.
        assert max(peaks) - min(peaks) < 2.0
        assert cluster.slurm.partitions["compute"].n_idle() == 8
        assert cluster.watchdog.tripped_nodes() == []
