"""Tests for the HPL model — the Fig. 2 / §V-A reproduction."""

import pytest

from repro.benchmarks.hpl import HPLConfig, HPLModel
from repro.hardware.specs import MARCONI100_NODE, MONTE_CIMONE_NODE


class TestHPLConfig:
    def test_paper_defaults(self):
        config = HPLConfig()
        assert config.n == 40704
        assert config.nb == 192
        assert config.ranks_per_node == 4

    def test_flop_count_formula(self):
        config = HPLConfig(n=1000, nb=100)
        assert config.flops == pytest.approx(2 / 3 * 1e9 + 2e6)

    def test_panel_count(self):
        assert HPLConfig().n_panels == 212

    def test_validation(self):
        with pytest.raises(ValueError):
            HPLConfig(n=0)
        with pytest.raises(ValueError):
            HPLConfig(n=100, nb=200)
        with pytest.raises(ValueError):
            HPLConfig(n_nodes=0)

    def test_matrix_fills_most_of_node_dram(self):
        # N=40704 doubles ≈ 13.3 GB of the 16 GB node.
        assert HPLConfig().matrix_bytes == pytest.approx(13.25e9, rel=0.01)


class TestSingleNode:
    RESULT = HPLModel().run()

    def test_gflops_matches_paper(self):
        # Paper: 1.86 ± 0.04 GFLOP/s.
        assert self.RESULT.gflops.mean == pytest.approx(1.86, abs=0.04)

    def test_efficiency_46_5_percent(self):
        assert self.RESULT.efficiency == pytest.approx(0.465, abs=0.002)

    def test_runtime_near_24105_s(self):
        # Paper: 24105 ± 587 s.
        assert self.RESULT.runtime_s.mean == pytest.approx(24105, rel=0.03)

    def test_no_communication_single_node(self):
        assert self.RESULT.comm_time_s == 0.0

    def test_ten_repetitions(self):
        assert self.RESULT.gflops.n_runs == 10

    def test_deterministic_given_seed(self):
        again = HPLModel().run()
        assert again.gflops.mean == self.RESULT.gflops.mean
        assert again.gflops.samples == self.RESULT.gflops.samples


class TestStrongScaling:
    POINTS = HPLModel().strong_scaling()

    def test_full_machine_gflops(self):
        # Paper: 12.65 ± 0.52 GFLOP/s on 8 nodes.
        assert self.POINTS[8].gflops.mean == pytest.approx(12.65, abs=0.52)

    def test_full_machine_efficiency_39_5_percent(self):
        assert self.POINTS[8].efficiency == pytest.approx(0.395, abs=0.01)

    def test_fraction_of_linear_85_percent(self):
        speedup = self.POINTS[8].gflops.mean / self.POINTS[1].gflops.mean
        assert speedup / 8 == pytest.approx(0.85, abs=0.03)

    def test_full_machine_runtime(self):
        # Paper: 3548 ± 136 s.
        assert self.POINTS[8].runtime_s.mean == pytest.approx(3548, rel=0.03)

    def test_scaling_is_monotone(self):
        gflops = [self.POINTS[n].gflops.mean for n in (1, 2, 4, 8)]
        assert gflops == sorted(gflops)

    def test_efficiency_degrades_with_nodes(self):
        efficiencies = [self.POINTS[n].efficiency for n in (1, 2, 4, 8)]
        assert efficiencies == sorted(efficiencies, reverse=True)

    def test_communication_grows_with_nodes(self):
        assert (self.POINTS[8].comm_time_s > self.POINTS[4].comm_time_s
                > self.POINTS[2].comm_time_s > 0)


class TestMemoryValidation:
    def test_oversized_problem_rejected(self):
        model = HPLModel()
        with pytest.raises(MemoryError):
            model.run(HPLConfig(n=60000))

    def test_distribution_unlocks_bigger_problems(self):
        model = HPLModel()
        model.validate_memory(HPLConfig(n=60000, n_nodes=8))  # fits


class TestOtherMachines:
    def test_marconi100_efficiency(self):
        model = HPLModel(node=MARCONI100_NODE)
        n = int((0.8 * MARCONI100_NODE.dram_bytes / 8) ** 0.5)
        result = model.run(HPLConfig(n=n - n % 192, nb=192))
        assert result.efficiency == pytest.approx(0.597, abs=0.002)

    def test_efficiency_independent_of_problem_size(self):
        model = HPLModel(node=MONTE_CIMONE_NODE)
        small = model.run(HPLConfig(n=9600, nb=192))
        large = model.run(HPLConfig(n=40704, nb=192))
        assert small.efficiency == pytest.approx(large.efficiency, rel=1e-6)
