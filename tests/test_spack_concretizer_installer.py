"""Tests for the concretizer, installer, environment and archspec."""

import pytest

from repro.analysis import paper
from repro.hardware.specs import MARCONI100_NODE, U740_SPEC
from repro.spack.archspec import ARCHSPEC_TARGETS, detect_target
from repro.spack.concretizer import ConcretizationError, Concretizer
from repro.spack.environment import MONTE_CIMONE_STACK, SpackEnvironment
from repro.spack.installer import InstallError, Installer
from repro.spack.package import Dependency, PackageDefinition
from repro.spack.repo import Repository, builtin_repo
from repro.spack.spec import Spec
from repro.spack.version import Version, VersionRange


class TestArchspec:
    def test_u74mc_target_present(self):
        # §IV: "Explicit support for the linux-sifive-u74mc target triple
        # was already present".
        target = ARCHSPEC_TARGETS["u74mc"]
        assert target.triple == "linux-sifive-u74mc"
        assert target.supports("zba") and target.supports("zbb")

    def test_detect_u740(self):
        assert detect_target(U740_SPEC).name == "u74mc"

    def test_detect_power9(self):
        assert detect_target(MARCONI100_NODE.soc).name == "power9"

    def test_gcc_flags_for_u74mc(self):
        flags = ARCHSPEC_TARGETS["u74mc"].gcc_flags()
        assert "-march=rv64gc" in flags and "sifive-7-series" in flags

    def test_unknown_riscv_falls_back_to_family(self):
        from repro.hardware.specs import SoCSpec, CacheSpec, MemorySpec

        unknown = SoCSpec(name="Mystery V", isa="RV64GC", n_cores=2,
                          clock_hz=1e9, issue_width=1,
                          flops_per_cycle_per_core=1.0,
                          l2=U740_SPEC.l2, memory=U740_SPEC.memory)
        assert detect_target(unknown).name == "riscv64"


class TestRepository:
    REPO = builtin_repo()

    def test_table_i_packages_present(self):
        for name in paper.TABLE_I_STACK:
            assert name in self.REPO

    def test_paper_versions_available(self):
        for name, version in paper.TABLE_I_STACK.items():
            definition = self.REPO.get(name)
            assert version in definition.versions

    def test_unknown_package_hints(self):
        with pytest.raises(KeyError, match="did you mean"):
            self.REPO.get("openmpi4")

    def test_versions_must_be_newest_first(self):
        with pytest.raises(ValueError, match="newest-first"):
            PackageDefinition(name="bad", versions=["1.0", "2.0"])


class TestConcretizer:
    def test_simple_concretization(self):
        concrete = Concretizer().concretize(Spec.parse("hpl@2.3"))
        assert concrete.is_concrete
        assert str(concrete.version) == "2.3"
        assert concrete.target == "u74mc"
        assert concrete.compiler == "gcc"

    def test_transitive_dependencies_resolved(self):
        concrete = Concretizer().concretize(Spec.parse("quantum-espresso@6.8"))
        names = {node.name for node in concrete.traverse()}
        # fftw pulls openmpi which pulls hwloc etc.
        assert {"fftw", "openmpi", "hwloc", "openblas",
                "netlib-scalapack"} <= names

    def test_user_constraint_pins_dependency(self):
        concrete = Concretizer().concretize(
            Spec.parse("hpl@2.3 ^openblas@0.3.18"))
        assert str(concrete.dependencies["openblas"].version) == "0.3.18"

    def test_newest_version_preferred(self):
        concrete = Concretizer().concretize(Spec.parse("gcc"))
        assert str(concrete.version) == "12.1.0"

    def test_unsatisfiable_version(self):
        with pytest.raises(ConcretizationError, match="no version"):
            Concretizer().concretize(Spec.parse("hpl@9.9"))

    def test_unknown_package(self):
        with pytest.raises(ConcretizationError):
            Concretizer().concretize(Spec.parse("no-such-package"))

    def test_unknown_variant(self):
        with pytest.raises(ConcretizationError, match="variant"):
            Concretizer().concretize(Spec.parse("hpl +gpu"))

    def test_unused_user_constraint_rejected(self):
        with pytest.raises(ConcretizationError, match="dependency graph"):
            Concretizer().concretize(Spec.parse("stream ^openblas@0.3.18"))

    def test_dag_unification(self):
        """One node per package: hpl and scalapack share one openblas."""
        concrete = Concretizer().concretize(
            Spec.parse("quantum-espresso@6.8"))
        nodes = concrete.traverse()
        assert len([n for n in nodes if n.name == "openblas"]) == 1

    def test_cycle_detection(self):
        repo = Repository({
            "a": PackageDefinition(name="a", versions=["1.0"],
                                   dependencies=[Dependency("b")]),
            "b": PackageDefinition(name="b", versions=["1.0"],
                                   dependencies=[Dependency("a")]),
        })
        with pytest.raises(ConcretizationError, match="cycle"):
            Concretizer(repo=repo).concretize(Spec.parse("a"))

    def test_deterministic_hashes(self):
        first = Concretizer().concretize(Spec.parse("hpl@2.3"))
        second = Concretizer().concretize(Spec.parse("hpl@2.3"))
        assert first.dag_hash() == second.dag_hash()


class TestInstaller:
    def test_install_closure_dependencies_first(self):
        installer = Installer()
        concrete = Concretizer().concretize(Spec.parse("hpl@2.3"))
        records = installer.install(concrete)
        names = [record.name for record in records]
        assert names.index("openblas") < names.index("hpl")
        assert names.index("openmpi") < names.index("hpl")

    def test_abstract_spec_rejected(self):
        with pytest.raises(InstallError, match="abstract"):
            Installer().install(Spec.parse("hpl"))

    def test_reinstall_is_noop(self):
        installer = Installer()
        concrete = Concretizer().concretize(Spec.parse("hpl@2.3"))
        installer.install(concrete)
        assert installer.install(concrete) == []

    def test_prefix_layout(self):
        installer = Installer()
        concrete = Concretizer().concretize(Spec.parse("stream@5.10"))
        records = installer.install(concrete)
        record = next(r for r in records if r.name == "stream")
        assert record.prefix.startswith("/opt/spack/u74mc/stream-5.10-")
        assert installer.nfs.exists(record.prefix)

    def test_modules_registered(self):
        installer = Installer()
        installer.install(Concretizer().concretize(Spec.parse("hpl@2.3")))
        assert "hpl/2.3" in installer.modules.avail()

    def test_uninstall_leaf(self):
        installer = Installer()
        installer.install(Concretizer().concretize(Spec.parse("stream@5.10")))
        installer.uninstall("stream", "5.10")
        assert installer.find("stream") == []

    def test_uninstall_dependency_refused(self):
        installer = Installer()
        installer.install(Concretizer().concretize(Spec.parse("hpl@2.3")))
        with pytest.raises(InstallError, match="required by"):
            installer.uninstall("openblas", "0.3.18")

    def test_uninstall_missing(self):
        with pytest.raises(InstallError):
            Installer().uninstall("ghost", "1.0")


class TestEnvironment:
    def test_table_i_versions_installed(self):
        environment = SpackEnvironment.monte_cimone()
        installer = Installer()
        environment.install(installer)
        table = dict(environment.user_facing_table(installer))
        assert table == paper.TABLE_I_STACK

    def test_shared_dependencies_installed_once(self):
        environment = SpackEnvironment.monte_cimone()
        installer = Installer()
        environment.install(installer)
        assert len(installer.find("openmpi")) == 1
        assert len(installer.find("openblas")) == 1

    def test_gcc_build_dominates_deployment_time(self):
        environment = SpackEnvironment.monte_cimone()
        installer = Installer()
        environment.install(installer)
        gcc_cost = installer.find("gcc")[0].build_seconds
        assert gcc_cost > 0.4 * installer.total_build_seconds()

    def test_add_validates_spec(self):
        environment = SpackEnvironment(name="test")
        with pytest.raises(Exception):
            environment.add("not a spec @@")

    def test_stack_is_table_i(self):
        assert MONTE_CIMONE_STACK == paper.TABLE_I_STACK
