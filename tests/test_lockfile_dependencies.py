"""Tests for Spack lockfiles and SLURM job dependencies."""

import json

import pytest

from repro.slurm.job import JobState
from repro.spack.concretizer import Concretizer
from repro.spack.environment import SpackEnvironment
from repro.spack.lockfile import LockfileError, read_lockfile, write_lockfile
from repro.spack.spec import Spec
from tests.test_slurm import make_controller


class TestLockfile:
    def _roots(self):
        concretizer = Concretizer()
        return [concretizer.concretize(Spec.parse(text))
                for text in ("hpl@2.3", "stream@5.10")]

    def test_roundtrip_preserves_hashes(self):
        roots = self._roots()
        rebuilt = read_lockfile(write_lockfile(roots))
        assert [r.dag_hash() for r in rebuilt] == \
            [r.dag_hash() for r in roots]

    def test_roundtrip_preserves_versions_and_targets(self):
        rebuilt = read_lockfile(write_lockfile(self._roots()))
        hpl = rebuilt[0]
        assert str(hpl.version) == "2.3"
        assert hpl.target == "u74mc"
        assert str(hpl.dependencies["openblas"].version) == "0.3.18"

    def test_shared_nodes_stay_shared(self):
        """openblas appears once in the closure and is one object after
        rebuild (the DAG-unification invariant survives serialisation)."""
        concretizer = Concretizer()
        root = concretizer.concretize(Spec.parse("netlib-scalapack@2.1.0"))
        rebuilt = read_lockfile(write_lockfile([root]))[0]
        direct = rebuilt.dependencies["openblas"]
        via_lapack = rebuilt.dependencies["netlib-lapack"] \
            .dependencies["openblas"]
        assert direct is via_lapack

    def test_whole_environment_locks(self):
        roots = SpackEnvironment.monte_cimone().concretize()
        rebuilt = read_lockfile(write_lockfile(roots))
        assert len(rebuilt) == 9

    def test_abstract_root_rejected(self):
        with pytest.raises(LockfileError, match="not concrete"):
            write_lockfile([Spec.parse("hpl")])

    def test_tampered_lockfile_detected(self):
        text = write_lockfile(self._roots())
        payload = json.loads(text)
        some_hash = payload["roots"][0]
        payload["concrete_specs"][some_hash]["version"] = "9.9"
        with pytest.raises(LockfileError, match="hash mismatch"):
            read_lockfile(json.dumps(payload))

    def test_wrong_file_type_rejected(self):
        with pytest.raises(LockfileError):
            read_lockfile(json.dumps({"_meta": {"file-type": "other"}}))
        with pytest.raises(LockfileError, match="not JSON"):
            read_lockfile("{broken")


class TestJobDependencies:
    def test_afterok_waits_for_parent(self):
        controller = make_controller(n_nodes=4)
        parent = controller.submit("parent", "u", 1, duration_s=10.0)
        child = controller.submit("child", "u", 1, duration_s=5.0,
                                  depends_on=[parent.job_id])
        # Nodes are free, but the child must hold for its dependency.
        assert parent.state is JobState.RUNNING
        assert child.state is JobState.PENDING
        controller.engine.run()
        assert child.state is JobState.COMPLETED
        assert child.start_time_s >= parent.end_time_s

    def test_failed_parent_cancels_child(self):
        controller = make_controller(n_nodes=1)
        parent = controller.submit("parent", "u", 1, duration_s=100.0,
                                   time_limit_s=10.0)  # will TIMEOUT
        child = controller.submit("child", "u", 1, duration_s=5.0,
                                  depends_on=[parent.job_id])
        controller.engine.run()
        assert parent.state is JobState.TIMEOUT
        assert child.state is JobState.CANCELLED
        assert child.exit_reason == "DependencyNeverSatisfied"

    def test_held_job_does_not_block_the_queue(self):
        controller = make_controller(n_nodes=2)
        parent = controller.submit("parent", "u", 1, duration_s=50.0)
        held = controller.submit("held", "u", 1, duration_s=5.0,
                                 depends_on=[parent.job_id])
        independent = controller.submit("indep", "u", 1, duration_s=5.0)
        # The held job must not stop the independent one from starting.
        assert independent.state is JobState.RUNNING
        controller.engine.run()
        assert held.state is JobState.COMPLETED

    def test_dependency_chain(self):
        controller = make_controller(n_nodes=4)
        a = controller.submit("a", "u", 1, duration_s=5.0)
        b = controller.submit("b", "u", 1, duration_s=5.0,
                              depends_on=[a.job_id])
        c = controller.submit("c", "u", 1, duration_s=5.0,
                              depends_on=[b.job_id])
        controller.engine.run()
        assert a.end_time_s <= b.start_time_s
        assert b.end_time_s <= c.start_time_s

    def test_unknown_dependency_rejected(self):
        controller = make_controller()
        with pytest.raises(KeyError):
            controller.submit("x", "u", 1, duration_s=1.0, depends_on=[99])

    def test_multiple_dependencies_all_required(self):
        controller = make_controller(n_nodes=4)
        a = controller.submit("a", "u", 1, duration_s=5.0)
        b = controller.submit("b", "u", 1, duration_s=20.0)
        child = controller.submit("child", "u", 1, duration_s=2.0,
                                  depends_on=[a.job_id, b.job_id])
        controller.engine.run()
        assert child.start_time_s >= b.end_time_s
