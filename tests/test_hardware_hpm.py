"""Tests for the HPM counters and the perf_events view (§IV-B)."""

import pytest

from repro.hardware.hpm import (
    FIXED_EVENTS,
    HPMUnit,
    PROGRAMMABLE_EVENTS,
    PerfEventsInterface,
)


class TestHPMUnit:
    def test_fixed_counters_always_count(self):
        unit = HPMUnit(core_id=0)
        unit.add_cycles(100)
        unit.add_instructions(50)
        assert unit.cycle == 100
        assert unit.instret == 50

    def test_programmable_disabled_at_boot(self):
        # §IV-B: "the remaining programmable counters ... are disabled at
        # boot time".
        unit = HPMUnit(core_id=0)
        assert not unit.programmable_enabled
        unit.add_event("fp_ops", 1000)
        assert unit.read_event("fp_ops") == 0

    def test_uboot_patch_enables_counting(self):
        unit = HPMUnit(core_id=0)
        unit.enable_programmable()
        unit.add_event("fp_ops", 1000)
        assert unit.read_event("fp_ops") == 1000

    def test_unknown_event_rejected(self):
        unit = HPMUnit(core_id=0)
        with pytest.raises(KeyError):
            unit.add_event("no_such_event", 1)
        with pytest.raises(KeyError):
            unit.read_event("no_such_event")

    def test_negative_counts_rejected(self):
        unit = HPMUnit(core_id=0)
        with pytest.raises(ValueError):
            unit.add_cycles(-1)
        with pytest.raises(ValueError):
            unit.add_instructions(-1)

    def test_snapshot_contains_everything(self):
        unit = HPMUnit(core_id=0)
        snap = unit.snapshot()
        assert set(snap) == set(FIXED_EVENTS) | set(PROGRAMMABLE_EVENTS)


class TestPerfEventsInterface:
    def _iface(self, enabled=False):
        units = [HPMUnit(core_id=i) for i in range(4)]
        for unit in units:
            if enabled:
                unit.enable_programmable()
        return PerfEventsInterface(units), units

    def test_needs_at_least_one_core(self):
        with pytest.raises(ValueError):
            PerfEventsInterface([])

    def test_core_ids_sorted(self):
        iface, _units = self._iface()
        assert iface.core_ids == [0, 1, 2, 3]

    def test_only_fixed_events_with_stock_uboot(self):
        iface, _units = self._iface(enabled=False)
        assert iface.available_events(0) == ["cycles", "instructions"]

    def test_full_event_set_with_patched_uboot(self):
        iface, _units = self._iface(enabled=True)
        events = iface.available_events(0)
        assert "fp_ops" in events and "l2_miss" in events

    def test_reads_are_per_core(self):
        iface, units = self._iface()
        units[2].add_instructions(7)
        assert iface.read(2, "instructions") == 7
        assert iface.read(0, "instructions") == 0

    def test_read_all_matches_snapshot(self):
        iface, units = self._iface(enabled=True)
        units[1].add_cycles(5)
        assert iface.read_all(1)["cycles"] == 5
