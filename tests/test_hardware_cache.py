"""Tests for the L2 cache and prefetcher model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.cache import AccessPattern, L2Cache, StreamPrefetcher
from repro.hardware.specs import DDR_SPEC, MIB

DDR_BW = DDR_SPEC.peak_bandwidth_bytes_per_s


class TestAccessPattern:
    def test_validation(self):
        with pytest.raises(ValueError):
            AccessPattern(working_set_bytes=-1)
        with pytest.raises(ValueError):
            AccessPattern(working_set_bytes=1, n_streams=0)
        with pytest.raises(ValueError):
            AccessPattern(working_set_bytes=1, read_fraction=1.5)


class TestPrefetcher:
    def test_full_coverage_within_stream_budget(self):
        prefetcher = StreamPrefetcher(max_streams=8, efficiency=0.5)
        pattern = AccessPattern(working_set_bytes=MIB * 100, n_streams=3)
        assert prefetcher.coverage(pattern) == pytest.approx(0.5)

    def test_coverage_degrades_beyond_budget(self):
        prefetcher = StreamPrefetcher(max_streams=8, efficiency=0.5)
        pattern = AccessPattern(working_set_bytes=MIB * 100, n_streams=16)
        assert prefetcher.coverage(pattern) == pytest.approx(0.25)

    def test_irregular_patterns_not_prefetched(self):
        prefetcher = StreamPrefetcher(max_streams=8, efficiency=0.5)
        pattern = AccessPattern(working_set_bytes=MIB * 100, n_streams=2,
                                spatial_locality=0.0)
        assert prefetcher.coverage(pattern) == 0.0

    def test_disabled_prefetcher(self):
        prefetcher = StreamPrefetcher(max_streams=0, efficiency=0.5)
        pattern = AccessPattern(working_set_bytes=MIB * 100)
        assert prefetcher.coverage(pattern) == 0.0


class TestL2Cache:
    def test_small_set_fits(self):
        cache = L2Cache()
        assert cache.fits(AccessPattern(working_set_bytes=int(1.1 * MIB)))

    def test_large_set_spills(self):
        cache = L2Cache()
        assert not cache.fits(AccessPattern(working_set_bytes=100 * MIB))

    def test_margin_for_co_resident_lines(self):
        # 90% rule: 1.9 MiB of data does NOT fit a 2 MiB cache.
        cache = L2Cache()
        assert not cache.fits(AccessPattern(working_set_bytes=int(1.9 * MIB)))

    def test_l2_resident_bandwidth_is_port_bandwidth(self):
        cache = L2Cache()
        pattern = AccessPattern(working_set_bytes=MIB)
        assert cache.effective_bandwidth(pattern, DDR_BW) == \
            cache.spec.bandwidth_bytes_per_s

    def test_ddr_bandwidth_floor_without_prefetch(self):
        cache = L2Cache(prefetcher=StreamPrefetcher(efficiency=0.0))
        pattern = AccessPattern(working_set_bytes=2000 * MIB)
        assert cache.effective_bandwidth(pattern, DDR_BW) == \
            pytest.approx(0.13 * DDR_BW)

    def test_perfect_prefetch_reaches_ddr_peak(self):
        cache = L2Cache(prefetcher=StreamPrefetcher(efficiency=1.0))
        pattern = AccessPattern(working_set_bytes=2000 * MIB, n_streams=2)
        assert cache.effective_bandwidth(pattern, DDR_BW) == \
            pytest.approx(DDR_BW)

    def test_hit_rate_high_when_resident(self):
        cache = L2Cache()
        assert cache.hit_rate(AccessPattern(working_set_bytes=MIB)) > 0.99

    @given(ws=st.integers(min_value=1, max_value=4 * 1024 ** 3),
           streams=st.integers(min_value=1, max_value=32),
           efficiency=st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=100, deadline=None)
    def test_bandwidth_never_exceeds_roofs(self, ws, streams, efficiency):
        """Property: effective bandwidth ≤ max(L2 port, DDR peak), > 0."""
        cache = L2Cache(prefetcher=StreamPrefetcher(efficiency=efficiency))
        pattern = AccessPattern(working_set_bytes=ws, n_streams=streams)
        bandwidth = cache.effective_bandwidth(pattern, DDR_BW)
        assert 0 < bandwidth <= max(cache.spec.bandwidth_bytes_per_s, DDR_BW)

    @given(efficiency_lo=st.floats(min_value=0.0, max_value=0.5),
           delta=st.floats(min_value=0.0, max_value=0.5))
    @settings(max_examples=50, deadline=None)
    def test_more_prefetch_never_hurts(self, efficiency_lo, delta):
        """Property: raising prefetcher efficiency is monotone in bandwidth."""
        pattern = AccessPattern(working_set_bytes=500 * MIB, n_streams=3)
        low = L2Cache(prefetcher=StreamPrefetcher(efficiency=efficiency_lo))
        high = L2Cache(prefetcher=StreamPrefetcher(
            efficiency=efficiency_lo + delta))
        assert (high.effective_bandwidth(pattern, DDR_BW)
                >= low.effective_bandwidth(pattern, DDR_BW) - 1e-9)
