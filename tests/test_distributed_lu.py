"""Tests for the executed distributed LU and its model cross-validation."""

import numpy as np
import pytest

from repro.benchmarks.distributed_lu import DistributedLU
from repro.benchmarks.hpl import HPLConfig, HPLModel
from repro.benchmarks.kernels import hpl_residual

RNG = np.random.default_rng(11)


def system(n):
    a = RNG.normal(size=(n, n)) + n * np.eye(n)
    b = RNG.normal(size=n)
    return a, b


class TestNumerics:
    @pytest.mark.parametrize("n,nb,ranks", [
        (16, 4, 1), (16, 4, 2), (32, 8, 4), (48, 8, 3), (33, 7, 4),
        (24, 24, 2), (20, 32, 4),  # nb >= n: single panel
    ])
    def test_solution_matches_numpy(self, n, nb, ranks):
        a, b = system(n)
        result = DistributedLU(n_ranks=ranks, nb=nb).solve(a, b)
        assert np.allclose(result.x, np.linalg.solve(a, b), atol=1e-8)

    def test_passes_the_hpl_residual(self):
        a, b = system(64)
        result = DistributedLU(n_ranks=4, nb=8).solve(a, b)
        assert hpl_residual(a, result.x, b) < 16.0

    def test_rank_count_does_not_change_numerics(self):
        a, b = system(32)
        x1 = DistributedLU(n_ranks=1, nb=8).solve(a, b).x
        x4 = DistributedLU(n_ranks=4, nb=8).solve(a, b).x
        assert np.allclose(x1, x4, atol=1e-12)

    def test_singular_matrix_raises(self):
        with pytest.raises(np.linalg.LinAlgError):
            DistributedLU().solve(np.zeros((8, 8)), np.zeros(8))

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            DistributedLU().solve(np.zeros((4, 5)), np.zeros(4))

    def test_pivoting_handles_zero_diagonal(self):
        a = np.array([[0.0, 2.0], [3.0, 0.0]])
        result = DistributedLU(n_ranks=1, nb=1).solve(a, np.array([4.0, 6.0]))
        assert np.allclose(result.x, [2.0, 2.0])


class TestDistribution:
    def test_cyclic_ownership(self):
        lu = DistributedLU(n_ranks=3)
        assert [lu.owner_of_block(b) for b in range(6)] == [0, 1, 2, 0, 1, 2]

    def test_blocks_of_rank(self):
        lu = DistributedLU(n_ranks=2)
        assert lu.blocks_of_rank(0, 5) == [0, 2, 4]
        assert lu.blocks_of_rank(1, 5) == [1, 3]

    def test_validation(self):
        with pytest.raises(ValueError):
            DistributedLU(n_ranks=0)
        with pytest.raises(ValueError):
            DistributedLU(nb=0)


class TestTimeAccounting:
    def test_single_rank_has_no_comm(self):
        a, b = system(32)
        result = DistributedLU(n_ranks=1, nb=8).solve(a, b)
        assert result.comm_time_s == 0.0
        assert result.simulated_time_s == result.compute_time_s

    def test_multi_rank_pays_communication(self):
        a, b = system(32)
        result = DistributedLU(n_ranks=4, nb=8).solve(a, b)
        assert result.comm_time_s > 0.0

    def test_more_ranks_less_compute_time(self):
        a, b = system(64)
        t1 = DistributedLU(n_ranks=1, nb=8).solve(a, b).compute_time_s
        t4 = DistributedLU(n_ranks=4, nb=8).solve(a, b).compute_time_s
        assert t4 < t1

    def test_small_problems_do_not_scale(self):
        """At tiny N the comm dominates: the executed solver shows the
        same below-linear behaviour the model predicts at scale."""
        a, b = system(48)
        single = DistributedLU(n_ranks=1, nb=8).solve(a, b)
        quad = DistributedLU(n_ranks=4, nb=8).solve(a, b)
        speedup = single.simulated_time_s / quad.simulated_time_s
        assert speedup < 4.0

    def test_cross_validation_against_analytic_model(self):
        """Single-rank executed time tracks the analytic model within 25%.

        Both charge flops at the same attained rate; the executed solver
        differs only in the exact panel/solve bookkeeping, so the two
        must agree closely — this pins the model to the real algorithm.
        """
        n = 96
        a, b = system(n)
        executed = DistributedLU(n_ranks=1, nb=16).solve(a, b)
        model = HPLModel().compute_time_s(HPLConfig(n=n, nb=16))
        assert executed.simulated_time_s == pytest.approx(model, rel=0.25)

    def test_reported_gflops_consistent(self):
        a, b = system(64)
        result = DistributedLU(n_ranks=2, nb=8).solve(a, b)
        flops = 2 / 3 * 64 ** 3 + 2 * 64 ** 2
        assert result.gflops == pytest.approx(
            flops / result.simulated_time_s / 1e9)
