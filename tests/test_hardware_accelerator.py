"""Tests for the PCIe accelerator expansion model (§VI future work)."""

import pytest

from repro.hardware.accelerator import (
    AcceleratorCard,
    PCIeSlot,
    RISCV_VECTOR_CARD,
    SlotError,
)
from repro.hardware.specs import U740_SPEC


class TestPCIeSlot:
    def test_unmatched_slot_shape(self):
        # §III: PCIe Gen 3 x16 connector limited to x8 lanes.
        slot = PCIeSlot()
        assert slot.generation == 3
        assert slot.mechanical_lanes == 16
        assert slot.electrical_lanes == 8

    def test_link_negotiates_down_to_electrical_lanes(self):
        slot = PCIeSlot()
        x16 = slot.link_bandwidth_bytes_per_s(16)
        x8 = slot.link_bandwidth_bytes_per_s(8)
        assert x16 == x8  # only 8 lanes are wired
        assert x8 == pytest.approx(8 * 0.985e9)


class TestAcceleratorCard:
    def test_validation(self):
        with pytest.raises(ValueError):
            AcceleratorCard(name="bad", tdp_w=10.0, idle_w=20.0,
                            peak_flops=1e9)
        with pytest.raises(ValueError):
            AcceleratorCard(name="bad", tdp_w=10.0, idle_w=1.0,
                            peak_flops=1e9, lanes=3)

    def test_power_curve(self):
        card = RISCV_VECTOR_CARD
        assert card.power_w(0.0) == pytest.approx(9.0)
        assert card.power_w(1.0) == pytest.approx(60.0)
        assert card.power_w(0.5) == pytest.approx(34.5)

    def test_validate_in_unmatched_slot(self):
        bandwidth = RISCV_VECTOR_CARD.validate_in(PCIeSlot(),
                                                  psu_headroom_w=240.0)
        assert bandwidth == pytest.approx(8 * 0.985e9)

    def test_psu_headroom_abundant_for_the_vector_card(self):
        """§III's 'abundant power headroom' claim, quantified: a 250 W PSU
        minus the ~6 W node leaves > 240 W — the 60 W card fits 4× over."""
        node_power = 5.935
        headroom = 250.0 - node_power
        RISCV_VECTOR_CARD.validate_in(PCIeSlot(), psu_headroom_w=headroom)
        assert headroom / RISCV_VECTOR_CARD.tdp_w > 4

    def test_overbudget_card_rejected(self):
        hungry = AcceleratorCard(name="x", tdp_w=70.0, idle_w=10.0,
                                 peak_flops=1e12, lanes=8)
        with pytest.raises(SlotError, match="headroom"):
            hungry.validate_in(PCIeSlot(), psu_headroom_w=50.0)

    def test_slot_power_budget_without_aux(self):
        hot = AcceleratorCard(name="x", tdp_w=150.0, idle_w=10.0,
                              peak_flops=1e12, lanes=8)
        with pytest.raises(SlotError, match="75 W"):
            hot.validate_in(PCIeSlot(), psu_headroom_w=240.0)

    def test_aux_power_lifts_slot_budget(self):
        hot = AcceleratorCard(name="x", tdp_w=150.0, idle_w=10.0,
                              peak_flops=1e12, lanes=8,
                              requires_aux_power=True)
        hot.validate_in(PCIeSlot(), psu_headroom_w=240.0)

    def test_offload_speedup_dwarfs_host(self):
        """The 64 GFLOP/s card vs the 4 GFLOP/s U740: offloading 90% of a
        DGEMM-heavy workload is a ~4-5× node speedup (Amdahl-limited by
        the host-resident 10%)."""
        speedup = RISCV_VECTOR_CARD.offload_speedup(
            host_peak_flops=U740_SPEC.peak_flops, offload_fraction=0.9)
        assert 4.0 < speedup < 8.0

    def test_offload_zero_fraction_is_identity(self):
        assert RISCV_VECTOR_CARD.offload_speedup(
            U740_SPEC.peak_flops, 0.0) == pytest.approx(1.0)

    def test_offload_validation(self):
        with pytest.raises(ValueError):
            RISCV_VECTOR_CARD.offload_speedup(4e9, 1.5)
        with pytest.raises(ValueError):
            RISCV_VECTOR_CARD.power_w(-0.1)
