"""Tests for the boot power sequence (Fig. 4) and trace synthesis (Fig. 3)."""

import numpy as np
import pytest

from repro.power.boot import BOOT_PHASES, BootPowerModel
from repro.power.model import NodePhase
from repro.power.traces import RAIL_GROUPS, TraceSynthesizer, activity_modulation


class TestBootTimeline:
    def test_r1_spans_4_to_10_seconds(self):
        # Fig. 4: region R1 at 4 s < t < 10 s.
        r1 = next(p for p in BOOT_PHASES if p.name == "R1")
        assert (r1.start_s, r1.end_s) == (4.0, 10.0)

    def test_phases_are_contiguous(self):
        for earlier, later in zip(BOOT_PHASES, BOOT_PHASES[1:]):
            assert earlier.end_s == later.start_s

    def test_phase_at_lookup(self):
        boot = BootPowerModel()
        assert boot.phase_at(5.0).name == "R1"
        assert boot.phase_at(15.0).name == "R2"
        assert boot.phase_at(60.0).name == "R3"
        assert boot.phase_at(1.0).phase is NodePhase.OFF


class TestBootAverages:
    BOOT = BootPowerModel()

    def test_r1_core_leakage_0_984_w(self):
        assert self.BOOT.region_average_mw("R1", "core") == \
            pytest.approx(984, abs=5)

    def test_r2_core_2_561_w(self):
        assert self.BOOT.region_average_mw("R2", "core") == \
            pytest.approx(2561, abs=5)

    def test_r3_core_settles_near_3_082_w(self):
        # Early R3 shows ~3.082 W decaying toward the 3.075 W idle value.
        early = self.BOOT.region_average_mw("R3", "core", margin_s=2.0)
        assert 3075 <= early <= 3090

    def test_ddr_mem_r1_leakage_0_275_w(self):
        assert self.BOOT.region_average_mw("R1", "ddr_mem") == \
            pytest.approx(275, abs=3)

    def test_unknown_region_raises(self):
        with pytest.raises(KeyError):
            self.BOOT.region_average_mw("R9", "core")


class TestDecompositionFractions:
    def test_paper_percentages(self):
        decomposition = BootPowerModel().decomposition()
        # §V-B: 32% leakage, 51% dynamic + clock tree, 17% OS.
        assert decomposition["leakage"] == pytest.approx(0.32, abs=0.01)
        assert decomposition["clock_and_dynamic"] == pytest.approx(0.51, abs=0.01)
        assert decomposition["os_baseline"] == pytest.approx(0.17, abs=0.01)

    def test_fractions_sum_to_one(self):
        assert sum(BootPowerModel().decomposition().values()) == \
            pytest.approx(1.0)


class TestTraceSynthesizer:
    def test_deterministic_across_instances(self):
        a = TraceSynthesizer(seed=7).benchmark_trace("hpl", "core")
        b = TraceSynthesizer(seed=7).benchmark_trace("hpl", "core")
        assert np.array_equal(a.power_w, b.power_w)

    def test_different_seeds_differ(self):
        a = TraceSynthesizer(seed=1).benchmark_trace("hpl", "core")
        b = TraceSynthesizer(seed=2).benchmark_trace("hpl", "core")
        assert not np.array_equal(a.power_w, b.power_w)

    def test_hpl_core_trace_mean_near_table_vi(self):
        trace = TraceSynthesizer().benchmark_trace("hpl", "core")
        assert trace.mean_w() == pytest.approx(4.097, abs=0.12)

    def test_trace_has_1ms_windows_for_8_seconds(self):
        trace = TraceSynthesizer().benchmark_trace("qe", "core")
        assert trace.window_s == 1e-3
        assert len(trace.times_s) == 8000

    def test_hpl_trace_shows_panel_dips(self):
        trace = TraceSynthesizer().benchmark_trace("hpl", "core")
        # The panel/broadcast dips pull minima well below the mean.
        assert trace.power_w.min() < 0.93 * trace.mean_w()

    def test_idle_trace_is_flat(self):
        trace = TraceSynthesizer().benchmark_trace("idle", "core")
        assert trace.std_w() < 0.05 * trace.mean_w()

    def test_unknown_workload_or_group_raises(self):
        synth = TraceSynthesizer()
        with pytest.raises(KeyError):
            synth.benchmark_trace("nonexistent")
        with pytest.raises(KeyError):
            synth.benchmark_trace("hpl", "nonexistent")

    def test_boot_trace_covers_regions(self):
        trace = TraceSynthesizer().boot_trace("core")
        # Sample means in each region follow the R1 < R2 < R3 staircase.
        def region_mean(lo, hi):
            mask = (trace.times_s >= lo) & (trace.times_s < hi)
            return float(trace.power_w[mask].mean())
        assert region_mean(0, 4) < 0.2
        assert region_mean(5, 10) == pytest.approx(0.984, abs=0.05)
        assert region_mean(11, 25) == pytest.approx(2.561, abs=0.08)
        assert region_mean(45, 80) == pytest.approx(3.08, abs=0.08)

    def test_all_benchmark_traces_cover_grid(self):
        traces = TraceSynthesizer().all_benchmark_traces(duration_s=1.0)
        assert set(traces) == {"hpl", "stream_l2", "stream_ddr", "qe"}
        for groups in traces.values():
            assert set(groups) == set(RAIL_GROUPS)


class TestActivityModulation:
    def test_idle_is_flat(self):
        assert activity_modulation("idle", 3.7) == 1.0

    def test_unknown_workload_is_flat(self):
        assert activity_modulation("mystery", 1.0) == 1.0

    def test_hpl_dips_during_panel_phase(self):
        values = [activity_modulation("hpl", t / 10) for t in range(60)]
        assert min(values) < 0.85
        assert max(values) > 0.95


class TestTraceDeterminism:
    """Regression for the salted-hash seed bug (simlint rule DET104).

    ``benchmark_trace`` used to mix ``hash((workload, group))`` into the
    noise seed; Python salts string hashing per process (PYTHONHASHSEED),
    so the "deterministic" traces differed between interpreter runs.  The
    fix derives the per-panel stream from ``zlib.crc32`` instead.
    """

    def test_two_fresh_synthesizers_agree_exactly(self):
        a = TraceSynthesizer(seed=2022)
        b = TraceSynthesizer(seed=2022)
        for workload in ("hpl", "stream_l2", "stream_ddr", "qe", "idle"):
            for group in RAIL_GROUPS:
                ta = a.benchmark_trace(workload, group, duration_s=0.5)
                tb = b.benchmark_trace(workload, group, duration_s=0.5)
                np.testing.assert_array_equal(ta.power_w, tb.power_w)

    def test_seed_still_matters(self):
        ta = TraceSynthesizer(seed=1).benchmark_trace("hpl", duration_s=0.5)
        tb = TraceSynthesizer(seed=2).benchmark_trace("hpl", duration_s=0.5)
        assert not np.array_equal(ta.power_w, tb.power_w)

    def test_panels_are_decorrelated(self):
        synth = TraceSynthesizer(seed=2022)
        core = synth.benchmark_trace("hpl", "core", duration_s=0.5)
        ddr = synth.benchmark_trace("hpl", "ddr", duration_s=0.5)
        centred_core = core.power_w - np.mean(core.power_w)
        centred_ddr = ddr.power_w - np.mean(ddr.power_w)
        assert not np.array_equal(centred_core, centred_ddr)

    def test_traces_identical_across_interpreter_processes(self):
        # The actual bug: hash() salt varies per process, so equality must
        # hold between *fresh interpreters*, not merely within one.
        import os
        import subprocess
        import sys
        from pathlib import Path

        snippet = (
            "import zlib\n"
            "from repro.power.traces import TraceSynthesizer\n"
            "t = TraceSynthesizer(seed=2022).benchmark_trace('hpl', 'ddr', duration_s=0.5)\n"
            "print(zlib.crc32(t.power_w.tobytes()))\n"
        )
        src = str(Path(__file__).parent.parent / "src")
        digests = set()
        for hash_seed in ("1", "2"):
            env = dict(os.environ,
                       PYTHONPATH=src, PYTHONHASHSEED=hash_seed)
            proc = subprocess.run(
                [sys.executable, "-c", snippet],
                capture_output=True, text=True, timeout=120, env=env)
            assert proc.returncode == 0, proc.stderr
            digests.add(proc.stdout.strip())
        assert len(digests) == 1, f"trace noise differs across processes: {digests}"
