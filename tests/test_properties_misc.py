"""Property-based tests across subsystems: broker, NFS, TSDB, specs, kernel."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.events import Engine, SimulationError
from repro.examon.broker import MQTTBroker
from repro.examon.topics import topic_matches
from repro.examon.tsdb import TimeSeriesDB
from repro.spack.concretizer import Concretizer
from repro.spack.spec import Spec

level = st.sampled_from(["org", "unibo", "node", "core", "x", "y9"])
topic_strategy = st.lists(level, min_size=1, max_size=6).map("/".join)


class TestBrokerProperties:
    @given(topics=st.lists(topic_strategy, min_size=1, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_hash_subscription_sees_every_message(self, topics):
        """Property: a '#' subscriber receives every published message."""
        broker = MQTTBroker()
        received = []
        broker.subscribe("all", "#", received.append)
        for i, topic in enumerate(topics):
            broker.publish(topic, f"{i};{i}", timestamp_s=float(i),
                           retain=False)
        assert [m.topic for m in received] == topics

    @given(topic=topic_strategy)
    @settings(max_examples=50, deadline=None)
    def test_exact_subscription_matches_only_itself(self, topic):
        """Property: an exact-topic pattern matches exactly that topic."""
        assert topic_matches(topic, topic)
        assert not topic_matches(topic, topic + "/extra")

    @given(topics=st.lists(topic_strategy, min_size=1, max_size=10,
                           unique=True))
    @settings(max_examples=50, deadline=None)
    def test_retained_replay_equals_latest_per_topic(self, topics):
        """Property: a late subscriber sees one retained message per topic."""
        broker = MQTTBroker()
        for i, topic in enumerate(topics):
            broker.publish(topic, f"{i};{i}", timestamp_s=float(i))
        received = []
        broker.subscribe("late", "#", received.append)
        assert sorted(m.topic for m in received) == sorted(topics)


class TestTSDBProperties:
    @given(points=st.lists(
        st.tuples(st.floats(min_value=0, max_value=1e6),
                  st.floats(min_value=-1e9, max_value=1e9)),
        min_size=1, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_insert_order_irrelevant(self, points):
        """Property: the stored series is sorted whatever the arrival order."""
        db = TimeSeriesDB()
        for t, v in points:
            db.insert("m", t, v)
        stored = db.query("m")
        assert [t for t, _v in stored] == sorted(t for t, _v in points)

    @given(values=st.lists(st.floats(min_value=-1e6, max_value=1e6),
                           min_size=1, max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_aggregate_mean_bounded_by_min_max(self, values):
        """Property: every windowed mean lies within [min, max] of data."""
        db = TimeSeriesDB()
        for i, value in enumerate(values):
            db.insert("m", float(i), value)
        buckets = db.aggregate("m", 0.0, float(len(values)), window_s=7.0)
        for _t, mean in buckets:
            assert min(values) - 1e-9 <= mean <= max(values) + 1e-9

    @given(increments=st.lists(st.floats(min_value=0.0, max_value=1e6),
                               min_size=2, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_rate_of_monotone_counter_never_negative(self, increments):
        """Property: rates of a monotone counter are nonnegative."""
        db = TimeSeriesDB()
        total = 0.0
        for i, increment in enumerate(increments):
            total += increment
            db.insert("counter", float(i), total)
        assert all(rate >= 0.0 for _t, rate in db.rate("counter"))


class TestSpackProperties:
    @given(name=st.sampled_from(["hpl", "stream", "fftw", "openblas",
                                 "openmpi", "quantum-espresso"]))
    @settings(max_examples=20, deadline=None)
    def test_concretization_idempotent_hash(self, name):
        """Property: concretizing the same abstract spec twice gives the
        same DAG hash (full determinism of the resolver)."""
        first = Concretizer().concretize(Spec.parse(name))
        second = Concretizer().concretize(Spec.parse(name))
        assert first.dag_hash() == second.dag_hash()

    @given(name=st.sampled_from(["hpl", "fftw", "netlib-scalapack"]))
    @settings(max_examples=20, deadline=None)
    def test_traverse_is_topological(self, name):
        """Property: dependencies always precede dependents in traverse()."""
        concrete = Concretizer().concretize(Spec.parse(name))
        order = [node.name for node in concrete.traverse()]
        position = {pkg: i for i, pkg in enumerate(order)}
        for node in concrete.traverse():
            for dep in node.dependencies.values():
                assert position[dep.name] < position[node.name]


class TestKernelEdges:
    def test_engine_run_reentrancy_guarded(self):
        engine = Engine()

        def nested(env):
            yield env.timeout(1.0)
            with pytest.raises(SimulationError, match="already running"):
                # Deliberate misuse: this test asserts the runtime guard that
                # simlint rule ENG202 catches statically.
                env.run()  # simlint: disable=ENG202  (exercising the guard)

        engine.spawn(nested(engine))
        engine.run()

    def test_any_of_failure_propagates(self):
        engine = Engine()
        good = engine.timeout(5.0)
        bad = engine.event()
        combined = engine.any_of([good, bad])
        bad.fail(RuntimeError("child failed"))
        engine.run(until=1.0)
        with pytest.raises(RuntimeError, match="child failed"):
            _ = combined.value

    def test_all_of_failure_propagates(self):
        engine = Engine()
        good = engine.timeout(1.0)
        bad = engine.event()
        combined = engine.all_of([good, bad])
        bad.fail(ValueError("nope"))
        combined.defuse()  # nobody yields the condition; consumed via .value
        engine.run(until=2.0)
        assert combined.triggered
        with pytest.raises(ValueError):
            _ = combined.value

    def test_condition_with_already_processed_children(self):
        engine = Engine()
        done = engine.timeout(1.0, value="early")
        engine.run(until=2.0)
        combined = engine.all_of([done])
        assert combined.triggered
        assert combined.value == {done: "early"}
