"""Tests for dynamic thermal management (§VI future work, implemented)."""

import pytest

from repro.cluster.cluster import MonteCimoneCluster
from repro.cluster.node import ComputeNode, NodeState
from repro.power.model import HPL_PROFILE, NodePhase, RailPowerModel
from repro.slurm.api import SlurmAPI
from repro.slurm.job import JobState
from repro.thermal.dtm import THROTTLE_LEVELS, ClusterDTM, ThermalGovernor
from repro.thermal.enclosure import Enclosure, EnclosureConfig


def booted_node(slot=4, config=None):
    node = ComputeNode(hostname="mc-node-7")
    node.attach_thermal(
        Enclosure(config if config is not None else EnclosureConfig.original()),
        slot=slot)
    node.power_on(0.0)
    node.start_bootloader(6.0)
    node.finish_boot(21.0)
    return node


class TestFrequencyScaling:
    def test_power_model_scales_dynamic_core_power(self):
        model = RailPowerModel()
        full = model.rail_powers_mw(NodePhase.R3_OS, HPL_PROFILE,
                                    frequency_scale=1.0)
        half = model.rail_powers_mw(NodePhase.R3_OS, HPL_PROFILE,
                                    frequency_scale=0.5)
        # Leakage (984) + OS (514) survive; clock+activity halve.
        expected = 984 + 514 + 0.5 * (full["core"] - 984 - 514)
        assert half["core"] == pytest.approx(expected)

    def test_leakage_unaffected_by_throttle(self):
        model = RailPowerModel()
        half = model.rail_powers_mw(NodePhase.R1_POWER_ON,
                                    frequency_scale=0.5)
        assert half["core"] == pytest.approx(984)

    def test_invalid_scale_rejected(self):
        model = RailPowerModel()
        with pytest.raises(ValueError):
            model.rail_powers_mw(NodePhase.R3_OS, HPL_PROFILE,
                                 frequency_scale=0.0)
        node = booted_node()
        with pytest.raises(ValueError):
            node.set_frequency_scale(1.5, 22.0)

    def test_node_throttle_reduces_power(self):
        node = booted_node()
        node.begin_workload(HPL_PROFILE, 22.0)
        full_power = node.total_power_w()
        node.set_frequency_scale(0.55, 23.0)
        assert node.total_power_w() < full_power - 0.4

    def test_throttle_slows_instruction_throughput(self):
        full = booted_node()
        slow = booted_node()
        for node in (full, slow):
            node.begin_workload(HPL_PROFILE, 22.0)
        slow.set_frequency_scale(0.55, 22.0)
        full.advance(100.0)
        slow.advance(100.0)
        ratio = (slow.board.cores.total_instructions()
                 / full.board.cores.total_instructions())
        assert ratio == pytest.approx(0.55, abs=0.02)


class TestGovernor:
    def test_hysteresis_validation(self):
        with pytest.raises(ValueError):
            ThermalGovernor(booted_node(), throttle_c=80.0, release_c=90.0)

    def test_steps_down_when_hot(self):
        node = booted_node()
        governor = ThermalGovernor(node, throttle_c=95.0, release_c=85.0)
        node.board.hwmon.set_celsius("cpu_temp", 99.0)
        governor.control_step(30.0)
        assert governor.scale == THROTTLE_LEVELS[1]
        assert node.frequency_scale == THROTTLE_LEVELS[1]

    def test_steps_back_up_when_cool(self):
        node = booted_node()
        governor = ThermalGovernor(node)
        node.board.hwmon.set_celsius("cpu_temp", 99.0)
        governor.control_step(30.0)
        node.board.hwmon.set_celsius("cpu_temp", 80.0)
        governor.control_step(32.0)
        assert governor.scale == 1.0
        assert not governor.throttled

    def test_holds_inside_hysteresis_band(self):
        node = booted_node()
        governor = ThermalGovernor(node)
        node.board.hwmon.set_celsius("cpu_temp", 99.0)
        governor.control_step(30.0)
        node.board.hwmon.set_celsius("cpu_temp", 90.0)  # between thresholds
        governor.control_step(32.0)
        assert governor.scale == THROTTLE_LEVELS[1]

    def test_saturates_at_lowest_level(self):
        node = booted_node()
        governor = ThermalGovernor(node)
        node.board.hwmon.set_celsius("cpu_temp", 120.0)
        for t in range(10):
            governor.control_step(30.0 + t)
        assert governor.scale == THROTTLE_LEVELS[-1]

    def test_events_logged(self):
        node = booted_node()
        governor = ThermalGovernor(node)
        node.board.hwmon.set_celsius("cpu_temp", 99.0)
        governor.control_step(30.0)
        assert len(governor.events) == 1
        event = governor.events[0]
        assert event.old_scale == 1.0 and event.new_scale == THROTTLE_LEVELS[1]

    def test_skips_off_nodes(self):
        node = ComputeNode(hostname="off-node")
        governor = ThermalGovernor(node)
        governor.control_step(1.0)  # must not raise
        assert governor.events == []


class TestClusterDTMIntegration:
    def test_dtm_prevents_the_fig6_runaway(self):
        """With DTM, HPL in the ORIGINAL enclosure completes untripped."""
        cluster = MonteCimoneCluster(
            enclosure_config=EnclosureConfig.original())
        cluster.boot_all()
        dtm = ClusterDTM(cluster.nodes)
        dtm.start(cluster.engine)
        api = SlurmAPI(cluster.slurm)
        job = api.srun("hpl", "bench", 8, duration_s=1800.0,
                       profile=HPL_PROFILE)
        assert job.state is JobState.COMPLETED
        assert cluster.watchdog.tripped_nodes() == []
        # The governor did intervene on the runaway slot.
        assert any(e.node == "mc-node-7" for e in dtm.all_events())
        # Node 7 held below the trip by the control loop.
        assert cluster.nodes["mc-node-7"].cpu_temperature_c() < 107.0

    def test_dtm_cost_is_quantified(self):
        """DTM trades throughput for survival: node 7 runs slower."""
        cluster = MonteCimoneCluster(
            enclosure_config=EnclosureConfig.original())
        cluster.boot_all()
        dtm = ClusterDTM(cluster.nodes)
        dtm.start(cluster.engine)
        api = SlurmAPI(cluster.slurm)
        api.srun("hpl", "bench", 8, duration_s=1800.0, profile=HPL_PROFILE)
        throttled = dtm.governors["mc-node-7"]
        unthrottled = dtm.governors["mc-node-1"]
        assert throttled.events and not unthrottled.events
        node7 = cluster.nodes["mc-node-7"].board.cores.total_instructions()
        node1 = cluster.nodes["mc-node-1"].board.cores.total_instructions()
        assert node7 < 0.95 * node1
