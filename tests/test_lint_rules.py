"""Per-rule tests for simlint: every family has positive and negative cases,
plus suppression-comment handling and the CLI exit-code contract."""

import textwrap
from pathlib import Path

import pytest

from repro.lint import all_rules, get_rule, lint_source
from repro.lint.cli import main as lint_main
from repro.lint.findings import Severity
from repro.lint.runner import PARSE_RULE_ID, lint_paths
from repro.lint.suppress import parse_suppressions

FIXTURES = Path(__file__).parent / "fixtures" / "lint"


def ids(source, **kwargs):
    """Unsuppressed rule ids found in ``source`` (dedented)."""
    findings = lint_source(textwrap.dedent(source), **kwargs)
    return sorted({f.rule_id for f in findings if not f.suppressed})


class TestRegistry:
    def test_catalogue_has_all_four_families(self):
        families = {rule.family for rule in all_rules()}
        assert {"DET", "ENG", "CAL", "UNIT"} <= families

    def test_ids_are_unique_and_prefixed(self):
        rules = all_rules()
        assert len({r.id for r in rules}) == len(rules)
        assert all(r.id.startswith(r.family) for r in rules)

    def test_get_rule_roundtrip(self):
        assert get_rule("DET104").id == "DET104"
        with pytest.raises(KeyError):
            get_rule("NOPE999")


class TestDeterminismRules:
    def test_wall_clock_flagged(self):
        assert "DET101" in ids("""
            import time
            def stamp():
                return time.time()
        """)

    def test_datetime_now_flagged(self):
        assert "DET101" in ids("""
            from datetime import datetime
            def stamp():
                return datetime.now()
        """)

    def test_simulated_clock_clean(self):
        assert ids("""
            def stamp(engine):
                return engine.now
        """) == []

    def test_global_random_flagged(self):
        assert "DET102" in ids("""
            import random
            def draw():
                return random.randint(0, 10)
        """)

    def test_np_global_random_flagged(self):
        assert "DET102" in ids("""
            import numpy as np
            def draw():
                return np.random.normal()
        """)

    def test_seeded_generator_clean(self):
        assert ids("""
            import numpy as np
            def draw(seed):
                rng = np.random.default_rng(seed)
                return rng.normal()
        """) == []

    def test_unseeded_default_rng_flagged(self):
        source = """
            import numpy as np
            def draw():
                return np.random.default_rng().normal()
        """
        assert "DET103" in ids(source)

    def test_unseeded_random_instance_flagged(self):
        assert "DET105" in ids("""
            import random
            def make_rng():
                return random.Random()
        """)

    def test_none_seeded_random_instance_flagged(self):
        assert "DET105" in ids("""
            import random
            def make_rng():
                return random.Random(None)
        """)

    def test_seeded_random_instance_clean(self):
        assert ids("""
            import random
            def make_rng(seed):
                return random.Random(seed)
        """) == []

    def test_bare_random_import_flagged(self):
        assert "DET105" in ids("""
            from random import Random
            def make_rng():
                return Random()
        """)

    def test_hash_for_seed_flagged(self):
        # The exact bug simlint was built to catch (power/traces.py pre-fix).
        assert "DET104" in ids("""
            def seed_for(workload, group):
                return 2022 + hash((workload, group)) % 65536
        """)

    def test_hash_inside_dunder_hash_exempt(self):
        assert ids("""
            class Spec:
                def __hash__(self):
                    return hash(('spec', 1))
        """) == []


class TestEngineRules:
    def test_yield_constant_flagged(self):
        assert "ENG201" in ids("""
            def proc(env):
                yield env.timeout(1.0)
                yield 5
        """)

    def test_bare_yield_flagged(self):
        assert "ENG201" in ids("""
            def proc(env):
                yield env.timeout(1.0)
                yield
        """)

    def test_plain_generator_not_a_process(self):
        # Renderer generators yield strings; they never yield event-factory
        # calls, so the ENG heuristic must leave them alone.
        assert ids("""
            def render_rows(table):
                yield "header"
                for row in table:
                    yield f"{row}"
        """) == []

    def test_event_yields_clean(self):
        assert ids("""
            def proc(env):
                value = yield env.timeout(2.0)
                yield env.all_of([env.timeout(1), env.spawn(child(env))])
                return value
        """) == []

    def test_reentrant_run_flagged(self):
        assert "ENG202" in ids("""
            def proc(engine):
                yield engine.timeout(1.0)
                engine.run()
        """)

    def test_run_outside_process_clean(self):
        assert ids("""
            def drive(engine):
                engine.run(until=10.0)
        """) == []

    def test_time_sleep_flagged(self):
        assert "ENG203" in ids("""
            import time
            def wait():
                time.sleep(1.0)
        """)

    def test_raw_callback_append_flagged(self):
        assert "ENG204" in ids("""
            def attach(event, fn):
                event.callbacks.append(fn)
        """)

    def test_raw_callback_append_on_nested_receiver_flagged(self):
        assert "ENG204" in ids("""
            def chain(self, proc):
                self._target.callbacks.append(proc._resume)
        """)

    def test_raw_callback_append_exempt_inside_kernel(self):
        # The kernel's own wiring is the one place raw appends are legal.
        assert ids("""
            def attach(event, fn):
                event.callbacks.append(fn)
        """, path="src/repro/events/process.py") == []

    def test_other_appends_clean(self):
        # Only the `.callbacks` receiver is the kernel contract; ordinary
        # list appends (including listener lists) stay untouched.
        assert ids("""
            def collect(controller, rows, row):
                rows.append(row)
                controller.on_job_end.append(row)
        """) == []


class TestCalibrationRules:
    def test_duplicated_ddr_peak_flagged(self):
        findings = lint_source("PEAK = 7760e6\n")
        assert [f.rule_id for f in findings] == ["CAL301"]
        assert "peak_bandwidth_bytes_per_s" in findings[0].message

    def test_duplicated_clock_flagged(self):
        assert ids("CLOCK = 1.2e9\n") == ["CAL301"]

    def test_imported_constant_clean(self):
        assert ids("""
            from repro.hardware.specs import DDR_SPEC
            PEAK = DDR_SPEC.peak_bandwidth_bytes_per_s
        """) == []

    def test_undistinctive_values_clean(self):
        # Powers of two/ten and small numbers never anchor.
        assert ids("X = 1024\nY = 1e9\nZ = 64\nW = 0.465\n") == []

    def test_specs_module_itself_exempt(self):
        assert ids("PEAK = 7760e6\n",
                   path="src/repro/hardware/specs.py") == []


class TestUnitRules:
    def test_mixed_addition_flagged(self):
        assert "UNIT401" in ids("""
            def total(power_w, leak_mw):
                return power_w + leak_mw
        """)

    def test_mixed_comparison_flagged(self):
        assert "UNIT401" in ids("""
            def over(budget_s, elapsed_ms):
                return elapsed_ms > budget_s
        """)

    def test_same_unit_clean(self):
        assert ids("""
            def total(a_mw, b_mw):
                return a_mw + b_mw
        """) == []

    def test_different_dimensions_clean(self):
        # power × time is energy; multiplying across dimensions is the norm.
        assert ids("""
            def energy(power_w, dt_s):
                return power_w * dt_s
        """) == []

    def test_direct_assignment_flagged(self):
        assert "UNIT402" in ids("""
            def convert(power_mw):
                power_w = power_mw
                return power_w
        """)

    def test_converted_assignment_clean(self):
        assert ids("""
            def convert(power_mw):
                power_w = power_mw / 1e3
                return power_w
        """) == []

    def test_keyword_argument_flagged(self):
        assert "UNIT402" in ids("""
            def build(make, size_mib):
                return make(size_bytes=size_mib)
        """)

    def test_per_suffix_rates_exempt(self):
        assert ids("""
            def scale(bandwidth_bytes_per_s, window_ms):
                return bandwidth_bytes_per_s, window_ms
        """) == []


class TestSuppression:
    def test_line_suppression(self):
        findings = lint_source(
            "SEED = hash('x')  # simlint: disable=DET104  (stable enough here)\n")
        assert [f.rule_id for f in findings] == ["DET104"]
        assert findings[0].suppressed

    def test_family_suppression(self):
        findings = lint_source("SEED = hash('x')  # simlint: disable=DET\n")
        assert findings[0].suppressed

    def test_file_level_suppression(self):
        source = ("# simlint: disable-file=CAL301\n"
                  "A = 7760e6\n"
                  "B = 1.2e9\n")
        findings = lint_source(source)
        assert len(findings) == 2 and all(f.suppressed for f in findings)

    def test_suppression_is_line_scoped(self):
        source = ("A = hash('x')  # simlint: disable=DET104\n"
                  "B = hash('y')\n")
        findings = lint_source(source)
        assert [f.suppressed for f in findings] == [True, False]

    def test_wrong_rule_id_does_not_suppress(self):
        findings = lint_source("A = hash('x')  # simlint: disable=CAL301\n")
        assert not findings[0].suppressed

    def test_directive_inside_string_ignored(self):
        findings = lint_source(
            'A = hash("# simlint: disable=DET104")\n')
        assert not findings[0].suppressed

    def test_parse_suppressions_grammar(self):
        sup = parse_suppressions(
            "# simlint: disable-file=UNIT\n"
            "x = 1  # simlint: disable=DET101, ENG203\n")
        assert sup.is_suppressed("UNIT401", "UNIT", 99)
        assert sup.is_suppressed("DET101", "DET", 2)
        assert sup.is_suppressed("ENG203", "ENG", 2)
        assert not sup.is_suppressed("DET101", "DET", 3)


class TestRunnerAndCli:
    def test_syntax_error_becomes_parse_finding(self):
        findings = lint_source("def broken(:\n")
        assert [f.rule_id for f in findings] == [PARSE_RULE_ID]
        assert findings[0].severity is Severity.ERROR

    def test_violating_fixture_trips_every_family(self):
        result = lint_paths([FIXTURES / "violating.py"])
        families = {f.rule_id[:3] for f in result.active}
        assert {"DET", "ENG", "CAL", "UNI"} <= families
        assert not result.ok

    def test_clean_fixture_passes(self):
        result = lint_paths([FIXTURES / "clean.py"])
        assert result.ok and result.files_checked == 1

    def test_cli_exit_codes(self, capsys):
        assert lint_main([str(FIXTURES / "violating.py")]) == 1
        assert lint_main([str(FIXTURES / "clean.py")]) == 0
        capsys.readouterr()

    def test_cli_select_and_ignore(self, capsys):
        # Only the UNIT family selected: DET/CAL/ENG findings must vanish.
        assert lint_main(["--select", "DET104",
                          str(FIXTURES / "clean.py")]) == 0
        assert lint_main(["--select", "UNIT",
                          str(FIXTURES / "violating.py")]) == 1
        out = capsys.readouterr().out
        assert "UNIT401" in out and "DET104" not in out

    def test_cli_json_format(self, capsys):
        import json
        assert lint_main(["--format", "json",
                          str(FIXTURES / "violating.py")]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["active"] == len(payload["findings"]) > 0

    def test_cli_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("DET101", "ENG201", "ENG204", "CAL301", "UNIT401"):
            assert rule_id in out

    def test_repro_main_lint_subcommand(self, capsys):
        from repro.__main__ import main as repro_main
        assert repro_main(["lint", str(FIXTURES / "clean.py")]) == 0
        assert repro_main(["lint", str(FIXTURES / "violating.py")]) == 1
        capsys.readouterr()
