"""Tests for the SLURM-style workload manager."""

import pytest

from repro.events import Engine
from repro.slurm.job import Job, JobState
from repro.slurm.partition import NodeAllocState, Partition, SlurmNodeInfo
from repro.slurm.scheduler import SlurmController
from repro.slurm.api import SlurmAPI


def make_controller(n_nodes=4, engine=None):
    engine = engine if engine is not None else Engine()
    controller = SlurmController(engine)
    partition = Partition(name="compute", max_time_s=1e6, default=True)
    for i in range(n_nodes):
        partition.add_node(SlurmNodeInfo(hostname=f"n{i + 1}"))
    controller.add_partition(partition)
    return controller


class TestJob:
    def test_validation(self):
        with pytest.raises(ValueError):
            Job(job_id=1, name="j", user="u", n_nodes=0, duration_s=1.0)
        with pytest.raises(ValueError):
            Job(job_id=1, name="j", user="u", n_nodes=1, duration_s=-1.0)

    def test_terminal_states(self):
        assert not JobState.PENDING.is_terminal
        assert not JobState.RUNNING.is_terminal
        assert JobState.COMPLETED.is_terminal
        assert JobState.NODE_FAIL.is_terminal

    def test_squeue_row_format(self):
        job = Job(job_id=7, name="hpl", user="alice", n_nodes=2,
                  duration_s=10.0)
        row = job.squeue_row()
        assert "hpl" in row and "alice" in row and "PD" in row


class TestPartition:
    def test_duplicate_node_rejected(self):
        partition = Partition(name="p")
        partition.add_node(SlurmNodeInfo(hostname="n1"))
        with pytest.raises(ValueError):
            partition.add_node(SlurmNodeInfo(hostname="n1"))

    def test_idle_nodes_sorted(self):
        partition = Partition(name="p")
        for name in ("n3", "n1", "n2"):
            partition.add_node(SlurmNodeInfo(hostname=name))
        assert [n.hostname for n in partition.idle_nodes()] == ["n1", "n2", "n3"]

    def test_node_state_machine(self):
        info = SlurmNodeInfo(hostname="n1")
        info.allocate(job_id=1)
        assert info.state is NodeAllocState.ALLOCATED
        with pytest.raises(RuntimeError):
            info.allocate(job_id=2)
        info.release()
        assert info.schedulable
        info.mark_down("thermal trip")
        info.release()  # release of a down node keeps it down
        assert info.state is NodeAllocState.DOWN
        info.resume()
        assert info.schedulable


class TestScheduling:
    def test_immediate_start_when_nodes_free(self):
        controller = make_controller()
        job = controller.submit("j", "u", n_nodes=2, duration_s=5.0)
        assert job.state is JobState.RUNNING
        assert len(job.allocated_nodes) == 2

    def test_fifo_queueing(self):
        controller = make_controller(n_nodes=2)
        first = controller.submit("a", "u", 2, duration_s=10.0)
        second = controller.submit("b", "u", 2, duration_s=10.0)
        assert first.state is JobState.RUNNING
        assert second.state is JobState.PENDING
        controller.engine.run()
        assert second.state is JobState.COMPLETED
        assert second.start_time_s >= first.end_time_s

    def test_job_completes_after_duration(self):
        controller = make_controller()
        job = controller.submit("j", "u", 1, duration_s=7.0)
        controller.engine.run()
        assert job.state is JobState.COMPLETED
        assert job.elapsed_s == pytest.approx(7.0)

    def test_oversized_job_rejected(self):
        controller = make_controller(n_nodes=2)
        with pytest.raises(ValueError):
            controller.submit("big", "u", 3, duration_s=1.0)

    def test_time_limit_enforced(self):
        controller = make_controller()
        job = controller.submit("j", "u", 1, duration_s=100.0,
                                time_limit_s=10.0)
        controller.engine.run()
        assert job.state is JobState.TIMEOUT
        assert job.elapsed_s == pytest.approx(10.0)

    def test_over_partition_limit_rejected(self):
        controller = make_controller()
        with pytest.raises(ValueError):
            controller.submit("j", "u", 1, duration_s=1.0, time_limit_s=1e7)

    def test_backfill_small_job_jumps_queue(self):
        controller = make_controller(n_nodes=4)
        controller.submit("big-running", "u", 3, duration_s=100.0,
                          time_limit_s=100.0)
        head = controller.submit("big-waiting", "u", 4, duration_s=10.0,
                                 time_limit_s=50.0)
        filler = controller.submit("filler", "u", 1, duration_s=20.0,
                                   time_limit_s=30.0)
        # head needs all 4 nodes => waits for big-running (ends ≤ t=100);
        # filler fits on the free node and ends by t=30 < 100: backfilled.
        assert head.state is JobState.PENDING
        assert filler.state is JobState.RUNNING
        controller.engine.run()
        assert head.state is JobState.COMPLETED

    def test_backfill_never_delays_head_job(self):
        controller = make_controller(n_nodes=4)
        controller.submit("running", "u", 3, duration_s=10.0,
                          time_limit_s=10.0)
        head = controller.submit("head", "u", 4, duration_s=5.0,
                                 time_limit_s=50.0)
        blocker = controller.submit("long-filler", "u", 1, duration_s=100.0,
                                    time_limit_s=100.0)
        # long-filler would hold its node past the head job's reservation
        # (t=10), so conservative backfill must NOT start it.
        assert blocker.state is JobState.PENDING
        controller.engine.run()
        assert head.start_time_s == pytest.approx(10.0)

    def test_cancel_pending_job(self):
        controller = make_controller(n_nodes=1)
        controller.submit("a", "u", 1, duration_s=10.0)
        queued = controller.submit("b", "u", 1, duration_s=10.0)
        controller.cancel(queued.job_id)
        assert queued.state is JobState.CANCELLED

    def test_cancel_running_job(self):
        controller = make_controller()
        job = controller.submit("a", "u", 1, duration_s=100.0)
        controller.engine.run(until=5.0)
        controller.cancel(job.job_id)
        controller.engine.run()
        assert job.state is JobState.CANCELLED
        assert job.end_time_s < 100.0

    def test_completion_callback_fires(self):
        controller = make_controller()
        finished = []
        controller.on_job_end.append(lambda job: finished.append(job.name))
        controller.submit("j", "u", 1, duration_s=3.0)
        controller.engine.run()
        assert finished == ["j"]

    def test_nodes_released_after_completion(self):
        controller = make_controller(n_nodes=2)
        controller.submit("j", "u", 2, duration_s=3.0)
        controller.engine.run()
        assert controller.partitions["compute"].n_idle() == 2


class TestQueries:
    def test_squeue_shows_active_jobs_only(self):
        controller = make_controller()
        controller.submit("visible", "u", 1, duration_s=50.0)
        done = controller.submit("done", "u", 1, duration_s=1.0)
        controller.engine.run(until=10.0)
        text = "\n".join(controller.squeue())
        assert "visible" in text
        assert "done" not in text

    def test_sinfo_groups_by_state(self):
        controller = make_controller(n_nodes=4)
        controller.submit("j", "u", 2, duration_s=100.0)
        text = "\n".join(controller.sinfo())
        assert "alloc" in text and "idle" in text


class TestSlurmAPI:
    def test_srun_blocks_until_done(self):
        controller = make_controller()
        api = SlurmAPI(controller)
        job = api.srun("j", "u", nodes=1, duration_s=12.0)
        assert job.state is JobState.COMPLETED
        assert api.engine.now >= 12.0

    def test_sbatch_returns_job_id(self):
        api = SlurmAPI(make_controller())
        job_id = api.sbatch("j", "u", nodes=1, duration_s=5.0)
        assert job_id == 1

    def test_sacct_filters_by_user(self):
        api = SlurmAPI(make_controller())
        api.srun("a", "alice", nodes=1, duration_s=1.0)
        api.srun("b", "bob", nodes=1, duration_s=1.0)
        assert [j.name for j in api.sacct(user="alice")] == ["a"]

    def test_wait_all(self):
        api = SlurmAPI(make_controller())
        api.sbatch("a", "u", nodes=1, duration_s=5.0)
        api.sbatch("b", "u", nodes=1, duration_s=7.0)
        api.wait_all()
        assert all(j.state is JobState.COMPLETED
                   for j in api.controller.jobs.values())
