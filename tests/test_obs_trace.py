"""Tests for the observability layer: spans, metrics, exporters, CLI."""

import json

import pytest

from repro import __main__ as cli
from repro.events.engine import Engine, UnconsumedFailureError
from repro.obs import (NULL_SPAN, MetricsRegistry, Tracer, attach_tracer,
                       chrome_trace_json, detach_tracer, span_of,
                       span_tree_text, to_chrome_trace, validate_chrome_trace)
from repro.obs.experiments import trace_boot_power, trace_fault_recovery


class TestMetrics:
    def test_counter_increments(self):
        reg = MetricsRegistry()
        c = reg.counter("x")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("x").inc(-1)

    def test_gauge_tracks_watermark(self):
        g = MetricsRegistry().gauge("depth")
        g.set(3.0)
        g.set(7.0)
        g.set(2.0)
        assert g.value == 2.0
        assert g.max_value == 7.0

    def test_get_or_create_shares_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("b") is reg.gauge("b")

    def test_kind_collision_rejected(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(ValueError):
            reg.gauge("a")
        with pytest.raises(ValueError):
            reg.gauge_callback("a", lambda: 0.0)

    def test_callback_gauge_reads_through(self):
        reg = MetricsRegistry()
        state = {"n": 0}
        reg.gauge_callback("live", lambda: state["n"])
        state["n"] = 9
        assert reg.snapshot()["live"] == 9.0

    def test_snapshot_sorted_with_gauge_max(self):
        reg = MetricsRegistry()
        reg.counter("z").inc(2)
        reg.gauge("a").set(1.0)
        snap = reg.snapshot()
        assert list(snap) == sorted(snap)
        assert snap["a.max"] == 1.0
        assert snap["z"] == 2.0

    def test_render_lists_every_metric(self):
        reg = MetricsRegistry()
        assert reg.render() == "(no metrics)"
        reg.counter("hits").inc(3)
        assert "hits" in reg.render()


class TestSpans:
    def test_context_manager_closes_span(self):
        eng = Engine()
        tracer = attach_tracer(eng)
        with tracer.span("phase", "test", node="n1") as span:
            eng.call_at(5.0, lambda: None)
            eng.run()
        assert span.finished
        assert span.start_s == 0.0 and span.end_s == 5.0
        assert span.status == "ok"
        assert span.attributes["node"] == "n1"

    def test_exception_marks_span_failed(self):
        tracer = attach_tracer(Engine())
        with pytest.raises(RuntimeError):
            with tracer.span("doomed") as span:
                raise RuntimeError("boom")
        assert span.status == "failed"

    def test_end_is_idempotent(self):
        eng = Engine()
        tracer = attach_tracer(eng)
        span = tracer.begin("once")
        span.end()
        eng.call_at(3.0, lambda: None)
        eng.run()
        span.end(status="failed")
        assert span.end_s == 0.0 and span.status == "ok"

    def test_explicit_parent_overrides_stack(self):
        tracer = attach_tracer(Engine())
        root = tracer.begin("root")
        child = tracer.begin("child", parent=root)
        assert child.parent_id == root.span_id

    def test_record_rejects_backwards_interval(self):
        tracer = attach_tracer(Engine())
        with pytest.raises(ValueError):
            tracer.record("bad", 5.0, 4.0)

    def test_record_adds_completed_span(self):
        tracer = attach_tracer(Engine())
        span = tracer.record("mpi.bcast", 1.0, 2.5, category="mpi")
        assert span.finished and span.duration_s == 1.5

    def test_open_span_duration_clamps_to_now(self):
        eng = Engine()
        tracer = attach_tracer(eng)
        span = tracer.begin("daemon")
        eng.call_at(10.0, lambda: None)
        eng.run()
        assert not span.finished
        assert span.duration_s == 10.0


class TestKernelHooks:
    def test_process_gets_span_with_lifecycle_times(self):
        eng = Engine()
        tracer = attach_tracer(eng)

        def worker(env):
            yield env.timeout(4.0)

        proc = eng.spawn(worker(eng), name="w")
        eng.run()
        span = proc.obs_span
        assert span.name == "process:w"
        assert span.category == "process"
        assert (span.start_s, span.end_s, span.status) == (0.0, 4.0, "ok")

    def test_spans_opened_inside_process_are_parented(self):
        eng = Engine()
        tracer = attach_tracer(eng)

        def worker(env):
            with span_of(env, "inner", "test"):
                yield env.timeout(1.0)

        proc = eng.spawn(worker(eng), name="w")
        eng.run()
        (inner,) = tracer.find("inner")
        assert inner.parent_id == proc.obs_span.span_id

    def test_failing_process_span_marked_failed(self):
        eng = Engine()
        attach_tracer(eng)

        def crasher(env):
            yield env.timeout(1.0)
            raise ValueError("injected")

        proc = eng.spawn(crasher(eng), name="crash")
        with pytest.raises(UnconsumedFailureError):
            eng.run()
        assert proc.obs_span.status == "failed"
        assert proc.obs_span.finished

    def test_late_attached_tracer_opens_span_on_resume(self):
        eng = Engine()

        def worker(env):
            yield env.timeout(2.0)
            yield env.timeout(2.0)

        proc = eng.spawn(worker(eng), name="w")
        eng.run(until=1.0)
        assert proc.obs_span is None
        attach_tracer(eng)
        eng.run()
        assert proc.obs_span is not None
        assert proc.obs_span.finished

    def test_engine_counters_tick(self):
        eng = Engine()
        tracer = attach_tracer(eng)

        def worker(env):
            yield env.timeout(1.0)

        eng.spawn(worker(eng), name="w")
        eng.run()
        snap = tracer.metrics.snapshot()
        assert snap["engine.events_processed"] >= 2
        assert snap["engine.events_scheduled"] >= 2
        assert snap["engine.processes_spawned"] == 1
        assert snap["engine.heap_depth.max"] >= 1

    def test_defused_failure_counted(self):
        eng = Engine()
        tracer = attach_tracer(eng)

        def crasher(env):
            yield env.timeout(1.0)
            raise ValueError("injected")

        proc = eng.spawn(crasher(eng), name="crash")
        with pytest.raises(UnconsumedFailureError):
            eng.run()
        proc.defuse()
        snap = tracer.metrics.snapshot()
        assert snap["engine.failures_ledgered"] == 1
        assert snap["engine.failures_defused"] == 1

    def test_untraced_engine_costs_nothing_structurally(self):
        eng = Engine()

        def worker(env):
            with span_of(env, "inner"):
                yield env.timeout(1.0)

        proc = eng.spawn(worker(eng), name="w")
        eng.run()
        assert eng.tracer is None
        assert proc.obs_span is None

    def test_span_of_returns_shared_null_span_when_disabled(self):
        eng = Engine()
        assert span_of(eng, "x") is NULL_SPAN
        assert NULL_SPAN.set(a=1) is NULL_SPAN
        with NULL_SPAN:
            pass

    def test_detach_reverts_to_null(self):
        eng = Engine()
        attach_tracer(eng)
        detach_tracer(eng)
        assert span_of(eng, "x") is NULL_SPAN


class TestTreeViews:
    def _tracer_with_tree(self):
        eng = Engine()
        tracer = attach_tracer(eng)
        root = tracer.begin("root")
        tracer.begin("a", parent=root).end()
        tracer.begin("b", parent=root).end()
        root.end()
        return tracer

    def test_walk_is_depth_first(self):
        tracer = self._tracer_with_tree()
        assert [(d, s.name) for d, s in tracer.walk()] == [
            (0, "root"), (1, "a"), (1, "b")]

    def test_children_sorted_by_start_then_id(self):
        tracer = self._tracer_with_tree()
        root = tracer.find("root")[0]
        assert [s.name for s in tracer.children_of(root)] == ["a", "b"]


class TestExport:
    def _traced_run(self):
        eng = Engine()
        tracer = attach_tracer(eng)

        def worker(env):
            with span_of(env, "phase.one", "boot"):
                yield env.timeout(2.0)
            with span_of(env, "phase.two", "boot"):
                yield env.timeout(3.0)

        eng.spawn(worker(eng), name="w")
        eng.run()
        return tracer

    def test_chrome_trace_is_schema_valid(self):
        document = to_chrome_trace(self._traced_run())
        assert validate_chrome_trace(document) == []

    def test_chrome_trace_round_trips_through_json(self):
        text = chrome_trace_json(self._traced_run())
        assert validate_chrome_trace(json.loads(text)) == []

    def test_phases_land_on_their_process_track(self):
        tracer = self._traced_run()
        document = to_chrome_trace(tracer)
        process_span = tracer.find("process:w")[0]
        phases = [e for e in document["traceEvents"]
                  if e.get("ph") == "X" and e["name"].startswith("phase.")]
        assert phases and all(e["tid"] == process_span.span_id
                              for e in phases)

    def test_track_metadata_names_the_process(self):
        document = to_chrome_trace(self._traced_run())
        names = [e["args"]["name"] for e in document["traceEvents"]
                 if e.get("ph") == "M" and e["name"] == "thread_name"]
        assert "process:w" in names

    def test_timestamps_are_microseconds(self):
        document = to_chrome_trace(self._traced_run())
        phase = next(e for e in document["traceEvents"]
                     if e["name"] == "phase.two")
        assert phase["ts"] == pytest.approx(2.0e6)
        assert phase["dur"] == pytest.approx(3.0e6)

    def test_span_tree_text_shows_nesting_and_metrics(self):
        text = span_tree_text(self._traced_run())
        lines = text.splitlines()
        proc_line = next(l for l in lines if "process:w" in l)
        phase_line = next(l for l in lines if "phase.one" in l)
        indent = lambda l: len(l) - len(l.lstrip())
        assert indent(phase_line) > indent(proc_line)
        assert "engine.events_processed" in text

    def test_validator_flags_malformed_documents(self):
        assert validate_chrome_trace([]) != []
        assert validate_chrome_trace({"traceEvents": 3}) != []
        assert validate_chrome_trace(
            {"traceEvents": [{"ph": "X"}]}) != []
        assert validate_chrome_trace(
            {"traceEvents": [{"name": "a", "ph": "X", "pid": 1, "tid": 0,
                              "ts": 1.0, "dur": -2.0}]}) != []
        backwards = {"traceEvents": [
            {"name": "a", "ph": "X", "pid": 1, "tid": 0, "ts": 5.0, "dur": 0},
            {"name": "b", "ph": "X", "pid": 1, "tid": 0, "ts": 1.0, "dur": 0},
        ]}
        assert any("backwards" in p for p in validate_chrome_trace(backwards))

    def test_validator_accepts_distinct_tracks(self):
        ok = {"traceEvents": [
            {"name": "a", "ph": "X", "pid": 1, "tid": 1, "ts": 5.0, "dur": 0},
            {"name": "b", "ph": "X", "pid": 1, "tid": 2, "ts": 1.0, "dur": 0},
        ]}
        assert validate_chrome_trace(ok) == []


@pytest.fixture(scope="module")
def boot_power_tracer():
    return trace_boot_power(job_duration_s=30.0)


class TestTracedExperiments:
    def test_boot_power_covers_boot_phases(self, boot_power_tracer):
        r1 = boot_power_tracer.find("boot.R1")
        r2 = boot_power_tracer.find("boot.R2")
        assert len(r1) == 8 and len(r2) == 8
        nodes = {s.attributes["node"] for s in r1}
        assert len(nodes) == 8

    def test_boot_power_covers_slurm_attempts(self, boot_power_tracer):
        (job,) = boot_power_tracer.find("slurm.job:")
        (attempt,) = boot_power_tracer.find("slurm.attempt:")
        assert attempt.parent_id == job.span_id
        assert attempt.attributes["outcome"] == "CD"
        assert job.status == "ok"

    def test_boot_power_covers_mpi_collectives(self, boot_power_tracer):
        collectives = boot_power_tracer.find("mpi.")
        assert collectives
        assert all(s.finished for s in collectives)

    def test_boot_power_trace_is_schema_valid(self, boot_power_tracer):
        assert validate_chrome_trace(to_chrome_trace(boot_power_tracer)) == []

    def test_boot_power_trace_is_deterministic(self, boot_power_tracer):
        again = trace_boot_power(job_duration_s=30.0)
        assert chrome_trace_json(again) == chrome_trace_json(boot_power_tracer)

    def test_boot_power_metrics_snapshot(self, boot_power_tracer):
        snap = boot_power_tracer.metrics.snapshot()
        assert snap["engine.events_processed"] > 0
        assert snap["broker.messages_published"] > 0
        assert snap["broker.match_ops"] > 0
        assert snap["slurm.jobs_finished"] == 1

    def test_fault_recovery_shows_requeue(self):
        tracer = trace_fault_recovery(job_duration_s=60.0, trip_at_s=20.0)
        attempts = sorted(tracer.find("slurm.attempt:"),
                          key=lambda s: s.start_s)
        assert len(attempts) == 2
        assert attempts[0].status == "failed"
        assert attempts[1].attributes["outcome"] == "CD"
        assert tracer.metrics.snapshot()["slurm.requeues"] == 1
        assert validate_chrome_trace(to_chrome_trace(tracer)) == []


class TestCLI:
    def test_trace_subcommand_writes_valid_json(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        rc = cli.main(["trace", "boot-power", "--format", "chrome",
                       "--output", str(out), "--check"])
        assert rc == 0
        assert validate_chrome_trace(json.loads(out.read_text())) == []
        assert "schema: OK" in capsys.readouterr().out

    def test_trace_tree_output(self, capsys):
        rc = cli.main(["trace", "boot-power", "--format", "tree"])
        assert rc == 0
        text = capsys.readouterr().out
        assert "boot.R1" in text and "slurm.attempt:" in text

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            cli.main(["trace", "nonsense"])
