"""Tests for NFS, LDAP and environment modules."""

import pytest

from repro.cluster.blade import PSU, RV007Blade
from repro.cluster.node import ComputeNode
from repro.cluster.services.ldap import AuthenticationError, LDAPServer
from repro.cluster.services.modules import (
    EnvironmentModules,
    Module,
    ModuleConflictError,
)
from repro.cluster.services.nfs import NFSMount, NFSServer


class TestNFSServer:
    def _server(self):
        server = NFSServer()
        server.export("/home")
        return server

    def test_export_creates_root(self):
        server = self._server()
        assert server.exists("/home")
        assert server.is_exported("/home/alice")

    def test_write_and_read(self):
        server = self._server()
        server.mkdir("/home/alice")
        server.write("/home/alice/data.txt", b"hello")
        assert server.read("/home/alice/data.txt") == b"hello"

    def test_write_needs_parent_directory(self):
        server = self._server()
        with pytest.raises(FileNotFoundError):
            server.write("/home/ghost/file", b"x")

    def test_mkdir_parents(self):
        server = self._server()
        server.mkdir("/home/a/b/c", parents=True)
        assert server.exists("/home/a/b/c")
        with pytest.raises(FileNotFoundError):
            server.mkdir("/home/x/y/z")

    def test_listdir(self):
        server = self._server()
        server.mkdir("/home/alice")
        server.mkdir("/home/bob")
        server.write("/home/alice/f", b"")
        assert server.listdir("/home") == ["alice", "bob"]
        assert server.listdir("/home/alice") == ["f"]

    def test_relative_paths_rejected(self):
        with pytest.raises(ValueError):
            self._server().write("relative/path", b"")

    def test_traffic_accounting(self):
        server = self._server()
        server.write("/home/f", b"abcd")
        server.read("/home/f")
        assert server.bytes_written == 4
        assert server.bytes_served == 4


class TestNFSMount:
    def test_mount_translates_paths(self):
        server = NFSServer()
        server.export("/srv/home")
        server.write("/srv/home/readme", b"data")
        mount = NFSMount(server=server, export_path="/srv/home",
                         mountpoint="/home")
        assert mount.read("/home/readme") == b"data"
        mount.write("/home/new", b"x")
        assert server.read("/srv/home/new") == b"x"

    def test_unexported_path_refused(self):
        server = NFSServer()
        with pytest.raises(PermissionError):
            NFSMount(server=server, export_path="/secret", mountpoint="/mnt")

    def test_path_outside_mountpoint_rejected(self):
        server = NFSServer()
        server.export("/srv")
        mount = NFSMount(server=server, export_path="/srv", mountpoint="/mnt")
        with pytest.raises(ValueError):
            mount.read("/etc/passwd")


class TestLDAP:
    def _server(self):
        server = LDAPServer()
        server.add_group("hpc-users")
        server.add_user("alice", "s3cret", "hpc-users")
        return server

    def test_bind_success_and_failure(self):
        server = self._server()
        user = server.bind("alice", "s3cret")
        assert user.uid == "alice"
        with pytest.raises(AuthenticationError):
            server.bind("alice", "wrong")
        with pytest.raises(AuthenticationError):
            server.bind("ghost", "x")

    def test_uid_numbers_sequential(self):
        server = self._server()
        bob = server.add_user("bob", "pw", "hpc-users")
        assert bob.uid_number == server.get_user("alice").uid_number + 1

    def test_duplicate_user_rejected(self):
        server = self._server()
        with pytest.raises(ValueError):
            server.add_user("alice", "pw", "hpc-users")

    def test_unknown_group_rejected(self):
        with pytest.raises(KeyError):
            self._server().add_user("bob", "pw", "nonexistent")

    def test_lookup_by_number(self):
        server = self._server()
        alice = server.get_user("alice")
        assert server.get_user_by_number(alice.uid_number).uid == "alice"

    def test_group_membership(self):
        server = self._server()
        server.add_user("bob", "pw", "hpc-users")
        assert server.users_in_group("hpc-users") == ["alice", "bob"]

    def test_dn_format(self):
        server = self._server()
        dn = server.get_user("alice").dn(server.base_dn)
        assert dn == "uid=alice,ou=People,dc=montecimone,dc=cineca,dc=it"

    def test_prefix_search(self):
        server = self._server()
        server.add_user("albert", "pw", "hpc-users")
        assert [u.uid for u in server.search("al")] == ["albert", "alice"]


class TestEnvironmentModules:
    def _modules(self):
        modules = EnvironmentModules()
        modules.register(Module(name="gcc", version="10.3.0",
                                prefix="/opt/spack/gcc-10.3.0"))
        modules.register(Module(name="gcc", version="12.1.0",
                                prefix="/opt/spack/gcc-12.1.0"))
        modules.register(Module(name="hpl", version="2.3",
                                prefix="/opt/spack/hpl-2.3"))
        return modules

    def test_avail_lists_and_filters(self):
        modules = self._modules()
        assert modules.avail() == ["gcc/10.3.0", "gcc/12.1.0", "hpl/2.3"]
        assert modules.avail("gcc") == ["gcc/10.3.0", "gcc/12.1.0"]

    def test_load_prepends_path(self):
        modules = self._modules()
        modules.load("gcc/10.3.0")
        assert modules.environment["PATH"].startswith(
            "/opt/spack/gcc-10.3.0/bin:")

    def test_version_conflict(self):
        modules = self._modules()
        modules.load("gcc/10.3.0")
        with pytest.raises(ModuleConflictError):
            modules.load("gcc/12.1.0")

    def test_unload_removes_env_edits(self):
        modules = self._modules()
        modules.load("hpl/2.3")
        modules.unload("hpl/2.3")
        assert "/opt/spack/hpl-2.3/bin" not in modules.environment["PATH"]
        assert modules.list_loaded() == []

    def test_unknown_module_raises(self):
        with pytest.raises(KeyError):
            self._modules().load("fftw/3.3.10")

    def test_reload_same_version_is_idempotent(self):
        modules = self._modules()
        modules.load("gcc/10.3.0")
        modules.load("gcc/10.3.0")
        assert modules.environment["PATH"].count(
            "/opt/spack/gcc-10.3.0/bin") == 1


class TestBlade:
    def _blade(self):
        return RV007Blade(blade_id=0, nodes=(
            ComputeNode(hostname="a"), ComputeNode(hostname="b")))

    def test_exactly_two_boards(self):
        with pytest.raises(ValueError):
            RV007Blade(blade_id=0, nodes=(ComputeNode(hostname="a"),))

    def test_individual_power_on(self):
        blade = self._blade()
        blade.power_on_node(0)
        assert blade.psus[0].on and not blade.psus[1].on
        assert blade.nodes[0].total_power_w() > 0
        assert blade.nodes[1].total_power_w() == 0

    def test_psu_efficiency_and_waste_heat(self):
        psu = PSU()
        psu.switch_on()
        assert psu.input_power_w(88.0) == pytest.approx(100.0)
        assert psu.waste_heat_w(88.0) == pytest.approx(12.0)

    def test_psu_rating_enforced(self):
        psu = PSU()
        psu.switch_on()
        with pytest.raises(ValueError):
            psu.input_power_w(251.0)

    def test_wall_power_exceeds_dc_power(self):
        blade = self._blade()
        blade.power_on_node(0)
        blade.power_on_node(1)
        assert blade.total_wall_power_w() > blade.total_dc_power_w() > 0
