"""End-to-end chaos campaigns: invariants, determinism, CLI contract.

The acceptance criteria of the chaos harness: every canned scenario
passes the recovery-invariant checker, identical seeds produce
byte-identical fault/recovery logs, the ExaMon outage window is covered
by backfilled samples, and ``python -m repro chaos <scenario> --check``
exits 0 (1 on a violated invariant).
"""

import pytest

from repro.__main__ import main as repro_main
from repro.chaos.check import backfill_coverage, run_checks, verify_recovery
from repro.chaos.faults import ChaosLog
from repro.chaos.scenarios import SCENARIOS, run_scenario
from repro.examon.tsdb import TimeSeriesDB


@pytest.fixture(scope="module")
def results():
    """Each scenario once, shared across the assertions below."""
    return {name: run_scenario(name, seed=0) for name in SCENARIOS}


class TestInvariants:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_scenario_passes_checker(self, results, name):
        assert run_checks(results[name]) == []

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_every_fault_span_has_recovery(self, results, name):
        result = results[name]
        faults = [s for s in result.tracer.spans
                  if s.category == "chaos.fault"]
        assert faults, "campaign injected nothing"
        recoveries = [s for s in result.tracer.spans
                      if s.category == "chaos.recovery"]
        for fault in faults:
            key = (fault.attributes["kind"], fault.attributes["target"])
            assert any((r.attributes["kind"], r.attributes["target"]) == key
                       and r.end_s >= fault.start_s for r in recoveries)

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_failure_ledger_is_clean(self, results, name):
        assert results[name].engine.unconsumed_failures == []

    def test_examon_outage_backfill_covers_windows(self, results):
        result = results["examon-outage"]
        spec = result.extras["backfill"]
        assert spec["topics"], "no pmu series stored for the checked node"
        assert backfill_coverage(**spec) == []
        assert result.extras["samples_backfilled"] > 0

    def test_link_flap_actually_retried(self, results):
        assert results["link-flap"].extras["retries"] > 0

    def test_service_outage_replayed_the_queue(self, results):
        assert results["service-outage"].extras["job_id"] is not None


class TestDeterminism:
    def test_same_seed_byte_identical_logs(self):
        first = run_scenario("link-flap", seed=3)
        second = run_scenario("link-flap", seed=3)
        assert first.log.dumps() == second.log.dumps()
        assert first.log.dumps()  # non-empty

    def test_different_seed_different_campaign(self):
        a = run_scenario("link-flap", seed=1)
        b = run_scenario("link-flap", seed=2)
        assert a.log.dumps() != b.log.dumps()

    def test_sensor_scenario_deterministic(self):
        a = run_scenario("sensor-dropout", seed=11)
        b = run_scenario("sensor-dropout", seed=11)
        assert a.log.dumps() == b.log.dumps()


class TestChecker:
    def test_unrecovered_fault_is_flagged(self):
        result = run_scenario("link-flap", seed=0)
        # Forge a fault span nobody recovered from.
        result.tracer.record("fault:link-down:ghost", 1.0, 2.0,
                             category="chaos.fault", kind="link-down",
                             target="ghost-link")
        problems = verify_recovery(result.tracer, result.engine, result.log)
        assert any("ghost-link" in p for p in problems)

    def test_unrestored_injection_is_flagged(self):
        log = ChaosLog()
        log.add(1.0, "inject", "broker-outage", "mc-master")
        result = run_scenario("sensor-dropout", seed=0)
        problems = verify_recovery(result.tracer, result.engine, log)
        assert any("never restored" in p for p in problems)

    def test_backfill_gap_is_flagged(self):
        db = TimeSeriesDB()
        db.insert("topic/a", 0.0, 1.0)
        db.insert("topic/a", 10.0, 1.0)  # 10 s hole
        problems = backfill_coverage(db, ["topic/a"], [(0.0, 10.0)],
                                     period_s=1.0)
        assert problems and "gap" in problems[0]

    def test_covered_window_is_clean(self):
        db = TimeSeriesDB()
        for i in range(11):
            db.insert("topic/a", float(i), 1.0)
        assert backfill_coverage(db, ["topic/a"], [(0.0, 10.0)],
                                 period_s=1.0) == []


class TestCLI:
    def test_chaos_check_exits_zero(self, capsys):
        assert repro_main(["chaos", "sensor-dropout", "--check"]) == 0
        out = capsys.readouterr().out
        assert "inject sensor-dropout" in out
        assert "recovery invariants: OK" in out

    def test_chaos_without_check_prints_log(self, capsys):
        assert repro_main(["chaos", "link-flap", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "inject link-down" in out
        assert "recovery invariants" not in out

    def test_unknown_scenario_rejected(self):
        with pytest.raises(SystemExit):
            repro_main(["chaos", "no-such-scenario"])
