"""Tests for links, topology, the MPI cost model and the IB fabric."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.infiniband import InfinibandFabric
from repro.network.link import Link
from repro.network.mpi import MPICostModel
from repro.network.topology import ClusterTopology, Switch


class TestLink:
    def test_transfer_time_formula(self):
        link = Link("l", bandwidth_bytes_per_s=100e6, latency_s=1e-4)
        assert link.transfer_time(100_000_000) == pytest.approx(1.0 + 1e-4)

    def test_contention_divides_bandwidth(self):
        link = Link("l", bandwidth_bytes_per_s=100e6, latency_s=0.0)
        assert link.transfer_time(1_000_000, concurrent_flows=4) == \
            pytest.approx(4 * link.transfer_time(1_000_000))

    def test_validation(self):
        with pytest.raises(ValueError):
            Link("l", bandwidth_bytes_per_s=0)
        with pytest.raises(ValueError):
            Link("l", latency_s=-1)
        with pytest.raises(ValueError):
            Link("l").transfer_time(-1)

    def test_accounting(self):
        link = Link("l")
        link.account(500)
        link.account(500)
        assert link.bytes_carried == 1000


class TestTopology:
    def _topology(self, n=8):
        return ClusterTopology([f"n{i}" for i in range(n)])

    def test_port_limit(self):
        with pytest.raises(ValueError):
            ClusterTopology([f"n{i}" for i in range(99)])

    def test_point_to_point_accounts_both_links(self):
        topology = self._topology(2)
        topology.point_to_point_time("n0", "n1", 1000)
        assert topology.links["n0"].bytes_carried == 1000
        assert topology.links["n1"].bytes_carried == 1000

    def test_self_path_rejected(self):
        with pytest.raises(ValueError):
            self._topology().path("n0", "n0")

    def test_bisection_bandwidth(self):
        topology = self._topology(8)
        assert topology.bisection_bandwidth() == pytest.approx(4 * 117e6)

    def test_p2p_time_includes_switch_latency(self):
        topology = ClusterTopology(["a", "b"], link_latency_s=1e-4,
                                   switch=Switch(port_to_port_latency_s=1e-3))
        dt = topology.point_to_point_time("a", "b", 0)
        assert dt == pytest.approx(2e-4 + 1e-3)


class TestMPICostModel:
    MODEL = MPICostModel(ClusterTopology([f"n{i}" for i in range(8)]))

    def test_broadcast_zero_for_single_rank(self):
        assert self.MODEL.broadcast(1_000_000, 1) == 0.0

    def test_broadcast_scales_log2(self):
        t2 = self.MODEL.broadcast(1_000_000, 2)
        t8 = self.MODEL.broadcast(1_000_000, 8)
        assert t8 == pytest.approx(3 * t2)

    def test_allreduce_twice_broadcast_rounds(self):
        assert self.MODEL.allreduce(1_000_000, 8) == \
            pytest.approx(2 * self.MODEL.broadcast(1_000_000, 8))

    def test_ring_exchange_spreads_volume(self):
        # Ring over P ranks moves (P-1)/P of the volume per endpoint.
        dt = self.MODEL.ring_exchange(8_000_000, 8)
        latency, bandwidth = self.MODEL._link_params()
        expected = 7 * (latency + 1_000_000 / bandwidth)
        assert dt == pytest.approx(expected)

    def test_software_overhead_dominates_small_messages(self):
        small = self.MODEL.point_to_point(8)
        assert small > self.MODEL.software_overhead_s

    @given(size=st.integers(min_value=0, max_value=10 ** 9),
           ranks=st.integers(min_value=2, max_value=64))
    @settings(max_examples=50, deadline=None)
    def test_collectives_monotone_in_size(self, size, ranks):
        """Property: larger payloads never complete faster."""
        assert (self.MODEL.broadcast(size + 1024, ranks)
                >= self.MODEL.broadcast(size, ranks))


class TestInfinibandFabric:
    def test_paper_status_snapshot(self):
        fabric = InfinibandFabric()
        fabric.bring_up()
        status = fabric.status()
        # §III, all five claims.
        assert status.device_recognised
        assert status.driver_loaded
        assert status.ofed_mounted
        assert status.board_to_board_ping
        assert status.board_to_server_ping
        assert not status.rdma_functional

    def test_status_before_bringup(self):
        status = InfinibandFabric().status()
        assert status.device_recognised
        assert not status.board_to_board_ping

    def test_two_nodes_carry_hcas(self):
        fabric = InfinibandFabric()
        assert set(fabric.hcas) == {"mc-node-1", "mc-node-2"}
