"""Tests for ExaMon transport: topics, payloads, broker."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.examon.broker import MQTTBroker
from repro.examon.payload import decode_payload, encode_payload
from repro.examon.topics import TopicSchema, topic_matches


class TestTopicSchema:
    SCHEMA = TopicSchema(org="unibo", cluster="montecimone")

    def test_pmu_topic_matches_table_ii(self):
        topic = self.SCHEMA.pmu_topic("mc-node-3", 2, "instructions")
        assert topic == ("org/unibo/cluster/montecimone/node/mc-node-3"
                         "/plugin/pmu_pub/chnl/data/core/2/instructions")

    def test_stats_topic_uses_dstat_pub_directory(self):
        # Table II quirk: stats_pub publishes under plugin/dstat_pub.
        topic = self.SCHEMA.stats_topic("mc-node-1", "load_avg.1m")
        assert "/plugin/dstat_pub/chnl/data/load_avg.1m" in topic

    def test_parse_pmu_topic(self):
        topic = self.SCHEMA.pmu_topic("mc-node-3", 2, "cycles")
        fields = self.SCHEMA.parse(topic)
        assert fields == {"org": "unibo", "cluster": "montecimone",
                          "node": "mc-node-3", "plugin": "pmu_pub",
                          "core": "2", "metric": "cycles"}

    def test_parse_stats_topic(self):
        fields = self.SCHEMA.parse(
            self.SCHEMA.stats_topic("mc-node-1", "temperature.cpu_temp"))
        assert fields["metric"] == "temperature.cpu_temp"
        assert "core" not in fields

    def test_parse_garbage_raises(self):
        with pytest.raises(ValueError):
            self.SCHEMA.parse("not/an/examon/topic")

    def test_negative_core_rejected(self):
        with pytest.raises(ValueError):
            self.SCHEMA.pmu_topic("n", -1, "cycles")


class TestWildcards:
    def test_plus_matches_one_level(self):
        assert topic_matches("a/+/c", "a/b/c")
        assert not topic_matches("a/+/c", "a/b/b2/c")

    def test_hash_matches_rest(self):
        assert topic_matches("a/#", "a/b/c/d")
        assert topic_matches("a/#", "a/b")

    def test_exact_match(self):
        assert topic_matches("a/b", "a/b")
        assert not topic_matches("a/b", "a/b/c")

    def test_interior_hash_rejected(self):
        with pytest.raises(ValueError):
            topic_matches("a/#/c", "a/b/c")

    def test_all_nodes_pattern_covers_both_plugins(self):
        schema = TopicSchema()
        pattern = schema.all_nodes_pattern()
        assert topic_matches(pattern, schema.pmu_topic("mc-node-5", 0, "cycles"))
        assert topic_matches(pattern, schema.stats_topic("mc-node-5", "procs.run"))

    @given(levels=st.lists(st.sampled_from(["a", "b", "node", "x1"]),
                           min_size=1, max_size=6))
    @settings(max_examples=50, deadline=None)
    def test_hash_is_superset_of_everything_under_prefix(self, levels):
        """Property: 'prefix/#' matches every topic extending the prefix."""
        topic = "/".join(levels)
        assert topic_matches(levels[0] + "/#", topic) or len(levels) == 1


class TestPayload:
    def test_table_ii_format(self):
        assert encode_payload(42.5, 1000.0) == "42.5;1000.0"

    def test_roundtrip(self):
        value, ts = decode_payload(encode_payload(3.14, 99.0))
        assert (value, ts) == (3.14, 99.0)

    def test_malformed_payloads_raise(self):
        with pytest.raises(ValueError):
            decode_payload("no-separator")
        with pytest.raises(ValueError):
            decode_payload("abc;def")

    def test_non_numeric_value_rejected_on_encode(self):
        with pytest.raises(TypeError):
            encode_payload("hot", 1.0)

    @given(value=st.floats(allow_nan=False, allow_infinity=False),
           ts=st.floats(min_value=0, max_value=1e12))
    @settings(max_examples=100, deadline=None)
    def test_roundtrip_property(self, value, ts):
        """Property: encode→decode is the identity on finite floats."""
        decoded_value, decoded_ts = decode_payload(encode_payload(value, ts))
        assert decoded_value == value
        assert decoded_ts == ts


class TestBroker:
    def test_publish_delivers_to_matching_subscription(self):
        broker = MQTTBroker()
        received = []
        broker.subscribe("client", "a/+/c", received.append)
        assert broker.publish("a/b/c", "1;2", timestamp_s=2.0) == 1
        assert received[0].topic == "a/b/c"

    def test_non_matching_subscription_ignored(self):
        broker = MQTTBroker()
        received = []
        broker.subscribe("client", "x/#", received.append)
        assert broker.publish("a/b", "1;2", timestamp_s=2.0) == 0
        assert received == []

    def test_retained_message_delivered_to_late_subscriber(self):
        broker = MQTTBroker()
        broker.publish("a/b", "1;1", timestamp_s=1.0)
        received = []
        broker.subscribe("late", "a/#", received.append)
        assert len(received) == 1
        assert received[0].retained

    def test_wildcard_publish_rejected(self):
        with pytest.raises(ValueError):
            MQTTBroker().publish("a/+/c", "1;1", timestamp_s=1.0)

    def test_unsubscribe_stops_delivery(self):
        broker = MQTTBroker()
        received = []
        subscription = broker.subscribe("c", "a/#", received.append)
        broker.unsubscribe(subscription)
        broker.publish("a/b", "1;1", timestamp_s=1.0)
        assert received == []

    def test_statistics(self):
        broker = MQTTBroker()
        broker.subscribe("c", "#", lambda m: None)
        broker.publish("t", "1;1", timestamp_s=1.0)
        broker.publish("t", "2;2", timestamp_s=2.0)
        assert broker.messages_published == 2
        assert broker.messages_delivered == 2
        assert broker.bytes_published > 0

    def test_retained_topics_sorted(self):
        broker = MQTTBroker()
        broker.publish("b/x", "1;1", timestamp_s=1.0)
        broker.publish("a/y", "1;1", timestamp_s=1.0)
        assert broker.retained_topics() == ["a/y", "b/x"]


class TestRetainedFlagSemantics:
    """MQTT 3.1.1 §3.3.1.3: the retain flag marks retained-store replays.

    An earlier revision inverted this — live deliveries copied the
    publisher's retain *request* and replays reused the stored flag — so a
    subscriber could not tell a fresh sample from a stale replay.
    """

    def test_live_delivery_carries_retained_false(self):
        broker = MQTTBroker()
        received = []
        broker.subscribe("live", "a/#", received.append)
        broker.publish("a/b", "1;1", timestamp_s=1.0, retain=True)
        assert len(received) == 1
        assert received[0].retained is False

    def test_replay_to_late_subscriber_carries_retained_true(self):
        broker = MQTTBroker()
        broker.publish("a/b", "1;1", timestamp_s=1.0, retain=True)
        received = []
        broker.subscribe("late", "a/#", received.append)
        assert len(received) == 1
        assert received[0].retained is True

    def test_replay_preserves_topic_payload_and_timestamp(self):
        broker = MQTTBroker()
        broker.publish("a/b", "42.5;7.0", timestamp_s=7.0)
        received = []
        broker.subscribe("late", "#", received.append)
        message = received[0]
        assert (message.topic, message.payload, message.timestamp_s) == \
            ("a/b", "42.5;7.0", 7.0)

    def test_same_subscriber_sees_replay_then_live_flags(self):
        broker = MQTTBroker()
        broker.publish("a/b", "1;1", timestamp_s=1.0)
        received = []
        broker.subscribe("c", "a/b", received.append)
        broker.publish("a/b", "2;2", timestamp_s=2.0)
        assert [m.retained for m in received] == [True, False]

    def test_unretained_publish_not_replayed(self):
        broker = MQTTBroker()
        broker.publish("a/b", "1;1", timestamp_s=1.0, retain=False)
        received = []
        broker.subscribe("late", "#", received.append)
        assert received == []


class TestTopicTrie:
    """The subscription index: wildcard correctness, order, pruning."""

    def test_hash_pattern_matches_prefix_itself(self):
        broker = MQTTBroker()
        received = []
        broker.subscribe("c", "a/#", received.append)
        broker.publish("a", "1;1", timestamp_s=1.0)
        broker.publish("a/b/c", "1;1", timestamp_s=1.0)
        assert [m.topic for m in received] == ["a", "a/b/c"]

    def test_root_hash_matches_everything(self):
        broker = MQTTBroker()
        received = []
        broker.subscribe("c", "#", received.append)
        for topic in ("a", "a/b", "x/y/z"):
            broker.publish(topic, "1;1", timestamp_s=1.0)
        assert len(received) == 3

    def test_overlapping_patterns_deliver_in_subscription_order(self):
        broker = MQTTBroker()
        order = []
        broker.subscribe("c3", "a/b/c", lambda m: order.append("exact"))
        broker.subscribe("c1", "#", lambda m: order.append("hash"))
        broker.subscribe("c2", "a/+/c", lambda m: order.append("plus"))
        assert broker.publish("a/b/c", "1;1", timestamp_s=1.0) == 3
        assert order == ["exact", "hash", "plus"]

    def test_plus_does_not_match_deeper_topics(self):
        broker = MQTTBroker()
        received = []
        broker.subscribe("c", "a/+", received.append)
        broker.publish("a/b/c", "1;1", timestamp_s=1.0)
        broker.publish("a/b", "1;1", timestamp_s=1.0)
        assert [m.topic for m in received] == ["a/b"]

    def test_unsubscribe_prunes_index(self):
        broker = MQTTBroker()
        subs = [broker.subscribe("c", p, lambda m: None)
                for p in ("a/b/c", "a/+/c", "a/#", "#", "x/y")]
        for sub in subs:
            broker.unsubscribe(sub)
        assert broker.subscription_count == 0
        assert broker._root.is_empty()
        assert broker.publish("a/b/c", "1;1", timestamp_s=1.0) == 0

    def test_unsubscribe_keeps_sibling_subscriptions(self):
        broker = MQTTBroker()
        received = []
        doomed = broker.subscribe("c1", "a/+/c", lambda m: None)
        broker.subscribe("c2", "a/b/#", received.append)
        broker.unsubscribe(doomed)
        assert broker.publish("a/b/c", "1;1", timestamp_s=1.0) == 1
        assert received[0].topic == "a/b/c"

    def test_match_ops_counts_index_nodes(self):
        broker = MQTTBroker()
        broker.subscribe("c", "a/b", lambda m: None)
        before = broker.match_ops
        broker.publish("a/b", "1;1", timestamp_s=1.0)
        assert broker.match_ops > before

    @given(pattern_levels=st.lists(
        st.sampled_from(["a", "b", "node", "+"]), min_size=1, max_size=4),
        topic_levels=st.lists(
        st.sampled_from(["a", "b", "node", "x1"]), min_size=1, max_size=4),
        trailing_hash=st.booleans())
    @settings(max_examples=200, deadline=None)
    def test_trie_agrees_with_topic_matches(self, pattern_levels,
                                            topic_levels, trailing_hash):
        """Property: the trie index and the reference matcher agree."""
        pattern = "/".join(pattern_levels + (["#"] if trailing_hash else []))
        topic = "/".join(topic_levels)
        broker = MQTTBroker()
        received = []
        broker.subscribe("c", pattern, received.append)
        delivered = broker.publish(topic, "1;1", timestamp_s=1.0,
                                   retain=False)
        assert delivered == (1 if topic_matches(pattern, topic) else 0)
        assert len(received) == delivered
