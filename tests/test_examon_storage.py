"""Tests for the time-series DB, REST facade and dashboards."""

import pytest

from repro.examon.broker import MQTTBroker
from repro.examon.dashboard import Dashboard, Heatmap
from repro.examon.rest import ExamonRestAPI
from repro.examon.topics import TopicSchema
from repro.examon.tsdb import TimeSeriesDB


class TestTSDB:
    def test_insert_and_query_range(self):
        db = TimeSeriesDB()
        for t in range(10):
            db.insert("m", float(t), float(t * 10))
        points = db.query("m", 3.0, 6.0)
        assert [t for t, _v in points] == [3.0, 4.0, 5.0, 6.0]

    def test_out_of_order_insert_keeps_sorted(self):
        db = TimeSeriesDB()
        db.insert("m", 5.0, 1.0)
        db.insert("m", 2.0, 2.0)
        db.insert("m", 8.0, 3.0)
        assert [t for t, _v in db.query("m")] == [2.0, 5.0, 8.0]

    def test_latest(self):
        db = TimeSeriesDB()
        assert db.latest("missing") is None
        db.insert("m", 1.0, 10.0)
        db.insert("m", 2.0, 20.0)
        assert db.latest("m") == (2.0, 20.0)

    def test_ingest_from_broker(self):
        broker = MQTTBroker()
        db = TimeSeriesDB()
        db.attach(broker, "#")
        broker.publish("sensor/t", "42.5;100.0", timestamp_s=100.0)
        assert db.query("sensor/t") == [(100.0, 42.5)]

    def test_malformed_payload_counted_not_stored(self):
        broker = MQTTBroker()
        db = TimeSeriesDB()
        db.attach(broker, "#")
        broker.publish("sensor/t", "garbage", timestamp_s=1.0)
        assert db.decode_errors == 1
        assert db.points_stored == 0

    def test_aggregate_mean(self):
        db = TimeSeriesDB()
        for t in range(20):
            db.insert("m", float(t), float(t))
        buckets = db.aggregate("m", 0.0, 20.0, window_s=10.0, how="mean")
        assert buckets == [(0.0, 4.5), (10.0, 14.5)]

    def test_aggregate_unknown_how(self):
        db = TimeSeriesDB()
        with pytest.raises(KeyError):
            db.aggregate("m", 0, 1, 1, how="p99")

    def test_rate_differentiates_counter(self):
        db = TimeSeriesDB()
        for t in range(5):
            db.insert("counter", float(t), float(t * 100))
        rates = db.rate("counter")
        assert all(rate == pytest.approx(100.0) for _t, rate in rates)

    def test_rate_handles_counter_reset(self):
        db = TimeSeriesDB()
        db.insert("counter", 0.0, 1000.0)
        db.insert("counter", 1.0, 50.0)    # node rebooted
        rates = db.rate("counter")
        assert rates == [(1.0, 0.0)]

    def test_topics_pattern_filter(self):
        db = TimeSeriesDB()
        db.insert("a/x", 0.0, 1.0)
        db.insert("b/y", 0.0, 1.0)
        assert db.topics("a/#") == ["a/x"]


def _naive_aggregate(points, start_s, end_s, window_s, how):
    """Reference implementation: per-bucket rescan of the full point list."""
    aggregators = {"mean": lambda v: sum(v) / len(v), "max": max,
                   "min": min, "sum": sum, "last": lambda v: v[-1]}
    points = [(t, v) for t, v in points if start_s <= t <= end_s]
    out = []
    bucket_start = start_s
    while bucket_start < end_s:
        bucket_end = bucket_start + window_s
        vals = [v for t, v in points if bucket_start <= t < bucket_end]
        if vals:
            out.append((bucket_start, aggregators[how](vals)))
        bucket_start = bucket_end
    return out


class _CountingList(list):
    """A list that counts element accesses (for the single-pass assertion)."""

    def __init__(self, items):
        super().__init__(items)
        self.accesses = 0

    def __getitem__(self, index):
        self.accesses += 1
        return super().__getitem__(index)


class TestAggregateRewrite:
    """Pins the single-pass ``aggregate`` rewrite.

    The old implementation rescanned the whole point list for every
    bucket (O(points × buckets)) and carried a vestigial counter whose
    ``i <= len(points)`` guard truncated aggregations with more leading
    empty buckets than stored points.  These tests assert (a) the output
    is unchanged against a naive reference, (b) the truncation bug is
    gone, and (c) the scan really is a single pass.
    """

    def _fig5_like_db(self):
        # The Fig. 5 shape: 2 Hz PMU samples with slight jitter, values
        # from a deterministic recurrence (no RNG, byte-stable).
        db = TimeSeriesDB()
        value = 7.0
        for i in range(400):
            value = (value * 1103.515245 + 12345.0) % 1000.0
            db.insert("pmu/instr", i * 0.5 + (i % 3) * 0.01, value)
        return db

    @pytest.mark.parametrize("how", ["mean", "max", "min", "sum", "last"])
    def test_matches_naive_reference(self, how):
        db = self._fig5_like_db()
        points = db.query("pmu/instr")
        for start, end, window in [(0.0, 200.0, 10.0), (3.7, 150.0, 7.3),
                                   (-5.0, 250.0, 20.0), (17.0, 18.0, 0.25)]:
            assert db.aggregate("pmu/instr", start, end, window, how) == \
                _naive_aggregate(points, start, end, window, how)

    def test_leading_empty_buckets_do_not_truncate(self):
        # Regression: 2 points after 100 empty buckets.  The old
        # ``i <= len(points)`` guard stopped the scan after bucket 2 and
        # silently returned nothing.
        db = TimeSeriesDB()
        db.insert("m", 100.5, 1.0)
        db.insert("m", 101.5, 2.0)
        assert db.aggregate("m", 0.0, 102.0, 1.0) == [(100.0, 1.0),
                                                      (101.0, 2.0)]

    def test_point_exactly_at_end_on_bucket_boundary_is_dropped(self):
        db = TimeSeriesDB()
        db.insert("m", 10.0, 99.0)
        # end_s = 10.0 is a bucket boundary: no bucket starts before
        # end_s covers t=10.0, so the point is out of range.
        assert db.aggregate("m", 0.0, 10.0, 5.0) == []

    def test_point_at_end_inside_last_partial_bucket_is_kept(self):
        db = TimeSeriesDB()
        db.insert("m", 10.0, 99.0)
        # end_s = 10.0 falls inside the bucket starting at 9.0, which
        # covers [9.0, 12.0): the point is in range and aggregated.
        assert db.aggregate("m", 0.0, 10.0, 3.0) == [(9.0, 99.0)]

    def test_empty_leading_and_trailing_buckets_omitted(self):
        db = TimeSeriesDB()
        db.insert("m", 5.0, 1.0)
        db.insert("m", 5.5, 3.0)
        buckets = db.aggregate("m", 0.0, 20.0, 1.0, how="mean")
        assert buckets == [(5.0, 2.0)]

    def test_non_positive_window_rejected(self):
        db = TimeSeriesDB()
        with pytest.raises(ValueError):
            db.aggregate("m", 0.0, 10.0, 0.0)

    def test_single_pass_over_points(self):
        # 10k points, 1k buckets: the scan must touch each point O(1)
        # times.  The pre-rewrite implementation performed ~10M accesses
        # here (one full rescan per bucket).
        db = TimeSeriesDB()
        for i in range(10_000):
            db.insert("m", i * 0.1, float(i))
        counting = _CountingList(db.query("m"))
        db.query = lambda *_a, **_k: counting
        buckets = db.aggregate("m", 0.0, 1000.0, 1.0, how="sum")
        assert len(buckets) == 1000
        assert counting.accesses <= 10_000 + 1000 + 10


class TestInsertOrderingConsistency:
    def test_out_of_order_insert_keeps_latest_and_query_consistent(self):
        db = TimeSeriesDB()
        db.insert("m", 10.0, 1.0)
        db.insert("m", 4.0, 2.0)   # late arrival
        db.insert("m", 7.0, 3.0)   # late arrival
        assert db.latest("m") == (10.0, 1.0)
        assert db.query("m") == [(4.0, 2.0), (7.0, 3.0), (10.0, 1.0)]
        assert db.query("m")[-1] == db.latest("m")

    def test_out_of_order_insert_feeds_aggregate_correctly(self):
        db = TimeSeriesDB()
        for t in (9.0, 1.0, 5.0, 3.0, 7.0):
            db.insert("m", t, t)
        assert db.aggregate("m", 0.0, 10.0, 5.0, how="sum") == \
            [(0.0, 4.0), (5.0, 21.0)]

    def test_rate_over_repeated_counter_resets(self):
        db = TimeSeriesDB()
        # Two reboots: each reset yields a zero-rate point, never a
        # negative spike; normal segments differentiate cleanly.
        for t, v in [(0.0, 100.0), (1.0, 200.0), (2.0, 10.0),
                     (3.0, 110.0), (4.0, 5.0), (5.0, 105.0)]:
            db.insert("counter", t, v)
        assert db.rate("counter") == [(1.0, 100.0), (2.0, 0.0),
                                      (3.0, 100.0), (4.0, 0.0),
                                      (5.0, 100.0)]


class TestRestAPI:
    def _api(self):
        db = TimeSeriesDB()
        for t in range(10):
            db.insert("node/metric", float(t), float(t))
        return ExamonRestAPI(db)

    def test_query_endpoint(self):
        api = self._api()
        result = api.get("/api/query", {"topic": "node/metric",
                                        "start": 0.0, "end": 2.0})
        assert result == [{"t": 0.0, "v": 0.0}, {"t": 1.0, "v": 1.0},
                          {"t": 2.0, "v": 2.0}]

    def test_latest_endpoint(self):
        api = self._api()
        assert api.get("/api/latest", {"topic": "node/metric"}) == \
            {"t": 9.0, "v": 9.0}

    def test_topics_endpoint(self):
        assert self._api().get("/api/topics") == ["node/metric"]

    def test_unknown_endpoint_404(self):
        with pytest.raises(KeyError, match="404"):
            self._api().get("/api/nope")

    def test_request_counter(self):
        api = self._api()
        api.get("/api/topics")
        api.get("/api/topics")
        assert api.requests_served == 2


class TestDashboard:
    def _db_with_counters(self):
        db = TimeSeriesDB()
        schema = TopicSchema()
        for host in ("mc-node-1", "mc-node-2"):
            rate = 100.0 if host == "mc-node-1" else 50.0
            for core in range(4):
                topic = schema.pmu_topic(host, core, "instructions")
                for t in range(0, 100, 5):
                    db.insert(topic, float(t), rate * t)
        return db, schema

    def test_instructions_heatmap_sums_cores(self):
        db, schema = self._db_with_counters()
        dashboard = Dashboard(db, ["mc-node-1", "mc-node-2"], schema=schema)
        heatmap = dashboard.instructions_heatmap(0.0, 100.0, window_s=20.0)
        # Node 1: 4 cores × 100 instr/s = 400/s.
        assert heatmap.node_mean("mc-node-1") == pytest.approx(400.0)
        assert heatmap.node_mean("mc-node-2") == pytest.approx(200.0)
        assert heatmap.hottest_row() == "mc-node-1"

    def test_heatmap_missing_node_is_none_row(self):
        db, schema = self._db_with_counters()
        dashboard = Dashboard(db, ["mc-node-1", "mc-node-9"], schema=schema)
        heatmap = dashboard.instructions_heatmap(0.0, 100.0, window_s=20.0)
        assert all(v is None for v in heatmap.rows["mc-node-9"])
        with pytest.raises(ValueError):
            heatmap.node_mean("mc-node-9")

    def test_render_ascii_has_one_row_per_node(self):
        db, schema = self._db_with_counters()
        dashboard = Dashboard(db, ["mc-node-1", "mc-node-2"], schema=schema)
        text = dashboard.instructions_heatmap(0.0, 100.0, 20.0).render_ascii()
        assert text.count("mc-node-") == 2

    def test_empty_time_range_rejected(self):
        db, schema = self._db_with_counters()
        dashboard = Dashboard(db, ["mc-node-1"], schema=schema)
        with pytest.raises(ValueError):
            dashboard.instructions_heatmap(10.0, 10.0, 1.0)

    def test_thermal_timeline_reads_stats_topics(self):
        db = TimeSeriesDB()
        schema = TopicSchema()
        topic = schema.stats_topic("mc-node-7", "temperature.cpu_temp")
        for t in range(5):
            db.insert(topic, float(t), 100.0 + t)
        dashboard = Dashboard(db, ["mc-node-7"], schema=schema)
        peaks = dashboard.peak_temperatures(0.0, 10.0)
        assert peaks["mc-node-7"] == pytest.approx(104.0)
