"""Tests for the time-series DB, REST facade and dashboards."""

import pytest

from repro.examon.broker import MQTTBroker
from repro.examon.dashboard import Dashboard, Heatmap
from repro.examon.rest import ExamonRestAPI
from repro.examon.topics import TopicSchema
from repro.examon.tsdb import TimeSeriesDB


class TestTSDB:
    def test_insert_and_query_range(self):
        db = TimeSeriesDB()
        for t in range(10):
            db.insert("m", float(t), float(t * 10))
        points = db.query("m", 3.0, 6.0)
        assert [t for t, _v in points] == [3.0, 4.0, 5.0, 6.0]

    def test_out_of_order_insert_keeps_sorted(self):
        db = TimeSeriesDB()
        db.insert("m", 5.0, 1.0)
        db.insert("m", 2.0, 2.0)
        db.insert("m", 8.0, 3.0)
        assert [t for t, _v in db.query("m")] == [2.0, 5.0, 8.0]

    def test_latest(self):
        db = TimeSeriesDB()
        assert db.latest("missing") is None
        db.insert("m", 1.0, 10.0)
        db.insert("m", 2.0, 20.0)
        assert db.latest("m") == (2.0, 20.0)

    def test_ingest_from_broker(self):
        broker = MQTTBroker()
        db = TimeSeriesDB()
        db.attach(broker, "#")
        broker.publish("sensor/t", "42.5;100.0", timestamp_s=100.0)
        assert db.query("sensor/t") == [(100.0, 42.5)]

    def test_malformed_payload_counted_not_stored(self):
        broker = MQTTBroker()
        db = TimeSeriesDB()
        db.attach(broker, "#")
        broker.publish("sensor/t", "garbage", timestamp_s=1.0)
        assert db.decode_errors == 1
        assert db.points_stored == 0

    def test_aggregate_mean(self):
        db = TimeSeriesDB()
        for t in range(20):
            db.insert("m", float(t), float(t))
        buckets = db.aggregate("m", 0.0, 20.0, window_s=10.0, how="mean")
        assert buckets == [(0.0, 4.5), (10.0, 14.5)]

    def test_aggregate_unknown_how(self):
        db = TimeSeriesDB()
        with pytest.raises(KeyError):
            db.aggregate("m", 0, 1, 1, how="p99")

    def test_rate_differentiates_counter(self):
        db = TimeSeriesDB()
        for t in range(5):
            db.insert("counter", float(t), float(t * 100))
        rates = db.rate("counter")
        assert all(rate == pytest.approx(100.0) for _t, rate in rates)

    def test_rate_handles_counter_reset(self):
        db = TimeSeriesDB()
        db.insert("counter", 0.0, 1000.0)
        db.insert("counter", 1.0, 50.0)    # node rebooted
        rates = db.rate("counter")
        assert rates == [(1.0, 0.0)]

    def test_topics_pattern_filter(self):
        db = TimeSeriesDB()
        db.insert("a/x", 0.0, 1.0)
        db.insert("b/y", 0.0, 1.0)
        assert db.topics("a/#") == ["a/x"]


class TestRestAPI:
    def _api(self):
        db = TimeSeriesDB()
        for t in range(10):
            db.insert("node/metric", float(t), float(t))
        return ExamonRestAPI(db)

    def test_query_endpoint(self):
        api = self._api()
        result = api.get("/api/query", {"topic": "node/metric",
                                        "start": 0.0, "end": 2.0})
        assert result == [{"t": 0.0, "v": 0.0}, {"t": 1.0, "v": 1.0},
                          {"t": 2.0, "v": 2.0}]

    def test_latest_endpoint(self):
        api = self._api()
        assert api.get("/api/latest", {"topic": "node/metric"}) == \
            {"t": 9.0, "v": 9.0}

    def test_topics_endpoint(self):
        assert self._api().get("/api/topics") == ["node/metric"]

    def test_unknown_endpoint_404(self):
        with pytest.raises(KeyError, match="404"):
            self._api().get("/api/nope")

    def test_request_counter(self):
        api = self._api()
        api.get("/api/topics")
        api.get("/api/topics")
        assert api.requests_served == 2


class TestDashboard:
    def _db_with_counters(self):
        db = TimeSeriesDB()
        schema = TopicSchema()
        for host in ("mc-node-1", "mc-node-2"):
            rate = 100.0 if host == "mc-node-1" else 50.0
            for core in range(4):
                topic = schema.pmu_topic(host, core, "instructions")
                for t in range(0, 100, 5):
                    db.insert(topic, float(t), rate * t)
        return db, schema

    def test_instructions_heatmap_sums_cores(self):
        db, schema = self._db_with_counters()
        dashboard = Dashboard(db, ["mc-node-1", "mc-node-2"], schema=schema)
        heatmap = dashboard.instructions_heatmap(0.0, 100.0, window_s=20.0)
        # Node 1: 4 cores × 100 instr/s = 400/s.
        assert heatmap.node_mean("mc-node-1") == pytest.approx(400.0)
        assert heatmap.node_mean("mc-node-2") == pytest.approx(200.0)
        assert heatmap.hottest_row() == "mc-node-1"

    def test_heatmap_missing_node_is_none_row(self):
        db, schema = self._db_with_counters()
        dashboard = Dashboard(db, ["mc-node-1", "mc-node-9"], schema=schema)
        heatmap = dashboard.instructions_heatmap(0.0, 100.0, window_s=20.0)
        assert all(v is None for v in heatmap.rows["mc-node-9"])
        with pytest.raises(ValueError):
            heatmap.node_mean("mc-node-9")

    def test_render_ascii_has_one_row_per_node(self):
        db, schema = self._db_with_counters()
        dashboard = Dashboard(db, ["mc-node-1", "mc-node-2"], schema=schema)
        text = dashboard.instructions_heatmap(0.0, 100.0, 20.0).render_ascii()
        assert text.count("mc-node-") == 2

    def test_empty_time_range_rejected(self):
        db, schema = self._db_with_counters()
        dashboard = Dashboard(db, ["mc-node-1"], schema=schema)
        with pytest.raises(ValueError):
            dashboard.instructions_heatmap(10.0, 10.0, 1.0)

    def test_thermal_timeline_reads_stats_topics(self):
        db = TimeSeriesDB()
        schema = TopicSchema()
        topic = schema.stats_topic("mc-node-7", "temperature.cpu_temp")
        for t in range(5):
            db.insert(topic, float(t), 100.0 + t)
        dashboard = Dashboard(db, ["mc-node-7"], schema=schema)
        peaks = dashboard.peak_temperatures(0.0, 10.0)
        assert peaks["mc-node-7"] == pytest.approx(104.0)
