"""Tests for the discrete-event kernel: engine, events, conditions."""

import pytest

from repro.events import Engine, SimulationError, UnconsumedFailureError
from repro.events.engine import AllOf, AnyOf


class TestClock:
    def test_starts_at_zero(self):
        assert Engine().now == 0.0

    def test_custom_start(self):
        assert Engine(start=5.0).now == 5.0

    def test_run_until_advances_clock_without_events(self):
        eng = Engine()
        eng.run(until=10.0)
        assert eng.now == 10.0

    def test_peek_empty_queue_is_inf(self):
        assert Engine().peek() == float("inf")


class TestTimeout:
    def test_timeout_fires_at_delay(self):
        eng = Engine()
        fired = []
        eng.timeout(2.5).callbacks.append(lambda e: fired.append(eng.now))
        eng.run()
        assert fired == [2.5]

    def test_timeout_carries_value(self):
        eng = Engine()
        got = []
        eng.timeout(1.0, value="payload").callbacks.append(
            lambda e: got.append(e.value))
        eng.run()
        assert got == ["payload"]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Engine().timeout(-1.0)

    def test_zero_delay_fires_immediately(self):
        eng = Engine()
        fired = []
        eng.timeout(0.0).callbacks.append(lambda e: fired.append(eng.now))
        eng.run()
        assert fired == [0.0]


class TestOrdering:
    def test_same_time_events_fire_in_schedule_order(self):
        eng = Engine()
        order = []
        for label in "abc":
            eng.timeout(1.0, value=label).callbacks.append(
                lambda e: order.append(e.value))
        eng.run()
        assert order == ["a", "b", "c"]

    def test_earlier_events_fire_first_regardless_of_schedule_order(self):
        eng = Engine()
        order = []
        eng.timeout(5.0, value="late").callbacks.append(
            lambda e: order.append(e.value))
        eng.timeout(1.0, value="early").callbacks.append(
            lambda e: order.append(e.value))
        eng.run()
        assert order == ["early", "late"]

    def test_run_until_excludes_later_events(self):
        eng = Engine()
        fired = []
        eng.timeout(1.0).callbacks.append(lambda e: fired.append(1))
        eng.timeout(10.0).callbacks.append(lambda e: fired.append(10))
        eng.run(until=5.0)
        assert fired == [1]
        assert eng.now == 5.0


class TestEventStates:
    def test_event_lifecycle(self):
        eng = Engine()
        event = eng.event()
        assert not event.triggered and not event.processed
        event.succeed("v")
        assert event.triggered and not event.processed
        eng.run()
        assert event.processed
        assert event.value == "v"

    def test_double_succeed_rejected(self):
        eng = Engine()
        event = eng.event()
        event.succeed()
        with pytest.raises(SimulationError):
            event.succeed()

    def test_fail_then_value_raises(self):
        eng = Engine()
        event = eng.event()
        event.fail(RuntimeError("boom"))
        event.defuse()  # nobody yields this event; we consume it below
        eng.run()
        with pytest.raises(RuntimeError, match="boom"):
            _ = event.value

    def test_unconsumed_failure_raises_at_drain(self):
        eng = Engine()
        eng.event().fail(RuntimeError("boom"))
        with pytest.raises(UnconsumedFailureError, match="boom"):
            eng.run()

    def test_fail_requires_exception(self):
        eng = Engine()
        with pytest.raises(TypeError):
            eng.event().fail("not an exception")

    def test_ok_false_for_failed_event(self):
        eng = Engine()
        event = eng.event()
        event.fail(ValueError("x"))
        assert not event.ok


class TestConditions:
    def test_any_of_fires_on_first(self):
        eng = Engine()
        t1, t2 = eng.timeout(1.0, "a"), eng.timeout(2.0, "b")
        any_event = eng.any_of([t1, t2])
        fired_at = []
        any_event.callbacks.append(lambda e: fired_at.append(eng.now))
        eng.run()
        assert fired_at == [1.0]

    def test_all_of_waits_for_all(self):
        eng = Engine()
        events = [eng.timeout(t) for t in (1.0, 3.0, 2.0)]
        all_event = eng.all_of(events)
        fired_at = []
        all_event.callbacks.append(lambda e: fired_at.append(eng.now))
        eng.run()
        assert fired_at == [3.0]

    def test_all_of_empty_fires_immediately(self):
        eng = Engine()
        assert eng.all_of([]).triggered

    def test_all_of_value_collects_child_values(self):
        eng = Engine()
        t1, t2 = eng.timeout(1.0, "a"), eng.timeout(2.0, "b")
        all_event = eng.all_of([t1, t2])
        eng.run()
        assert sorted(all_event.value.values()) == ["a", "b"]


class TestRunSemantics:
    def test_run_twice_sequentially_is_fine(self):
        eng = Engine()
        eng.timeout(1.0)
        eng.run(until=0.5)
        eng.run(until=2.0)
        assert eng.now == 2.0

    def test_call_at_runs_callback_at_absolute_time(self):
        eng = Engine()
        fired = []
        eng.call_at(7.0, lambda: fired.append(eng.now))
        eng.run()
        assert fired == [7.0]

    def test_call_at_in_past_rejected(self):
        eng = Engine()
        eng.run(until=5.0)
        with pytest.raises(ValueError):
            eng.call_at(1.0, lambda: None)

    def test_run_until_complete_detects_deadlock(self):
        eng = Engine()
        never = eng.event()  # no one will trigger it
        with pytest.raises(SimulationError, match="deadlock"):
            eng.run_until_complete(never)
