"""Tests for HPL.dat round-tripping, sbatch parsing and energy accounting."""

import pytest

from repro.benchmarks.hpl import HPLConfig, HPLModel
from repro.benchmarks.hpl_io import (
    parse_hpl_dat,
    parse_hpl_output,
    render_hpl_dat,
    render_hpl_output,
)
from repro.cluster.cluster import MonteCimoneCluster
from repro.power.energy import JobEnergyAccounting
from repro.power.model import HPL_PROFILE, IDLE_PROFILE
from repro.slurm.api import SlurmAPI
from repro.slurm.batch_script import (
    parse_batch_script,
    parse_time_limit,
)
from repro.thermal.enclosure import EnclosureConfig


class TestHPLDat:
    def test_render_contains_paper_parameters(self):
        text = render_hpl_dat(HPLConfig())
        assert "40704        Ns" in text
        assert "192          NBs" in text

    def test_roundtrip_single_node(self):
        config = HPLConfig()
        recovered = parse_hpl_dat(render_hpl_dat(config))
        assert recovered.n == config.n
        assert recovered.nb == config.nb
        assert recovered.n_nodes == config.n_nodes

    def test_roundtrip_eight_nodes(self):
        config = HPLConfig(n_nodes=8)
        recovered = parse_hpl_dat(render_hpl_dat(config))
        assert recovered.n_nodes == 8

    def test_grid_is_near_square(self):
        # 32 ranks → 4×8 grid in the rendered file.
        text = render_hpl_dat(HPLConfig(n_nodes=8))
        assert "4            Ps" in text
        assert "8            Qs" in text

    def test_parse_missing_field_raises(self):
        with pytest.raises(ValueError, match="Ns"):
            parse_hpl_dat("not an hpl.dat")


class TestHPLOutput:
    def test_render_and_parse_roundtrip(self):
        result = HPLModel().run()
        text = render_hpl_output(result)
        gflops, time_s, passed = parse_hpl_output(text)
        assert gflops == pytest.approx(result.gflops.mean, rel=1e-3)
        assert time_s == pytest.approx(result.runtime_s.mean, rel=1e-2)
        assert passed

    def test_output_has_hpl_layout(self):
        text = render_hpl_output(HPLModel().run())
        assert "T/V" in text and "Gflops" in text
        assert "PASSED" in text

    def test_parse_garbage_raises(self):
        with pytest.raises(ValueError):
            parse_hpl_output("no result rows here")


class TestTimeLimit:
    @pytest.mark.parametrize("text,seconds", [
        ("90", 5400.0),            # bare minutes
        ("30:00", 1800.0),         # MM:SS
        ("02:00:00", 7200.0),      # HH:MM:SS
        ("1-12:00:00", 129600.0),  # days-HH:MM:SS
        ("2-00", 172800.0),        # days-HH
    ])
    def test_accepted_forms(self, text, seconds):
        assert parse_time_limit(text) == seconds

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_time_limit("soon")
        with pytest.raises(ValueError):
            parse_time_limit("1:2:3:4")


class TestBatchScript:
    SCRIPT = """#!/bin/bash
#SBATCH --job-name=hpl-full
#SBATCH -N 8
#SBATCH --time=06:00:00
#SBATCH --partition compute
#SBATCH --mail-type=END

module load hpl/2.3
srun xhpl
"""

    def test_directives_parsed(self):
        script = parse_batch_script(self.SCRIPT)
        assert script.job_name == "hpl-full"
        assert script.n_nodes == 8
        assert script.time_limit_s == 6 * 3600.0
        assert script.partition == "compute"

    def test_unknown_directives_collected(self):
        script = parse_batch_script(self.SCRIPT)
        assert script.unknown_directives == ["--mail-type=END"]

    def test_command_lines_extracted(self):
        script = parse_batch_script(self.SCRIPT)
        assert script.command_lines == ["module load hpl/2.3", "srun xhpl"]

    def test_needs_shebang(self):
        with pytest.raises(ValueError, match="shebang"):
            parse_batch_script("#SBATCH -N 2\n")

    def test_zero_nodes_rejected(self):
        with pytest.raises(ValueError):
            parse_batch_script("#!/bin/bash\n#SBATCH -N 0\n")

    def test_directive_missing_value(self):
        with pytest.raises(ValueError):
            parse_batch_script("#!/bin/bash\n#SBATCH --nodes\n")


class TestJobEnergyAccounting:
    @pytest.fixture
    def cluster(self):
        cluster = MonteCimoneCluster(
            enclosure_config=EnclosureConfig.mitigated())
        cluster.boot_all()
        return cluster

    def test_hpl_job_energy(self, cluster):
        accounting = JobEnergyAccounting(cluster.slurm)
        api = SlurmAPI(cluster.slurm)
        job = api.srun("hpl", "alice", nodes=8, duration_s=600.0,
                       profile=HPL_PROFILE)
        record = accounting.record_for(job.job_id)
        assert record is not None
        # 8 nodes × ~5.94 W × 600 s ≈ 28.5 kJ.
        assert record.energy_j == pytest.approx(8 * 5.94 * 600.0, rel=0.05)
        assert record.mean_power_w == pytest.approx(8 * 5.94, rel=0.05)

    def test_idle_profile_job_uses_less_energy(self, cluster):
        accounting = JobEnergyAccounting(cluster.slurm)
        api = SlurmAPI(cluster.slurm)
        busy = api.srun("busy", "a", nodes=4, duration_s=300.0,
                        profile=HPL_PROFILE)
        quiet = api.srun("quiet", "a", nodes=4, duration_s=300.0,
                         profile=IDLE_PROFILE)
        busy_record = accounting.record_for(busy.job_id)
        quiet_record = accounting.record_for(quiet.job_id)
        assert busy_record.energy_j > quiet_record.energy_j

    def test_per_rail_breakdown_sums_to_total(self, cluster):
        accounting = JobEnergyAccounting(cluster.slurm)
        api = SlurmAPI(cluster.slurm)
        job = api.srun("hpl", "a", nodes=2, duration_s=120.0,
                       profile=HPL_PROFILE)
        record = accounting.record_for(job.job_id)
        assert sum(record.per_rail_j.values()) == pytest.approx(
            record.energy_j)
        assert record.per_rail_j["core"] > record.per_rail_j["ddr_mem"]

    def test_total_energy_filters_by_user(self, cluster):
        accounting = JobEnergyAccounting(cluster.slurm)
        api = SlurmAPI(cluster.slurm)
        api.srun("a", "alice", nodes=2, duration_s=60.0, profile=HPL_PROFILE)
        api.srun("b", "bob", nodes=2, duration_s=60.0, profile=HPL_PROFILE)
        assert accounting.total_energy_j("alice") < \
            accounting.total_energy_j()
        assert accounting.total_energy_j("alice") > 0
