"""A compliant sibling of ``violating.py`` — the CLI must exit 0 on it."""

import zlib

import numpy as np

from repro.hardware.specs import DDR_SPEC, U740_SPEC

DDR_PEAK_BYTES_PER_S = DDR_SPEC.peak_bandwidth_bytes_per_s
CLOCK_HZ = U740_SPEC.clock_hz


def noise_seed(workload, group):
    return zlib.crc32(f"{workload}/{group}".encode()) % 65536


def sample(engine, seed=2022):
    rng = np.random.default_rng(seed)
    return rng.normal() * engine.now


def busy_process(env):
    result = yield env.timeout(1.0)
    yield env.all_of([env.timeout(0.5), env.timeout(0.25)])
    return result


def report(power_mw):
    power_w = power_mw / 1e3
    return power_w
