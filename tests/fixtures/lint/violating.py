"""A deliberately rule-breaking module used by the simlint CLI tests.

Never imported: it exists so tests can assert ``python -m repro.lint``
exits non-zero on a file violating every rule family (DET, ENG, CAL, UNIT).
"""

import random
import time

DDR_PEAK_BYTES_PER_S = 7760e6      # CAL301: duplicates hardware/specs.py
CLOCK_HZ = 1.2e9                   # CAL301: duplicates hardware/specs.py


def noise_seed(workload, group):
    return hash((workload, group)) % 65536  # DET104: salted hash


def sample():
    return random.random() * time.time()  # DET102 + DET101


def busy_process(env):
    yield env.timeout(1.0)
    yield 42                # ENG201: not an Event
    time.sleep(0.5)         # ENG203: blocks the host thread
    env.run()               # ENG202: re-entrant event loop


def report(power_mw):
    power_w = power_mw      # UNIT402: no conversion factor
    return power_w + power_mw  # UNIT401: mixed power units
