"""Tests for Resource, Container and Store, including property tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.events import Container, Engine, Resource, Store


class TestResource:
    def test_grants_up_to_capacity_immediately(self):
        eng = Engine()
        resource = Resource(eng, capacity=2)
        assert resource.request().triggered
        assert resource.request().triggered
        assert not resource.request().triggered
        assert resource.queue_length == 1

    def test_release_wakes_fifo_waiter(self):
        eng = Engine()
        resource = Resource(eng, capacity=1)
        resource.request()
        first_waiter = resource.request()
        second_waiter = resource.request()
        resource.release()
        assert first_waiter.triggered
        assert not second_waiter.triggered

    def test_release_without_request_raises(self):
        eng = Engine()
        with pytest.raises(RuntimeError):
            Resource(eng).release()

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            Resource(Engine(), capacity=0)

    def test_mutual_exclusion_under_processes(self):
        eng = Engine()
        resource = Resource(eng, capacity=1)
        active = []
        max_active = []

        def worker(env):
            request = resource.request()
            yield request
            active.append(1)
            max_active.append(len(active))
            yield env.timeout(1.0)
            active.pop()
            resource.release()

        for _ in range(5):
            eng.spawn(worker(eng))
        eng.run()
        assert max(max_active) == 1


class TestContainer:
    def test_get_blocks_until_level(self):
        eng = Engine()
        container = Container(eng, capacity=10, init=0)
        get_event = container.get(5)
        assert not get_event.triggered
        container.put(5)
        assert get_event.triggered
        assert container.level == 0

    def test_put_blocks_at_capacity(self):
        eng = Engine()
        container = Container(eng, capacity=10, init=10)
        put_event = container.put(1)
        assert not put_event.triggered
        container.get(5)
        assert put_event.triggered
        assert container.level == 6

    def test_init_validation(self):
        with pytest.raises(ValueError):
            Container(Engine(), capacity=5, init=6)

    def test_negative_amounts_rejected(self):
        container = Container(Engine(), capacity=5)
        with pytest.raises(ValueError):
            container.get(-1)
        with pytest.raises(ValueError):
            container.put(-1)

    @given(amounts=st.lists(st.floats(min_value=0.1, max_value=10.0),
                            min_size=1, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_level_never_negative_or_over_capacity(self, amounts):
        eng = Engine()
        container = Container(eng, capacity=50.0, init=25.0)
        for i, amount in enumerate(amounts):
            if i % 2 == 0:
                container.put(amount)
            else:
                container.get(amount)
            assert 0.0 <= container.level <= 50.0


class TestStore:
    def test_fifo_order(self):
        eng = Engine()
        store = Store(eng)
        for item in "abc":
            store.put(item)
        got = [store.get().value for _ in range(3)]
        assert got == ["a", "b", "c"]

    def test_get_blocks_until_put(self):
        eng = Engine()
        store = Store(eng)
        get_event = store.get()
        assert not get_event.triggered
        store.put("x")
        assert get_event.triggered
        assert get_event.value == "x"

    def test_capacity_overflow_raises(self):
        eng = Engine()
        store = Store(eng, capacity=1)
        store.put("a")
        with pytest.raises(OverflowError):
            store.put("b")

    def test_try_put_reports_drop(self):
        eng = Engine()
        store = Store(eng, capacity=1)
        assert store.try_put("a")
        assert not store.try_put("b")
        assert len(store) == 1

    def test_drain_empties_store(self):
        eng = Engine()
        store = Store(eng)
        for i in range(4):
            store.put(i)
        assert store.drain() == [0, 1, 2, 3]
        assert len(store) == 0

    @given(items=st.lists(st.integers(), max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_put_get_roundtrip_preserves_order(self, items):
        eng = Engine()
        store = Store(eng)
        for item in items:
            store.put(item)
        assert [store.get().value for _ in items] == items
