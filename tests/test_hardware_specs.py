"""Tests for the datasheet constants — the calibration anchors."""

import pytest

from repro.hardware.specs import (
    ARMIDA_NODE,
    DDR_SPEC,
    L2_SPEC,
    MARCONI100_NODE,
    MONTE_CIMONE_NODE,
    U740_SPEC,
)


class TestU740:
    def test_four_application_cores(self):
        assert U740_SPEC.n_cores == 4

    def test_peak_one_gflop_per_core(self):
        assert U740_SPEC.peak_flops_per_core == pytest.approx(1.0e9)

    def test_peak_four_gflops_per_chip(self):
        # §V-A: 4.0 GFLOP/s peak value for a single chip.
        assert U740_SPEC.peak_flops == pytest.approx(4.0e9)

    def test_clock_is_1_2_ghz(self):
        assert U740_SPEC.clock_hz == pytest.approx(1.2e9)

    def test_isa_is_rv64gcb(self):
        assert U740_SPEC.isa == "RV64GCB"

    def test_dual_issue(self):
        assert U740_SPEC.issue_width == 2


class TestMemory:
    def test_ddr_peak_7760_mb_s(self):
        # §V-A: "Out of the peak 7760 MB/s".
        assert DDR_SPEC.peak_bandwidth_bytes_per_s == pytest.approx(7760e6)

    def test_capacity_16_gb(self):
        assert DDR_SPEC.capacity_bytes == 16 * 1024 ** 3

    def test_ddr4_1866(self):
        assert DDR_SPEC.mt_per_s == 1866

    def test_l2_is_2_mib(self):
        assert L2_SPEC.size_bytes == 2 * 1024 ** 2

    def test_l2_prefetcher_tracks_eight_streams(self):
        # §V-A: "able of tracking up to eight streams per core".
        assert L2_SPEC.prefetch_streams == 8


class TestMonteCimoneNode:
    def test_single_socket(self):
        assert MONTE_CIMONE_NODE.n_sockets == 1
        assert MONTE_CIMONE_NODE.peak_flops == pytest.approx(4.0e9)

    def test_calibrated_fractions_match_paper(self):
        assert MONTE_CIMONE_NODE.hpl_fraction == pytest.approx(0.465)
        assert MONTE_CIMONE_NODE.stream_fraction == pytest.approx(0.155)

    def test_four_cores_total(self):
        assert MONTE_CIMONE_NODE.n_cores == 4


class TestComparisonNodes:
    def test_marconi100_fractions(self):
        assert MARCONI100_NODE.hpl_fraction == pytest.approx(0.597)
        assert MARCONI100_NODE.stream_fraction == pytest.approx(0.482)

    def test_armida_fractions(self):
        assert ARMIDA_NODE.hpl_fraction == pytest.approx(0.6579)
        assert ARMIDA_NODE.stream_fraction == pytest.approx(0.6321)

    def test_comparators_dwarf_the_u740(self):
        # The point of §V-A is efficiency, not absolute speed: the
        # comparison nodes are orders of magnitude faster.
        assert MARCONI100_NODE.peak_flops > 50 * MONTE_CIMONE_NODE.peak_flops
        assert ARMIDA_NODE.peak_flops > 50 * MONTE_CIMONE_NODE.peak_flops

    def test_isas(self):
        assert MARCONI100_NODE.soc.isa == "ppc64le"
        assert ARMIDA_NODE.soc.isa == "armv8a"
