"""Tests for the compute-node lifecycle."""

import pytest

from repro.cluster.node import ComputeNode, NodeState
from repro.events import Engine
from repro.power.model import HPL_PROFILE, NodePhase


@pytest.fixture
def booted_node():
    node = ComputeNode(hostname="test-node")
    node.power_on(0.0)
    node.start_bootloader(6.0)
    node.finish_boot(21.0)
    return node


class TestBootSequence:
    def test_state_machine_happy_path(self, booted_node):
        assert booted_node.state is NodeState.IDLE
        assert booted_node.phase is NodePhase.R3_OS

    def test_out_of_order_transitions_rejected(self):
        node = ComputeNode(hostname="n")
        with pytest.raises(RuntimeError):
            node.start_bootloader(0.0)   # power not applied
        node.power_on(0.0)
        with pytest.raises(RuntimeError):
            node.finish_boot(1.0)        # bootloader not run
        with pytest.raises(RuntimeError):
            node.power_on(2.0)           # already booting

    def test_r1_power_is_leakage_only(self):
        node = ComputeNode(hostname="n")
        node.power_on(0.0)
        assert node.total_power_w() == pytest.approx(1.385, abs=0.01)

    def test_idle_power_after_boot(self, booted_node):
        assert booted_node.total_power_w() == pytest.approx(4.810, abs=0.02)

    def test_patched_uboot_enables_hpm(self, booted_node):
        events = booted_node.board.perf.available_events(0)
        assert "fp_ops" in events

    def test_stock_uboot_leaves_hpm_disabled(self):
        node = ComputeNode(hostname="n", patched_uboot=False)
        node.power_on(0.0)
        node.start_bootloader(6.0)
        node.finish_boot(21.0)
        assert node.board.perf.available_events(0) == ["cycles", "instructions"]

    def test_ethernet_up_after_boot(self, booted_node):
        assert booted_node.board.ethernet.link_up

    def test_boot_process_on_engine(self):
        engine = Engine()
        node = ComputeNode(hostname="n")
        engine.run_until_complete(engine.spawn(node.boot_process(engine)))
        assert node.state is NodeState.IDLE
        assert engine.now == pytest.approx(21.0)


class TestWorkloadExecution:
    def test_begin_requires_idle(self):
        node = ComputeNode(hostname="n")
        with pytest.raises(RuntimeError):
            node.begin_workload(HPL_PROFILE, 0.0)

    def test_workload_raises_power(self, booted_node):
        booted_node.begin_workload(HPL_PROFILE, 22.0)
        assert booted_node.total_power_w() == pytest.approx(5.94, abs=0.03)
        booted_node.end_workload(30.0)
        assert booted_node.total_power_w() == pytest.approx(4.810, abs=0.02)

    def test_workload_allocates_memory(self, booted_node):
        booted_node.begin_workload(HPL_PROFILE, 22.0)
        assert booted_node.board.memory.allocated_bytes > 0
        booted_node.end_workload(30.0)
        assert booted_node.board.memory.allocated_bytes == 0

    def test_advance_drives_counters(self, booted_node):
        booted_node.begin_workload(HPL_PROFILE, 22.0)
        before = booted_node.board.cores.total_instructions()
        booted_node.advance(10.0)
        assert booted_node.board.cores.total_instructions() > before

    def test_sync_to_is_idempotent(self, booted_node):
        booted_node.begin_workload(HPL_PROFILE, 22.0)
        booted_node.sync_to(30.0)
        cycles = booted_node.board.cores.cores[0].hpm.cycle
        booted_node.sync_to(30.0)  # same instant: no double counting
        assert booted_node.board.cores.cores[0].hpm.cycle == cycles

    def test_workload_process_on_engine(self):
        engine = Engine()
        node = ComputeNode(hostname="n")
        engine.run_until_complete(engine.spawn(node.boot_process(engine)))
        proc = engine.spawn(node.workload_process(engine, HPL_PROFILE, 30.0))
        engine.run_until_complete(proc)
        assert node.state is NodeState.IDLE
        assert node.board.cores.total_flops() > 0


class TestEmergencyShutdown:
    def test_trip_drops_power_and_frees_memory(self, booted_node):
        booted_node.begin_workload(HPL_PROFILE, 22.0)
        booted_node.emergency_shutdown(25.0)
        assert booted_node.state is NodeState.TRIPPED
        assert booted_node.total_power_w() == 0.0
        assert booted_node.board.memory.allocated_bytes == 0

    def test_tripped_node_can_power_on_again(self, booted_node):
        booted_node.emergency_shutdown(25.0)
        booted_node.power_on(100.0)
        assert booted_node.state is NodeState.BOOTING

    def test_end_workload_noop_when_tripped(self, booted_node):
        booted_node.begin_workload(HPL_PROFILE, 22.0)
        booted_node.emergency_shutdown(25.0)
        booted_node.end_workload(26.0)  # must not raise
        assert booted_node.state is NodeState.TRIPPED
