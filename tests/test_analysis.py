"""Tests for the analysis layer: tables, experiment drivers, report."""

import pytest

from repro.analysis import paper
from repro.analysis.experiments import (
    comparison_table,
    fig2_hpl_scaling,
    fig3_power_traces,
    fig4_boot_power,
    infiniband_status,
    qe_lax_result,
    table1_software_stack,
    table2_topics,
    table4_hwmon,
    table5_stream,
    table6_power,
)
from repro.analysis.tables import render_table


class TestRenderTable:
    def test_basic_layout(self):
        text = render_table(["a", "bb"], [[1, 2.5], ["x", "yyyy"]])
        lines = text.splitlines()
        assert lines[0].split("|")[0].strip() == "a"
        assert "-+-" in lines[1]
        assert len(lines) == 4

    def test_title(self):
        text = render_table(["h"], [["v"]], title="My table")
        assert text.startswith("My table\n")

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])

    def test_float_formatting(self):
        text = render_table(["x"], [[3.14159265]])
        assert "3.142" in text


class TestFastDrivers:
    def test_table1_all_match(self):
        rows = table1_software_stack()
        assert len(rows) == 9
        assert all(match for _n, _i, _p, match in rows)

    def test_table2_topic_shapes(self):
        topics = table2_topics()
        assert topics["pmu_pub"].startswith("org/")
        assert "/core/0/" in topics["pmu_pub"]
        assert "dstat_pub" in topics["stats_pub"]

    def test_table4_is_table_iv(self):
        assert table4_hwmon() == {
            "nvme_temp": "/sys/class/hwmon/hwmon0/temp1_input",
            "mb_temp": "/sys/class/hwmon/hwmon1/temp1_input",
            "cpu_temp": "/sys/class/hwmon/hwmon1/temp2_input",
        }

    def test_fig2_anchors(self):
        scaling = fig2_hpl_scaling()
        assert scaling.point(1).gflops == pytest.approx(1.86, abs=0.04)
        assert scaling.point(8).gflops == pytest.approx(12.65, abs=0.52)
        assert scaling.point(8).fraction_of_linear == pytest.approx(0.85,
                                                                    abs=0.03)
        with pytest.raises(KeyError):
            scaling.point(16)

    def test_table5_within_one_percent(self):
        table = table5_stream()
        for column in table.values():
            for kernel, (measured, reference) in column.items():
                assert measured == pytest.approx(reference, rel=0.01), kernel

    def test_comparison_rows_match_paper(self):
        for machine, hpl, hpl_ref, stream, stream_ref in comparison_table():
            assert hpl == pytest.approx(hpl_ref, abs=0.005), machine
            assert stream == pytest.approx(stream_ref, abs=0.005), machine

    def test_qe_lax(self):
        result = qe_lax_result()
        assert result.throughput.mean == pytest.approx(1.44, abs=0.05)

    def test_table6_rails_within_tolerance(self):
        table = table6_power()
        for column, rails in table.items():
            for rail, (measured, reference) in rails.items():
                assert measured == pytest.approx(reference, abs=25.0), \
                    f"{column}/{rail}"

    def test_fig3_trace_means_track_table_vi(self):
        traces = fig3_power_traces(duration_s=2.0)
        assert traces["hpl"]["core"]["mean_w"] == pytest.approx(4.097,
                                                                abs=0.15)
        assert traces["stream_ddr"]["ddr"]["mean_w"] == pytest.approx(0.95,
                                                                      abs=0.1)

    def test_fig4_decomposition(self):
        boot = fig4_boot_power()
        assert boot["r1_core_w"] == pytest.approx(0.984, abs=0.01)
        assert boot["leakage_fraction"] == pytest.approx(0.32, abs=0.01)
        assert boot["os_fraction"] == pytest.approx(0.17, abs=0.01)

    def test_infiniband_snapshot(self):
        status = infiniband_status()
        assert status.device_recognised and status.board_to_board_ping
        assert not status.rdma_functional


class TestPaperConstants:
    def test_table_vi_totals_match_paper_row(self):
        from repro.power.model import TABLE_VI_MILLIWATTS

        # The paper's Total row: 4810/5935/5486/5336/5670/1385/4024.
        totals = {col: sum(v.values())
                  for col, v in TABLE_VI_MILLIWATTS.items()}
        assert totals["idle"] == 4810
        assert totals["hpl"] == pytest.approx(5935, abs=1)
        assert totals["stream_l2"] == pytest.approx(5486, abs=1)
        assert totals["stream_ddr"] == pytest.approx(5336, abs=1)
        assert totals["qe"] == pytest.approx(5670, abs=1)
        assert totals["boot_r1"] == pytest.approx(1385, abs=1)
        assert totals["boot_r2"] == pytest.approx(4024, abs=1)

    def test_comparison_constants(self):
        assert paper.COMPARISON_FRACTIONS["montecimone"]["hpl"] == 0.465
        assert paper.HPL_FULL_MACHINE["fraction_of_linear"] == 0.85
