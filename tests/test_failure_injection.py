"""Failure-injection tests: trips, power cycles, mid-run faults.

The reproduction must stay coherent when hardware misbehaves — these
tests inject faults at awkward moments and assert the system's recorded
state stays consistent (the Fig. 6 incident is the naturally-occurring
instance of this class).
"""

import pytest

from repro.cluster.cluster import MonteCimoneCluster
from repro.cluster.node import ComputeNode, NodeState
from repro.power.model import HPL_PROFILE
from repro.slurm.api import SlurmAPI
from repro.slurm.job import JobState
from repro.slurm.partition import NodeAllocState
from repro.thermal.enclosure import EnclosureConfig


@pytest.fixture
def cluster():
    cluster = MonteCimoneCluster(enclosure_config=EnclosureConfig.mitigated())
    cluster.boot_all()
    return cluster


class TestInjectedTrips:
    def test_manual_trip_mid_job_fails_job(self, cluster):
        api = SlurmAPI(cluster.slurm)
        job_id = api.sbatch("hpl", "a", nodes=8, duration_s=600.0,
                            profile=HPL_PROFILE)
        cluster.run_for(60.0)
        cluster.nodes["mc-node-3"].emergency_shutdown(cluster.engine.now)
        api.wait_all()
        job = cluster.slurm.jobs[job_id]
        assert job.state is JobState.NODE_FAIL
        assert "mc-node-3" in job.exit_reason

    def test_failed_node_marked_down_and_excluded(self, cluster):
        api = SlurmAPI(cluster.slurm)
        api.sbatch("hpl", "a", nodes=8, duration_s=600.0,
                   profile=HPL_PROFILE)
        cluster.run_for(60.0)
        cluster.nodes["mc-node-3"].emergency_shutdown(cluster.engine.now)
        api.wait_all()
        info = cluster.slurm.partitions["compute"].nodes["mc-node-3"]
        assert info.state is NodeAllocState.DOWN
        # Follow-up jobs schedule around the down node.
        retry = api.srun("retry", "a", nodes=7, duration_s=60.0,
                         profile=HPL_PROFILE)
        assert retry.state is JobState.COMPLETED
        assert "mc-node-3" not in retry.allocated_nodes

    def test_trip_on_idle_node_does_not_affect_jobs(self, cluster):
        api = SlurmAPI(cluster.slurm)
        job_id = api.sbatch("hpl", "a", nodes=4, duration_s=300.0,
                            profile=HPL_PROFILE)
        cluster.run_for(30.0)
        # Trip a node OUTSIDE the allocation.
        job = cluster.slurm.jobs[job_id]
        victim = next(name for name in cluster.nodes
                      if name not in job.allocated_nodes)
        cluster.nodes[victim].emergency_shutdown(cluster.engine.now)
        api.wait_all()
        assert job.state is JobState.COMPLETED

    def test_multiple_simultaneous_trips(self, cluster):
        api = SlurmAPI(cluster.slurm)
        job_id = api.sbatch("hpl", "a", nodes=8, duration_s=600.0,
                            profile=HPL_PROFILE)
        cluster.run_for(60.0)
        now = cluster.engine.now
        for victim in ("mc-node-2", "mc-node-5", "mc-node-8"):
            cluster.nodes[victim].emergency_shutdown(now)
        api.wait_all()
        job = cluster.slurm.jobs[job_id]
        assert job.state is JobState.NODE_FAIL
        down = [info.hostname
                for info in cluster.slurm.partitions["compute"].nodes.values()
                if info.state is NodeAllocState.DOWN]
        assert set(down) == {"mc-node-2", "mc-node-5", "mc-node-8"}


class TestPowerCycleCoherence:
    def test_counters_survive_reading_after_trip(self, cluster):
        node = cluster.nodes["mc-node-1"]
        api = SlurmAPI(cluster.slurm)
        api.sbatch("hpl", "a", nodes=1, duration_s=120.0,
                   profile=HPL_PROFILE)
        cluster.run_for(60.0)
        before = node.board.perf.read(0, "instructions")
        node.emergency_shutdown(cluster.engine.now)
        # Sampling a tripped node's counters must not raise (ExaMon keeps
        # polling until the plugin notices the node is gone).
        assert node.board.perf.read(0, "instructions") == before

    def test_tripped_node_cools_to_ambient(self, cluster):
        node = cluster.nodes["mc-node-1"]
        api = SlurmAPI(cluster.slurm)
        api.sbatch("hpl", "a", nodes=8, duration_s=300.0,
                   profile=HPL_PROFILE)
        cluster.run_for(200.0)
        hot = node.cpu_temperature_c()
        node.emergency_shutdown(cluster.engine.now)
        cluster.run_for(1200.0)
        assert node.cpu_temperature_c() < hot
        assert node.cpu_temperature_c() == pytest.approx(25.0, abs=3.0)

    def test_memory_clean_after_service(self, cluster):
        node = cluster.nodes["mc-node-1"]
        api = SlurmAPI(cluster.slurm)
        api.sbatch("hpl", "a", nodes=1, duration_s=600.0,
                   profile=HPL_PROFILE)
        cluster.run_for(30.0)
        assert node.board.memory.allocated_bytes > 0
        node.emergency_shutdown(cluster.engine.now)
        api.wait_all()
        cluster.run_for(1500.0)  # cool-down
        cluster.service_node("mc-node-1")
        assert node.state is NodeState.IDLE
        assert node.board.memory.allocated_bytes == 0

    def test_double_shutdown_is_idempotent(self, cluster):
        node = cluster.nodes["mc-node-1"]
        node.emergency_shutdown(cluster.engine.now)
        node.emergency_shutdown(cluster.engine.now)  # must not raise
        assert node.state is NodeState.TRIPPED


class TestTripCampaign:
    def test_sweep_covers_lifecycle_and_converges(self):
        from repro.slurm.faults import run_trip_campaign

        # Boot completes ~21 s in; the 120 s job then occupies all nodes.
        # Three trip times land one trial in each lifecycle phase.
        campaign = run_trip_campaign([10.0, 90.0, 200.0])
        assert campaign.phases_covered() == ["boot", "mid-job", "teardown"]
        assert campaign.all_jobs_completed
        assert campaign.all_nodes_recovered
        # Crucially: no injected fault was silently lost by the kernel.
        assert campaign.no_lost_failures

        boot, mid, tail = campaign.trials
        # A boot-time trip delays the job (it waits for recovery) but never
        # fails it; a mid-job trip costs one NODE_FAIL attempt plus the
        # requeued retry; a post-job trip does not touch the job at all.
        assert boot.n_attempts == 1 and boot.restart_count == 0
        assert mid.n_attempts == 2 and mid.restart_count == 1
        assert tail.n_attempts == 1 and tail.restart_count == 0

        report = campaign.summary()
        assert len(report.splitlines()) == 1 + len(campaign.trials)
        assert "mid-job" in report


class TestSchedulerUnderCancellationStorm:
    def test_cancel_everything_leaves_clean_state(self, cluster):
        api = SlurmAPI(cluster.slurm)
        ids = [api.sbatch(f"j{i}", "a", nodes=4, duration_s=500.0,
                          profile=HPL_PROFILE) for i in range(6)]
        cluster.run_for(10.0)
        for job_id in ids:
            cluster.slurm.cancel(job_id)
        api.wait_all()
        assert all(cluster.slurm.jobs[i].state is JobState.CANCELLED
                   for i in ids)
        assert cluster.slurm.partitions["compute"].n_idle() == 8
