"""Tests for the login node and user sessions."""

import pytest

from repro.cluster.cluster import MonteCimoneCluster
from repro.cluster.login import LoginNode
from repro.cluster.services.ldap import AuthenticationError
from repro.power.model import HPL_PROFILE
from repro.slurm.job import JobState
from repro.spack.environment import SpackEnvironment
from repro.spack.installer import Installer
from repro.thermal.enclosure import EnclosureConfig


@pytest.fixture
def login_setup():
    cluster = MonteCimoneCluster(enclosure_config=EnclosureConfig.mitigated())
    cluster.boot_all()
    cluster.ldap.add_user("alice", "s3cret", "hpc-users")
    installer = Installer(nfs=cluster.nfs, modules=cluster.modules)
    SpackEnvironment.monte_cimone().install(installer)
    login = LoginNode(ldap=cluster.ldap, nfs=cluster.nfs,
                      modules=cluster.modules, controller=cluster.slurm)
    return cluster, login


class TestAuthentication:
    def test_successful_login_opens_session(self, login_setup):
        _cluster, login = login_setup
        session = login.ssh("alice", "s3cret")
        assert session.user.uid == "alice"
        assert "alice" in login.active_sessions

    def test_bad_password_recorded(self, login_setup):
        _cluster, login = login_setup
        with pytest.raises(AuthenticationError):
            login.ssh("alice", "wrong")
        assert login.failed_logins == ["alice"]
        assert "alice" not in login.active_sessions

    def test_home_directory_provisioned_on_first_login(self, login_setup):
        cluster, login = login_setup
        login.ssh("alice", "s3cret")
        assert cluster.nfs.exists("/home/alice")
        assert cluster.nfs.exists("/home/alice/jobs")

    def test_logout_idempotent(self, login_setup):
        _cluster, login = login_setup
        login.ssh("alice", "s3cret")
        login.logout("alice")
        login.logout("alice")
        assert login.active_sessions == {}


class TestUserSession:
    def test_home_io_through_nfs(self, login_setup):
        cluster, login = login_setup
        session = login.ssh("alice", "s3cret")
        session.write_file("notes.txt", b"N=40704 NB=192")
        assert session.read_file("notes.txt") == b"N=40704 NB=192"
        # The bytes physically live on the master's NFS server.
        assert cluster.nfs.read("/home/alice/notes.txt") == b"N=40704 NB=192"

    def test_modules_visible_in_session(self, login_setup):
        _cluster, login = login_setup
        session = login.ssh("alice", "s3cret")
        assert "hpl/2.3" in session.module_avail("hpl")
        session.module_load("hpl/2.3")

    def test_sbatch_from_session_runs_job(self, login_setup):
        cluster, login = login_setup
        session = login.ssh("alice", "s3cret")
        script = ("#!/bin/bash\n"
                  "#SBATCH --job-name=session-hpl\n"
                  "#SBATCH -N 2\n"
                  "srun xhpl\n")
        job_id = session.sbatch(script, duration_s=120.0,
                                profile=HPL_PROFILE)
        job = cluster.slurm.jobs[job_id]
        assert job.user == "alice"
        session.slurm.wait_all()
        assert job.state is JobState.COMPLETED

    def test_script_archived_in_home(self, login_setup):
        cluster, login = login_setup
        session = login.ssh("alice", "s3cret")
        script = "#!/bin/bash\n#SBATCH -N 1\nsrun true\n"
        session.sbatch(script, duration_s=5.0)
        jobs_dir = cluster.nfs.listdir("/home/alice/jobs")
        assert any(name.startswith("script-") for name in jobs_dir)

    def test_history_records_commands(self, login_setup):
        _cluster, login = login_setup
        session = login.ssh("alice", "s3cret")
        session.module_avail("hpl")
        session.write_file("x", b"y")
        assert "module avail hpl" in session.history
        assert "write x" in session.history
