"""Tests for the kernel's failure-accounting layer.

Every failed event must be *consumed* (a waiter received the exception)
or explicitly *defused*; anything else must surface as an
:class:`UnconsumedFailureError` diagnostic when the simulation drains.
These tests pin the regression the layer was built for: before it, a
failure injected into a fire-and-forget process — or a late-failing
condition child — was silently dropped, making fault-injection tests
pass vacuously.
"""

import pytest

from repro.events import (Engine, Interrupt, SimulationError,
                          UnconsumedFailureError)


class TestUnconsumedFailures:
    def test_fire_and_forget_process_failure_is_not_silently_dropped(self):
        # THE regression scenario: the old kernel crashed only when the
        # failing process had *no* callbacks at failure time.  Give it one
        # (an AnyOf that already resolved) and the failure used to vanish.
        eng = Engine()

        def buggy(env):
            yield env.timeout(3.0)
            raise RuntimeError("injected fault")

        proc = eng.spawn(buggy(eng), name="fault-injector")
        eng.any_of([eng.timeout(1.0), proc])  # resolves at t=1, before the crash
        with pytest.raises(UnconsumedFailureError) as excinfo:
            eng.run()
        message = str(excinfo.value)
        assert "fault-injector" in message          # names the process
        assert "t=3.000000" in message              # and the simulated time
        assert "injected fault" in message          # and the original error

    def test_diagnostic_includes_traceback(self):
        eng = Engine()

        def buggy(env):
            yield env.timeout(1.0)
            raise ValueError("with context")

        eng.spawn(buggy(eng), name="tb")
        with pytest.raises(UnconsumedFailureError) as excinfo:
            eng.run()
        assert any("raise ValueError" in r.traceback_text
                   for r in excinfo.value.records)

    def test_plain_failed_event_without_waiter_raises_at_drain(self):
        eng = Engine()
        eng.event().fail(RuntimeError("nobody listens"))
        with pytest.raises(UnconsumedFailureError, match="nobody listens"):
            eng.run()

    def test_ledger_records_are_exposed_and_cleared_by_raise(self):
        eng = Engine()
        eng.event().fail(RuntimeError("boom"))
        with pytest.raises(UnconsumedFailureError) as excinfo:
            eng.run()
        assert len(excinfo.value.records) == 1
        assert excinfo.value.records[0].time_s == 0.0
        # The raise reported (and consumed) the records: a caller that
        # catches the diagnostic can keep running.
        assert eng.unconsumed_failures == []
        eng.timeout(1.0)
        eng.run()
        assert eng.now == 1.0

    def test_run_cut_short_by_until_does_not_raise(self):
        # With events still queued a later waiter may yet consume the
        # failure, so only a full drain raises.
        eng = Engine()
        event = eng.event()
        event.fail(RuntimeError("late pickup"))
        eng.timeout(10.0)
        eng.run(until=5.0)
        assert len(eng.unconsumed_failures) == 1

        def late_waiter(env):
            try:
                yield event
            except RuntimeError:
                return "picked up"

        proc = eng.spawn(late_waiter(eng))
        eng.run()
        assert proc.value == "picked up"
        assert eng.unconsumed_failures == []


class TestConsumptionPoints:
    def test_waiting_process_consumes_failure(self):
        eng = Engine()
        event = eng.event()

        def waiter(env):
            try:
                yield event
            except RuntimeError:
                return "handled"

        proc = eng.spawn(waiter(eng))
        event.fail(RuntimeError("handled downstream"))
        eng.run()
        assert proc.value == "handled"

    def test_value_read_consumes_failure(self):
        eng = Engine()
        event = eng.event()
        event.fail(RuntimeError("read me"))
        eng.timeout(1.0)       # keeps the queue alive past the failure
        eng.run(until=0.5)
        with pytest.raises(RuntimeError, match="read me"):
            _ = event.value
        eng.run()              # drains clean: the read consumed the failure

    def test_defuse_suppresses_diagnostic(self):
        eng = Engine()
        event = eng.event()
        event.fail(RuntimeError("expected loss"))
        event.defuse()
        eng.run()
        assert eng.unconsumed_failures == []

    def test_defusing_successful_event_is_noop(self):
        eng = Engine()
        event = eng.event()
        event.succeed("v")
        event.defuse()
        eng.run()
        assert event.value == "v"

    def test_run_until_complete_consumes_target_failure(self):
        eng = Engine()

        def buggy(env):
            yield env.timeout(1.0)
            raise ValueError("surfaced to caller")

        proc = eng.spawn(buggy(eng))
        with pytest.raises(ValueError, match="surfaced to caller"):
            eng.run_until_complete(proc)
        assert eng.unconsumed_failures == []


class TestConditionFailureFlow:
    def test_late_failing_any_of_child_reaches_ledger(self):
        # Regression: the condition already resolved at t=1; the child
        # failing at t=3 used to be swallowed by the triggered-guard.
        eng = Engine()

        def failing_child(env):
            yield env.timeout(3.0)
            raise RuntimeError("late child failure")

        proc = eng.spawn(failing_child(eng), name="late-child")
        eng.any_of([eng.timeout(1.0), proc])
        with pytest.raises(UnconsumedFailureError, match="late-child"):
            eng.run()

    def test_late_failing_all_of_child_reaches_ledger(self):
        eng = Engine()
        first = eng.event()
        second = eng.event()
        combined = eng.all_of([first, second])
        combined.defuse()  # the first failure is absorbed and read below
        first.fail(RuntimeError("first failure"))
        eng.run(until=0.0)
        assert combined.triggered          # aborted by the first failure
        with pytest.raises(RuntimeError, match="first failure"):
            _ = combined.value
        second.fail(RuntimeError("second failure"))
        with pytest.raises(UnconsumedFailureError, match="second failure"):
            eng.run()

    def test_condition_absorbing_failure_consumes_child(self):
        eng = Engine()
        bad = eng.event()

        def waiter(env):
            try:
                yield env.all_of([env.timeout(5.0), bad])
            except RuntimeError:
                return "condition failed"

        proc = eng.spawn(waiter(eng))
        bad.fail(RuntimeError("absorbed"))
        eng.run()
        assert proc.value == "condition failed"
        assert eng.unconsumed_failures == []

    def test_late_success_is_still_ignored(self):
        eng = Engine()
        first = eng.event()
        second = eng.event()
        any_event = eng.any_of([first, second])
        first.succeed("first")
        eng.run(until=0.0)
        assert any_event.value == {first: "first"}
        second.succeed("late")
        eng.run()  # a late *success* needs no defusing; the drain is clean


class TestProcessedEventCallbackGuard:
    def test_append_after_processed_raises(self):
        eng = Engine()
        t = eng.timeout(1.0)
        eng.run()
        assert t.processed
        with pytest.raises(SimulationError, match="already-processed"):
            t.callbacks.append(lambda e: None)

    def test_yield_on_processed_event_still_works(self):
        eng = Engine()
        t = eng.timeout(1.0, value="v")
        eng.run()

        def late(env):
            return (yield t)

        proc = eng.spawn(late(eng))
        eng.run()
        assert proc.value == "v"

    def test_yield_on_processed_failed_event_consumes_failure(self):
        eng = Engine()
        failed = eng.event()
        failed.fail(RuntimeError("stale failure"))
        eng.timeout(2.0)
        eng.run(until=1.0)
        assert len(eng.unconsumed_failures) == 1

        def late(env):
            try:
                yield failed
            except RuntimeError:
                return "late consumption"

        proc = eng.spawn(late(eng))
        eng.run()
        assert proc.value == "late consumption"
        assert eng.unconsumed_failures == []


class TestInterruptLedgerInteraction:
    def test_unhandled_interrupt_without_waiter_reaches_ledger(self):
        eng = Engine()

        def sleeper(env):
            yield env.timeout(100.0)

        proc = eng.spawn(sleeper(eng), name="killed")
        eng.call_at(5.0, lambda: proc.interrupt("forced"))
        with pytest.raises(UnconsumedFailureError, match="killed"):
            eng.run()

    def test_defused_kill_is_intentional(self):
        eng = Engine()

        def sleeper(env):
            yield env.timeout(100.0)

        proc = eng.spawn(sleeper(eng), name="killed-on-purpose")
        eng.call_at(5.0, lambda: (proc.interrupt("shutdown"), proc.defuse()))
        eng.run()
        assert not proc.is_alive
        assert isinstance(proc._exception, Interrupt)
        assert eng.unconsumed_failures == []
