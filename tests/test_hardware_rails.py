"""Tests for power rails and shunt sensors."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.rails import RAIL_NAMES, PowerRail, RailSet, ShuntSensor


class TestShuntSensor:
    def test_measurement_roundtrip_accuracy(self):
        sensor = ShuntSensor()
        assert sensor.measure(3.075) == pytest.approx(3.075, abs=1e-3)

    def test_quantisation_at_1mw(self):
        # The ADC chain quantises at 1 mW — the pll rail reads 1 mW.
        sensor = ShuntSensor()
        assert sensor.measure(0.0014) == pytest.approx(0.001)

    def test_negative_power_rejected(self):
        with pytest.raises(ValueError):
            ShuntSensor().measure(-0.1)

    @given(power=st.floats(min_value=0.0, max_value=10.0))
    @settings(max_examples=100, deadline=None)
    def test_error_bounded_by_half_lsb(self, power):
        """Property: quantisation error ≤ half an LSB-equivalent watt."""
        sensor = ShuntSensor()
        lsb_watts = sensor.adc_lsb_volt / sensor.shunt_ohm * sensor.rail_voltage
        assert abs(sensor.measure(power) - power) <= lsb_watts / 2 + 1e-12


class TestPowerRail:
    def test_energy_integrates_zero_order_hold(self):
        rail = PowerRail("core")
        rail.set_power(2.0, now_s=0.0)
        rail.set_power(4.0, now_s=10.0)   # 2 W held for 10 s
        rail.set_power(0.0, now_s=15.0)   # 4 W held for 5 s
        assert rail.energy_j == pytest.approx(2.0 * 10 + 4.0 * 5)

    def test_time_must_not_go_backwards(self):
        rail = PowerRail("core")
        rail.set_power(1.0, now_s=5.0)
        with pytest.raises(ValueError, match="backwards"):
            rail.set_power(1.0, now_s=4.0)

    def test_negative_power_rejected(self):
        with pytest.raises(ValueError):
            PowerRail("core").set_power(-1.0, now_s=0.0)

    def test_measure_mw(self):
        rail = PowerRail("core")
        rail.set_power(3.075, now_s=0.0)
        assert rail.measure_mw() == pytest.approx(3075, abs=1)


class TestRailSet:
    def test_has_the_nine_table_vi_lines(self):
        rails = RailSet()
        assert rails.names == list(RAIL_NAMES)
        assert len(rails.names) == 9

    def test_contains(self):
        rails = RailSet()
        assert "core" in rails and "pcievph" in rails
        assert "nonexistent" not in rails

    def test_set_powers_and_total(self):
        rails = RailSet()
        rails.set_powers({"core": 3.0, "ddr_mem": 0.4}, now_s=0.0)
        assert rails.total_w() == pytest.approx(3.4)

    def test_measure_all_returns_every_rail(self):
        rails = RailSet()
        measured = rails.measure_all_mw()
        assert set(measured) == set(RAIL_NAMES)

    def test_empty_rail_set_rejected(self):
        with pytest.raises(ValueError):
            RailSet([])
