"""Tier-1 gate: the source tree must satisfy its own static invariants.

This is the machine-enforcement half of the determinism contract stated in
``repro/events/engine.py``: any PR that reintroduces a wall-clock read, an
unseeded RNG, a salted ``hash()`` seed, a re-typed datasheet constant, or a
unit-suffix mismatch fails here (and in CI, which runs the same linter).
"""

from pathlib import Path

from repro.lint.runner import lint_paths

SRC = Path(__file__).parent.parent / "src" / "repro"


def test_source_tree_has_no_unsuppressed_findings():
    result = lint_paths([SRC])
    rendered = "\n".join(f.render() for f in result.active)
    assert result.ok, f"simlint found violations in src/repro:\n{rendered}"


def test_source_tree_was_actually_scanned():
    # Guard against a silent no-op (e.g. a future path refactor): the tree
    # has well over fifty modules and every scan must keep seeing them.
    result = lint_paths([SRC])
    assert result.files_checked > 50


def test_calibration_anchors_are_loaded():
    # CAL301 is only meaningful while specs.py parses and exports anchors;
    # if this shrinks to nothing the clean-tree test above proves little.
    from repro.lint.rules.calibration import anchor_values
    anchors = anchor_values()
    # The literals below test the anchor set itself, so they necessarily
    # repeat the spec values CAL301 normally forbids duplicating.
    assert 7760e6 in anchors, "DDR peak bandwidth anchor lost"  # simlint: disable=CAL301
    assert 1.2e9 in anchors, "U740 clock anchor lost"  # simlint: disable=CAL301
