"""Tests for the real numpy kernels: LU, solve, residual, Jacobi, STREAM.

These validate that the algorithms the performance models account for are
actually implemented correctly — the grounding of the reproduction.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.benchmarks.kernels import (
    blocked_jacobi_eigh,
    blocked_lu,
    hpl_residual,
    lu_solve,
    stream_add,
    stream_copy,
    stream_scale,
    stream_triad,
)

RNG = np.random.default_rng(42)


class TestStreamKernels:
    def test_copy(self):
        a, c = RNG.normal(size=100), np.zeros(100)
        stream_copy(a, c)
        assert np.array_equal(c, a)

    def test_scale(self):
        c, b = RNG.normal(size=100), np.zeros(100)
        stream_scale(b, c, scalar=3.0)
        assert np.allclose(b, 3.0 * c)

    def test_add(self):
        a, b, c = RNG.normal(size=100), RNG.normal(size=100), np.zeros(100)
        stream_add(a, b, c)
        assert np.allclose(c, a + b)

    def test_triad(self):
        b, c = RNG.normal(size=100), RNG.normal(size=100)
        a = np.zeros(100)
        stream_triad(a, b, c, scalar=3.0)
        assert np.allclose(a, b + 3.0 * c)


class TestBlockedLU:
    @pytest.mark.parametrize("n,nb", [(8, 3), (16, 4), (50, 8), (64, 64),
                                      (33, 5)])
    def test_factorisation_reconstructs_matrix(self, n, nb):
        a = RNG.normal(size=(n, n)) + n * np.eye(n)
        lu, piv = blocked_lu(a, nb=nb)
        lower = np.tril(lu, -1) + np.eye(n)
        upper = np.triu(lu)
        assert np.allclose(lower @ upper, a[np.asarray(piv)], atol=1e-9)

    def test_solve_matches_numpy(self):
        n = 40
        a = RNG.normal(size=(n, n)) + n * np.eye(n)
        b = RNG.normal(size=n)
        lu, piv = blocked_lu(a, nb=7)
        x = lu_solve(lu, piv, b)
        assert np.allclose(x, np.linalg.solve(a, b), atol=1e-8)

    def test_partial_pivoting_handles_zero_leading_element(self):
        a = np.array([[0.0, 1.0], [1.0, 0.0]])
        lu, piv = blocked_lu(a, nb=1)
        x = lu_solve(lu, piv, np.array([2.0, 3.0]))
        assert np.allclose(x, [3.0, 2.0])

    def test_singular_matrix_raises(self):
        with pytest.raises(np.linalg.LinAlgError):
            blocked_lu(np.zeros((4, 4)))

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            blocked_lu(np.zeros((3, 4)))

    def test_block_size_independence(self):
        a = RNG.normal(size=(24, 24)) + 24 * np.eye(24)
        b = RNG.normal(size=24)
        x1 = lu_solve(*blocked_lu(a, nb=1), b)
        x24 = lu_solve(*blocked_lu(a, nb=24), b)
        assert np.allclose(x1, x24, atol=1e-9)

    @given(n=st.integers(min_value=2, max_value=20),
           seed=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=30, deadline=None)
    def test_hpl_residual_passes_for_well_conditioned(self, n, seed):
        """Property: the HPL pass criterion holds on random systems."""
        rng = np.random.default_rng(seed)
        a = rng.normal(size=(n, n)) + n * np.eye(n)
        b = rng.normal(size=n)
        x = lu_solve(*blocked_lu(a, nb=4), b)
        assert hpl_residual(a, x, b) < 16.0  # HPL's PASSED threshold

    def test_residual_detects_wrong_solution(self):
        n = 10
        a = RNG.normal(size=(n, n)) + n * np.eye(n)
        b = RNG.normal(size=n)
        assert hpl_residual(a, np.zeros(n), b) > 16.0


class TestJacobiEigh:
    @pytest.mark.parametrize("n", [2, 5, 16, 32])
    def test_matches_numpy_eigh(self, n):
        a = RNG.normal(size=(n, n))
        a = (a + a.T) / 2
        values, vectors = blocked_jacobi_eigh(a)
        expected = np.linalg.eigvalsh(a)
        assert np.allclose(values, expected, atol=1e-8)
        # Eigenvector check: A v = λ v for every pair.
        for k in range(n):
            assert np.allclose(a @ vectors[:, k], values[k] * vectors[:, k],
                               atol=1e-7)

    def test_eigenvectors_orthonormal(self):
        a = RNG.normal(size=(12, 12))
        a = (a + a.T) / 2
        _values, vectors = blocked_jacobi_eigh(a)
        assert np.allclose(vectors.T @ vectors, np.eye(12), atol=1e-9)

    def test_asymmetric_rejected(self):
        with pytest.raises(ValueError, match="symmetric"):
            blocked_jacobi_eigh(np.array([[1.0, 2.0], [3.0, 4.0]]))

    def test_diagonal_matrix_is_fixed_point(self):
        d = np.diag([3.0, 1.0, 2.0])
        values, _vectors = blocked_jacobi_eigh(d)
        assert np.allclose(values, [1.0, 2.0, 3.0])

    def test_eigenvalues_ascending(self):
        a = RNG.normal(size=(9, 9))
        a = (a + a.T) / 2
        values, _ = blocked_jacobi_eigh(a)
        assert np.all(np.diff(values) >= -1e-12)
