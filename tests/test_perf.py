"""Tests for the performance-analysis layer: roofline, scaling, machines."""

import pytest

from repro.benchmarks.hpl import HPLModel
from repro.hardware.specs import MONTE_CIMONE_NODE
from repro.perf.machines import compare_machine, utilisation_table
from repro.perf.roofline import Roofline, RooflinePoint
from repro.perf.scaling import strong_scaling_table


class TestRoofline:
    ROOFLINE = Roofline()

    def test_peaks(self):
        assert self.ROOFLINE.peak_gflops == pytest.approx(4.0)
        assert self.ROOFLINE.peak_bandwidth_gb_s == pytest.approx(7.76)

    def test_ridge_point(self):
        # 4 GFLOP/s over 7.76 GB/s: ridge at ~0.515 FLOP/byte.
        assert self.ROOFLINE.ridge_intensity == pytest.approx(0.515, abs=0.01)

    def test_attainable_below_and_above_ridge(self):
        low = self.ROOFLINE.attainable_gflops(0.1)
        assert low == pytest.approx(0.776)
        assert self.ROOFLINE.attainable_gflops(10.0) == pytest.approx(4.0)

    def test_compute_vs_memory_bound(self):
        assert self.ROOFLINE.is_compute_bound(8.0)       # HPL
        assert not self.ROOFLINE.is_compute_bound(0.083)  # STREAM triad

    def test_paper_points_lie_under_the_roof(self):
        for point in self.ROOFLINE.paper_points():
            assert self.ROOFLINE.check_point(point), point.label

    def test_point_above_roof_detected(self):
        bogus = RooflinePoint("impossible", 10.0, 5.0)
        assert not self.ROOFLINE.check_point(bogus)

    def test_point_validation(self):
        with pytest.raises(ValueError):
            RooflinePoint("bad", -1.0, 1.0)


class TestScalingTable:
    def test_needs_single_node_baseline(self):
        with pytest.raises(ValueError):
            strong_scaling_table(HPLModel(), node_counts=(2, 4))

    def test_baseline_speedup_is_one(self):
        points = strong_scaling_table(HPLModel())
        assert points[0].n_nodes == 1
        assert points[0].speedup == pytest.approx(1.0)

    def test_fraction_of_linear_decreasing(self):
        points = strong_scaling_table(HPLModel())
        fractions = [p.fraction_of_linear for p in points]
        assert fractions == sorted(fractions, reverse=True)


class TestMachineComparison:
    TABLE = utilisation_table()

    def test_all_three_machines_present(self):
        assert set(self.TABLE) == {"montecimone", "marconi100power9",
                                   "armidathunderx2"}

    def test_paper_fraction_ordering(self):
        # Armida > Marconi100 > Monte Cimone on both metrics (§V-A).
        hpl = {m: row.hpl_fraction for m, row in self.TABLE.items()}
        stream = {m: row.stream_fraction for m, row in self.TABLE.items()}
        assert (hpl["armidathunderx2"] > hpl["marconi100power9"]
                > hpl["montecimone"])
        assert (stream["armidathunderx2"] > stream["marconi100power9"]
                > stream["montecimone"])

    def test_monte_cimone_row(self):
        row = self.TABLE["montecimone"]
        assert row.isa == "RV64GCB"
        assert row.peak_gflops == pytest.approx(4.0)
        assert row.hpl_gflops == pytest.approx(1.86, abs=0.04)

    def test_stream_fraction_close_to_paper(self):
        row = self.TABLE["montecimone"]
        assert row.stream_fraction == pytest.approx(0.155, abs=0.003)

    def test_compare_machine_is_deterministic(self):
        first = compare_machine(MONTE_CIMONE_NODE)
        second = compare_machine(MONTE_CIMONE_NODE)
        assert first == second
