"""Tests for the simulated /proc view."""

import pytest

from repro.cluster.procfs import CpuTimes, ProcFS

GIB = 1024 ** 3


class TestCpuTimes:
    def test_empty_is_idle(self):
        assert CpuTimes().percentages()["idl"] == 100.0

    def test_percentages_sum_to_100(self):
        times = CpuTimes(usr=30, sys=10, idl=55, wai=5)
        assert sum(times.percentages().values()) == pytest.approx(100.0)


class TestProcFS:
    def _procfs(self):
        return ProcFS(n_cores=4, dram_bytes=16 * GIB)

    def test_validation(self):
        with pytest.raises(ValueError):
            ProcFS(n_cores=0, dram_bytes=1)

    def test_busy_interval_shows_user_time(self):
        procfs = self._procfs()
        procfs.account_cpu(10.0, utilisation=1.0)
        pct = procfs.cpu.percentages()
        assert pct["usr"] > 85.0
        assert pct["idl"] < 5.0

    def test_idle_interval_shows_idle_time(self):
        procfs = self._procfs()
        procfs.account_cpu(10.0, utilisation=0.0)
        assert procfs.cpu.percentages()["idl"] == pytest.approx(100.0)

    def test_load_average_rises_under_load(self):
        procfs = self._procfs()
        for _ in range(120):
            procfs.account_cpu(1.0, utilisation=1.0)
        # 4 busy cores → load approaches 4; 1m average reacts fastest.
        assert procfs.load_1m > 3.0
        assert procfs.load_1m > procfs.load_5m > procfs.load_15m

    def test_load_average_decays_when_idle(self):
        procfs = self._procfs()
        for _ in range(120):
            procfs.account_cpu(1.0, utilisation=1.0)
        peak = procfs.load_1m
        for _ in range(300):
            procfs.account_cpu(1.0, utilisation=0.0)
        assert procfs.load_1m < 0.2 * peak

    def test_interrupts_scale_with_activity(self):
        busy, idle = self._procfs(), self._procfs()
        busy.account_cpu(10.0, utilisation=1.0)
        idle.account_cpu(10.0, utilisation=0.0)
        assert busy.interrupts_total > idle.interrupts_total

    def test_negative_interval_rejected(self):
        with pytest.raises(ValueError):
            self._procfs().account_cpu(-1.0, 0.5)

    def test_memory_mirror(self):
        procfs = self._procfs()
        procfs.update_memory({"used": 100, "free": 200, "buff": 10, "cach": 20})
        assert procfs.memory() == {"used": 100, "free": 200,
                                   "buff": 10, "cach": 20}

    def test_render_loadavg_kernel_format(self):
        procfs = self._procfs()
        text = procfs.render_loadavg()
        parts = text.split()
        assert len(parts) == 5
        float(parts[0])  # parses

    def test_render_stat_has_cpu_line(self):
        assert self._procfs().render_stat().startswith("cpu  ")

    def test_render_meminfo_kb_units(self):
        text = self._procfs().render_meminfo()
        assert "MemTotal:" in text and "kB" in text
        total_kb = int(text.splitlines()[0].split()[1])
        assert total_kb == 16 * GIB // 1024
