"""Determinism equivalence: tiered kernel vs heap kernels, byte-for-byte.

The perf work replaced the seed kernel's single binary heap with three
scheduling tiers (zero-delay FIFO lane, calendar-bucket wheel, active
slot).  Speed means nothing here unless the *order* of event processing
is exactly what the heap produced — every figure of the reproduction is
downstream of that order.  This suite proves equivalence three ways:

1. **Scripted workloads** — the same workload script runs on the live
   :class:`~repro.events.engine.Engine`, the frozen
   :class:`~repro.events._seed.SeedEngine` and the
   :class:`~repro.events._seed.HeapReferenceEngine` (live event classes,
   heap scheduler), and the recorded ``(time, label)`` logs must match
   exactly — no tolerance, no sorting.
2. **Full stack** — a complete cluster run (boot, ExaMon deployment,
   an HPL job) driven by the tiered engine and by the heap reference
   engine must leave *byte-identical* time-series databases behind
   (``json.dumps`` string equality), plus byte-identical analytic
   artifacts (Fig. 3 / Fig. 4 / Table VI) across repeated evaluation.
3. **Timer-wheel edge cases** — interrupt delivery through wheel
   buckets, double interrupts, moot interrupts, sub-resolution bucket
   splits and FIFO preemption of an active slot behave identically on
   all kernels and leave the failure ledger clean.
"""

import json

import pytest

from repro.events._seed import HeapReferenceEngine, SeedEngine
from repro.events.engine import Engine
from repro.events.process import Interrupt

ENGINES = [Engine, SeedEngine, HeapReferenceEngine]
LIVE_ENGINES = [Engine, HeapReferenceEngine]


def logs_for(script, engines=ENGINES):
    """Run ``script(engine)`` on each engine class; return the logs."""
    return [script(engine_cls()) for engine_cls in engines]


def assert_all_equal(logs):
    first = logs[0]
    for other in logs[1:]:
        assert other == first


# ---------------------------------------------------------------------------
# 1. Scripted workloads
# ---------------------------------------------------------------------------
def periodic_script(engine):
    """Shared-instant call_at chains + zero-delay events (wheel showcase)."""
    log = []
    remaining = [7] * 24

    def make_tick(i):
        def tick():
            log.append((engine.now, "tick", i))
            done = engine.event()
            done.callbacks.append(
                lambda e: log.append((engine.now, "zero", i, e._value)))
            done.succeed(i * 10)
            remaining[i] -= 1
            if remaining[i]:
                engine.call_at(engine.now + 0.25, tick)
        return tick

    for i in range(24):
        engine.call_at(0.25, make_tick(i))
    engine.run()
    return log


def chaos_script(engine):
    """Scattered timestamps, any_of races, interrupts (heap stress)."""
    log = []

    def sidekick(env, i, period):
        try:
            while True:
                yield env.timeout(period)
                log.append((env.now, "side", i))
        except Interrupt as intr:
            log.append((env.now, "interrupted", i, str(intr)))

    def worker(env, i):
        period = 0.31 + (i % 7) * 0.17
        mate = env.spawn(sidekick(env, i, period * 1.73), name=f"side-{i}")
        for j in range(9):
            yield env.timeout(period)
            log.append((env.now, "work", i, j))
            if (i + j) % 4 == 0:
                flag = env.event()
                flag.succeed(j)
                fired = yield env.any_of([flag, env.timeout(period / 3.0)])
                log.append((env.now, "race", i,
                            sorted(repr(v) for v in fired.values())))
            if (i + j) % 5 == 0 and mate.is_alive:
                mate.interrupt(f"rotate-{j}")
                mate = env.spawn(sidekick(env, i, period * 1.31),
                                 name=f"side-{i}-{j}")
        if mate.is_alive:
            mate.interrupt("done")

    for i in range(16):
        engine.spawn(worker(engine, i), name=f"worker-{i}")
    engine.run()
    engine.check_failures()
    return log


def mixed_instant_script(engine):
    """Zero-delay and delayed events interleaved at one shared instant.

    Events landing at the same simulated time from different tiers must
    still process in global sequence order — this is the FIFO-preempts-
    slot merge case.
    """
    log = []

    def driver(env):
        # Two wheel buckets at t=1.0 and t=2.0, each multi-event.
        for k in range(4):
            env.call_at(1.0, lambda k=k: log.append((env.now, "a", k)))
            env.call_at(2.0, lambda k=k: log.append((env.now, "b", k)))
        yield env.timeout(1.0)
        # Now inside the t=1.0 instant: zero-delay events racing the
        # remainder of the active bucket.
        for k in range(3):
            done = env.event()
            done.callbacks.append(
                lambda e, k=k: log.append((env.now, "fifo", k)))
            done.succeed(k)
        yield env.timeout(0.0)
        log.append((env.now, "after-zero"))
        yield env.timeout(1.0)
        log.append((env.now, "after-two"))

    engine.spawn(driver(engine), name="driver")
    engine.run()
    return log


def sub_resolution_script(engine):
    """Distinct fire times one ulp-ish apart get distinct buckets."""
    log = []
    base = 1.0
    for k, dt in enumerate((0.0, 1e-12, 2e-12, 1e-9)):
        engine.call_at(base + dt, lambda k=k: log.append((engine.now, k)))
    engine.call_at(base, lambda: log.append((engine.now, "tie")))
    engine.run()
    return log


@pytest.mark.parametrize("script", [periodic_script, chaos_script,
                                    mixed_instant_script,
                                    sub_resolution_script])
def test_scripted_workloads_identical_across_kernels(script):
    assert_all_equal(logs_for(script))


def test_tier_counters_match_heap_event_total():
    """Both kernels consume identical sequence numbers per schedule call.

    Identical counter consumption is the invariant the (time, seq) merge
    proof rests on: if the tiered kernel ever burned an extra sequence
    number, same-instant ordering could silently diverge from the heap.
    """
    live = Engine()
    chaos_script(live)
    reference = HeapReferenceEngine()
    chaos_script(reference)
    assert live.fifo_hits > 0 and live.wheel_hits > 0
    assert next(live._counter) == next(reference._counter)


# ---------------------------------------------------------------------------
# 2. Full stack and analytic artifacts
# ---------------------------------------------------------------------------
def _full_stack_tsdb_dump(engine):
    """Boot the cluster, deploy ExaMon, run a short HPL job; dump the TSDB."""
    from repro.cluster.cluster import MonteCimoneCluster
    from repro.examon.deployment import ExamonDeployment
    from repro.power.model import HPL_PROFILE
    from repro.slurm.api import SlurmAPI
    from repro.thermal.enclosure import EnclosureConfig

    cluster = MonteCimoneCluster(
        engine=engine, enclosure_config=EnclosureConfig.mitigated())
    cluster.boot_all()
    deployment = ExamonDeployment(cluster)
    deployment.start()
    api = SlurmAPI(cluster.slurm)
    api.srun("hpl", "equiv", nodes=8, duration_s=30.0, profile=HPL_PROFILE)
    db = deployment.db
    return json.dumps(
        {topic: db.query(topic) for topic in db.topics()},
        sort_keys=True)


@pytest.mark.slow
def test_full_stack_tsdb_byte_identical():
    dumps = [_full_stack_tsdb_dump(engine_cls())
             for engine_cls in LIVE_ENGINES]
    assert dumps[0] == dumps[1]
    assert len(dumps[0]) > 10_000  # a real run, not two empty databases


def test_analytic_artifacts_byte_stable():
    """Fig. 3 / Fig. 4 / Table VI serialize identically across calls."""
    from repro.analysis.experiments import (fig3_power_traces,
                                            fig4_boot_power, table6_power)

    for artifact in (fig3_power_traces, fig4_boot_power, table6_power):
        first = json.dumps(artifact(), sort_keys=True)
        second = json.dumps(artifact(), sort_keys=True)
        assert first == second and len(first) > 50


# ---------------------------------------------------------------------------
# 3. Timer-wheel edge cases
# ---------------------------------------------------------------------------
def interrupt_through_wheel_script(engine):
    """Interrupt a process parked on a far-future wheel bucket."""
    log = []

    def sleeper(env):
        try:
            yield env.timeout(1000.0)
            log.append((env.now, "overslept"))
        except Interrupt as intr:
            log.append((env.now, "woken", str(intr)))

    def waker(env, proc):
        yield env.timeout(2.5)
        proc.interrupt("alarm")

    proc = engine.spawn(sleeper(engine), name="sleeper")
    engine.spawn(waker(engine, proc), name="waker")
    engine.run()
    engine.check_failures()
    return log


def double_interrupt_script(engine):
    """Two same-instant interrupts deliver both, in order."""
    log = []

    def stubborn(env):
        for _ in range(2):
            try:
                yield env.timeout(50.0)
            except Interrupt as intr:
                log.append((env.now, "caught", str(intr)))
        log.append((env.now, "exhausted"))
        yield env.timeout(0.0)

    def aggressor(env, proc):
        yield env.timeout(1.0)
        proc.interrupt("first")
        proc.interrupt("second")

    proc = engine.spawn(stubborn(engine), name="stubborn")
    engine.spawn(aggressor(engine, proc), name="aggressor")
    engine.run()
    engine.check_failures()
    return log


def moot_interrupt_script(engine):
    """Interrupting a process that finished this instant is a no-op."""
    log = []

    def quick(env):
        yield env.timeout(1.0)
        log.append((env.now, "done"))

    def late(env, proc):
        yield env.timeout(1.0)
        if proc.is_alive:
            proc.interrupt("too-late")
        log.append((env.now, "late-done", proc.is_alive))

    proc = engine.spawn(quick(engine), name="quick")
    engine.spawn(late(engine, proc), name="late")
    engine.run()
    engine.check_failures()  # the moot interrupt must not ledger
    return log


@pytest.mark.parametrize("script", [interrupt_through_wheel_script,
                                    double_interrupt_script,
                                    moot_interrupt_script])
def test_edge_cases_identical_across_kernels(script):
    logs = logs_for(script)
    assert_all_equal(logs)
    assert logs[0], "edge-case script must actually log something"


def test_chaos_fault_windows_drain_ledger_clean():
    """After the bench chaos mix, no unconsumed failures remain queued."""
    from repro.perf.bench import chaos_workload

    for engine_cls in LIVE_ENGINES:
        engine = engine_cls()
        chaos_workload(engine, 24, 12)
        engine.check_failures()
        assert engine.queue_depth == 0
