"""Tests for the validation checklist and sacct rendering."""

import pytest

from repro.analysis.validate import CheckResult, render_checklist, run_validation
from repro.cluster.cluster import MonteCimoneCluster
from repro.power.energy import JobEnergyAccounting
from repro.power.model import HPL_PROFILE
from repro.slurm.accounting import render_sacct
from repro.slurm.api import SlurmAPI
from repro.thermal.enclosure import EnclosureConfig


class TestCheckResult:
    def test_compare_within_tolerance(self):
        check = CheckResult.compare("x", measured=1.86, expected=1.85,
                                    tolerance=0.04)
        assert check.passed

    def test_compare_outside_tolerance(self):
        check = CheckResult.compare("x", measured=2.0, expected=1.85,
                                    tolerance=0.04)
        assert not check.passed


class TestValidation:
    CHECKS = run_validation(include_slow=False)

    def test_fast_set_all_pass(self):
        failing = [check.name for check in self.CHECKS if not check.passed]
        assert failing == []

    def test_fast_set_covers_every_table(self):
        names = " ".join(check.name for check in self.CHECKS)
        for fragment in ("Table I", "Table V", "Table VI", "HPL", "QE",
                         "Fig. 4", "IB"):
            assert fragment in names

    def test_checklist_rendering(self):
        text = render_checklist(self.CHECKS)
        assert text.count("[PASS]") == len(self.CHECKS)
        assert f"{len(self.CHECKS)}/{len(self.CHECKS)} checks passed" in text

    def test_failed_check_rendered_as_fail(self):
        fake = [CheckResult("broken", 1.0, 2.0, 0.1, False)]
        text = render_checklist(fake)
        assert "[FAIL] broken" in text
        assert "0/1 checks passed" in text


class TestSacct:
    @pytest.fixture
    def cluster_with_history(self):
        cluster = MonteCimoneCluster(
            enclosure_config=EnclosureConfig.mitigated())
        cluster.boot_all()
        accounting = JobEnergyAccounting(cluster.slurm)
        api = SlurmAPI(cluster.slurm)
        api.srun("hpl-full", "alice", nodes=8, duration_s=300.0,
                 profile=HPL_PROFILE)
        api.srun("qe-small", "bob", nodes=1, duration_s=40.0,
                 profile=HPL_PROFILE)
        return cluster, accounting

    def test_rows_include_energy(self, cluster_with_history):
        cluster, accounting = cluster_with_history
        text = render_sacct(cluster.slurm, accounting)
        assert "hpl-full" in text and "qe-small" in text
        assert "COMPLETED" in text
        # 8 nodes × ~5.94 W × 300 s ≈ 14.3 kJ appears in the table.
        assert "14.2" in text or "14.3" in text

    def test_user_filter(self, cluster_with_history):
        cluster, accounting = cluster_with_history
        text = render_sacct(cluster.slurm, accounting, user="bob")
        assert "qe-small" in text
        assert "hpl-full" not in text

    def test_without_energy_ledger(self, cluster_with_history):
        cluster, _accounting = cluster_with_history
        text = render_sacct(cluster.slurm)
        assert "--" in text  # energy columns blank

    def test_empty_history(self):
        cluster = MonteCimoneCluster(
            enclosure_config=EnclosureConfig.mitigated())
        cluster.boot_all()
        assert "(no finished jobs)" in render_sacct(cluster.slurm)

    def test_elapsed_format(self, cluster_with_history):
        cluster, accounting = cluster_with_history
        text = render_sacct(cluster.slurm, accounting)
        assert "00:05:00" in text  # the 300 s job
