"""Tests for pmu_pub and stats_pub against a booted node."""

import pytest

from repro.cluster.node import ComputeNode
from repro.examon.broker import MQTTBroker
from repro.examon.payload import decode_payload
from repro.examon.plugins.pmu_pub import PmuPubPlugin
from repro.examon.plugins.stats_pub import TABLE_III_METRICS, StatsPubPlugin
from repro.events import Engine
from repro.power.model import HPL_PROFILE


def booted_node(patched_uboot=True):
    node = ComputeNode(hostname="mc-node-1", patched_uboot=patched_uboot)
    node.power_on(0.0)
    node.start_bootloader(6.0)
    node.finish_boot(21.0)
    return node


class TestPmuPub:
    def test_default_rate_2hz(self):
        plugin = PmuPubPlugin(booted_node(), MQTTBroker())
        assert plugin.sample_hz == 2.0
        assert plugin.period_s == 0.5

    def test_sample_covers_all_cores(self):
        plugin = PmuPubPlugin(booted_node(), MQTTBroker())
        metrics = plugin.sample(22.0)
        for core in range(4):
            assert any(f"/core/{core}/" in topic for topic in metrics)

    def test_patched_uboot_publishes_programmable_events(self):
        plugin = PmuPubPlugin(booted_node(patched_uboot=True), MQTTBroker())
        metrics = plugin.sample(22.0)
        assert any(topic.endswith("/fp_ops") for topic in metrics)

    def test_stock_uboot_publishes_fixed_only(self):
        plugin = PmuPubPlugin(booted_node(patched_uboot=False), MQTTBroker())
        metrics = plugin.sample(22.0)
        suffixes = {topic.rsplit("/", 1)[1] for topic in metrics}
        assert suffixes == {"cycles", "instructions"}

    def test_publish_once_encodes_table_ii_payload(self):
        broker = MQTTBroker()
        received = []
        broker.subscribe("test", "#", received.append)
        plugin = PmuPubPlugin(booted_node(), broker)
        count = plugin.publish_once(30.0)
        assert count == len(received)
        value, timestamp = decode_payload(received[0].payload)
        assert timestamp == 30.0
        assert value >= 0

    def test_counters_increase_under_load(self):
        node = booted_node()
        plugin = PmuPubPlugin(node, MQTTBroker())
        topic = plugin.schema.pmu_topic("mc-node-1", 0, "instructions")
        before = plugin.sample(22.0)[topic]
        node.begin_workload(HPL_PROFILE, 22.0)
        node.advance(10.0)
        after = plugin.sample(32.0)[topic]
        assert after > before

    def test_run_as_engine_process(self):
        engine = Engine()
        broker = MQTTBroker()
        plugin = PmuPubPlugin(booted_node(), broker)
        engine.spawn(plugin.run(engine))
        engine.run(until=5.0)
        # 2 Hz for 5 s, first sample at t=0 → 11 sampling instants
        # (t = 0.0, 0.5, ..., 5.0); the boot window is monitored too.
        assert plugin.samples_taken == 11
        plugin.stop()


class TestStatsPub:
    def test_default_rate_0_2hz(self):
        plugin = StatsPubPlugin(booted_node(), MQTTBroker())
        assert plugin.sample_hz == 0.2
        assert plugin.period_s == 5.0

    def test_all_table_iii_metrics_published(self):
        plugin = StatsPubPlugin(booted_node(), MQTTBroker())
        metrics = plugin.sample(22.0)
        published = {topic.rsplit("/data/", 1)[1] for topic in metrics}
        expected = {metric for group in TABLE_III_METRICS.values()
                    for metric in group}
        assert published == expected

    def test_temperatures_come_from_hwmon(self):
        node = booted_node()
        node.board.hwmon.set_celsius("cpu_temp", 66.0)
        plugin = StatsPubPlugin(node, MQTTBroker())
        metrics = plugin.sample(22.0)
        topic = plugin.schema.stats_topic("mc-node-1", "temperature.cpu_temp")
        assert metrics[topic] == pytest.approx(66.0)

    def test_cpu_usage_reflects_load(self):
        node = booted_node()
        node.begin_workload(HPL_PROFILE, 22.0)
        node.advance(60.0)
        plugin = StatsPubPlugin(node, MQTTBroker())
        metrics = plugin.sample(82.0)
        usr_topic = plugin.schema.stats_topic("mc-node-1", "total_cpu_usage.usr")
        assert metrics[usr_topic] > 50.0

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            StatsPubPlugin(booted_node(), MQTTBroker(), sample_hz=0.0)
