"""Tests for generator-based processes: spawning, waiting, interrupts."""

import pytest

from repro.events import Engine, Interrupt, SimulationError


def test_process_runs_and_returns_value():
    eng = Engine()

    def worker(env):
        yield env.timeout(2.0)
        return 42

    proc = eng.spawn(worker(eng))
    eng.run()
    assert proc.value == 42
    assert not proc.is_alive


def test_process_receives_timeout_value():
    eng = Engine()
    got = []

    def worker(env):
        value = yield env.timeout(1.0, value="hello")
        got.append(value)

    eng.spawn(worker(eng))
    eng.run()
    assert got == ["hello"]


def test_process_waits_on_child_process():
    eng = Engine()

    def child(env):
        yield env.timeout(3.0)
        return "done"

    def parent(env):
        result = yield env.spawn(child(env))
        assert env.now == 3.0
        return result

    proc = eng.spawn(parent(eng))
    eng.run()
    assert proc.value == "done"


def test_two_processes_interleave():
    eng = Engine()
    log = []

    def ticker(env, name, period):
        for _ in range(3):
            yield env.timeout(period)
            log.append((name, env.now))

    eng.spawn(ticker(eng, "fast", 1.0))
    eng.spawn(ticker(eng, "slow", 2.0))
    eng.run()
    # At t=2.0 the slow ticker's timeout was scheduled earlier (at t=0)
    # than the fast ticker's second one (at t=1), so it fires first —
    # the kernel's deterministic insertion-order rule.
    assert log == [("fast", 1.0), ("slow", 2.0), ("fast", 2.0),
                   ("fast", 3.0), ("slow", 4.0), ("slow", 6.0)]


def test_interrupt_delivers_cause():
    eng = Engine()
    caught = []

    def sleeper(env):
        try:
            yield env.timeout(100.0)
        except Interrupt as interrupt:
            caught.append((env.now, interrupt.cause))

    proc = eng.spawn(sleeper(eng))
    eng.call_at(5.0, lambda: proc.interrupt("preempted"))
    eng.run()
    assert caught == [(5.0, "preempted")]


def test_interrupted_process_can_continue():
    eng = Engine()
    done_at = []

    def sleeper(env):
        try:
            yield env.timeout(100.0)
        except Interrupt:
            pass
        yield env.timeout(1.0)
        done_at.append(env.now)

    proc = eng.spawn(sleeper(eng))
    eng.call_at(5.0, lambda: proc.interrupt())
    eng.run()
    assert done_at == [6.0]


def test_interrupting_finished_process_is_error():
    eng = Engine()

    def quick(env):
        yield env.timeout(1.0)

    proc = eng.spawn(quick(eng))
    eng.run()
    with pytest.raises(SimulationError):
        proc.interrupt()


def test_unhandled_interrupt_fails_waiters():
    eng = Engine()

    def sleeper(env):
        yield env.timeout(100.0)

    def parent(env):
        try:
            yield proc
        except Interrupt:
            return "child interrupted"
        return "child finished"

    proc = eng.spawn(sleeper(eng))
    parent_proc = eng.spawn(parent(eng))
    eng.call_at(2.0, lambda: proc.interrupt())
    eng.run()
    assert parent_proc.value == "child interrupted"


def test_unwaited_process_exception_crashes_loudly():
    eng = Engine()

    def buggy(env):
        yield env.timeout(1.0)
        raise RuntimeError("silent no more")

    eng.spawn(buggy(eng))
    with pytest.raises(RuntimeError, match="silent no more"):
        eng.run()


def test_waited_process_exception_propagates_to_waiter():
    eng = Engine()

    def buggy(env):
        yield env.timeout(1.0)
        raise ValueError("inner")

    def parent(env):
        try:
            yield proc
        except ValueError as exc:
            return f"caught {exc}"

    proc = eng.spawn(buggy(eng))
    parent_proc = eng.spawn(parent(eng))
    eng.run()
    assert parent_proc.value == "caught inner"


def test_yielding_non_event_fails_process():
    eng = Engine()

    def bad(env):
        yield 42

    def parent(env):
        with pytest.raises(SimulationError):
            yield proc
        return "ok"

    proc = eng.spawn(bad(eng))
    parent_proc = eng.spawn(parent(eng))
    eng.run()
    assert parent_proc.value == "ok"


def test_waiting_on_already_processed_event():
    eng = Engine()
    t = eng.timeout(1.0, value="v")
    eng.run()
    assert t.processed

    def late(env):
        value = yield t
        return value

    proc = eng.spawn(late(eng))
    eng.run()
    assert proc.value == "v"


def test_interrupt_just_spawned_process_defers_until_after_bootstrap():
    # The interrupt lands *after* the bootstrap resumption: the body runs
    # up to its first yield and catches the Interrupt there, instead of
    # the exception being thrown into a never-started generator.
    eng = Engine()
    log = []

    def worker(env):
        log.append("body entered")
        try:
            yield env.timeout(10.0)
        except Interrupt as interrupt:
            log.append(f"interrupted: {interrupt.cause}")
            return "handled"

    proc = eng.spawn(worker(eng))
    proc.interrupt("immediate")   # before the engine has run at all
    eng.run()
    assert log == ["body entered", "interrupted: immediate"]
    assert proc.value == "handled"


def test_double_interrupt_delivers_both_causes_in_order():
    eng = Engine()

    def sleeper(env):
        causes = []
        for _ in range(2):
            try:
                yield env.timeout(100.0)
            except Interrupt as interrupt:
                causes.append(interrupt.cause)
        return causes

    proc = eng.spawn(sleeper(eng))
    eng.call_at(5.0, lambda: (proc.interrupt("first"),
                              proc.interrupt("second")))
    eng.run()
    assert proc.value == ["first", "second"]


def test_interrupt_during_all_of_wait():
    eng = Engine()

    def worker(env):
        try:
            yield env.all_of([env.timeout(50.0), env.timeout(80.0)])
        except Interrupt as interrupt:
            return ("interrupted", env.now, interrupt.cause)
        return "finished"

    proc = eng.spawn(worker(eng))
    eng.call_at(10.0, lambda: proc.interrupt("drain"))
    eng.run()   # the abandoned AllOf still fires at t=80, successfully
    assert proc.value == ("interrupted", 10.0, "drain")
    assert eng.unconsumed_failures == []


def test_interrupt_in_same_instant_as_completion_is_dropped():
    # The target finishes at t=5 before the interrupt's delivery event
    # fires in the same instant: there is no frame left to deliver to, so
    # the interrupt is consumed silently instead of polluting the ledger.
    eng = Engine()

    def quick(env):
        yield env.timeout(5.0)
        return "done"

    fired = []

    def racer(env):
        yield env.timeout(5.0)
        if proc.is_alive:
            proc.interrupt("too late")
            fired.append(True)

    eng.spawn(racer(eng))          # spawned first: resumes first at t=5
    proc = eng.spawn(quick(eng))
    eng.run()
    assert fired == [True]         # the interrupt really was issued...
    assert proc.value == "done"    # ...but the process completed normally
    assert eng.unconsumed_failures == []
