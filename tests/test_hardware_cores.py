"""Tests for the U74 core complex and activity accounting."""

import pytest

from repro.hardware.cores import CoreActivity, CoreComplex, U74Core


@pytest.fixture
def clocked_core():
    core = U74Core(core_id=0)
    core.power_on()
    core.start_clock()
    return core


class TestCoreActivity:
    def test_rejects_negative_duration(self):
        with pytest.raises(ValueError):
            CoreActivity(duration_s=-1.0)

    def test_rejects_bad_utilisation(self):
        with pytest.raises(ValueError):
            CoreActivity(duration_s=1.0, utilisation=1.5)

    def test_rejects_negative_ipc(self):
        with pytest.raises(ValueError):
            CoreActivity(duration_s=1.0, ipc=-0.1)


class TestU74Core:
    def test_advance_requires_clock(self):
        core = U74Core(core_id=0)
        core.power_on()
        with pytest.raises(RuntimeError, match="clock gated"):
            core.advance(CoreActivity(duration_s=1.0))

    def test_cycles_accumulate_at_clock_rate(self, clocked_core):
        clocked_core.advance(CoreActivity(duration_s=2.0, ipc=1.0))
        assert clocked_core.hpm.cycle == int(2.0 * 1.2e9)

    def test_instructions_respect_ipc(self, clocked_core):
        clocked_core.advance(CoreActivity(duration_s=1.0, ipc=1.5))
        assert clocked_core.hpm.instret == pytest.approx(1.5 * 1.2e9, rel=1e-6)

    def test_ipc_clamped_at_dual_issue(self, clocked_core):
        clocked_core.advance(CoreActivity(duration_s=1.0, ipc=1.9))
        first = clocked_core.hpm.instret
        other = U74Core(core_id=1)
        other.start_clock()
        # ipc above the hardware ceiling is clamped to 2.0 inside advance.
        other.advance(CoreActivity(duration_s=1.0, ipc=2.0))
        assert other.hpm.instret == int(2.0 * 1.2e9)
        assert first < other.hpm.instret

    def test_partial_utilisation_scales_instructions(self, clocked_core):
        clocked_core.advance(CoreActivity(duration_s=1.0, ipc=1.0,
                                          utilisation=0.5))
        assert clocked_core.hpm.instret == pytest.approx(0.6e9, rel=1e-6)

    def test_flops_need_programmable_counters(self, clocked_core):
        # Stock U-Boot: the fp_ops counter silently reads zero.
        clocked_core.advance(CoreActivity(duration_s=1.0, ipc=1.0,
                                          flop_fraction=0.5))
        assert clocked_core.hpm.read_event("fp_ops") == 0
        clocked_core.hpm.enable_programmable()
        clocked_core.advance(CoreActivity(duration_s=1.0, ipc=1.0,
                                          flop_fraction=0.5))
        assert clocked_core.hpm.read_event("fp_ops") > 0

    def test_idle_reports_zero_utilisation(self, clocked_core):
        clocked_core.idle(10.0)
        assert clocked_core.utilisation == 0.0
        assert clocked_core.hpm.cycle > 0


class TestCoreComplex:
    def test_has_four_cores_and_monitor(self):
        complex_ = CoreComplex()
        assert len(complex_) == 4
        assert complex_.monitor_core.core_id == -1

    def test_start_clocks_covers_all_cores(self):
        complex_ = CoreComplex()
        complex_.start_clocks()
        assert complex_.clock_running
        assert all(core.clock_running for core in complex_)

    def test_utilisation_is_mean_across_cores(self):
        complex_ = CoreComplex()
        complex_.start_clocks()
        complex_.cores[0].advance(CoreActivity(duration_s=1.0, utilisation=1.0))
        for core in complex_.cores[1:]:
            core.advance(CoreActivity(duration_s=1.0, utilisation=0.0))
        assert complex_.utilisation == pytest.approx(0.25)

    def test_total_instructions_sums_cores(self):
        complex_ = CoreComplex()
        complex_.start_clocks()
        for core in complex_:
            core.advance(CoreActivity(duration_s=1.0, ipc=1.0))
        assert complex_.total_instructions() == 4 * int(1.2e9)
