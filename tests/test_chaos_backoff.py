"""Property tests pinning the ExponentialBackoff contract.

The chaos harness leans on three guarantees (see the module docstring of
``repro.chaos.backoff``): the nominal schedule is monotone and capped,
jitter only ever shortens a delay, and the whole stream is a pure
function of the constructor arguments.  Hypothesis explores the
parameter space; a few example-based tests pin the exact arithmetic.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chaos.backoff import ExponentialBackoff

_PARAMS = {
    "base_s": st.floats(min_value=1e-3, max_value=10.0,
                        allow_nan=False, allow_infinity=False),
    "factor": st.floats(min_value=1.0, max_value=8.0,
                        allow_nan=False, allow_infinity=False),
    "cap_mult": st.floats(min_value=1.0, max_value=100.0,
                          allow_nan=False, allow_infinity=False),
    "jitter": st.floats(min_value=0.0, max_value=0.99,
                        allow_nan=False, allow_infinity=False),
    "seed": st.integers(min_value=0, max_value=2**32 - 1),
}


def _backoff(base_s, factor, cap_mult, jitter, seed):
    return ExponentialBackoff(base_s=base_s, factor=factor,
                              max_s=base_s * cap_mult, jitter=jitter,
                              seed=seed)


class TestNominalSchedule:
    @given(**_PARAMS)
    @settings(max_examples=200)
    def test_monotone_and_capped(self, base_s, factor, cap_mult, jitter, seed):
        backoff = _backoff(base_s, factor, cap_mult, jitter, seed)
        nominals = [backoff.nominal(n) for n in range(32)]
        assert all(b >= a for a, b in zip(nominals, nominals[1:]))
        assert all(n <= backoff.max_s for n in nominals)
        assert nominals[0] == pytest.approx(min(base_s, backoff.max_s))

    @given(**_PARAMS)
    @settings(max_examples=100)
    def test_caps_at_max_for_huge_attempts(self, base_s, factor, cap_mult,
                                           jitter, seed):
        backoff = _backoff(base_s, factor, cap_mult, jitter, seed)
        # 10_000 attempts overflows float range for most factors > 1;
        # the cap must hold regardless (and a flat factor == 1 schedule
        # must still be finite and bounded).
        assert backoff.nominal(10_000) <= backoff.max_s

    def test_overflowing_schedule_hits_cap_exactly(self):
        backoff = ExponentialBackoff(base_s=1.0, factor=2.0, max_s=60.0)
        assert backoff.nominal(10_000) == 60.0

    def test_exact_doubling(self):
        backoff = ExponentialBackoff(base_s=1.0, factor=2.0, max_s=60.0)
        assert backoff.delays(7) == [1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 60.0]


class TestJitterBounds:
    @given(**_PARAMS, attempt=st.integers(min_value=0, max_value=64))
    @settings(max_examples=200)
    def test_delay_within_jitter_band(self, base_s, factor, cap_mult, jitter,
                                      seed, attempt):
        backoff = _backoff(base_s, factor, cap_mult, jitter, seed)
        nominal = backoff.nominal(attempt)
        delay = backoff.delay(attempt)
        assert delay <= nominal + 1e-12
        assert delay >= nominal * (1.0 - jitter) - 1e-12

    @given(**_PARAMS)
    @settings(max_examples=100)
    def test_delay_never_exceeds_cap(self, base_s, factor, cap_mult, jitter,
                                     seed):
        backoff = _backoff(base_s, factor, cap_mult, jitter, seed)
        assert all(d <= backoff.max_s + 1e-12 for d in backoff.delays(64))


class TestDeterminism:
    @given(**_PARAMS)
    @settings(max_examples=200)
    def test_same_seed_same_stream(self, base_s, factor, cap_mult, jitter,
                                   seed):
        a = _backoff(base_s, factor, cap_mult, jitter, seed)
        b = _backoff(base_s, factor, cap_mult, jitter, seed)
        assert a.delays(32) == b.delays(32)

    def test_different_seeds_differ_with_jitter(self):
        a = ExponentialBackoff(base_s=1.0, jitter=0.5, seed=1)
        b = ExponentialBackoff(base_s=1.0, jitter=0.5, seed=2)
        assert a.delays(16) != b.delays(16)

    def test_draw_order_is_part_of_the_stream(self):
        # delay(n) consumes one RNG draw regardless of n: interleaving
        # matters, exactly like the docstring says.
        a = ExponentialBackoff(base_s=1.0, jitter=0.5, seed=7)
        b = ExponentialBackoff(base_s=1.0, jitter=0.5, seed=7)
        first = [a.delay(0), a.delay(1)]
        swapped_draws = [b.delay(1), b.delay(0)]
        assert first[0] != pytest.approx(swapped_draws[1])


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        {"base_s": 0.0},
        {"base_s": -1.0},
        {"factor": 0.5},
        {"base_s": 10.0, "max_s": 5.0},
        {"jitter": -0.1},
        {"jitter": 1.0},
    ])
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ExponentialBackoff(**kwargs)

    def test_negative_attempt_rejected(self):
        with pytest.raises(ValueError):
            ExponentialBackoff().nominal(-1)
