"""Property-based tests: scheduler invariants under random job streams.

hypothesis drives random job mixes through the controller and checks the
invariants any workload manager must hold: no node double-allocated, all
jobs eventually terminal, FIFO fairness for equal-size jobs, and the
accounting identities (wait/elapsed nonnegative).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.events import Engine
from repro.slurm.job import JobState
from repro.slurm.partition import NodeAllocState, Partition, SlurmNodeInfo
from repro.slurm.scheduler import SlurmController


def build_controller(n_nodes: int) -> SlurmController:
    controller = SlurmController(Engine())
    partition = Partition(name="compute", max_time_s=1e9, default=True)
    for i in range(n_nodes):
        partition.add_node(SlurmNodeInfo(hostname=f"n{i:02d}"))
    controller.add_partition(partition)
    return controller


job_stream = st.lists(
    st.tuples(st.integers(min_value=1, max_value=4),     # nodes
              st.floats(min_value=0.5, max_value=50.0)),  # duration
    min_size=1, max_size=15)


@given(jobs=job_stream)
@settings(max_examples=40, deadline=None)
def test_all_jobs_reach_terminal_state(jobs):
    controller = build_controller(n_nodes=4)
    for i, (nodes, duration) in enumerate(jobs):
        controller.submit(f"j{i}", "u", nodes, duration_s=duration)
    controller.engine.run()
    assert all(job.state is JobState.COMPLETED
               for job in controller.jobs.values())


@given(jobs=job_stream)
@settings(max_examples=40, deadline=None)
def test_no_node_ever_double_allocated(jobs):
    controller = build_controller(n_nodes=4)
    for i, (nodes, duration) in enumerate(jobs):
        controller.submit(f"j{i}", "u", nodes, duration_s=duration)
    partition = controller.partitions["compute"]
    while controller.engine.queue_depth:
        controller.engine.step()
        running = [job for job in controller.jobs.values()
                   if job.state is JobState.RUNNING]
        # Invariant 1: disjoint allocations.
        allocated = [h for job in running for h in job.allocated_nodes]
        assert len(allocated) == len(set(allocated))
        # Invariant 2: node records agree with job allocations.
        for info in partition.nodes.values():
            if info.state is NodeAllocState.ALLOCATED:
                assert any(info.hostname in job.allocated_nodes
                           for job in running)


@given(jobs=job_stream)
@settings(max_examples=40, deadline=None)
def test_accounting_identities(jobs):
    controller = build_controller(n_nodes=4)
    for i, (nodes, duration) in enumerate(jobs):
        controller.submit(f"j{i}", "u", nodes, duration_s=duration)
    controller.engine.run()
    for job in controller.jobs.values():
        assert job.wait_time_s is not None and job.wait_time_s >= 0
        assert job.elapsed_s is not None
        # Jobs run for (at least) their modelled duration, quantised to
        # the 1 s execution slices.
        assert job.elapsed_s >= job.duration_s - 1e-9
        assert job.elapsed_s <= job.duration_s + 1.0


@given(durations=st.lists(st.floats(min_value=1.0, max_value=30.0),
                          min_size=2, max_size=8))
@settings(max_examples=40, deadline=None)
def test_fifo_order_for_full_machine_jobs(durations):
    """Equal-size (full-machine) jobs must start strictly in submit order."""
    controller = build_controller(n_nodes=4)
    submitted = [controller.submit(f"j{i}", "u", 4, duration_s=d)
                 for i, d in enumerate(durations)]
    controller.engine.run()
    start_times = [job.start_time_s for job in submitted]
    assert start_times == sorted(start_times)
