"""Edge-case coverage for small branches the main suites skip."""

import pytest

from repro.benchmarks.base import BenchmarkResult, RunStatistics
from repro.benchmarks.hpl_io import _grid_for
from repro.examon.dashboard import Heatmap
from repro.examon.topics import TopicSchema


class TestRunStatistics:
    def test_validation(self):
        with pytest.raises(ValueError):
            RunStatistics.from_model(-1.0, 0.1)
        with pytest.raises(ValueError):
            RunStatistics.from_model(1.0, -0.1)
        with pytest.raises(ValueError):
            RunStatistics.from_model(1.0, 0.1, n_runs=0)

    def test_single_run_has_zero_std(self):
        stats = RunStatistics.from_model(10.0, 0.05, n_runs=1)
        assert stats.std == 0.0
        assert len(stats.samples) == 1

    def test_mean_tracks_central_value(self):
        stats = RunStatistics.from_model(100.0, 0.01, n_runs=10)
        assert stats.mean == pytest.approx(100.0, rel=0.02)

    def test_zero_spread_is_exact(self):
        stats = RunStatistics.from_model(42.0, 0.0)
        assert stats.mean == 42.0
        assert stats.std == 0.0

    def test_str_form(self):
        text = str(RunStatistics.from_model(1.86, 0.022))
        assert "n=10" in text and "±" in text

    def test_samples_never_negative(self):
        # Huge spread: clipping keeps samples physical.
        stats = RunStatistics.from_model(1.0, 5.0, n_runs=50)
        assert all(sample >= 0.0 for sample in stats.samples)


class TestBenchmarkResultSummary:
    def test_summary_line(self):
        result = BenchmarkResult(
            benchmark="hpl", machine="montecimone",
            throughput=RunStatistics.from_model(1.86, 0.0),
            throughput_unit="GFLOP/s",
            runtime_s=RunStatistics.from_model(24105.0, 0.0),
            efficiency=0.465)
        line = result.summary()
        assert "46.5%" in line and "GFLOP/s" in line


class TestGridShapes:
    @pytest.mark.parametrize("ranks,expected", [
        (1, (1, 1)), (4, (2, 2)), (8, (2, 4)), (32, (4, 8)),
        (6, (2, 3)), (7, (1, 7)),
    ])
    def test_near_square_with_p_le_q(self, ranks, expected):
        assert _grid_for(ranks) == expected


class TestHeatmapEdges:
    def test_flat_field_renders_mid_shade(self):
        heatmap = Heatmap(metric="m", times=[0.0, 1.0],
                          rows={"n1": [5.0, 5.0]})
        text = heatmap.render_ascii()
        assert "|" in text
        row_line = text.splitlines()[1]
        cells = row_line.split("|")[1]
        assert cells.strip() != ""  # not rendered blank

    def test_all_none_row(self):
        heatmap = Heatmap(metric="m", times=[0.0],
                          rows={"n1": [None]})
        assert "no data" in heatmap.render_ascii()


class TestTopicParseEdges:
    SCHEMA = TopicSchema()

    def test_malformed_per_core_topic(self):
        base = ("org/unibo/cluster/montecimone/node/n1/plugin/pmu_pub"
                "/chnl/data/core")
        with pytest.raises(ValueError, match="malformed"):
            self.SCHEMA.parse(base + "/0")  # core id but no metric

    def test_topic_without_metric(self):
        base = ("org/unibo/cluster/montecimone/node/n1/plugin/dstat_pub"
                "/chnl/data")
        with pytest.raises(ValueError, match="no metric"):
            self.SCHEMA.parse(base)

    def test_nested_metric_names_joined(self):
        topic = ("org/unibo/cluster/montecimone/node/n1/plugin/dstat_pub"
                 "/chnl/data/a/b/c")
        assert self.SCHEMA.parse(topic)["metric"] == "a/b/c"
