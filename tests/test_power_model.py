"""Tests for the calibrated power model against Table VI.

These are the central calibration asserts of the power reproduction: each
rail of each column must land within tight tolerances of the paper's
milliwatt readings, and the derived percentages (§I/§V-B) must match.
"""

import pytest

from repro.power.model import (
    HPL_PROFILE,
    IDLE_PROFILE,
    NodePhase,
    QE_PROFILE,
    RailPowerModel,
    STREAM_DDR_PROFILE,
    STREAM_L2_PROFILE,
    TABLE_VI_MILLIWATTS,
    WorkloadProfile,
)

MODEL = RailPowerModel()

RUN_COLUMNS = {
    "idle": IDLE_PROFILE,
    "hpl": HPL_PROFILE,
    "stream_l2": STREAM_L2_PROFILE,
    "stream_ddr": STREAM_DDR_PROFILE,
    "qe": QE_PROFILE,
}


class TestWorkloadProfile:
    def test_validation_bounds(self):
        with pytest.raises(ValueError):
            WorkloadProfile(name="bad", utilisation=1.2)
        with pytest.raises(ValueError):
            WorkloadProfile(name="bad", ipc=2.5)
        with pytest.raises(ValueError):
            WorkloadProfile(name="bad", ddr_data_activity=-0.1)

    def test_idle_profile_is_quiescent(self):
        assert IDLE_PROFILE.utilisation == 0.0
        assert IDLE_PROFILE.ddr_data_activity == 0.0


@pytest.mark.parametrize("column", list(RUN_COLUMNS))
class TestTableVIRunColumns:
    def test_each_rail_within_tolerance(self, column):
        modelled = MODEL.rail_powers_mw(NodePhase.R3_OS, RUN_COLUMNS[column])
        reference = TABLE_VI_MILLIWATTS[column]
        for rail, paper_mw in reference.items():
            assert modelled[rail] == pytest.approx(paper_mw, abs=25.0), \
                f"{column}/{rail}: model {modelled[rail]:.1f} vs paper {paper_mw}"

    def test_total_within_one_percent(self, column):
        total = sum(MODEL.rail_powers_mw(NodePhase.R3_OS,
                                         RUN_COLUMNS[column]).values())
        paper_total = sum(TABLE_VI_MILLIWATTS[column].values())
        assert total == pytest.approx(paper_total, rel=0.01)


class TestBootColumns:
    def test_r1_matches_exactly(self):
        modelled = MODEL.rail_powers_mw(NodePhase.R1_POWER_ON)
        assert modelled == pytest.approx(TABLE_VI_MILLIWATTS["boot_r1"])

    def test_r2_within_tolerance(self):
        modelled = MODEL.rail_powers_mw(NodePhase.R2_BOOTLOADER)
        for rail, paper_mw in TABLE_VI_MILLIWATTS["boot_r2"].items():
            assert modelled[rail] == pytest.approx(paper_mw, abs=25.0)

    def test_off_is_zero(self):
        modelled = MODEL.rail_powers_mw(NodePhase.OFF)
        assert all(v == 0.0 for v in modelled.values())


class TestHeadlineNumbers:
    def test_idle_total_4_81_w(self):
        assert MODEL.total_w(NodePhase.R3_OS, IDLE_PROFILE) == \
            pytest.approx(4.810, abs=0.02)

    def test_hpl_total_5_935_w(self):
        assert MODEL.total_w(NodePhase.R3_OS, HPL_PROFILE) == \
            pytest.approx(5.935, abs=0.03)

    def test_hpl_is_the_most_power_hungry(self):
        totals = {name: MODEL.total_w(NodePhase.R3_OS, profile)
                  for name, profile in RUN_COLUMNS.items()}
        assert max(totals, key=totals.get) == "hpl"

    def test_core_share_of_idle_is_64_percent(self):
        rails = MODEL.rail_powers_mw(NodePhase.R3_OS, IDLE_PROFILE)
        assert rails["core"] / sum(rails.values()) == pytest.approx(0.64, abs=0.01)

    def test_pci_share_of_idle_is_23_percent(self):
        rails = MODEL.rail_powers_mw(NodePhase.R3_OS, IDLE_PROFILE)
        pci = rails["pcievp"] + rails["pcievph"]
        assert pci / sum(rails.values()) == pytest.approx(0.23, abs=0.015)

    def test_pcie_always_one_watt_with_empty_slot(self):
        # §V-B: "The PCIe subsystem consistently requires 1 Watt ... even
        # if nothing is attached".
        for profile in RUN_COLUMNS.values():
            rails = MODEL.rail_powers_mw(NodePhase.R3_OS, profile)
            assert rails["pcievp"] + rails["pcievph"] == \
                pytest.approx(1080, abs=30)

    def test_ddr_share_between_12_and_18_percent(self):
        # §V-B: "DDR memory subsystem power consumption sits between 12%
        # and 18% of the overall".
        for profile in RUN_COLUMNS.values():
            rails = MODEL.rail_powers_mw(NodePhase.R3_OS, profile)
            ddr = (rails["ddr_soc"] + rails["ddr_mem"] + rails["ddr_pll"]
                   + rails["ddr_vpp"])
            assert 0.11 <= ddr / sum(rails.values()) <= 0.18


class TestDecomposition:
    def test_core_components_sum_to_idle_core(self):
        components = MODEL.core_components_mw()
        assert sum(components.values()) == pytest.approx(3075, abs=1)

    def test_component_values(self):
        components = MODEL.core_components_mw()
        assert components["leakage"] == pytest.approx(984)
        assert components["clock_and_dynamic"] == pytest.approx(1577)
        assert components["os_baseline"] == pytest.approx(514)

    def test_monotone_in_activity(self):
        """More utilisation can only draw more core power."""
        low = WorkloadProfile(name="low", utilisation=0.3, ipc=1.0,
                              flop_fraction=0.2)
        high = WorkloadProfile(name="high", utilisation=0.9, ipc=1.0,
                               flop_fraction=0.2)
        assert (MODEL.rail_powers_mw(NodePhase.R3_OS, high)["core"]
                > MODEL.rail_powers_mw(NodePhase.R3_OS, low)["core"])
