"""Tests for the Grafana dashboard export and the job-trace machinery."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.events import Engine
from repro.examon.grafana import (
    build_cluster_dashboard,
    build_thermal_dashboard,
    export_dashboard,
)
from repro.slurm.partition import Partition, SlurmNodeInfo
from repro.slurm.scheduler import SlurmController
from repro.slurm.trace import generate_trace, replay_trace

HOSTS = [f"mc-node-{i}" for i in range(1, 9)]


class TestGrafanaDashboards:
    def test_cluster_dashboard_has_three_fig5_panels(self):
        dashboard = build_cluster_dashboard(HOSTS)
        titles = [panel["title"] for panel in dashboard["panels"]]
        assert titles == ["Instructions/s per node",
                          "Network traffic per node",
                          "Memory usage per node"]

    def test_instruction_panel_targets_every_core(self):
        dashboard = build_cluster_dashboard(HOSTS, n_cores=4)
        targets = dashboard["panels"][0]["targets"]
        assert len(targets) == 8 * 4
        assert all(t["endpoint"] == "/api/rate" for t in targets)
        assert any("mc-node-7" in t["params"]["topic"] for t in targets)

    def test_thermal_dashboard_trip_threshold(self):
        dashboard = build_thermal_dashboard(HOSTS)
        steps = dashboard["panels"][0]["fieldConfig"]["defaults"][
            "thresholds"]["steps"]
        assert steps[-1] == {"color": "red", "value": 107.0}

    def test_panels_do_not_overlap_vertically(self):
        dashboard = build_cluster_dashboard(HOSTS)
        y_positions = [p["gridPos"]["y"] for p in dashboard["panels"]]
        assert y_positions == sorted(set(y_positions))

    def test_export_is_valid_stable_json(self):
        dashboard = build_cluster_dashboard(HOSTS)
        blob = export_dashboard(dashboard)
        assert json.loads(blob) == dashboard
        assert export_dashboard(build_cluster_dashboard(HOSTS)) == blob


def make_controller(n_nodes=8):
    controller = SlurmController(Engine())
    partition = Partition(name="compute", max_time_s=1e9, default=True)
    for i in range(n_nodes):
        partition.add_node(SlurmNodeInfo(hostname=f"n{i}"))
    controller.add_partition(partition)
    return controller


class TestTraceGeneration:
    def test_deterministic_in_seed(self):
        assert generate_trace(10, 3600.0, seed=1) == \
            generate_trace(10, 3600.0, seed=1)
        assert generate_trace(10, 3600.0, seed=1) != \
            generate_trace(10, 3600.0, seed=2)

    def test_submission_times_sorted_within_horizon(self):
        trace = generate_trace(30, 7200.0)
        times = [entry.submit_time_s for entry in trace]
        assert times == sorted(times)
        assert all(0.0 <= t <= 7200.0 for t in times)

    def test_mix_contains_all_three_workloads(self):
        trace = generate_trace(60, 3600.0)
        kinds = {entry.name.split("-")[0] for entry in trace}
        assert kinds == {"hpl", "stream", "qe"}

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_trace(0, 3600.0)
        with pytest.raises(ValueError):
            generate_trace(5, -1.0)


class TestTraceReplay:
    def test_all_jobs_complete(self):
        controller = make_controller()
        trace = generate_trace(15, 1800.0, seed=3)
        report = replay_trace(controller, trace)
        assert report.n_jobs == 15
        assert report.completed == 15
        assert report.failed == 0

    def test_utilisation_bounded(self):
        controller = make_controller()
        report = replay_trace(controller, generate_trace(15, 1800.0))
        assert 0.0 < report.utilisation <= 1.0

    def test_makespan_at_least_horizon_tail(self):
        controller = make_controller()
        trace = generate_trace(10, 1000.0, seed=5)
        report = replay_trace(controller, trace)
        last = max(e.submit_time_s for e in trace)
        assert report.makespan_s >= last

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            replay_trace(make_controller(), [])

    def test_per_user_counts_sum(self):
        controller = make_controller()
        report = replay_trace(controller, generate_trace(12, 1800.0))
        assert sum(report.per_user_jobs.values()) == 12

    @given(seed=st.integers(min_value=0, max_value=100))
    @settings(max_examples=10, deadline=None)
    def test_replay_invariants_across_seeds(self, seed):
        """Property: any seeded trace replays to full completion."""
        controller = make_controller()
        report = replay_trace(controller,
                              generate_trace(8, 1200.0, seed=seed))
        assert report.completed == report.n_jobs
        assert report.mean_wait_s <= report.max_wait_s
