"""Tests for ``--requeue`` semantics and the node drain→resume lifecycle.

Covers the controller-level retry machinery (exponential backoff, retry
bound, cancel during backoff, per-attempt accounting) on pre-booted
hardware nodes, the :class:`SlurmNodeInfo` drain state machine, automatic
node recovery with and without hardware bound, and the full-cluster
requeue-after-thermal-trip path of the Fig. 6 incident response.
"""

import pytest

from repro.events import Engine
from repro.slurm.accounting import render_sacct
from repro.slurm.api import SlurmAPI
from repro.slurm.job import JobState
from repro.slurm.partition import NodeAllocState, Partition, SlurmNodeInfo
from repro.slurm.scheduler import SlurmController


def make_hw_controller(n_nodes=2, engine=None):
    """A controller whose records are bound to real, pre-booted nodes."""
    from repro.cluster.node import ComputeNode

    engine = engine if engine is not None else Engine()
    controller = SlurmController(engine)
    partition = Partition(name="compute", max_time_s=1e6, default=True)
    nodes = {}
    for i in range(n_nodes):
        hostname = f"n{i + 1}"
        node = ComputeNode(hostname=hostname)
        node.power_on(0.0)
        node.start_bootloader(0.0)
        node.finish_boot(0.0)
        partition.add_node(SlurmNodeInfo(hostname=hostname))
        controller.bind_node(hostname, node)
        nodes[hostname] = node
    controller.add_partition(partition)
    return controller, nodes


def reboot(node, now_s):
    """Return a tripped hardware node to IDLE via the plain transitions."""
    node.power_on(now_s)
    node.start_bootloader(now_s)
    node.finish_boot(now_s)


class TestRequeue:
    def test_node_fail_requeues_and_completes_on_other_node(self):
        controller, nodes = make_hw_controller(n_nodes=2)
        engine = controller.engine
        job = controller.submit("hpl", "u", n_nodes=1, duration_s=10.0,
                                requeue=True, requeue_backoff_s=5.0)
        assert job.allocated_nodes == ["n1"]
        engine.call_at(3.5, lambda: nodes["n1"].emergency_shutdown(engine.now))
        engine.run()

        assert job.state is JobState.COMPLETED
        assert job.restart_count == 1
        assert len(job.attempts) == 2
        first, second = job.attempts
        assert first.state is JobState.NODE_FAIL
        assert first.nodes == ("n1",)
        assert first.backoff_s == 5.0
        assert second.state is JobState.COMPLETED
        assert second.nodes == ("n2",)          # retried on a different node
        # trip detected at the t=4 slice; 5 s backoff; full 10 s re-run
        assert second.start_time_s == pytest.approx(9.0)
        assert second.end_time_s == pytest.approx(19.0)
        # the victim stays DOWN (no recovery enabled), the job routed around it
        info = controller.partitions["compute"].nodes["n1"]
        assert info.state is NodeAllocState.DOWN
        assert engine.unconsumed_failures == []

    def test_backoff_doubles_across_restarts(self):
        controller, nodes = make_hw_controller(n_nodes=2)
        engine = controller.engine
        job = controller.submit("flaky", "u", n_nodes=1, duration_s=10.0,
                                requeue=True, requeue_backoff_s=4.0)
        # attempt 1 on n1 trips at t=2; backoff 4 s; attempt 2 starts at
        # t=6 on n2 and trips at t=8; backoff 8 s; both nodes now DOWN.
        engine.call_at(1.5, lambda: nodes["n1"].emergency_shutdown(engine.now))
        engine.call_at(7.5, lambda: nodes["n2"].emergency_shutdown(engine.now))
        engine.run()
        assert job.state is JobState.PENDING    # queued with no nodes left
        assert job.restart_count == 2
        assert [a.backoff_s for a in job.attempts] == [4.0, 8.0]

        # Service n1 and return it: the third attempt completes there.
        reboot(nodes["n1"], engine.now)
        controller.partitions["compute"].nodes["n1"].resume()
        controller.schedule_pass()
        engine.run()
        assert job.state is JobState.COMPLETED
        assert len(job.attempts) == 3
        assert job.attempts[-1].nodes == ("n1",)
        assert job.attempts[-1].backoff_s == 0.0

    def test_max_requeues_exhaustion_ends_in_node_fail(self):
        controller, nodes = make_hw_controller(n_nodes=2)
        engine = controller.engine
        job = controller.submit("doomed", "u", n_nodes=1, duration_s=10.0,
                                requeue=True, max_requeues=1,
                                requeue_backoff_s=2.0)
        engine.call_at(0.5, lambda: nodes["n1"].emergency_shutdown(engine.now))
        engine.call_at(4.5, lambda: nodes["n2"].emergency_shutdown(engine.now))
        engine.run()
        assert job.state is JobState.NODE_FAIL  # retry budget spent
        assert job.restart_count == 1
        assert len(job.attempts) == 2
        assert all(a.state is JobState.NODE_FAIL for a in job.attempts)

    def test_cancel_during_backoff_cancels_job(self):
        controller, nodes = make_hw_controller(n_nodes=2)
        engine = controller.engine
        job = controller.submit("doomed", "u", n_nodes=1, duration_s=10.0,
                                requeue=True, requeue_backoff_s=20.0)
        engine.call_at(0.5, lambda: nodes["n1"].emergency_shutdown(engine.now))
        # The job sits REQUEUED from t=1; cancel mid-backoff.
        engine.call_at(5.0, lambda: controller.cancel(job.job_id))
        engine.run()
        assert job.state is JobState.CANCELLED
        assert job.exit_reason == "cancelled during requeue backoff"
        assert len(job.attempts) == 1           # only the real execution

    def test_job_without_requeue_fails_permanently(self):
        controller, nodes = make_hw_controller(n_nodes=2)
        engine = controller.engine
        job = controller.submit("fragile", "u", n_nodes=1, duration_s=10.0)
        engine.call_at(3.5, lambda: nodes["n1"].emergency_shutdown(engine.now))
        engine.run()
        assert job.state is JobState.NODE_FAIL
        assert job.restart_count == 0
        assert len(job.attempts) == 1

    def test_requeued_state_shows_in_squeue(self):
        controller, nodes = make_hw_controller(n_nodes=1)
        engine = controller.engine
        job = controller.submit("hpl", "u", n_nodes=1, duration_s=10.0,
                                requeue=True, requeue_backoff_s=50.0)
        engine.call_at(0.5, lambda: nodes["n1"].emergency_shutdown(engine.now))
        engine.run(until=10.0)
        assert job.state is JobState.REQUEUED
        assert not job.state.is_terminal        # still owned by the scheduler
        assert " RQ " in "\n".join(controller.squeue())


class TestDrainLifecycle:
    def test_down_node_drains_then_resumes(self):
        info = SlurmNodeInfo(hostname="n1")
        info.mark_down("thermal trip")
        info.drain("recovering: thermal trip")
        assert info.state is NodeAllocState.DRAINED
        assert not info.schedulable
        info.resume()
        assert info.state is NodeAllocState.IDLE

    def test_administrative_drain_from_idle(self):
        info = SlurmNodeInfo(hostname="n1")
        info.drain("maintenance")
        assert info.state is NodeAllocState.DRAINED
        assert info.reason == "maintenance"

    def test_drain_with_job_allocated_is_error(self):
        info = SlurmNodeInfo(hostname="n1")
        info.allocate(job_id=7)
        with pytest.raises(RuntimeError, match="mark_down"):
            info.drain("maintenance")

    def test_scontrol_drain_and_resume(self):
        controller, _nodes = make_hw_controller(n_nodes=2)
        api = SlurmAPI(controller)
        api.scontrol_drain("n2", reason="fan swap")
        info = controller.partitions["compute"].nodes["n2"]
        assert info.state is NodeAllocState.DRAINED
        job = controller.submit("j", "u", n_nodes=2, duration_s=1.0)
        assert job.state is JobState.PENDING    # only n1 is schedulable
        api.scontrol_resume("n2")
        assert job.state is JobState.RUNNING


class TestAutomaticRecovery:
    def test_controller_level_recovery_without_hardware(self):
        # No service hook: only the scheduler state cycles DOWN → DRAINED
        # → IDLE after the operator-response delay.
        engine = Engine()
        controller = SlurmController(engine)
        partition = Partition(name="compute", default=True)
        partition.add_node(SlurmNodeInfo(hostname="n1"))
        controller.add_partition(partition)
        controller.enable_node_recovery(delay_s=50.0)

        controller.node_failed("n1", "power fault")
        info = partition.nodes["n1"]
        assert info.state is NodeAllocState.DOWN
        engine.run(until=49.0)
        assert info.state is NodeAllocState.DOWN    # operator not there yet
        engine.run()
        assert info.state is NodeAllocState.IDLE
        assert info.reason == ""

    def test_node_failed_is_idempotent_per_outage(self):
        engine = Engine()
        controller = SlurmController(engine)
        partition = Partition(name="compute", default=True)
        partition.add_node(SlurmNodeInfo(hostname="n1"))
        controller.add_partition(partition)
        controller.enable_node_recovery(delay_s=50.0)

        controller.node_failed("n1", "watchdog trip")
        controller.node_failed("n1", "job saw the same trip")
        assert partition.nodes["n1"].reason == "watchdog trip"
        # exactly one recovery process: a second one would crash in drain()
        engine.run()
        assert partition.nodes["n1"].state is NodeAllocState.IDLE

    def test_recovery_reschedules_pending_work(self):
        controller, nodes = make_hw_controller(n_nodes=1)
        engine = controller.engine
        controller.enable_node_recovery(delay_s=10.0)
        job = controller.submit("hpl", "u", n_nodes=1, duration_s=5.0,
                                requeue=True, requeue_backoff_s=1.0)
        engine.call_at(0.5, lambda: nodes["n1"].emergency_shutdown(engine.now))
        # The sole node is down during the backoff; the job waits PENDING
        # until recovery returns it.  The controller-only recovery cannot
        # reboot the hardware, so do that for it when the drain window opens.
        engine.call_at(10.5, lambda: reboot(nodes["n1"], engine.now))
        engine.run()
        assert job.state is JobState.COMPLETED
        assert len(job.attempts) == 2
        assert job.attempts[0].nodes == job.attempts[1].nodes == ("n1",)


class TestClusterRequeueEndToEnd:
    def test_thermal_trip_requeues_job_and_recovers_node(self):
        from repro.cluster.cluster import MonteCimoneCluster
        from repro.power.model import HPL_PROFILE
        from repro.thermal.enclosure import EnclosureConfig

        cluster = MonteCimoneCluster(
            enclosure_config=EnclosureConfig.mitigated())
        cluster.enable_auto_recovery(delay_s=30.0)
        cluster.boot_all()
        engine = cluster.engine
        api = SlurmAPI(cluster.slurm)

        job_id = api.sbatch("hpl-requeue", "ops", nodes=1, duration_s=60.0,
                            profile=HPL_PROFILE, requeue=True,
                            requeue_backoff_s=15.0)
        job = cluster.slurm.jobs[job_id]
        assert job.allocated_nodes == ["mc-node-1"]
        engine.call_at(engine.now + 10.0,
                       lambda: cluster.inject_node_failure(
                           "mc-node-1", reason="injected trip"))
        api.wait_all()

        assert job.state is JobState.COMPLETED
        assert len(job.attempts) == 2
        first, second = job.attempts
        assert first.state is JobState.NODE_FAIL
        assert first.nodes == ("mc-node-1",)
        assert second.state is JobState.COMPLETED
        assert second.nodes != first.nodes      # retried on a different node

        # Both attempts visible in accounting (sacct --duplicates view).
        sacct = render_sacct(cluster.slurm)
        job_rows = [r for r in sacct.splitlines() if "hpl-requeue" in r]
        assert len(job_rows) == 2
        assert "NODE_FAIL" in job_rows[0]
        assert "COMPLETED" in job_rows[1]
        assert api.sacct_attempts(job_id) == job.attempts

        # Let the drain→service→resume lifecycle finish: the victim cools,
        # reboots, and returns to the schedulable pool.
        cluster.run_for(2400.0)
        info = cluster.slurm.partitions["compute"].nodes["mc-node-1"]
        assert info.state is NodeAllocState.IDLE
        from repro.cluster.node import NodeState
        assert cluster.nodes["mc-node-1"].state is NodeState.IDLE

        # And nothing the fault injected was silently lost by the kernel.
        assert engine.unconsumed_failures == []
