"""Tests for STREAM IO, Spack display, ASCII plots, sbatch_script API, CLI."""

import pytest

from repro.benchmarks.hpl import HPLModel
from repro.benchmarks.stream import StreamConfig, StreamModel
from repro.benchmarks.stream_io import parse_stream_output, render_stream_output
from repro.perf.plots import render_scaling_plot, render_series
from repro.perf.scaling import strong_scaling_table
from repro.slurm.api import SlurmAPI
from repro.slurm.job import JobState
from repro.spack.concretizer import Concretizer
from repro.spack.display import render_find, render_spec_tree
from repro.spack.installer import Installer
from repro.spack.spec import Spec


class TestStreamIO:
    RESULT = StreamModel().run(StreamConfig(array_mib=1945.5))

    def test_render_contains_510_banner_and_rows(self):
        text = render_stream_output(self.RESULT)
        assert "STREAM version $Revision: 5.10 $" in text
        for kernel in ("Copy:", "Scale:", "Add:", "Triad:"):
            assert kernel in text
        assert "Solution Validates" in text

    def test_roundtrip_best_rates(self):
        text = render_stream_output(self.RESULT)
        rates, validated = parse_stream_output(text)
        assert validated
        for kernel, stats in self.RESULT.bandwidth_mb_s.items():
            assert rates[kernel] == pytest.approx(max(stats.samples),
                                                  rel=0.01)

    def test_parse_incomplete_report_raises(self):
        with pytest.raises(ValueError, match="missing kernels"):
            parse_stream_output("Copy:  1206.0  0.1  0.1  0.1")

    def test_thread_count_rendered(self):
        text = render_stream_output(self.RESULT)
        assert "Number of Threads requested = 4" in text


class TestSpackDisplay:
    def test_spec_tree_shows_dependencies_indented(self):
        concrete = Concretizer().concretize(Spec.parse("hpl@2.3"))
        tree = render_spec_tree(concrete)
        lines = tree.splitlines()
        assert lines[0].startswith("hpl@2.3")
        assert any(line.startswith("    openblas") for line in lines)
        assert any(line.startswith("    openmpi") for line in lines)

    def test_shared_deps_referenced_once(self):
        concrete = Concretizer().concretize(Spec.parse("netlib-scalapack"))
        tree = render_spec_tree(concrete)
        # openblas appears under both lapack and scalapack; the second
        # occurrence is a back-reference.
        assert tree.count("(see above)") >= 1

    def test_find_empty_database(self):
        assert render_find(Installer()) == "==> 0 installed packages"

    def test_find_lists_installed(self):
        installer = Installer()
        installer.install(Concretizer().concretize(Spec.parse("stream@5.10")))
        text = render_find(installer)
        assert "==> 1 installed packages" in text
        assert "stream@5.10" in text
        assert "linux-u74mc" in text


class TestPlots:
    def test_scaling_plot_contains_points_and_reference(self):
        points = strong_scaling_table(HPLModel())
        text = render_scaling_plot(points)
        assert text.count("o") >= 4          # the four measured points
        assert "." in text                   # the linear reference
        assert "86." in text or "85." in text  # fraction-of-linear label

    def test_scaling_plot_rejects_empty(self):
        with pytest.raises(ValueError):
            render_scaling_plot([])

    def test_series_chart(self):
        series = [(float(t), float(t * t)) for t in range(20)]
        text = render_series(series, "quadratic")
        assert "quadratic" in text
        assert "*" in text

    def test_series_empty(self):
        assert "no data" in render_series([], "empty")


class TestSbatchScriptAPI:
    def test_script_submission(self):
        from tests.test_slurm import make_controller

        api = SlurmAPI(make_controller(n_nodes=4))
        script = ("#!/bin/bash\n"
                  "#SBATCH --job-name=scripted\n"
                  "#SBATCH -N 2\n"
                  "#SBATCH --time=01:00:00\n"
                  "srun xhpl\n")
        job_id = api.sbatch_script(script, user="alice", duration_s=100.0)
        job = api.controller.jobs[job_id]
        assert job.name == "scripted"
        assert job.n_nodes == 2
        assert job.time_limit_s == 3600.0
        api.wait_all()
        assert job.state is JobState.COMPLETED

    def test_script_time_limit_enforced(self):
        from tests.test_slurm import make_controller

        api = SlurmAPI(make_controller())
        script = ("#!/bin/bash\n"
                  "#SBATCH -N 1\n"
                  "#SBATCH -t 10:00\n"          # 10 minutes
                  "srun long-job\n")
        job_id = api.sbatch_script(script, user="bob", duration_s=10000.0)
        api.wait_all()
        assert api.controller.jobs[job_id].state is JobState.TIMEOUT


class TestCLI:
    def test_power_command(self, capsys):
        from repro.__main__ import main

        assert main(["power"]) == 0
        out = capsys.readouterr().out
        assert "core" in out and "leakage_fraction" in out

    def test_stack_command(self, capsys):
        from repro.__main__ import main

        assert main(["stack"]) == 0
        out = capsys.readouterr().out
        assert "hpl@2.3" in out

    def test_scaling_command(self, capsys):
        from repro.__main__ import main

        assert main(["scaling"]) == 0
        out = capsys.readouterr().out
        assert "GFLOP/s" in out

    def test_report_command(self, tmp_path, capsys):
        from repro.__main__ import main

        output = tmp_path / "exp.md"
        assert main(["report", "--output", str(output),
                     "--sim-duration", "120"]) == 0
        assert output.exists()
        assert "Table VI" in output.read_text()

    def test_unknown_command_exits_nonzero(self):
        from repro.__main__ import main

        with pytest.raises(SystemExit):
            main(["frobnicate"])
