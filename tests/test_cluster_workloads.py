"""Tests for the benchmark→job bridge."""

import pytest

from repro.benchmarks.hpl import HPLConfig
from repro.benchmarks.stream import StreamConfig
from repro.cluster.cluster import MonteCimoneCluster
from repro.cluster.workloads import hpl_job, qe_lax_job, stream_job
from repro.slurm.job import JobState
from repro.thermal.enclosure import EnclosureConfig


class TestJobRequests:
    def test_hpl_job_duration_from_model(self):
        request = hpl_job(HPLConfig())
        # Single-node paper run: ~24105 s.
        assert request.duration_s == pytest.approx(24105, rel=0.03)
        assert request.n_nodes == 1
        assert request.profile.name == "hpl"

    def test_hpl_full_machine_request(self):
        request = hpl_job(HPLConfig(n_nodes=8))
        assert request.n_nodes == 8
        assert request.duration_s == pytest.approx(3548, rel=0.03)

    def test_stream_job_regime_selects_profile(self):
        ddr = stream_job(StreamConfig(array_mib=1945.5))
        l2 = stream_job(StreamConfig(array_mib=1.1))
        assert ddr.profile.name == "stream_ddr"
        assert l2.profile.name == "stream_l2"
        # The DDR run moves ~2 GB per kernel at ~1.1 GB/s: minutes, not ms.
        assert ddr.duration_s > 60.0
        assert l2.duration_s < ddr.duration_s

    def test_qe_job_matches_paper_duration(self):
        request = qe_lax_job()
        assert request.duration_s == pytest.approx(37.4, abs=0.5)

    def test_submit_kwargs_shape(self):
        kwargs = qe_lax_job().submit_kwargs()
        assert set(kwargs) == {"name", "n_nodes", "duration_s", "profile"}


class TestEndToEndSubmission:
    def test_qe_job_runs_on_the_cluster(self):
        cluster = MonteCimoneCluster(
            enclosure_config=EnclosureConfig.mitigated())
        cluster.boot_all()
        request = qe_lax_job()
        job = cluster.slurm.submit(user="alice", **request.submit_kwargs())
        cluster.engine.run(until=cluster.engine.now + 100.0)
        assert job.state is JobState.COMPLETED
        assert job.elapsed_s == pytest.approx(request.duration_s, abs=1.5)
