"""Tests for the thermal substrate: enclosure, RC model, watchdog."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.thermal.enclosure import Enclosure, EnclosureConfig, SlotPosition
from repro.thermal.model import NodeThermalModel, ThermalRC
from repro.thermal.runaway import ThermalWatchdog

HPL_NODE_POWER_W = 5.935


class TestEnclosureGeometry:
    def test_eight_slots(self):
        assert Enclosure().n_slots == 8

    def test_blade_mapping(self):
        enclosure = Enclosure()
        assert enclosure.blade_of(0) == 0
        assert enclosure.blade_of(7) == 3
        with pytest.raises(IndexError):
            enclosure.blade_of(8)

    def test_edge_and_centre_positions(self):
        enclosure = Enclosure()
        assert enclosure.position_of(0) is SlotPosition.EDGE
        assert enclosure.position_of(3) is SlotPosition.CENTRE
        assert enclosure.position_of(4) is SlotPosition.CENTRE
        assert enclosure.position_of(7) is SlotPosition.EDGE


class TestOriginalConfiguration:
    ENCLOSURE = Enclosure(EnclosureConfig.original())

    def test_slot4_exceeds_trip_under_hpl(self):
        """The runaway slot must settle above the 107 °C trip."""
        model = NodeThermalModel(self.ENCLOSURE, slot=4)
        assert model.steady_state_soc_c(HPL_NODE_POWER_W) > 107.0

    def test_other_centre_slots_hot_but_below_trip(self):
        for slot in (2, 3, 5):
            model = NodeThermalModel(self.ENCLOSURE, slot=slot)
            steady = model.steady_state_soc_c(HPL_NODE_POWER_W)
            assert 68.0 < steady < 107.0, f"slot {slot}: {steady}"

    def test_edge_slots_around_70(self):
        # §V-C: the non-runaway nodes topped out around 71 °C.
        for slot in (0, 1, 6, 7):
            model = NodeThermalModel(self.ENCLOSURE, slot=slot)
            assert model.steady_state_soc_c(HPL_NODE_POWER_W) == \
                pytest.approx(68, abs=4)

    def test_centre_preheat(self):
        assert self.ENCLOSURE.local_ambient(4) > self.ENCLOSURE.local_ambient(0)


class TestMitigatedConfiguration:
    ENCLOSURE = Enclosure(EnclosureConfig.mitigated())

    def test_hottest_slot_near_39(self):
        # §V-C: mitigation brought the hottest node from 71 °C to 39 °C.
        steady = [NodeThermalModel(self.ENCLOSURE, slot=s)
                  .steady_state_soc_c(HPL_NODE_POWER_W)
                  for s in range(8)]
        assert max(steady) == pytest.approx(39.0, abs=2.0)

    def test_every_slot_far_below_trip(self):
        for slot in range(8):
            model = NodeThermalModel(self.ENCLOSURE, slot=slot)
            assert model.steady_state_soc_c(HPL_NODE_POWER_W) < 45.0

    def test_mitigation_reduces_every_resistance(self):
        original = Enclosure(EnclosureConfig.original())
        mitigated = Enclosure(EnclosureConfig.mitigated())
        for slot in range(8):
            assert (mitigated.thermal_resistance(slot)
                    < original.thermal_resistance(slot))


class TestThermalRC:
    def test_validation(self):
        with pytest.raises(ValueError):
            ThermalRC(resistance_k_per_w=0, capacitance_j_per_k=10)
        with pytest.raises(ValueError):
            ThermalRC(resistance_k_per_w=1, capacitance_j_per_k=-1)

    def test_steady_state(self):
        rc = ThermalRC(resistance_k_per_w=10.0, capacitance_j_per_k=30.0)
        assert rc.steady_state_c(5.0, ambient_c=25.0) == 75.0

    def test_exact_exponential_step(self):
        rc = ThermalRC(resistance_k_per_w=10.0, capacitance_j_per_k=30.0,
                       temperature_c=25.0)
        rc.step(dt_s=300.0, power_w=5.0, ambient_c=25.0)
        expected = 75.0 + (25.0 - 75.0) * math.exp(-300.0 / 300.0)
        assert rc.temperature_c == pytest.approx(expected)

    def test_negative_step_rejected(self):
        rc = ThermalRC(resistance_k_per_w=1.0, capacitance_j_per_k=1.0)
        with pytest.raises(ValueError):
            rc.step(-1.0, 1.0, 25.0)

    @given(dt=st.floats(min_value=0.01, max_value=10000.0),
           power=st.floats(min_value=0.0, max_value=20.0),
           start=st.floats(min_value=0.0, max_value=150.0))
    @settings(max_examples=100, deadline=None)
    def test_step_never_overshoots_steady_state(self, dt, power, start):
        """Property: the exponential step stays between start and target."""
        rc = ThermalRC(resistance_k_per_w=8.0, capacitance_j_per_k=30.0,
                       temperature_c=start)
        target = rc.steady_state_c(power, ambient_c=25.0)
        after = rc.step(dt, power, ambient_c=25.0)
        low, high = min(start, target), max(start, target)
        assert low - 1e-9 <= after <= high + 1e-9

    @given(dts=st.lists(st.floats(min_value=0.1, max_value=100.0),
                        min_size=2, max_size=10))
    @settings(max_examples=50, deadline=None)
    def test_step_composition_independent_of_slicing(self, dts):
        """Property: exact integration — many small steps == one big step."""
        sliced = ThermalRC(resistance_k_per_w=8.0, capacitance_j_per_k=30.0)
        whole = ThermalRC(resistance_k_per_w=8.0, capacitance_j_per_k=30.0)
        for dt in dts:
            sliced.step(dt, 5.0, 25.0)
        whole.step(sum(dts), 5.0, 25.0)
        assert sliced.temperature_c == pytest.approx(whole.temperature_c,
                                                     abs=1e-9)


class TestNodeThermalModel:
    def test_hwmon_updates_on_step(self):
        from repro.hardware.sensors import HwmonTree

        tree = HwmonTree()
        model = NodeThermalModel(Enclosure(), slot=0, hwmon=tree)
        model.step(1000.0, board_power_w=5.9)
        assert tree.read_celsius("cpu_temp") > 30.0
        assert tree.read_celsius("mb_temp") > 25.0

    def test_set_enclosure_changes_resistance_in_place(self):
        model = NodeThermalModel(Enclosure(EnclosureConfig.original()), slot=4)
        r_before = model.soc.resistance_k_per_w
        model.set_enclosure(Enclosure(EnclosureConfig.mitigated()))
        assert model.soc.resistance_k_per_w < r_before

    def test_motherboard_cooler_than_soc(self):
        model = NodeThermalModel(Enclosure(), slot=4)
        for _ in range(100):
            model.step(10.0, board_power_w=5.9)
        assert model.motherboard.temperature_c < model.soc.temperature_c


class TestWatchdog:
    def test_trip_fires_callback_once(self):
        tripped = []
        watchdog = ThermalWatchdog(on_trip=tripped.append)
        watchdog.observe(1.0, "n1", 106.0)
        watchdog.observe(2.0, "n1", 108.0)
        watchdog.observe(3.0, "n1", 120.0)
        assert tripped == ["n1"]

    def test_warning_recorded_before_trip(self):
        watchdog = ThermalWatchdog()
        watchdog.observe(1.0, "n1", 95.0)
        watchdog.observe(2.0, "n1", 107.5)
        kinds = [e.kind for e in watchdog.events]
        assert kinds == ["warning", "trip"]

    def test_reset_rearms(self):
        tripped = []
        watchdog = ThermalWatchdog(on_trip=tripped.append)
        watchdog.observe(1.0, "n1", 110.0)
        watchdog.reset("n1")
        watchdog.observe(2.0, "n1", 110.0)
        assert tripped == ["n1", "n1"]

    def test_thresholds_must_be_ordered(self):
        with pytest.raises(ValueError):
            ThermalWatchdog(trip_celsius=80.0, warning_celsius=90.0)

    def test_tripped_nodes_in_order(self):
        watchdog = ThermalWatchdog()
        watchdog.observe(1.0, "n2", 108.0)
        watchdog.observe(2.0, "n1", 109.0)
        assert watchdog.tripped_nodes() == ["n2", "n1"]
