"""Tests for the assembled HiFive Unmatched board."""

import pytest

from repro.hardware.board import HiFiveUnmatched


class TestBoardComposition:
    def test_four_schedulable_cores(self):
        assert HiFiveUnmatched().n_cores == 4

    def test_peaks_match_datasheet(self):
        board = HiFiveUnmatched()
        assert board.peak_flops == pytest.approx(4.0e9)
        assert board.peak_memory_bandwidth == pytest.approx(7760e6)

    def test_infiniband_optional(self):
        assert HiFiveUnmatched().infiniband is None
        assert HiFiveUnmatched(with_infiniband=True).infiniband is not None

    def test_mini_itx_form_factor(self):
        assert HiFiveUnmatched.FORM_FACTOR_MM == (170, 170)

    def test_perf_interface_covers_all_cores(self):
        board = HiFiveUnmatched()
        assert board.perf.core_ids == [0, 1, 2, 3]

    def test_enable_hpm_counters_applies_to_every_core(self):
        board = HiFiveUnmatched()
        board.enable_hpm_counters()
        assert all(core.hpm.programmable_enabled for core in board.cores)

    def test_nvme_temperature_syncs_to_hwmon(self):
        board = HiFiveUnmatched()
        board.nvme.temperature_c = 47.0
        board.sync_nvme_temperature()
        assert board.hwmon.read_celsius("nvme_temp") == 47.0

    def test_rails_are_the_table_vi_set(self):
        board = HiFiveUnmatched()
        assert len(board.rails.names) == 9
