"""Component-level chaos: each layer's fault surface and recovery policy.

Covers the graceful-degradation machinery the injectors drive: broker
outage → plugin buffer/backoff/backfill, link flap → MPI retry, service
outage → queued logins and deferred writes, sensor faults → skipped
metrics and recovery spans, plus the transfer-argument validation on
:class:`~repro.network.link.Link`.
"""

import pytest

from repro.chaos.backoff import ExponentialBackoff
from repro.chaos.faults import ChaosLog
from repro.chaos.injectors import (BrokerOutageInjector, LinkFaultInjector,
                                   SensorFaultInjector,
                                   ServiceOutageInjector)
from repro.cluster.node import ComputeNode
from repro.cluster.services.base import ServiceUnavailableError
from repro.cluster.services.ldap import LDAPServer
from repro.cluster.services.nfs import NFSServer
from repro.events import Engine
from repro.examon.broker import BrokerUnavailableError, MQTTBroker
from repro.examon.payload import decode_payload
from repro.examon.plugins.pmu_pub import PmuPubPlugin
from repro.examon.plugins.stats_pub import StatsPubPlugin
from repro.examon.tsdb import TimeSeriesDB
from repro.hardware.sensors import SensorReadError, ThermalSensor
from repro.network.link import Link, LinkDownError
from repro.network.mpi import (MPICostModel, MPIRetryError, MPIRetryPolicy,
                               run_collective_with_retry)
from repro.network.topology import ClusterTopology
from repro.obs.instrument import attach_tracer


def booted_node(hostname="mc-node-1"):
    node = ComputeNode(hostname=hostname)
    node.power_on(0.0)
    node.start_bootloader(0.0)
    node.finish_boot(0.0)
    return node


class TestSensorFaults:
    def test_dropout_read_raises_until_repair(self):
        sensor = ThermalSensor(name="cpu_temp")
        sensor.fail_dropout()
        assert not sensor.healthy
        with pytest.raises(SensorReadError):
            sensor.millidegrees()
        sensor.repair()
        assert sensor.healthy
        assert isinstance(sensor.millidegrees(), int)

    def test_stuck_sensor_freezes_value(self):
        sensor = ThermalSensor(name="cpu_temp")
        sensor.set(40.0)
        sensor.fail_stuck()
        sensor.set(55.0)
        assert sensor.temperature_c == 40.0
        sensor.repair()
        sensor.set(55.0)
        assert sensor.temperature_c == 55.0

    def test_stats_pub_skips_failed_sensor_and_recovers(self):
        engine = Engine()
        tracer = attach_tracer(engine)
        node = booted_node()
        plugin = StatsPubPlugin(node, MQTTBroker(), sample_hz=1.0)
        engine.spawn(plugin.run(engine))
        injector = SensorFaultInjector(engine, ChaosLog(), node.hostname,
                                       node.board.hwmon.sensors["cpu_temp"],
                                       "cpu_temp", mode="dropout")
        injector.schedule_window(2.5, 5.5)
        engine.run(until=10.0)
        plugin.stop()
        assert plugin.sensor_faults == 3  # reads at t=3, 4, 5 failed
        recoveries = [s for s in tracer.spans
                      if s.category == "chaos.recovery"]
        assert len(recoveries) == 1
        span = recoveries[0]
        assert span.attributes["target"] == "mc-node-1/cpu_temp"
        assert span.start_s == pytest.approx(3.0)
        assert span.end_s == pytest.approx(6.0)  # first good read


class TestBrokerOutage:
    def test_publish_raises_and_counts_when_offline(self):
        broker = MQTTBroker()
        broker.go_offline()
        with pytest.raises(BrokerUnavailableError):
            broker.publish("t", b"1;0", 0.0)
        assert broker.publish_rejects == 1
        broker.restore()
        broker.publish("t", b"1;0", 0.0)

    def test_subscriptions_survive_an_outage(self):
        broker = MQTTBroker()
        seen = []
        broker.subscribe("c", "#", seen.append)
        broker.go_offline()
        broker.restore()
        broker.publish("a/b", b"1;0", 0.0)
        assert len(seen) == 1

    def test_plugin_buffers_and_backfills_into_tsdb(self):
        engine = Engine()
        attach_tracer(engine)
        broker = MQTTBroker(hostname="mc-master")
        db = TimeSeriesDB()
        db.attach(broker, "#")
        plugin = PmuPubPlugin(booted_node(), broker)  # 2 Hz
        engine.spawn(plugin.run(engine))
        injector = BrokerOutageInjector(engine, ChaosLog(), broker)
        injector.schedule_window(3.0, 8.0)
        engine.run(until=20.0)
        plugin.stop()
        assert plugin.publish_failures >= 1
        assert plugin.samples_backfilled > 0
        assert plugin.connected
        assert plugin.buffered_samples == 0
        # The outage window is covered by backfilled original timestamps.
        topic = sorted(db.topics())[0]
        times = [t for t, _v in db.query(topic, 3.0, 8.0)]
        assert times, "no backfilled samples in the outage window"
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert max(gaps) == pytest.approx(0.5)

    def test_buffer_is_bounded_drop_oldest(self):
        engine = Engine()
        broker = MQTTBroker()
        plugin = PmuPubPlugin(booted_node(), broker, buffer_limit=10)
        engine.spawn(plugin.run(engine))
        broker.go_offline()
        engine.run(until=30.0)
        plugin.stop()
        assert plugin.buffered_samples == 10
        assert plugin.samples_dropped > 0

    def test_reconnect_follows_backoff_schedule(self):
        engine = Engine()
        broker = MQTTBroker()
        plugin = PmuPubPlugin(
            booted_node(), broker,
            reconnect_backoff=ExponentialBackoff(base_s=1.0, factor=2.0,
                                                 max_s=8.0))
        engine.spawn(plugin.run(engine))
        broker.go_offline()
        engine.run(until=40.0)
        plugin.stop()
        # Reconnect attempts are spaced out, not every sampling instant:
        # a 2 Hz daemon makes ~80 instants in 40 s but far fewer probes.
        assert 0 < plugin.reconnect_attempts < 20

    def test_slow_broker_degrades_cadence_without_wedging(self):
        engine = Engine()
        broker = MQTTBroker()
        broker.set_slow(0.5)
        plugin = PmuPubPlugin(booted_node(), broker)  # period 0.5 s
        engine.spawn(plugin.run(engine))
        engine.run(until=10.0)
        plugin.stop()
        # Effective period doubles (0.5 s publish penalty + 0.5 s sleep).
        assert plugin.samples_taken == pytest.approx(11, abs=1)
        assert plugin.slow_publishes > 0


class TestLinkFaults:
    def test_transfer_time_validates_arguments(self):
        link = Link(name="l", bandwidth_bytes_per_s=1e6, latency_s=1e-5)
        with pytest.raises(ValueError):
            link.transfer_time(-1)
        with pytest.raises(ValueError):
            link.transfer_time(100, concurrent_flows=0)
        assert link.transfer_time(0) == pytest.approx(1e-5)

    def test_down_link_refuses_transfers(self):
        link = Link(name="l", bandwidth_bytes_per_s=1e6, latency_s=1e-5)
        link.set_down()
        with pytest.raises(LinkDownError):
            link.transfer_time(100)
        assert link.transfers_refused == 1
        link.set_up()
        link.transfer_time(100)

    def test_degraded_link_stretches_transfers(self):
        link = Link(name="l", bandwidth_bytes_per_s=1e6, latency_s=0.0)
        nominal = link.transfer_time(1_000_000)
        link.set_degraded(4.0)
        assert link.transfer_time(1_000_000) == pytest.approx(4 * nominal)
        link.clear_degraded()
        assert link.transfer_time(1_000_000) == pytest.approx(nominal)

    def test_collective_retries_over_flap_and_records_recovery(self):
        engine = Engine()
        tracer = attach_tracer(engine)
        topology = ClusterTopology(["a", "b"])
        model = MPICostModel(topology)
        injector = LinkFaultInjector(engine, ChaosLog(),
                                     topology.links["a"], mode="down")
        injector.schedule_window(0.0, 4.0)
        outcome = {}

        def driver():
            outcome.update((yield from run_collective_with_retry(
                engine, model, "allreduce", n_bytes=1 << 16, n_ranks=2)))

        engine.spawn(driver())
        engine.run(until=30.0)
        assert outcome["retries"] >= 1
        recoveries = [s for s in tracer.spans
                      if s.category == "chaos.recovery"]
        assert recoveries and recoveries[0].attributes["kind"] == "link-down"
        assert recoveries[0].end_s >= 4.0

    def test_collective_exhausts_retry_budget(self):
        engine = Engine()
        topology = ClusterTopology(["a", "b"])
        topology.links["a"].set_down()
        model = MPICostModel(topology)
        policy = MPIRetryPolicy(timeout_s=0.1, max_retries=2,
                                backoff=ExponentialBackoff(base_s=0.1,
                                                           max_s=0.4))
        failures = []

        def driver():
            try:
                yield from run_collective_with_retry(
                    engine, model, "allreduce", n_bytes=1024, n_ranks=2,
                    policy=policy)
            except MPIRetryError as exc:
                failures.append(exc)

        engine.spawn(driver())
        engine.run(until=10.0)
        assert len(failures) == 1


class TestServiceOutage:
    def test_gated_rpcs_raise_while_down(self):
        nfs = NFSServer()
        nfs.export("/home")
        nfs.stop_service()
        with pytest.raises(ServiceUnavailableError):
            nfs.write("/home/x", b"data")
        with pytest.raises(ServiceUnavailableError):
            nfs.read("/home/x")
        assert nfs.requests_refused == 2
        assert nfs.exists("/home")  # client-cached metadata still answers
        nfs.start_service()
        nfs.write("/home/x", b"data")

    def test_ldap_bind_raises_while_down(self):
        ldap = LDAPServer()
        ldap.add_group("g")
        ldap.add_user("u", "pw", "g")
        ldap.stop_service()
        with pytest.raises(ServiceUnavailableError):
            ldap.bind("u", "pw")
        ldap.start_service()
        assert ldap.bind("u", "pw").uid == "u"

    def test_injector_restore_runs_callback_and_records_recovery(self):
        engine = Engine()
        tracer = attach_tracer(engine)
        nfs = NFSServer()
        nfs.export("/home")
        replayed = []
        injector = ServiceOutageInjector(
            engine, ChaosLog(), nfs,
            on_restore=lambda: replayed.append(1) or {"flushed": 3})
        injector.schedule_window(1.0, 5.0)
        engine.run(until=6.0)
        assert replayed == [1]
        faults = [s for s in tracer.spans if s.category == "chaos.fault"]
        recoveries = [s for s in tracer.spans
                      if s.category == "chaos.recovery"]
        assert len(faults) == 1 and len(recoveries) == 1
        assert faults[0].start_s == pytest.approx(1.0)
        assert faults[0].end_s == pytest.approx(5.0)
        assert recoveries[0].attributes["flushed"] == 3
