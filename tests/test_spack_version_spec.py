"""Tests for the Spack version objects and spec language."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spack.spec import Spec, SpecParseError
from repro.spack.version import Version, VersionRange


class TestVersion:
    def test_ordering(self):
        assert Version("10.3.0") > Version("9.9.9")
        assert Version("2.36.1") < Version("2.37")
        assert Version("3.3.10") > Version("3.3.9")

    def test_equality_and_hash(self):
        assert Version("1.2") == Version("1.2")
        assert hash(Version("1.2")) == hash(Version("1.2"))

    def test_prefix_is_smaller(self):
        assert Version("2.1") < Version("2.1.0")

    def test_alpha_suffix_orders_after_numeric(self):
        assert Version("2.37.x") > Version("2.37.5")

    def test_up_to(self):
        assert Version("10.3.0").up_to(2) == Version("10.3")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Version("")

    @given(st.lists(st.tuples(st.integers(0, 99), st.integers(0, 99),
                              st.integers(0, 99)), min_size=2, max_size=8))
    @settings(max_examples=50, deadline=None)
    def test_ordering_matches_tuple_ordering(self, triples):
        """Property: dotted numeric versions order like their tuples."""
        versions = [Version(f"{a}.{b}.{c}") for a, b, c in triples]
        assert sorted(versions) == [Version(f"{a}.{b}.{c}")
                                    for a, b, c in sorted(triples)]


class TestVersionRange:
    def test_exact(self):
        constraint = VersionRange.exact("2.3")
        assert constraint.contains(Version("2.3"))
        assert not constraint.contains(Version("2.3.1"))

    def test_parse_lower_bound(self):
        constraint = VersionRange.parse("1.2:")
        assert constraint.contains(Version("1.2"))
        assert constraint.contains(Version("99.0"))
        assert not constraint.contains(Version("1.1"))

    def test_parse_upper_bound(self):
        constraint = VersionRange.parse(":2.0")
        assert constraint.contains(Version("2.0"))
        assert not constraint.contains(Version("2.0.1"))

    def test_parse_interval(self):
        constraint = VersionRange.parse("1.2:2.0")
        assert constraint.contains(Version("1.5"))
        assert not constraint.contains(Version("2.1"))

    def test_open_range_contains_everything(self):
        assert VersionRange().contains(Version("0.0.1"))

    def test_intersects(self):
        assert VersionRange.parse("1:3").intersects(VersionRange.parse("2:5"))
        assert not VersionRange.parse("1:2").intersects(VersionRange.parse("3:4"))
        assert VersionRange.exact("2.3").intersects(VersionRange.parse("2:3"))


class TestSpecParsing:
    def test_simple_name(self):
        spec = Spec.parse("hpl")
        assert spec.name == "hpl"
        assert not spec.is_concrete

    def test_version_constraint(self):
        spec = Spec.parse("hpl@2.3")
        assert spec.versions.contains(Version("2.3"))

    def test_variants(self):
        spec = Spec.parse("fftw +mpi ~openmp")
        assert spec.variants == {"mpi": True, "openmp": False}

    def test_compiler_and_target(self):
        spec = Spec.parse("hpl@2.3 %gcc@10.3.0 target=u74mc")
        assert spec.compiler == "gcc"
        assert spec.compiler_version.contains(Version("10.3.0"))
        assert spec.target == "u74mc"

    def test_dependency_constraints(self):
        spec = Spec.parse("hpl@2.3 ^openblas@0.3.18 ^openmpi@4.1.1")
        assert set(spec.dependencies) == {"openblas", "openmpi"}

    def test_bad_token_rejected(self):
        with pytest.raises(SpecParseError):
            Spec.parse("hpl what=ever")

    def test_bad_name_rejected(self):
        with pytest.raises(SpecParseError):
            Spec.parse("HPL")

    def test_roundtrip_format(self):
        text = "hpl@2.3 +openmp %gcc@10.3.0 target=u74mc"
        spec = Spec.parse(text)
        assert Spec.parse(spec.format()).format() == spec.format()


class TestSpecOperations:
    def test_constrain_merges(self):
        spec = Spec.parse("hpl")
        spec.constrain(Spec.parse("hpl@2.3 target=u74mc"))
        assert spec.versions.contains(Version("2.3"))
        assert spec.target == "u74mc"

    def test_constrain_conflicting_versions(self):
        spec = Spec.parse("hpl@2.3")
        with pytest.raises(ValueError, match="conflicting"):
            spec.constrain(Spec.parse("hpl@2.4"))

    def test_constrain_conflicting_variants(self):
        spec = Spec.parse("fftw +mpi")
        with pytest.raises(ValueError, match="variant"):
            spec.constrain(Spec.parse("fftw ~mpi"))

    def test_constrain_wrong_package(self):
        with pytest.raises(ValueError):
            Spec.parse("hpl").constrain(Spec.parse("stream"))

    def test_dag_hash_requires_concrete(self):
        with pytest.raises(ValueError):
            Spec.parse("hpl").dag_hash()

    def test_version_property_requires_concrete(self):
        with pytest.raises(ValueError):
            _ = Spec.parse("hpl@2.3:2.4").version
