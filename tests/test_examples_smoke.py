"""Smoke tests: every example script runs to completion.

Each example is executed in-process via runpy with stdout captured; the
slow full-incident ones get short-circuit knobs where available.  These
tests are what keeps the README's "runnable examples" claim true.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[1] / "examples"


def run_example(name: str, argv: list[str] | None = None) -> None:
    old_argv = sys.argv
    sys.argv = [str(EXAMPLES / name)] + (argv or [])
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv


def test_quickstart(capsys):
    run_example("quickstart.py")
    out = capsys.readouterr().out
    assert "sinfo" in out
    assert "finished: state=CD" in out


def test_deploy_software_stack(capsys):
    run_example("deploy_software_stack.py")
    out = capsys.readouterr().out
    assert "linux-sifive-u74mc" in out
    assert "quantum-espresso" in out
    assert "module load hpl/2.3" in out


def test_monitoring_dashboard(capsys):
    run_example("monitoring_dashboard.py")
    out = capsys.readouterr().out
    assert "instructions/s" in out
    assert "monitoring transport" in out


def test_power_characterization(capsys):
    run_example("power_characterization.py")
    out = capsys.readouterr().out
    assert "Table VI" in out
    assert "32.0%" in out           # leakage share


def test_cluster_operations(capsys):
    run_example("cluster_operations.py")
    out = capsys.readouterr().out
    assert "operator report" in out
    assert "utilisation" in out
    assert "Grafana dashboard export" in out


@pytest.mark.slow
def test_thermal_incident(capsys):
    run_example("thermal_incident.py")
    out = capsys.readouterr().out
    assert "trip at 107.0" in out
    assert "39" in out


@pytest.mark.slow
def test_reproduce_paper(tmp_path, capsys):
    run_example("reproduce_paper.py", [str(tmp_path / "EXPERIMENTS.md")])
    report = (tmp_path / "EXPERIMENTS.md").read_text()
    assert "Table VI" in report
    assert "Fig. 6" in report
