"""Repository-root pytest configuration.

Puts ``src/`` on ``sys.path`` so the test-suite and benchmark harness run
even when the package has not been pip-installed (the offline build
environment lacks the ``wheel`` package PEP 660 editable installs need;
``python setup.py develop`` works, and this shim covers the bare case).
"""

import sys
from pathlib import Path

_SRC = str(Path(__file__).parent / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
