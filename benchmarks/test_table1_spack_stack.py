"""Table I: deploy the user-facing software stack via the Spack model.

Regenerates the package/version table and checks it against the paper's
Table I verbatim.
"""

from repro.analysis.experiments import table1_software_stack
from repro.analysis.paper import TABLE_I_STACK


def test_table1_stack_regenerates(benchmark):
    rows = benchmark(table1_software_stack)
    assert {name: installed for name, installed, _p, _m in rows} == \
        TABLE_I_STACK
    assert all(match for _n, _i, _p, match in rows)


def test_table1_includes_transitive_dependencies(benchmark):
    """The paper omits transitive deps 'for brevity'; we install them."""
    from repro.spack.environment import SpackEnvironment
    from repro.spack.installer import Installer

    def deploy():
        installer = Installer()
        SpackEnvironment.monte_cimone().install(installer)
        return installer.records()

    records = benchmark(deploy)
    names = {record.name for record in records}
    # More packages installed than the nine user-facing ones.
    assert len(names) > len(TABLE_I_STACK)
    assert {"hwloc", "zlib", "pmix"} <= names
