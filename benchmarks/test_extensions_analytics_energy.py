"""Extension benches: ODA anomaly detection and per-job energy accounting.

Quantifies two capabilities the paper motivates but does not measure:
how early the ExaMon analytics flag the Fig. 6 runaway, and the
energy-to-solution ledger for the §V-A benchmark set.
"""

import pytest

from repro.analysis import paper
from repro.cluster.cluster import MonteCimoneCluster
from repro.cluster.workloads import qe_lax_job
from repro.examon.analytics import scan_cluster_temperatures
from repro.examon.deployment import ExamonDeployment
from repro.power.energy import JobEnergyAccounting
from repro.power.model import HPL_PROFILE
from repro.slurm.api import SlurmAPI
from repro.thermal.enclosure import EnclosureConfig


@pytest.fixture(scope="module")
def developing_runaway():
    """The Fig. 6 scenario paused at 8 minutes — hot, not yet tripped."""
    cluster = MonteCimoneCluster(enclosure_config=EnclosureConfig.original())
    cluster.boot_all()
    deployment = ExamonDeployment(cluster)
    deployment.start()
    api = SlurmAPI(cluster.slurm)
    start = cluster.engine.now
    api.sbatch("hpl", "bench", nodes=8, duration_s=1800.0,
               profile=HPL_PROFILE)
    cluster.run_for(480.0)
    return cluster, deployment, start


def test_analytics_flag_node7_before_the_trip(benchmark, developing_runaway):
    cluster, deployment, start = developing_runaway
    anomalies = benchmark(
        scan_cluster_temperatures, deployment.db, list(cluster.nodes),
        start, cluster.engine.now)
    assert cluster.watchdog.tripped_nodes() == []   # not tripped yet...
    node7 = [a for a in anomalies if a.subject == "mc-node-7"]
    assert node7                                     # ...but already flagged
    # The trend detector predicts the 107 °C crossing ahead of time.
    trends = [a for a in node7 if a.kind == "trend"]
    outliers = [a for a in node7 if a.kind == "outlier"]
    assert trends or outliers


def test_energy_to_solution_ledger(benchmark):
    def run():
        cluster = MonteCimoneCluster(
            enclosure_config=EnclosureConfig.mitigated())
        cluster.boot_all()
        accounting = JobEnergyAccounting(cluster.slurm)
        api = SlurmAPI(cluster.slurm)
        qe = qe_lax_job()
        job = api.srun(qe.name, "bench", nodes=1,
                       duration_s=qe.duration_s, profile=qe.profile)
        return accounting.record_for(job.job_id)

    record = benchmark(run)
    # One node at the QE power level (~5.67 W, Table VI) for ~37.4 s.
    expected = paper.QE_LAX["runtime_s"] * 5.670
    assert record.energy_j == pytest.approx(expected, rel=0.07)
    assert record.mean_power_w == pytest.approx(5.67, rel=0.05)


def test_hpl_full_machine_energy(benchmark):
    """Energy for the 8-node HPL: ~8 × 5.935 W × 3548 s ≈ 168 kJ scaled
    to the simulated (shortened) run — the per-second power is what is
    asserted; the paper-scale energy is the product."""
    def run():
        cluster = MonteCimoneCluster(
            enclosure_config=EnclosureConfig.mitigated())
        cluster.boot_all()
        accounting = JobEnergyAccounting(cluster.slurm)
        api = SlurmAPI(cluster.slurm)
        job = api.srun("hpl", "bench", nodes=8, duration_s=600.0,
                       profile=HPL_PROFILE)
        return accounting.record_for(job.job_id)

    record = benchmark(run)
    assert record.mean_power_w == pytest.approx(8 * 5.935, rel=0.05)
    # Extrapolated to the paper's 3548 s full-machine runtime:
    paper_scale_kj = record.mean_power_w * 3548.0 / 1e3
    assert paper_scale_kj == pytest.approx(168.0, rel=0.08)
