"""Table IV: hwmon sysfs temperature entries."""

from repro.analysis.experiments import table4_hwmon
from repro.hardware.sensors import HwmonTree


def test_table4_paths(benchmark):
    mapping = benchmark(table4_hwmon)
    assert mapping == {
        "nvme_temp": "/sys/class/hwmon/hwmon0/temp1_input",
        "mb_temp": "/sys/class/hwmon/hwmon1/temp1_input",
        "cpu_temp": "/sys/class/hwmon/hwmon1/temp2_input",
    }


def test_table4_sysfs_read_path(benchmark):
    """Reading through the sysfs path returns kernel-format millidegrees."""
    tree = HwmonTree()
    tree.set_celsius("cpu_temp", 51.25)

    raw = benchmark(tree.read, "/sys/class/hwmon/hwmon1/temp2_input")
    assert raw == "51250\n"
