"""Observability-overhead bench: tracing must be free when disabled.

The kernel guards every tracer hook behind one ``is not None`` check, so
a simulation that never attaches a tracer pays (essentially) nothing for
the observability layer's existence.  This bench pins that claim: the
same workload runs with tracing disabled and enabled, and the disabled
run must not be measurably slower than the enabled one — if it ever is,
a hook leaked out of its guard.
"""

import time

from repro.events.engine import Engine
from repro.obs import attach_tracer, span_of

#: Workload size: processes × yields each, enough to dominate fixed costs.
_N_PROCESSES = 60
_N_YIELDS = 120


def _workload(engine):
    """A representative kernel load: many processes, spans at every hop."""
    def worker(env, k):
        for _ in range(_N_YIELDS):
            with span_of(env, "hop", "bench", k=k):
                yield env.timeout(1.0)

    for k in range(_N_PROCESSES):
        engine.spawn(worker(engine, k), name=f"w{k}")
    engine.run()


def _best_of(repeats, build):
    """Min-of-repeats wall time of ``_workload`` on a fresh engine."""
    best = float("inf")
    for _ in range(repeats):
        engine = build()
        t0 = time.perf_counter()
        _workload(engine)
        best = min(best, time.perf_counter() - t0)
    return best


def test_disabled_tracing_adds_no_engine_overhead():
    def enabled():
        engine = Engine()
        attach_tracer(engine)
        return engine

    disabled_s = _best_of(5, Engine)
    enabled_s = _best_of(5, enabled)
    # Disabled must cost at most what enabled costs (modulo timer noise);
    # the factor is generous because both runs are fast and jittery, but
    # a hook escaping its ``is not None`` guard shows up as disabled
    # costing a large multiple of itself, far beyond this bound.
    assert disabled_s <= enabled_s * 1.5, (
        f"untraced engine slower than traced one: "
        f"{disabled_s * 1e3:.2f} ms vs {enabled_s * 1e3:.2f} ms")


def test_disabled_run_produces_no_observability_state():
    engine = Engine()
    _workload(engine)
    assert engine.tracer is None


def test_enabled_run_captures_every_span():
    engine = Engine()
    tracer = attach_tracer(engine)
    _workload(engine)
    assert len(tracer.find("hop")) == _N_PROCESSES * _N_YIELDS
    assert len(tracer.find("process:")) == _N_PROCESSES
    snapshot = tracer.metrics.snapshot()
    assert snapshot["engine.processes_spawned"] == _N_PROCESSES


def test_traced_engine_throughput(benchmark):
    """Absolute datapoint: events/s with the tracer attached."""
    def run():
        engine = Engine()
        attach_tracer(engine)
        _workload(engine)
        return engine

    engine = benchmark.pedantic(run, rounds=3, iterations=1)
    assert engine.now == _N_YIELDS
