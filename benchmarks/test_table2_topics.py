"""Table II: ExaMon topic and payload formats."""

from repro.analysis.experiments import table2_topics
from repro.examon.payload import decode_payload, encode_payload
from repro.examon.topics import TopicSchema


def test_table2_topic_formats(benchmark):
    topics = benchmark(table2_topics)
    assert topics["pmu_pub"] == (
        "org/unibo/cluster/montecimone/node/mc-node-1/plugin/pmu_pub"
        "/chnl/data/core/0/instructions")
    assert topics["stats_pub"] == (
        "org/unibo/cluster/montecimone/node/mc-node-1/plugin/dstat_pub"
        "/chnl/data/load_avg.1m")


def test_table2_payload_roundtrip(benchmark):
    payload = benchmark(encode_payload, 1234.5, 1650000000.0)
    assert payload == "1234.5;1650000000.0"
    assert decode_payload(payload) == (1234.5, 1650000000.0)


def test_topic_construction_throughput(benchmark):
    """Topic building is on the 2 Hz × 8 nodes × 4 cores hot path."""
    schema = TopicSchema()

    def build_all():
        return [schema.pmu_topic(f"mc-node-{n}", core, "cycles")
                for n in range(1, 9) for core in range(4)]

    topics = benchmark(build_all)
    assert len(topics) == 32
