"""Extension bench: dynamic thermal management in the runaway enclosure.

§VI item (ii) made quantitative: with the DTM governor active, the
original (lids-on) enclosure survives a full-machine HPL run that
otherwise trips node 7 — at a measured clock/throughput cost on the
throttled node only.
"""

import pytest

from repro.cluster.cluster import MonteCimoneCluster
from repro.power.model import HPL_PROFILE
from repro.slurm.api import SlurmAPI
from repro.slurm.job import JobState
from repro.thermal.dtm import ClusterDTM
from repro.thermal.enclosure import EnclosureConfig


@pytest.fixture(scope="module")
def dtm_run():
    cluster = MonteCimoneCluster(enclosure_config=EnclosureConfig.original())
    cluster.boot_all()
    dtm = ClusterDTM(cluster.nodes)
    dtm.start(cluster.engine)
    api = SlurmAPI(cluster.slurm)
    job = api.srun("hpl", "bench", 8, duration_s=1800.0, profile=HPL_PROFILE)
    return cluster, dtm, job


def test_dtm_survives_the_original_enclosure(benchmark, dtm_run):
    cluster, dtm, job = benchmark(lambda: dtm_run)
    assert job.state is JobState.COMPLETED
    assert cluster.watchdog.tripped_nodes() == []


def test_dtm_throttles_only_the_runaway_slot(benchmark, dtm_run):
    cluster, dtm, _job = benchmark(lambda: dtm_run)
    intervened = {event.node for event in dtm.all_events()}
    assert "mc-node-7" in intervened
    # Edge nodes never need throttling.
    assert "mc-node-1" not in intervened
    assert "mc-node-2" not in intervened


def test_dtm_throughput_cost_is_bounded(benchmark, dtm_run):
    """The throttled node loses clock, but far less than losing the node."""
    cluster, _dtm, _job = benchmark(lambda: dtm_run)
    node7 = cluster.nodes["mc-node-7"].board.cores.total_instructions()
    node1 = cluster.nodes["mc-node-1"].board.cores.total_instructions()
    ratio = node7 / node1
    assert 0.4 < ratio < 0.98  # throttled, not dead
