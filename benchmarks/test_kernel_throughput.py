"""Kernel-throughput acceptance gates (``repro bench``).

These are the perf-PR acceptance criteria as executable tests: the tiered
kernel (zero-delay FIFO lane + calendar wheel) must beat the frozen seed
kernel by the gate factors on the canned workloads, the bench report must
validate against its schema, and the committed trajectory file
``BENCH_kernel.json`` must be consistent with what the harness measures
today (the CI regression gate runs the same comparison).

Speedup gates compare *ratios* of interleaved, GC-normalised best-of-N
timings (see :func:`repro.perf.bench._measure_pair`), so they are
machine-independent; a failed gate is re-measured once before the test
fails, which filters the rare run that lands on a host-noise spike
without weakening the gate itself.

Correctness (identical event ordering between the two kernels) is proved
separately in ``tests/test_events_determinism_equiv.py`` — these tests
only assert speed and report shape.
"""

import json
from pathlib import Path

import pytest

from repro.perf.bench import (BENCH_SCHEMA, GATED_WORKLOADS, check_regression,
                              load_trajectory, run_bench, trajectory_entry,
                              validate_report)

TRAJECTORY_PATH = Path(__file__).resolve().parent.parent / "BENCH_kernel.json"


@pytest.fixture(scope="module")
def report():
    """One full-size bench run shared by every test in this module."""
    return run_bench(quick=False, repeats=3, label="pytest")


def _speedup(workload: str, first: dict) -> float:
    """The measured speedup, re-measuring once if the first run missed.

    Retrying only the failing workload keeps the slow path rare: it runs
    solely when a host-noise spike pushed a single ratio under its gate.
    """
    measured = first["workloads"][workload]["speedup"]
    if measured >= GATED_WORKLOADS[workload]:
        return measured
    retry = run_bench(quick=False, repeats=3, label="pytest-retry")
    return max(measured, retry["workloads"][workload]["speedup"])


def test_periodic_speedup_gate(report):
    speedup = _speedup("periodic", report)
    assert speedup >= GATED_WORKLOADS["periodic"], (
        f"periodic-sampling workload: {speedup:.2f}x vs seed kernel, "
        f"gate is {GATED_WORKLOADS['periodic']}x")


def test_chaos_speedup_gate(report):
    speedup = _speedup("chaos", report)
    assert speedup >= GATED_WORKLOADS["chaos"], (
        f"mixed chaos workload: {speedup:.2f}x vs seed kernel, "
        f"gate is {GATED_WORKLOADS['chaos']}x")


def test_report_is_schema_valid(report):
    assert validate_report(report) == []
    assert report["schema"] == BENCH_SCHEMA


def test_report_counters_are_sane(report):
    periodic = report["workloads"]["periodic"]
    chaos = report["workloads"]["chaos"]
    # Both tiers must actually be exercised — a workload that never hits
    # the wheel (or never hits the FIFO lane) isn't measuring the merge.
    assert periodic["fifo_hits"] > 0 and periodic["wheel_hits"] > 0
    assert chaos["fifo_hits"] > 0 and chaos["wheel_hits"] > 0
    # Counter conservation: every processed event came through a tier.
    assert periodic["fifo_hits"] + periodic["wheel_hits"] == periodic["events"]
    assert chaos["fifo_hits"] + chaos["wheel_hits"] == chaos["events"]


def test_monitoring_pipeline_fast_paths(report):
    monitoring = report["workloads"]["monitoring"]
    # Steady-state sampling republishes the same topics, so the broker's
    # match cache should serve nearly every publish, and in-order arrival
    # should keep the TSDB on the append-only path exclusively.
    assert monitoring["match_cache_hit_rate"] > 0.95
    assert monitoring["fast_append_fraction"] == 1.0
    assert monitoring["publishes_per_sec"] > 0
    assert monitoring["inserts_per_sec"] > 0


def test_trajectory_entry_shape(report):
    entry = trajectory_entry(report)
    assert entry["schema"] == BENCH_SCHEMA
    assert set(entry["speedup"]) == {"periodic", "chaos", "monitoring"}
    # Entries must be JSON-serialisable as committed.
    json.loads(json.dumps(entry))


def test_committed_trajectory_is_valid():
    trajectory = load_trajectory(str(TRAJECTORY_PATH))
    assert trajectory, "BENCH_kernel.json must hold at least the baseline"
    for point in trajectory:
        assert point["schema"] == BENCH_SCHEMA
        for name in GATED_WORKLOADS:
            assert isinstance(point["speedup"][name], (int, float))


def test_no_regression_vs_committed_baseline(report):
    trajectory = load_trajectory(str(TRAJECTORY_PATH))
    problems = check_regression(report, trajectory, tolerance=0.2)
    if problems:
        retry = run_bench(quick=False, repeats=3, label="pytest-retry")
        problems = check_regression(retry, trajectory, tolerance=0.2)
    assert problems == [], "; ".join(problems)


def test_check_regression_flags_a_real_drop(report):
    trajectory = load_trajectory(str(TRAJECTORY_PATH))
    slow = json.loads(json.dumps(report))
    for name in GATED_WORKLOADS:
        slow["workloads"][name]["speedup"] = 0.5
    problems = check_regression(slow, trajectory, tolerance=0.2)
    assert len(problems) == len(GATED_WORKLOADS)
