"""Fig. 4: boot power trace and the leakage/dynamic/OS decomposition."""

import pytest

from repro.analysis.experiments import fig4_boot_power
from repro.power.traces import TraceSynthesizer


def test_fig4_region_averages(benchmark):
    boot = benchmark(fig4_boot_power)
    # §V-B quantities.
    assert boot["r1_core_w"] == pytest.approx(0.984, abs=0.01)
    assert boot["r2_core_w"] == pytest.approx(2.561, abs=0.01)
    assert boot["r3_core_w"] == pytest.approx(3.082, abs=0.02)
    assert boot["ddr_mem_r1_w"] == pytest.approx(0.275, abs=0.005)


def test_fig4_decomposition_percentages(benchmark):
    boot = benchmark(fig4_boot_power)
    # Leakage 32%, dynamic+clock 51%, OS 17% of idle core power.
    assert boot["leakage_fraction"] == pytest.approx(0.32, abs=0.01)
    assert boot["dynamic_clock_fraction"] == pytest.approx(0.51, abs=0.01)
    assert boot["os_fraction"] == pytest.approx(0.17, abs=0.01)


def test_fig4_80_second_trace_staircase(benchmark):
    """The full Fig. 4 trace: off → R1 → R2 → R3 power staircase."""
    trace = benchmark(TraceSynthesizer().boot_trace, "core", 80.0)

    def mean_between(lo, hi):
        mask = (trace.times_s >= lo) & (trace.times_s < hi)
        return float(trace.power_w[mask].mean())

    off, r1 = mean_between(0, 4), mean_between(5, 10)
    r2, r3 = mean_between(11, 25), mean_between(45, 80)
    assert off < r1 < r2 < r3
    assert r1 == pytest.approx(0.984, abs=0.05)
