"""Ablation benches for the design choices DESIGN.md calls out.

Each ablation flips one calibrated knob and checks the direction and
rough magnitude of the effect — these are the paper's own "margins for
improvement" claims (§V-A, §VI) made quantitative:

* prefetcher efficiency (the L2 prefetcher "should be perfectly capable
  of reducing the gap" — §V-A item i);
* Zba/Zbb code generation (GCC 12 + binutils 2.37 — §V-A item iii);
* interconnect upgrade (GbE → IB FDR, "tuning (or technology upgrade) on
  the interconnect side" — §V-A);
* enclosure configuration (§V-C).
"""

import pytest

from repro.benchmarks.hpl import HPLConfig, HPLModel
from repro.benchmarks.stream import StreamConfig, StreamModel
from repro.hardware.cache import AccessPattern, L2Cache, StreamPrefetcher
from repro.hardware.specs import DDR_SPEC, MIB
from repro.network.topology import ClusterTopology
from repro.thermal.enclosure import Enclosure, EnclosureConfig
from repro.thermal.model import NodeThermalModel


def test_ablation_prefetcher_closes_the_stream_gap(benchmark):
    """Raising prefetcher efficiency recovers most of the DDR gap."""
    pattern = AccessPattern(working_set_bytes=1945 * MIB, n_streams=3)
    ddr = DDR_SPEC.peak_bandwidth_bytes_per_s

    def sweep():
        return {eff: L2Cache(prefetcher=StreamPrefetcher(efficiency=eff))
                .effective_bandwidth(pattern, ddr)
                for eff in (0.0, 0.3, 0.6, 0.9)}

    curve = benchmark(sweep)
    # Monotone recovery toward peak.
    values = [curve[e] for e in sorted(curve)]
    assert values == sorted(values)
    assert curve[0.9] > 5 * curve[0.0] / 2  # large headroom, as §V-A argues
    assert curve[0.9] < ddr


def test_ablation_bitmanip_toolchain(benchmark):
    """GCC 12 + binutils 2.37 code-gen gains a few percent of bandwidth."""
    model = StreamModel()

    def both():
        base = model.run(StreamConfig(array_mib=1945.5))
        zbb = model.run(StreamConfig(array_mib=1945.5, bitmanip=True))
        return base, zbb

    base, zbb = benchmark(both)
    gain = zbb.kernel_mean("copy") / base.kernel_mean("copy")
    assert 1.01 < gain < 1.10  # "minimal support": percent-level, not 2×


def test_ablation_interconnect_upgrade(benchmark):
    """Replaying Fig. 2 with an FDR-class fabric recovers scaling."""
    def scaled_efficiency(bandwidth_bytes_per_s, latency_s):
        topology = ClusterTopology(
            [f"n{i}" for i in range(8)],
            link_bandwidth_bytes_per_s=bandwidth_bytes_per_s,
            link_latency_s=latency_s)
        model = HPLModel(topology=topology)
        result = model.run(HPLConfig(n_nodes=8))
        single = HPLModel().run(HPLConfig())
        return result.gflops.mean / single.gflops.mean / 8

    def both():
        gbe = scaled_efficiency(117e6, 50e-6)
        ib_fdr = scaled_efficiency(6.8e9, 2e-6)
        return gbe, ib_fdr

    gbe, ib_fdr = benchmark(both)
    assert gbe == pytest.approx(0.85, abs=0.04)
    assert ib_fdr > 0.97  # near-perfect scaling once RDMA-class fabric works


def test_ablation_enclosure_sweep(benchmark):
    """Thermal resistance of the runaway slot across configurations."""
    def sweep():
        return {
            "original": Enclosure(EnclosureConfig.original())
            .thermal_resistance(4),
            "lid_off_only": Enclosure(EnclosureConfig(
                lid_on=False, blade_spacing_u=0)).thermal_resistance(4),
            "mitigated": Enclosure(EnclosureConfig.mitigated())
            .thermal_resistance(4),
        }

    resistances = benchmark(sweep)
    assert resistances["original"] > resistances["lid_off_only"] >= \
        resistances["mitigated"]
    # Only the original configuration can push the node past the trip.
    hpl_power = 5.935
    for name, resistance in resistances.items():
        enclosure = Enclosure(EnclosureConfig.original()
                              if name == "original"
                              else EnclosureConfig.mitigated())
        steady = 25.0 + hpl_power * resistance + (
            4.0 if name == "original" else 0.0)
        if name == "original":
            assert steady > 107.0
        else:
            assert steady < 60.0


def test_ablation_spacing_only_is_not_enough(benchmark):
    """Spacing without lid removal cannot prevent the runaway."""
    spaced = Enclosure(EnclosureConfig(lid_on=True, blade_spacing_u=1))

    steady = benchmark(
        lambda: NodeThermalModel(spaced, slot=4).steady_state_soc_c(5.935))
    assert steady > 107.0
