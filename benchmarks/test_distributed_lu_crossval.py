"""Cross-validation bench: executed distributed LU vs the analytic model.

The strongest internal-consistency check the reproduction has: the
*numerically-executed* distributed solver and the *analytic* HPL model
charge the same cost structure, so their simulated times must agree —
and the executed solve must be numerically correct.
"""

import numpy as np
import pytest

from repro.benchmarks.distributed_lu import DistributedLU
from repro.benchmarks.hpl import HPLConfig, HPLModel
from repro.benchmarks.kernels import hpl_residual

RNG = np.random.default_rng(23)


def test_executed_lu_validates_and_times(benchmark):
    n = 128
    a = RNG.normal(size=(n, n)) + n * np.eye(n)
    b = RNG.normal(size=n)
    solver = DistributedLU(n_ranks=4, nb=16)

    result = benchmark(solver.solve, a, b)
    assert hpl_residual(a, result.x, b) < 16.0
    assert result.comm_time_s > 0


def test_executed_time_tracks_the_model(benchmark):
    n = 96
    a = RNG.normal(size=(n, n)) + n * np.eye(n)
    b = RNG.normal(size=n)

    def both():
        executed = DistributedLU(n_ranks=1, nb=16).solve(a, b)
        modelled = HPLModel().compute_time_s(HPLConfig(n=n, nb=16))
        return executed, modelled

    executed, modelled = benchmark(both)
    assert executed.simulated_time_s == pytest.approx(modelled, rel=0.25)


def test_executed_scaling_shape(benchmark):
    """Speedup grows with ranks but stays below linear (comm overhead),
    the same qualitative shape as Fig. 2 — once the problem is big
    enough to amortise the broadcasts."""
    n = 768
    a = RNG.normal(size=(n, n)) + n * np.eye(n)
    b = RNG.normal(size=n)

    def sweep():
        return {ranks: DistributedLU(n_ranks=ranks, nb=64)
                .solve(a, b).simulated_time_s
                for ranks in (1, 2, 4)}

    times = benchmark(sweep)
    assert times[1] > times[2] > times[4]
    speedup4 = times[1] / times[4]
    assert 1.0 < speedup4 < 4.0


def test_tiny_problems_scale_negatively(benchmark):
    """At N=128 the panel broadcasts dominate: adding ranks *slows* the
    solve — the crossover behaviour any practitioner knows, emerging
    from the executed solver without being programmed in."""
    n = 128
    a = RNG.normal(size=(n, n)) + n * np.eye(n)
    b = RNG.normal(size=n)

    def sweep():
        return {ranks: DistributedLU(n_ranks=ranks, nb=16)
                .solve(a, b).simulated_time_s
                for ranks in (1, 4)}

    times = benchmark(sweep)
    assert times[4] > times[1]
