"""Table VI: per-rail power for every workload column plus boot R1/R2."""

import pytest

from repro.analysis.experiments import table6_power
from repro.power.model import TABLE_VI_MILLIWATTS


def test_table6_all_columns(benchmark):
    table = benchmark(table6_power)
    assert set(table) == set(TABLE_VI_MILLIWATTS)
    for column, rails in table.items():
        for rail, (measured, reference) in rails.items():
            assert measured == pytest.approx(reference, abs=25.0), \
                f"{column}/{rail}: {measured:.1f} vs {reference}"


def test_table6_totals_within_one_percent(benchmark):
    table = benchmark(table6_power)
    for column, rails in table.items():
        measured_total = sum(v[0] for v in rails.values())
        paper_total = sum(v[1] for v in rails.values())
        assert measured_total == pytest.approx(paper_total, rel=0.01), column


def test_table6_workload_ordering(benchmark):
    """HPL is the hungriest, idle the least; STREAM.DDR stresses ddr_mem."""
    table = benchmark(table6_power)
    totals = {column: sum(v[0] for v in rails.values())
              for column, rails in table.items()
              if not column.startswith("boot")}
    assert max(totals, key=totals.get) == "hpl"
    assert min(totals, key=totals.get) == "idle"
    ddr_mem = {column: rails["ddr_mem"][0] for column, rails in table.items()
               if not column.startswith("boot")}
    assert max(ddr_mem, key=ddr_mem.get) == "stream_ddr"
