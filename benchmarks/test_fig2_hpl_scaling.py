"""Fig. 2: HPL strong scaling on 1-8 nodes over the 1 GbE network.

Shape checks: who wins (more nodes), by what factor (85% of linear at 8
nodes), and where the efficiency falls (39.5% of machine peak).
"""

import pytest

from repro.analysis.experiments import fig2_hpl_scaling


def test_fig2_strong_scaling(benchmark):
    scaling = benchmark(fig2_hpl_scaling)
    single, full = scaling.point(1), scaling.point(8)
    # Paper labels: 1.86 GFLOP/s and 12.65 ± 0.52 GFLOP/s.
    assert single.gflops == pytest.approx(1.86, abs=0.04)
    assert full.gflops == pytest.approx(12.65, abs=0.52)
    # 39.5% of the entire machine's theoretical peak.
    assert full.fraction_of_peak == pytest.approx(0.395, abs=0.01)
    # 85% of the extrapolated perfect-linear-scaling peak.
    assert full.fraction_of_linear == pytest.approx(0.85, abs=0.03)


def test_fig2_speedup_curve_is_concave(benchmark):
    scaling = benchmark(fig2_hpl_scaling)
    speedups = [p.speedup for p in scaling.points]
    node_counts = [p.n_nodes for p in scaling.points]
    # Monotone increasing, always below linear, efficiency decreasing.
    assert speedups == sorted(speedups)
    for count, speedup in zip(node_counts[1:], speedups[1:]):
        assert speedup < count
    per_node = [s / n for s, n in zip(speedups, node_counts)]
    assert per_node == sorted(per_node, reverse=True)


def test_fig2_runtime_shrinks_with_nodes(benchmark):
    scaling = benchmark(fig2_hpl_scaling)
    runtimes = [p.runtime_s for p in scaling.points]
    assert runtimes == sorted(runtimes, reverse=True)
    assert scaling.point(8).runtime_s == pytest.approx(3548, rel=0.03)
