"""§V-A QuantumESPRESSO LAX: 1.44 ± 0.05 GFLOP/s over 37.40 s on 512²."""

import numpy as np
import pytest

from repro.benchmarks.kernels import blocked_jacobi_eigh
from repro.benchmarks.qe_lax import QELaxConfig, QELaxModel


def test_qe_lax_model(benchmark):
    result = benchmark(QELaxModel().run, QELaxConfig(n=512))
    assert result.throughput.mean == pytest.approx(1.44, abs=0.05)
    assert result.runtime_s.mean == pytest.approx(37.40, abs=0.4)
    assert result.efficiency == pytest.approx(0.36)


def test_qe_lax_efficiency_between_stream_and_hpl(benchmark):
    result = benchmark(QELaxModel().run)
    assert 0.155 < result.efficiency < 0.465


def test_lax_kernel_diagonalisation(benchmark):
    """Time the real blocked-Jacobi kernel on a small LAX-style matrix."""
    rng = np.random.default_rng(0)
    a = rng.normal(size=(48, 48))
    a = (a + a.T) / 2

    values, _vectors = benchmark(blocked_jacobi_eigh, a)
    assert np.allclose(values, np.linalg.eigvalsh(a), atol=1e-8)
