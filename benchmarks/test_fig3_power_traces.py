"""Fig. 3: 8-second power traces per benchmark, 1 ms averaging windows."""

import pytest

from repro.analysis.experiments import fig3_power_traces
from repro.power.traces import TraceSynthesizer


def test_fig3_trace_means_match_table_vi(benchmark):
    traces = benchmark(fig3_power_traces, 8.0)
    # Core-panel means track the Table VI core column (watts).
    assert traces["hpl"]["core"]["mean_w"] == pytest.approx(4.097, abs=0.12)
    assert traces["stream_l2"]["core"]["mean_w"] == pytest.approx(3.714,
                                                                  abs=0.12)
    assert traces["stream_ddr"]["core"]["mean_w"] == pytest.approx(3.287,
                                                                   abs=0.12)
    assert traces["qe"]["core"]["mean_w"] == pytest.approx(3.825, abs=0.12)


def test_fig3_ddr_panel_ranks_stream_ddr_highest(benchmark):
    traces = benchmark(fig3_power_traces, 8.0)
    ddr_means = {workload: groups["ddr"]["mean_w"]
                 for workload, groups in traces.items()}
    assert max(ddr_means, key=ddr_means.get) == "stream_ddr"


def test_fig3_pcie_panel_is_flat_one_watt(benchmark):
    traces = benchmark(fig3_power_traces, 8.0)
    for workload, groups in traces.items():
        assert groups["pcie_pll_io"]["mean_w"] == pytest.approx(1.1, abs=0.08), \
            workload


def test_fig3_synthesis_throughput(benchmark):
    """Time one 8 s / 1 ms trace generation (8000 windows)."""
    synthesizer = TraceSynthesizer()
    trace = benchmark(synthesizer.benchmark_trace, "hpl", "core")
    assert len(trace.power_w) == 8000
