"""§I/§VI headline power numbers: 4.81 W idle / 5.935 W loaded + shares."""

import pytest

from repro.power.model import (
    HPL_PROFILE,
    IDLE_PROFILE,
    NodePhase,
    RailPowerModel,
)


def test_power_summary_idle(benchmark):
    model = RailPowerModel()
    total = benchmark(model.total_w, NodePhase.R3_OS, IDLE_PROFILE)
    assert total == pytest.approx(4.810, abs=0.02)


def test_power_summary_loaded(benchmark):
    model = RailPowerModel()
    total = benchmark(model.total_w, NodePhase.R3_OS, HPL_PROFILE)
    assert total == pytest.approx(5.935, abs=0.03)


def test_power_summary_shares(benchmark):
    """§I: idle = 64% core, 13% DDR, 23% PCI."""
    model = RailPowerModel()
    rails = benchmark(model.rail_powers_mw, NodePhase.R3_OS, IDLE_PROFILE)
    total = sum(rails.values())
    core = rails["core"] / total
    ddr = (rails["ddr_soc"] + rails["ddr_mem"] + rails["ddr_pll"]
           + rails["ddr_vpp"]) / total
    pci = (rails["pcievp"] + rails["pcievph"]) / total
    assert core == pytest.approx(0.64, abs=0.01)
    assert ddr == pytest.approx(0.13, abs=0.01)
    assert pci == pytest.approx(0.23, abs=0.015)


def test_power_summary_hpl_core_share_69_percent(benchmark):
    """§I: under HPL, 69% core, 14% DDR-ish, 18% PCI."""
    model = RailPowerModel()
    rails = benchmark(model.rail_powers_mw, NodePhase.R3_OS, HPL_PROFILE)
    total = sum(rails.values())
    assert rails["core"] / total == pytest.approx(0.69, abs=0.01)
