"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper and asserts
its shape against the paper's reported values (see DESIGN.md §3 for the
experiment index).  Full-cluster simulations run once per session through
the fixtures below; pytest-benchmark then times the cheap regeneration
paths and the numeric kernels.
"""

import pytest

from repro.analysis.experiments import fig5_heatmaps, fig6_thermal_runaway


@pytest.fixture(scope="session")
def fig5_results():
    """The Fig. 5 cluster run (ExaMon over an 8-node HPL job)."""
    return fig5_heatmaps(duration_s=300.0)


@pytest.fixture(scope="session")
def fig6_results():
    """The Fig. 6 cluster run (runaway + mitigation)."""
    return fig6_thermal_runaway(run_s=1800.0)
