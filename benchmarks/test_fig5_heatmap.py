"""Fig. 5: ExaMon heatmaps during a full-machine HPL run.

Instructions/s, network traffic and memory usage per node — the cluster
simulation runs once per session (see conftest), the checks below assert
the figure's qualitative content.
"""

import pytest


def test_fig5_instruction_rates_ghz_scale(benchmark, fig5_results):
    instructions, _network, _memory = fig5_results

    def node_means():
        return {host: instructions.node_mean(host)
                for host in instructions.rows}

    means = benchmark(node_means)
    assert len(means) == 8
    # 4 cores × ~1.4 Ginstr/s under HPL.
    for host, mean in means.items():
        assert 2e9 < mean < 12e9, host


def test_fig5_communication_dips_visible(benchmark, fig5_results):
    """The paper: 'we can identify the communication patterns,
    corresponding to a lower instruction count'."""
    instructions, _network, _memory = fig5_results
    row = [v for v in instructions.rows["mc-node-1"] if v is not None]
    spread = (max(row) - min(row)) / max(row)
    benchmark(lambda: spread)
    assert spread > 0.01  # visible modulation across buckets


def test_fig5_network_traffic_bursts(benchmark, fig5_results):
    _instructions, network, _memory = fig5_results
    means = benchmark(lambda: {h: network.node_mean(h) for h in network.rows})
    for host, mean in means.items():
        assert mean > 1e6, host  # MB/s-scale MPI traffic on every node


def test_fig5_memory_usage_shows_hpl_matrix(benchmark, fig5_results):
    _instructions, _network, memory = fig5_results
    means = benchmark(lambda: {h: memory.node_mean(h) for h in memory.rows})
    for host, used in means.items():
        # The HPL allocation (~83% of 16 GB) dominates the sampled window.
        assert used > 8 * 1024 ** 3, host


def test_fig5_ascii_rendering(benchmark, fig5_results):
    instructions, _network, _memory = fig5_results
    text = benchmark(instructions.render_ascii)
    assert text.count("mc-node-") == 8
