"""Monitoring-overhead bench: the cost of the ExaMon deployment.

The paper's ODA framing requires monitoring to be lightweight.  This
bench measures the transport load of the §IV-B configuration (pmu_pub at
2 Hz × 4 cores × 8 events, stats_pub at 0.2 Hz × 28 metrics, per node)
and asserts the derived rates.
"""

import pytest

from repro.cluster.cluster import MonteCimoneCluster
from repro.examon.deployment import ExamonDeployment
from repro.thermal.enclosure import EnclosureConfig


@pytest.fixture(scope="module")
def monitored_minute():
    cluster = MonteCimoneCluster(enclosure_config=EnclosureConfig.mitigated())
    cluster.boot_all()
    deployment = ExamonDeployment(cluster)
    deployment.start()
    cluster.run_for(60.0)
    return deployment


def test_message_rate_matches_configuration(benchmark, monitored_minute):
    deployment = benchmark(lambda: monitored_minute)
    overhead = deployment.monitoring_overhead_summary()
    # Per node per second: pmu 2 Hz × 4 cores × 8 events = 64 msgs,
    # stats 0.2 Hz × 28 metrics = 5.6 msgs → ~69.6; × 8 nodes × 60 s.
    expected = 8 * 60 * (2 * 4 * 8 + 0.2 * 28)
    assert overhead["messages_published"] == pytest.approx(expected, rel=0.05)


def test_bandwidth_is_negligible(benchmark, monitored_minute):
    """The whole cluster's telemetry is well under 1% of one GbE link."""
    deployment = benchmark(lambda: monitored_minute)
    overhead = deployment.monitoring_overhead_summary()
    bytes_per_s = overhead["bytes_published"] / 60.0
    assert bytes_per_s < 0.01 * 125e6


def test_storage_ingest_keeps_up(benchmark, monitored_minute):
    deployment = benchmark(lambda: monitored_minute)
    overhead = deployment.monitoring_overhead_summary()
    # Lossless pipeline: every published message is stored.
    assert overhead["points_stored"] == overhead["messages_published"]
    assert deployment.db.decode_errors == 0
