"""Monitoring-overhead bench: the cost of the ExaMon deployment.

The paper's ODA framing requires monitoring to be lightweight.  This
bench measures the transport load of the §IV-B configuration (pmu_pub at
2 Hz × 4 cores × 8 events, stats_pub at 0.2 Hz × 28 metrics, per node)
and asserts the derived rates.
"""

import time

import pytest

from repro.cluster.cluster import MonteCimoneCluster
from repro.examon.broker import MQTTBroker
from repro.examon.deployment import ExamonDeployment
from repro.thermal.enclosure import EnclosureConfig


@pytest.fixture(scope="module")
def monitored_minute():
    cluster = MonteCimoneCluster(enclosure_config=EnclosureConfig.mitigated())
    cluster.boot_all()
    deployment = ExamonDeployment(cluster)
    deployment.start()
    cluster.run_for(60.0)
    return deployment


def test_message_rate_matches_configuration(benchmark, monitored_minute):
    deployment = benchmark(lambda: monitored_minute)
    overhead = deployment.monitoring_overhead_summary()
    # Per node per second: pmu 2 Hz × 4 cores × 8 events = 64 msgs,
    # stats 0.2 Hz × 28 metrics = 5.6 msgs → ~69.6; × 8 nodes × 60 s.
    expected = 8 * 60 * (2 * 4 * 8 + 0.2 * 28)
    assert overhead["messages_published"] == pytest.approx(expected, rel=0.05)


def test_bandwidth_is_negligible(benchmark, monitored_minute):
    """The whole cluster's telemetry is well under 1% of one GbE link."""
    deployment = benchmark(lambda: monitored_minute)
    overhead = deployment.monitoring_overhead_summary()
    bytes_per_s = overhead["bytes_published"] / 60.0
    assert bytes_per_s < 0.01 * 125e6


def test_storage_ingest_keeps_up(benchmark, monitored_minute):
    deployment = benchmark(lambda: monitored_minute)
    overhead = deployment.monitoring_overhead_summary()
    # Lossless pipeline: every published message is stored.
    assert overhead["points_stored"] == overhead["messages_published"]
    assert deployment.db.decode_errors == 0


def _broker_with_subscriptions(n_subscriptions):
    """A broker carrying ``n`` exact-topic subscriptions on distinct topics."""
    broker = MQTTBroker()
    for i in range(n_subscriptions):
        broker.subscribe(f"c{i}", f"org/u/node/n{i % 64}/metric/m{i}",
                         lambda _m: None)
    return broker


def _publish_burst(broker, n_messages=200):
    for i in range(n_messages):
        broker.publish(f"org/u/node/n{i % 64}/metric/m{i % 16}", "1;1",
                       timestamp_s=float(i), retain=False)


class TestSubscriptionIndexScaling:
    """The topic-trie rewrite: publish cost is O(topic depth), not O(subs).

    The pre-trie broker scanned every subscription on every publish, so
    a big deployment (thousands of per-core series) made each publish
    linearly slower.  ``match_ops`` counts index nodes visited per match
    — a deterministic cost measure immune to timer noise — and must stay
    flat as the subscription table grows 32-fold.
    """

    def test_match_ops_flat_as_subscriptions_grow(self):
        costs = {}
        for n in (100, 3200):
            broker = _broker_with_subscriptions(n)
            _publish_burst(broker)
            costs[n] = broker.match_ops
        # 32× the subscriptions must not cost even 2× the index visits.
        assert costs[3200] <= 2 * costs[100], costs

    def test_match_ops_bounded_by_topic_depth(self):
        broker = _broker_with_subscriptions(3200)
        before = broker.match_ops
        broker.publish("org/u/node/n1/metric/m1", "1;1", timestamp_s=0.0,
                       retain=False)
        visited = broker.match_ops - before
        # 6 topic levels; the trie may walk an exact and a '+' branch per
        # level, so the bound is a small multiple of the depth — nowhere
        # near the 3200 comparisons the linear scan performed.
        assert visited <= 4 * 6

    def test_publish_wall_time_does_not_scale_with_subscriptions(self):
        def best_of(broker, repeats=5):
            best = float("inf")
            for _ in range(repeats):
                t0 = time.perf_counter()
                _publish_burst(broker)
                best = min(best, time.perf_counter() - t0)
            return best

        small = best_of(_broker_with_subscriptions(100))
        large = best_of(_broker_with_subscriptions(3200))
        # Generous bound: the linear-scan broker measured ~32× here.
        assert large <= 8 * small, (small, large)

    def test_index_throughput(self, benchmark):
        """Absolute datapoint: a publish burst against a loaded index."""
        broker = _broker_with_subscriptions(3200)
        benchmark.pedantic(lambda: _publish_burst(broker),
                           rounds=3, iterations=1)
        assert broker.messages_published > 0
