"""§V-A single-node HPL: 1.86 ± 0.04 GFLOP/s = 46.5% of peak.

Also reproduces the three-machine comparison row (Monte Cimone 46.5%,
Marconi100 59.7%, Armida 65.79%).
"""

import pytest

from repro.analysis.experiments import comparison_table
from repro.benchmarks.hpl import HPLConfig, HPLModel


def test_single_node_hpl(benchmark):
    result = benchmark(HPLModel().run)
    assert result.gflops.mean == pytest.approx(1.86, abs=0.04)
    assert result.efficiency == pytest.approx(0.465, abs=0.002)
    assert result.runtime_s.mean == pytest.approx(24105, rel=0.03)


def test_hpl_memory_sizing(benchmark):
    """The paper's N=40704 fills ~83% of node DRAM — near the HPL rule."""
    config = benchmark(HPLConfig)
    fraction = config.matrix_bytes / (16 * 1024 ** 3)
    assert 0.7 < fraction < 0.85


def test_machine_comparison(benchmark):
    rows = benchmark(comparison_table)
    by_machine = {machine: (hpl, stream)
                  for machine, hpl, _hp, stream, _sp in rows}
    assert by_machine["montecimone"][0] == pytest.approx(0.465, abs=0.005)
    assert by_machine["marconi100power9"][0] == pytest.approx(0.597, abs=0.005)
    assert by_machine["armidathunderx2"][0] == pytest.approx(0.6579, abs=0.005)
    # Monte Cimone is "slightly lower ... but in the range" (§V-A).
    assert by_machine["montecimone"][0] > 0.7 * by_machine["armidathunderx2"][0]
