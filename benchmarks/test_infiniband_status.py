"""§III: the Infiniband FDR bring-up status snapshot."""

import pytest

from repro.analysis.experiments import infiniband_status
from repro.hardware.nic import RDMAUnsupportedError
from repro.network.infiniband import InfinibandFabric


def test_infiniband_paper_snapshot(benchmark):
    status = benchmark(infiniband_status)
    assert status.device_recognised
    assert status.driver_loaded
    assert status.ofed_mounted
    assert status.board_to_board_ping
    assert status.board_to_server_ping
    assert not status.rdma_functional


def test_infiniband_rdma_error_message_cites_future_work(benchmark):
    fabric = InfinibandFabric()
    fabric.bring_up()
    boards = list(fabric.hcas.values())

    def try_rdma():
        try:
            boards[0].rdma_write(boards[1], 4096)
        except RDMAUnsupportedError as exc:
            return str(exc)
        return ""

    message = benchmark(try_rdma)
    assert "future work" in message
