"""Fig. 6: the thermal runaway during HPL and the §V-C mitigation."""

import pytest


def test_fig6_node7_runs_away(benchmark, fig6_results):
    result = benchmark(lambda: fig6_results)
    # "a thermal hazard on node 7, which reached 107 °C and stopped
    # executing".
    assert result.tripped_nodes == ["mc-node-7"]
    assert result.trip_temperature_c == pytest.approx(107.0, abs=0.5)
    assert result.job_outcome == "NF"


def test_fig6_surviving_nodes_hot_but_alive(benchmark, fig6_results):
    result = benchmark(lambda: fig6_results)
    # The hotter non-failed node sat around 71 °C before mitigation.
    assert result.pre_mitigation_hot_c == pytest.approx(71.0, abs=7.0)
    assert result.pre_mitigation_hot_c < 107.0


def test_fig6_mitigation_drops_to_39(benchmark, fig6_results):
    result = benchmark(lambda: fig6_results)
    # "a significant reduction in the hotter node temperature, from 71 °C
    # to 39 °C".
    assert result.post_mitigation_hot_c == pytest.approx(39.0, abs=3.0)
    assert result.retry_outcome == "CD"


def test_fig6_mitigation_factor(benchmark, fig6_results):
    result = benchmark(lambda: fig6_results)
    drop = result.pre_mitigation_hot_c - result.post_mitigation_hot_c
    assert drop > 25.0  # the paper's 71→39 is a 32 °C drop
