"""Table V: STREAM with 4 threads, DDR-resident vs L2-resident."""

import pytest

from repro.analysis.paper import TABLE_V_DDR_MB_S, TABLE_V_L2_MB_S
from repro.benchmarks.stream import StreamConfig, StreamModel


def test_table5_both_columns(benchmark):
    results = benchmark(StreamModel().table_v)
    for kernel, expected in TABLE_V_DDR_MB_S.items():
        assert results["STREAM.DDR"].kernel_mean(kernel) == \
            pytest.approx(expected, rel=0.01)
    for kernel, expected in TABLE_V_L2_MB_S.items():
        assert results["STREAM.L2"].kernel_mean(kernel) == \
            pytest.approx(expected, rel=0.01)


def test_table5_ddr_ceiling_is_15_5_percent(benchmark):
    result = benchmark(StreamModel().run, StreamConfig(array_mib=1945.5))
    # §V-A: "no more than 15.5% of the available peak bandwidth".
    assert result.best_fraction_of_peak == pytest.approx(0.155, abs=0.003)


def test_table5_l2_vs_ddr_gap(benchmark):
    """The L2-resident copy outruns the DDR-resident copy ~6×."""
    model = StreamModel()
    results = benchmark(model.table_v)
    gap = (results["STREAM.L2"].kernel_mean("copy")
           / results["STREAM.DDR"].kernel_mean("copy"))
    assert gap == pytest.approx(7079 / 1206, rel=0.05)
