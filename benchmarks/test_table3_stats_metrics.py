"""Table III: the stats_pub metric catalogue on a live node."""

from repro.cluster.node import ComputeNode
from repro.examon.broker import MQTTBroker
from repro.examon.plugins.stats_pub import TABLE_III_METRICS, StatsPubPlugin


def _booted_plugin():
    node = ComputeNode(hostname="mc-node-1")
    node.power_on(0.0)
    node.start_bootloader(6.0)
    node.finish_boot(21.0)
    return StatsPubPlugin(node, MQTTBroker())


def test_table3_every_metric_published(benchmark):
    plugin = _booted_plugin()
    metrics = benchmark(plugin.sample, 22.0)
    published = {topic.rsplit("/data/", 1)[1] for topic in metrics}
    expected = {metric for group in TABLE_III_METRICS.values()
                for metric in group}
    assert published == expected


def test_table3_metric_count_is_28(benchmark):
    expected = benchmark(
        lambda: [m for group in TABLE_III_METRICS.values() for m in group])
    assert len(expected) == 28
