"""§V-A STREAM efficiency comparison: MC 15.5% vs M100 48.2% vs Armida 63.21%."""

import pytest

from repro.benchmarks.stream import StreamConfig, StreamModel
from repro.hardware.specs import ARMIDA_NODE, MARCONI100_NODE, MONTE_CIMONE_NODE


@pytest.mark.parametrize("node,expected", [
    (MONTE_CIMONE_NODE, 0.155),
    (MARCONI100_NODE, 0.482),
    (ARMIDA_NODE, 0.6321),
], ids=["montecimone", "marconi100", "armida"])
def test_stream_efficiency_per_machine(benchmark, node, expected):
    model = StreamModel(node=node)
    result = benchmark(model.run, StreamConfig(array_mib=1945.5))
    assert result.best_fraction_of_peak == pytest.approx(expected, abs=0.005)


def test_monte_cimone_below_lower_quartile(benchmark):
    """§V-A: the comparison suggests 'a result higher than the lower
    quartile should be easily attained' — i.e. MC is the outlier."""
    fractions = benchmark(lambda: [
        StreamModel(node=node).run(
            StreamConfig(array_mib=1945.5)).best_fraction_of_peak
        for node in (MONTE_CIMONE_NODE, MARCONI100_NODE, ARMIDA_NODE)])
    assert fractions[0] < 0.5 * min(fractions[1:])
