"""Host-side timing of the real numpy kernels (pytest-benchmark).

These don't reproduce paper numbers (they run on the host CPU, not a
U740); they keep the algorithm implementations honest and measurable.
"""

import numpy as np
import pytest

from repro.benchmarks.kernels import (
    blocked_lu,
    hpl_residual,
    lu_solve,
    stream_triad,
)

RNG = np.random.default_rng(7)


def test_blocked_lu_256(benchmark):
    a = RNG.normal(size=(256, 256)) + 256 * np.eye(256)
    lu, piv = benchmark(blocked_lu, a, 32)
    lower = np.tril(lu, -1) + np.eye(256)
    upper = np.triu(lu)
    assert np.allclose(lower @ upper, a[np.asarray(piv)], atol=1e-8)


def test_linpack_solve_end_to_end(benchmark):
    n = 128
    a = RNG.normal(size=(n, n)) + n * np.eye(n)
    b = RNG.normal(size=n)

    def solve():
        lu, piv = blocked_lu(a, nb=32)
        return lu_solve(lu, piv, b)

    x = benchmark(solve)
    assert hpl_residual(a, x, b) < 16.0  # the HPL PASSED criterion


def test_stream_triad_bandwidth(benchmark):
    n = 2_000_000  # 48 MB of arrays: DDR-resident on any host
    a, b, c = (np.zeros(n), RNG.normal(size=n), RNG.normal(size=n))

    benchmark(stream_triad, a, b, c)
    assert np.allclose(a, b + 3.0 * c)
