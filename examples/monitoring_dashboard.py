#!/usr/bin/env python3
"""ExaMon monitoring over a full-machine HPL run (§IV-B, Fig. 5).

Deploys the ExaMon vertical — pmu_pub and stats_pub on every node, MQTT
broker and time-series store on the master — runs HPL on all eight nodes
and renders the Fig. 5 dashboards: instructions/s, network traffic and
memory heatmaps, plus a batch query through the REST facade.

Run with::

    python examples/monitoring_dashboard.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.cluster.cluster import MonteCimoneCluster
from repro.examon.deployment import ExamonDeployment
from repro.power.model import HPL_PROFILE
from repro.slurm.api import SlurmAPI
from repro.thermal.enclosure import EnclosureConfig


def main() -> None:
    print("== ExaMon dashboard over an 8-node HPL run ==")
    cluster = MonteCimoneCluster(
        enclosure_config=EnclosureConfig.mitigated())
    cluster.boot_all()

    deployment = ExamonDeployment(cluster)
    deployment.start()
    print("plugins installed: "
          f"{len(deployment.pmu_plugins)}x pmu_pub (2 Hz), "
          f"{len(deployment.stats_plugins)}x stats_pub (0.2 Hz)")

    api = SlurmAPI(cluster.slurm)
    start = cluster.engine.now
    print("\nrunning HPL on all 8 nodes (modelled 5 minutes)...")
    job = api.srun("hpl-full", "bench", nodes=8, duration_s=300.0,
                   profile=HPL_PROFILE)
    end = cluster.engine.now
    print(f"job state: {job.state.value}")

    dashboard = deployment.dashboard
    print("\n-- Fig. 5: instructions/s (dips = panel broadcasts) --")
    print(dashboard.instructions_heatmap(start, end, window_s=10.0)
          .render_ascii())
    print("\n-- Fig. 5: network traffic --")
    print(dashboard.network_heatmap(start, end, window_s=10.0).render_ascii())
    print("\n-- Fig. 5: memory usage --")
    print(dashboard.memory_heatmap(start, end, window_s=10.0).render_ascii())

    print("\n-- batch analysis through the REST API --")
    topic = deployment.schema.stats_topic("mc-node-1",
                                          "temperature.cpu_temp")
    series = deployment.rest.get("/api/aggregate",
                                 {"topic": topic, "start": start,
                                  "end": end, "window": 60.0, "how": "max"})
    for point in series:
        print(f"  t={point['t']:7.1f}s  mc-node-1 cpu_temp max: "
              f"{point['v']:.1f} °C")

    overhead = deployment.monitoring_overhead_summary()
    print(f"\nmonitoring transport: "
          f"{overhead['messages_published']:.0f} messages, "
          f"{overhead['bytes_published'] / 1e6:.1f} MB published")


if __name__ == "__main__":
    main()
