#!/usr/bin/env python3
"""Quickstart: boot Monte Cimone, submit a job, read the machine.

Builds the eight-node cluster in its post-mitigation enclosure, boots it,
runs a four-node HPL job through the SLURM facade and prints what an
operator would look at: sinfo, squeue, power and temperatures.

Run with::

    python examples/quickstart.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.cluster.cluster import MonteCimoneCluster
from repro.power.model import HPL_PROFILE
from repro.slurm.api import SlurmAPI
from repro.thermal.enclosure import EnclosureConfig


def main() -> None:
    print("== Monte Cimone quickstart ==")
    cluster = MonteCimoneCluster(
        enclosure_config=EnclosureConfig.mitigated())

    print("booting 8 nodes (R1 -> R2 -> R3)...")
    cluster.boot_all()
    print(f"  simulated boot time: {cluster.engine.now:.0f} s")
    print(f"  idle cluster power:  {cluster.total_power_w():.2f} W "
          f"({cluster.total_power_w() / 8:.3f} W per node)")

    api = SlurmAPI(cluster.slurm)
    print("\n$ sinfo")
    print(api.sinfo())

    print("\nsubmitting: srun -N 4 hpl  (modelled 10-minute run)")
    job_id = api.sbatch("hpl-quick", user="alice", nodes=4,
                        duration_s=600.0, profile=HPL_PROFILE)
    cluster.run_for(30.0)
    print("\n$ squeue        (30 s into the run)")
    print(api.squeue())
    print(f"\n  cluster power under load: {cluster.total_power_w():.2f} W")

    api.wait_all()
    job = cluster.slurm.jobs[job_id]
    print(f"\njob {job.job_id} finished: state={job.state.value} "
          f"elapsed={job.elapsed_s:.0f} s on {','.join(job.allocated_nodes)}")

    host, temperature = cluster.hottest_node()
    print(f"hottest node after the run: {host} at {temperature:.1f} °C")
    print("\n$ sinfo")
    print(api.sinfo())


if __name__ == "__main__":
    main()
