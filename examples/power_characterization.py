#!/usr/bin/env python3
"""Power characterisation walk-through (§V-B: Table VI, Fig. 3, Fig. 4).

Reproduces the paper's power story on one simulated node: the per-rail
Table VI under every workload, the 8-second benchmark traces, the boot
trace with its R1/R2/R3 regions, and the leakage / clock-tree+dynamic /
OS decomposition of core power.

Run with::

    python examples/power_characterization.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.analysis.tables import render_table
from repro.power.boot import BootPowerModel
from repro.power.model import (
    HPL_PROFILE,
    IDLE_PROFILE,
    NodePhase,
    QE_PROFILE,
    RailPowerModel,
    STREAM_DDR_PROFILE,
    STREAM_L2_PROFILE,
)
from repro.power.traces import TraceSynthesizer


def main() -> None:
    model = RailPowerModel()
    columns = {
        "Idle": (NodePhase.R3_OS, IDLE_PROFILE),
        "HPL": (NodePhase.R3_OS, HPL_PROFILE),
        "STREAM.L2": (NodePhase.R3_OS, STREAM_L2_PROFILE),
        "STREAM.DDR": (NodePhase.R3_OS, STREAM_DDR_PROFILE),
        "QE": (NodePhase.R3_OS, QE_PROFILE),
        "Boot R1": (NodePhase.R1_POWER_ON, IDLE_PROFILE),
        "Boot R2": (NodePhase.R2_BOOTLOADER, IDLE_PROFILE),
    }

    print("== Table VI — per-rail power (mW) ==")
    per_column = {name: model.rail_powers_mw(phase, profile)
                  for name, (phase, profile) in columns.items()}
    rails = list(next(iter(per_column.values())))
    rows = [[rail] + [f"{per_column[c][rail]:.0f}" for c in columns]
            for rail in rails]
    rows.append(["Total"] + [f"{sum(per_column[c].values()):.0f}"
                             for c in columns])
    print(render_table(["line"] + list(columns), rows))

    print("\n== Fig. 3 — 8 s benchmark traces (1 ms windows) ==")
    synthesizer = TraceSynthesizer()
    for workload in ("hpl", "stream_l2", "stream_ddr", "qe"):
        trace = synthesizer.benchmark_trace(workload, "core")
        print(f"  {workload:10s} core: mean {trace.mean_w():.3f} W  "
              f"peak {trace.peak_w():.3f} W  σ {trace.std_w() * 1e3:.0f} mW")

    print("\n== Fig. 4 — boot regions and core-power decomposition ==")
    boot = BootPowerModel()
    for region in ("R1", "R2"):
        avg = boot.region_average_mw(region, "core") / 1e3
        print(f"  {region}: core {avg:.3f} W")
    print(f"  R3: core {boot.region_average_mw('R3', 'core', margin_s=16) / 1e3:.3f} W "
          f"(settling toward the 3.075 W idle value)")
    print("\n  decomposition of idle core power (paper: 32% / 51% / 17%):")
    for component, fraction in boot.decomposition().items():
        print(f"    {component:18s} {fraction * 100:5.1f}%")

    print("\n== §VI item (ii): what clock throttling would buy ==")
    for scale in (1.0, 0.85, 0.70, 0.55):
        total = model.total_w(NodePhase.R3_OS, HPL_PROFILE,
                              frequency_scale=scale) \
            if hasattr(model, "total_w_scale") else sum(
                model.rail_powers_mw(NodePhase.R3_OS, HPL_PROFILE,
                                     frequency_scale=scale).values()) / 1e3
        print(f"  f = {scale * 1.2:.2f} GHz: node power {total:.3f} W")


if __name__ == "__main__":
    main()
