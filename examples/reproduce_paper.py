#!/usr/bin/env python3
"""Regenerate every table and figure of the paper in one run.

Runs the full experiment suite (Tables I-VI, Figures 2-6, the §V-A
comparison and the §III Infiniband snapshot) and writes the
paper-vs-measured report to EXPERIMENTS.md in the repository root.

Run with::

    python examples/reproduce_paper.py [output-path]
"""

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.analysis.report import generate_experiments_report


def main() -> None:
    output = Path(sys.argv[1]) if len(sys.argv) > 1 else (
        Path(__file__).resolve().parents[1] / "EXPERIMENTS.md")
    print("== Regenerating every table and figure ==")
    print("(the Fig. 5/Fig. 6 cluster simulations take a minute)")
    # Host-side progress timing, not simulated time: the report content
    # itself is fully deterministic regardless of how long this takes.
    started = time.time()  # simlint: disable=DET101  (host-side progress timer)
    report = generate_experiments_report(full_sim_duration_s=600.0)
    elapsed = time.time() - started  # simlint: disable=DET101  (host-side progress timer)
    output.write_text(report)
    print(f"\nwrote {output} ({len(report)} chars) in {elapsed:.1f} s")
    print("\n" + "\n".join(report.splitlines()[:40]))
    print("...")


if __name__ == "__main__":
    main()
