#!/usr/bin/env python3
"""Deploy the Table I software stack with the Spack model (§IV).

Concretizes and installs the Monte Cimone production environment on the
``linux-sifive-u74mc`` target, prints the user-facing package table with
its transitive-dependency count, and demonstrates the environment-modules
user workflow (module avail / load) plus the deployment-time estimate on
the 1.2 GHz in-order cores.

Run with::

    python examples/deploy_software_stack.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.analysis.tables import render_table
from repro.spack.archspec import ARCHSPEC_TARGETS
from repro.spack.concretizer import Concretizer
from repro.spack.environment import SpackEnvironment
from repro.spack.installer import Installer
from repro.spack.spec import Spec


def main() -> None:
    print("== Deploying the Monte Cimone software stack ==")
    target = ARCHSPEC_TARGETS["u74mc"]
    print(f"archspec target: {target.triple}")
    print(f"gcc flags:       {target.gcc_flags()}")

    environment = SpackEnvironment.monte_cimone()
    installer = Installer()
    print(f"\n$ spack install   ({len(environment.root_specs)} root specs)")
    records = environment.install(installer)
    print(f"installed {len(records)} packages "
          f"({len(records) - len(environment.root_specs)} transitive deps, "
          f"omitted from the paper's Table I 'for brevity')")

    print("\nTable I — user-facing stack:")
    print(render_table(
        ["package", "version"],
        environment.user_facing_table(installer)))

    hours = installer.total_build_seconds() / 3600
    print(f"\nmodelled on-target build time: {hours:.1f} h "
          f"(gcc dominates on the 1.2 GHz in-order U74)")

    print("\n$ module avail hpl")
    print("  " + "  ".join(installer.modules.avail("hpl")))
    print("$ module load hpl/2.3")
    installer.modules.load("hpl/2.3")
    print("$ module list")
    print("  " + "  ".join(installer.modules.list_loaded()))
    path_head = installer.modules.environment["PATH"].split(":", 1)[0]
    print(f"  PATH now starts with: {path_head}")

    print("\nconcretizing 'hpl@2.3 ^openblas@0.3.18' (full DAG):")
    concrete = Concretizer().concretize(Spec.parse("hpl@2.3 ^openblas@0.3.18"))
    for node in concrete.traverse():
        print(f"  {node.name}@{node.version}  /{node.dag_hash()}  "
              f"target={node.target}")


if __name__ == "__main__":
    main()
