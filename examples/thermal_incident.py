#!/usr/bin/env python3
"""The Fig. 6 thermal incident, replayed end to end (§V-C).

Builds the cluster in its original enclosure (1U lids on, blades packed),
starts HPL on all eight nodes, watches node 7 run away to the 107 °C trip
and the job die with NODE_FAIL, then applies the paper's mitigation
(lids off, vertical spacing), services the node and reruns to completion.

Run with::

    python examples/thermal_incident.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.cluster.cluster import MonteCimoneCluster
from repro.examon.deployment import ExamonDeployment
from repro.power.model import HPL_PROFILE
from repro.slurm.api import SlurmAPI
from repro.thermal.enclosure import EnclosureConfig


def temperatures_line(cluster: MonteCimoneCluster) -> str:
    return "  ".join(f"{name.split('-')[-1]}:{node.cpu_temperature_c():5.1f}"
                     for name, node in cluster.nodes.items())


def main() -> None:
    print("== Fig. 6: thermal runaway and mitigation ==")
    cluster = MonteCimoneCluster(enclosure_config=EnclosureConfig.original())
    cluster.boot_all()
    deployment = ExamonDeployment(cluster)
    deployment.start()
    api = SlurmAPI(cluster.slurm)

    print("\nfirst HPL run, original 1U enclosure (lids on):")
    job_id = api.sbatch("hpl", "bench", nodes=8, duration_s=1800.0,
                        profile=HPL_PROFILE)
    start = cluster.engine.now
    for minute in range(1, 31):
        cluster.run_for(60.0)
        if minute % 4 == 0 or cluster.watchdog.tripped_nodes():
            print(f"  t={minute:3d} min  °C per node: "
                  f"{temperatures_line(cluster)}")
        if cluster.watchdog.tripped_nodes():
            break

    job = cluster.slurm.jobs[job_id]
    api.wait_all()
    print(f"\njob outcome: {job.state.value} ({job.exit_reason})")
    for event in cluster.watchdog.events:
        print(f"  watchdog: t={event.time_s:7.1f}s {event.node} "
              f"{event.kind} at {event.temperature_c:.1f} °C")
    peaks = deployment.dashboard.peak_temperatures(start, cluster.engine.now)
    survivors = {h: t for h, t in peaks.items()
                 if h not in cluster.watchdog.tripped_nodes()}
    hot = max(survivors, key=survivors.get)
    print(f"hottest surviving node: {hot} at {survivors[hot]:.1f} °C "
          f"(paper: ~71 °C)")

    print("\napplying mitigation: lids off, +1U blade spacing...")
    cluster.apply_thermal_mitigation()
    for hostname in cluster.watchdog.tripped_nodes():
        print(f"servicing {hostname} (cooldown + reboot)...")
        cluster.service_node(hostname)

    print("\nsecond HPL run, mitigated enclosure:")
    retry_start = cluster.engine.now
    retry = api.srun("hpl-retry", "bench", nodes=8, duration_s=1800.0,
                     profile=HPL_PROFILE)
    retry_peaks = deployment.dashboard.peak_temperatures(
        retry_start, cluster.engine.now)
    hot = max(retry_peaks, key=retry_peaks.get)
    print(f"job outcome: {retry.state.value}")
    print(f"hottest node: {hot} at {retry_peaks[hot]:.1f} °C "
          f"(paper: 39 °C after mitigation)")


if __name__ == "__main__":
    main()
