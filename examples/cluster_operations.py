#!/usr/bin/env python3
"""A day in the life of the cluster: trace replay + operator report.

Generates a seeded synthetic stream of user jobs shaped like the paper's
workload set (HPL / STREAM / QE-LAX at mixed sizes), replays it through
the SLURM controller on the simulated machine with energy accounting
attached, and prints the operator view: utilisation, wait times, per-user
activity, the energy ledger, and the exported Grafana dashboards.

Run with::

    python examples/cluster_operations.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.analysis.tables import render_table
from repro.cluster.cluster import MonteCimoneCluster
from repro.examon.grafana import build_cluster_dashboard, export_dashboard
from repro.power.energy import JobEnergyAccounting
from repro.slurm.trace import generate_trace, replay_trace
from repro.thermal.enclosure import EnclosureConfig


def main() -> None:
    print("== Cluster operations study ==")
    cluster = MonteCimoneCluster(
        enclosure_config=EnclosureConfig.mitigated())
    cluster.boot_all()
    accounting = JobEnergyAccounting(cluster.slurm)

    trace = generate_trace(n_jobs=24, horizon_s=4 * 3600.0, seed=7)
    print(f"generated {len(trace)} jobs over a 4 h submission window")
    print(render_table(
        ["t submit", "job", "user", "nodes", "duration s"],
        [(f"{e.submit_time_s:7.0f}", e.name, e.user, e.n_nodes,
          f"{e.duration_s:6.0f}") for e in trace[:8]]
        , title="first 8 entries:"))

    print("\nreplaying through the scheduler...")
    report = replay_trace(cluster.slurm, trace)

    print(f"\n-- operator report --")
    print(f"  jobs:        {report.n_jobs} "
          f"({report.completed} completed, {report.failed} failed)")
    print(f"  makespan:    {report.makespan_s / 3600:.2f} h")
    print(f"  utilisation: {report.utilisation * 100:.1f}% of node-hours")
    print(f"  wait times:  mean {report.mean_wait_s:.0f} s, "
          f"max {report.max_wait_s:.0f} s")
    print(f"  per user:    " + ", ".join(
        f"{user}: {count}" for user, count in
        sorted(report.per_user_jobs.items())))

    print("\n-- energy ledger (top 5 by energy) --")
    top = sorted(accounting.ledger, key=lambda r: -r.energy_j)[:5]
    print(render_table(
        ["job", "nodes", "elapsed s", "energy kJ", "mean W"],
        [(r.name, r.n_nodes, f"{r.elapsed_s:.0f}",
          f"{r.energy_j / 1e3:.2f}", f"{r.mean_power_w:.2f}") for r in top]))
    total_kwh = accounting.total_energy_j() / 3.6e6
    print(f"  total attributed energy: {total_kwh * 1000:.1f} Wh")

    dashboard = build_cluster_dashboard(list(cluster.nodes))
    blob = export_dashboard(dashboard)
    print(f"\n-- Grafana dashboard export --")
    print(f"  '{dashboard['title']}': {len(dashboard['panels'])} panels, "
          f"{len(blob)} bytes of JSON")


if __name__ == "__main__":
    main()
