"""Recovery-invariant checker: did every injected fault heal?

The contract a campaign must satisfy (``repro chaos <scenario> --check``
exits non-zero otherwise):

1. **Every fault recovered** — each finished ``chaos.fault`` span has at
   least one finished ``chaos.recovery`` span whose ``kind``/``target``
   attributes match and whose end does not precede the fault's start.
2. **No fault still open** — the campaign ended with no injected fault
   lacking its restore (an unfinished ``chaos.fault`` span never exists
   by construction; an inject without a restore leaves no span at all,
   so the log is cross-checked too).
3. **Failure ledger clean** — the engine drained with zero unconsumed
   failures: graceful degradation means every raised error was caught by
   the component that owed a recovery, not leaked into the kernel.
4. **Backfill coverage** (scenario-specific) — when the campaign
   declares a monitored series, the TSDB must show samples covering each
   outage window with no gap wider than the sampling period (plus one
   period of slack for phase): the buffered-and-backfilled samples, not
   a hole.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Tuple

__all__ = ["verify_recovery", "backfill_coverage", "run_checks"]


def _spans(tracer: Any, category: str) -> List[Any]:
    return [s for s in tracer.spans if s.category == category]


def verify_recovery(tracer: Any, engine: Any = None,
                    log: Any = None) -> List[str]:
    """Invariants 1-3 over one campaign's trace; returns problem strings."""
    problems: List[str] = []
    faults = _spans(tracer, "chaos.fault")
    recoveries = _spans(tracer, "chaos.recovery")
    by_key: Dict[Tuple[str, str], List[Any]] = {}
    for span in recoveries:
        key = (span.attributes.get("kind"), span.attributes.get("target"))
        by_key.setdefault(key, []).append(span)

    for fault in faults:
        kind = fault.attributes.get("kind")
        target = fault.attributes.get("target")
        candidates = [r for r in by_key.get((kind, target), [])
                      if r.finished and r.end_s >= fault.start_s]
        if not candidates:
            problems.append(
                f"fault {kind}:{target} at t={fault.start_s:.3f} has no "
                f"matching recovery span")

    if log is not None:
        injected = {}
        for event in log.events:
            key = (event.kind, event.target)
            if event.action == "inject":
                injected[key] = event
            else:
                injected.pop(key, None)
        for (kind, target), event in sorted(injected.items()):
            problems.append(
                f"fault {kind}:{target} injected at t={event.time_s:.3f} "
                f"was never restored")

    if engine is not None and engine.unconsumed_failures:
        for record in engine.unconsumed_failures:
            problems.append(f"unconsumed failure: {record.describe()}")
    return problems


def backfill_coverage(db: Any, topics: Iterable[str],
                      windows: Iterable[Tuple[float, float]],
                      period_s: float, slack_s: float = 0.0) -> List[str]:
    """Invariant 4: each series covers each window at its sampling cadence.

    A gap wider than ``period_s + slack_s`` (default slack: one period,
    covering sampling phase against the window edges) inside an outage
    window means the backfill lost samples.
    """
    slack_s = slack_s if slack_s > 0 else period_s
    max_gap = period_s + slack_s
    problems: List[str] = []
    for topic in topics:
        for start_s, end_s in windows:
            times = [t for t, _value in db.query(topic, start_s, end_s)]
            # Treat the window edges as virtual samples: the gap from the
            # edge to the first/last real sample is bounded like any other.
            edges = [start_s, *times, end_s]
            worst = max(b - a for a, b in zip(edges, edges[1:]))
            if worst > max_gap + 1e-9:
                problems.append(
                    f"{topic}: {worst:.3f}s gap inside outage window "
                    f"[{start_s:.3f}, {end_s:.3f}] "
                    f"(limit {max_gap:.3f}s) — backfill lost samples")
    return problems


def run_checks(result: Any) -> List[str]:
    """All invariants over one :class:`~repro.chaos.scenarios.ChaosRunResult`.

    Scenario extras drive the optional checks: ``extras["backfill"]`` is a
    dict of :func:`backfill_coverage` keyword arguments, and
    ``extras["problems"]`` carries scenario-specific findings verbatim.
    """
    problems = verify_recovery(result.tracer, result.engine, result.log)
    backfill = result.extras.get("backfill")
    if backfill is not None:
        problems.extend(backfill_coverage(**backfill))
    problems.extend(result.extras.get("problems", []))
    return problems
