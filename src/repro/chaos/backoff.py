"""Seeded exponential backoff with bounded jitter.

Every retry loop in the tree — the sampling plugins reconnecting to a
downed MQTT broker, MPI collectives waiting out a flapping link, SLURM's
requeue path — needs the same schedule: exponentially growing delays,
capped at a maximum, optionally jittered so a fleet of clients does not
reconnect in lockstep.  The jitter source is a :class:`random.Random`
seeded at construction, never the interpreter-global RNG, so a backoff
sequence is exactly replayable (simlint DET102/DET105 territory).

Contract (the property tests in ``tests/test_chaos_backoff.py`` pin it):

* ``nominal(n) = min(base_s * factor**n, max_s)`` is monotone
  non-decreasing in ``n`` and never exceeds ``max_s``;
* ``delay(n)`` lies in ``[(1 - jitter) * nominal(n), nominal(n)]`` — the
  jitter only ever *shortens* a delay, so the cap holds unconditionally;
* two instances constructed with the same parameters and seed produce
  byte-identical delay sequences.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List

__all__ = ["ExponentialBackoff"]


@dataclass
class ExponentialBackoff:
    """An exponential backoff schedule: ``base * factor**attempt``, capped.

    Parameters
    ----------
    base_s:
        Delay before the first retry (attempt 0).
    factor:
        Multiplier per attempt; ``factor >= 1`` keeps the schedule monotone.
    max_s:
        Hard cap on any delay.
    jitter:
        Fraction of the capped delay that may be jittered *away* (``0``
        disables jitter; ``0.25`` means delays land in ``[0.75·d, d]``).
    seed:
        Seed of the private jitter RNG.
    """

    base_s: float = 1.0
    factor: float = 2.0
    max_s: float = 60.0
    jitter: float = 0.0
    seed: int = 0
    _rng: random.Random = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.base_s <= 0:
            raise ValueError("backoff base must be positive")
        if self.factor < 1.0:
            raise ValueError("backoff factor must be >= 1 (monotone schedule)")
        if self.max_s < self.base_s:
            raise ValueError("backoff cap must be >= base delay")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must lie in [0, 1)")
        self._rng = random.Random(self.seed)

    def nominal(self, attempt: int) -> float:
        """The un-jittered delay of ``attempt`` (monotone, capped)."""
        if attempt < 0:
            raise ValueError(f"negative attempt number {attempt}")
        # factor**attempt can overflow to inf for huge attempts; min() with
        # the cap keeps the result finite either way.
        try:
            raw = self.base_s * self.factor ** attempt
        except OverflowError:
            raw = float("inf")
        return min(raw, self.max_s)

    def delay(self, attempt: int) -> float:
        """The jittered delay for retry number ``attempt`` (0-based).

        Draws from the instance RNG when jitter is enabled, so call order
        matters exactly as much as the seed — both are deterministic.
        """
        nominal = self.nominal(attempt)
        if self.jitter == 0.0:
            return nominal
        return nominal * (1.0 - self.jitter * self._rng.random())

    def delays(self, n: int) -> List[float]:
        """The first ``n`` delays, in attempt order."""
        return [self.delay(attempt) for attempt in range(n)]
