"""Fault vocabulary and the deterministic chaos event log.

A chaos campaign is a sequence of *inject*/*restore* actions against
named targets.  Every action is appended to a :class:`ChaosLog` the
moment it happens (in simulated time), and the log renders to stable
text lines — two runs of the same campaign under the same seed must
produce byte-identical logs, which is the determinism acceptance test of
the harness (``repro chaos <scenario>`` prints exactly these lines).

The fault taxonomy mirrors the layers of the reproduced system:

========================  =====================================================
kind                      meaning / paper anchor
========================  =====================================================
``sensor-dropout``        a hwmon sensor stops answering reads (Table IV)
``sensor-stuck``          a sensor freezes at its last value
``broker-outage``         the master-node MQTT broker is down (§IV-B)
``broker-slow``           the broker answers, slowly
``link-down``             a GbE port link is down (§IV star network)
``link-degraded``         a link runs at a fraction of nominal bandwidth
``service-outage``        NFS or LDAP on the master node is down (§IV-A)
``node-trip``             a compute node lost to an over-temperature trip
                          (Fig. 6), recovered through SLURM drain→resume
========================  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

__all__ = ["FaultKind", "FaultEvent", "ChaosLog"]


class FaultKind:
    """String constants naming every injectable fault."""

    SENSOR_DROPOUT = "sensor-dropout"
    SENSOR_STUCK = "sensor-stuck"
    BROKER_OUTAGE = "broker-outage"
    BROKER_SLOW = "broker-slow"
    LINK_DOWN = "link-down"
    LINK_DEGRADED = "link-degraded"
    SERVICE_OUTAGE = "service-outage"
    NODE_TRIP = "node-trip"

    ALL = (SENSOR_DROPOUT, SENSOR_STUCK, BROKER_OUTAGE, BROKER_SLOW,
           LINK_DOWN, LINK_DEGRADED, SERVICE_OUTAGE, NODE_TRIP)


@dataclass(frozen=True)
class FaultEvent:
    """One inject/restore action at one simulated instant."""

    time_s: float
    action: str  # "inject" | "restore"
    kind: str
    target: str
    detail: str = ""

    def line(self) -> str:
        """Stable text rendering (fixed-width time, no floats elsewhere)."""
        suffix = f" {self.detail}" if self.detail else ""
        return (f"t={self.time_s:012.6f} {self.action:>7} "
                f"{self.kind} {self.target}{suffix}")


@dataclass
class ChaosLog:
    """Append-only record of a campaign's fault/recovery actions."""

    events: List[FaultEvent] = field(default_factory=list)

    def add(self, time_s: float, action: str, kind: str, target: str,
            detail: str = "") -> FaultEvent:
        """Append one action; returns the recorded event."""
        if action not in ("inject", "restore"):
            raise ValueError(f"unknown chaos action {action!r}")
        event = FaultEvent(time_s=time_s, action=action, kind=kind,
                           target=target, detail=detail)
        self.events.append(event)
        return event

    def injections(self) -> List[FaultEvent]:
        """Inject actions, in occurrence order."""
        return [e for e in self.events if e.action == "inject"]

    def restores(self) -> List[FaultEvent]:
        """Restore actions, in occurrence order."""
        return [e for e in self.events if e.action == "restore"]

    def lines(self) -> List[str]:
        """The log as stable text lines (the CLI's stdout)."""
        return [event.line() for event in self.events]

    def dumps(self) -> str:
        """The whole log as one newline-terminated string."""
        return "".join(line + "\n" for line in self.lines())
