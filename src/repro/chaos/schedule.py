"""Seeded campaign schedules: when faults strike and for how long.

All randomness in a chaos campaign flows through one
:class:`ChaosSchedule`, whose only entropy source is a
:class:`random.Random` seeded at construction — never the interpreter's
global RNG, never the wall clock (simlint DET101/DET102/DET105).  The
same seed therefore yields the same fault windows, the same targets and,
downstream, a byte-identical :class:`~repro.chaos.faults.ChaosLog`.
"""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple, TypeVar

__all__ = ["ChaosSchedule"]

T = TypeVar("T")

#: One fault window in simulated seconds.
Window = Tuple[float, float]


class ChaosSchedule:
    """Deterministic draw source for one chaos campaign."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._rng = random.Random(seed)

    def uniform(self, lo: float, hi: float) -> float:
        """One uniform draw in ``[lo, hi]``."""
        return self._rng.uniform(lo, hi)

    def choice(self, options: Sequence[T]) -> T:
        """One element drawn from a non-empty sequence."""
        if not options:
            raise ValueError("cannot choose from an empty sequence")
        return options[self._rng.randrange(len(options))]

    def windows(self, n: int, start_s: float, end_s: float,
                min_len_s: float, max_len_s: float) -> List[Window]:
        """``n`` non-overlapping fault windows inside ``[start_s, end_s]``.

        The horizon is cut into ``n`` equal slots and one window drawn
        inside each: start uniform in the slot's feasible range, length
        uniform in ``[min_len_s, max_len_s]`` (clipped to the slot).
        Equal slots keep windows disjoint by construction — no rejection
        sampling, so the draw count (hence the RNG stream) is a pure
        function of the arguments.
        """
        if n < 1:
            raise ValueError("need at least one window")
        if end_s <= start_s:
            raise ValueError(f"empty horizon [{start_s}, {end_s}]")
        if not 0 < min_len_s <= max_len_s:
            raise ValueError("window lengths must satisfy 0 < min <= max")
        slot_s = (end_s - start_s) / n
        if min_len_s > slot_s:
            raise ValueError(
                f"minimum window {min_len_s}s does not fit a "
                f"{slot_s:.3f}s slot ({n} windows over {end_s - start_s}s)")
        out: List[Window] = []
        for i in range(n):
            slot_start = start_s + i * slot_s
            length = self.uniform(min_len_s, min(max_len_s, slot_s))
            w_start = self.uniform(slot_start, slot_start + slot_s - length)
            out.append((w_start, w_start + length))
        return out
