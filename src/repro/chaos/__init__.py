"""Cluster-wide chaos engineering for the simulated Monte Cimone.

Deterministic fault injection with matching graceful-degradation
policies in every layer the paper's production stack has: monitoring
(sensors, MQTT transport), network (GbE links under MPI), services
(NFS/LDAP behind the login node) and compute (thermal node trips through
SLURM's drain→resume).  See ``docs/ARCHITECTURE.md`` ("Chaos & graceful
degradation") for the taxonomy and the invariant-checker contract.

Only the dependency-free pieces are re-exported here: the sampling
plugins and the MPI retry path import :mod:`repro.chaos.backoff`, so
this package must not eagerly import the scenario layer (which imports
them back).  Campaign consumers import :mod:`repro.chaos.scenarios` and
:mod:`repro.chaos.check` directly.
"""

from repro.chaos.backoff import ExponentialBackoff
from repro.chaos.faults import ChaosLog, FaultEvent, FaultKind
from repro.chaos.schedule import ChaosSchedule

__all__ = ["ChaosLog", "ChaosSchedule", "ExponentialBackoff", "FaultEvent",
           "FaultKind"]
