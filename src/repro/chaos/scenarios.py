"""Canned chaos campaigns over the simulated Monte Cimone cluster.

Each scenario builds a fresh engine + cluster slice, attaches the
tracer, draws its fault windows from a :class:`ChaosSchedule` seeded by
the caller, runs the campaign and returns a :class:`ChaosRunResult`
carrying everything the invariant checker
(:func:`repro.chaos.check.run_checks`) needs.  Scenarios are pure
functions of their seed: two runs with the same seed produce
byte-identical chaos logs (the CLI's determinism contract).

This module imports the whole vertical (cluster, ExaMon, network,
services) and is therefore *not* re-exported from ``repro.chaos`` —
low-level consumers of :mod:`repro.chaos.backoff` (the plugins, the MPI
retry path) must not drag the world in through their import.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, List

from repro.chaos.faults import ChaosLog
from repro.chaos.injectors import (BrokerOutageInjector, LinkFaultInjector,
                                   NodeTripInjector, SensorFaultInjector,
                                   ServiceOutageInjector)
from repro.chaos.schedule import ChaosSchedule
from repro.cluster.cluster import MonteCimoneCluster
from repro.cluster.login import LoginNode
from repro.cluster.node import ComputeNode
from repro.events.engine import Engine, Event
from repro.examon.broker import MQTTBroker
from repro.examon.deployment import ExamonDeployment
from repro.examon.plugins.stats_pub import StatsPubPlugin
from repro.network.mpi import MPICostModel, run_collective_with_retry
from repro.network.topology import ClusterTopology
from repro.obs.instrument import attach_tracer

__all__ = ["ChaosRunResult", "SCENARIOS", "run_scenario"]


@dataclass
class ChaosRunResult:
    """One finished campaign, ready for the invariant checker."""

    name: str
    seed: int
    engine: Engine
    tracer: Any
    log: ChaosLog
    extras: Dict[str, Any] = field(default_factory=dict)


def _finish_boot(node: ComputeNode) -> None:
    """Shortcut boot (R1→R2→R3 at t=0): scenarios start from a live node."""
    node.power_on(0.0)
    node.start_bootloader(0.0)
    node.finish_boot(0.0)


def scenario_examon_outage(seed: int = 0) -> ChaosRunResult:
    """The monitoring transport dies twice; daemons buffer and backfill.

    Asserts (through extras): pmu_pub series on the first node cover
    both outage windows at sampling cadence — the timestamped backfill,
    not a hole.
    """
    engine = Engine()
    cluster = MonteCimoneCluster(engine)
    for node in cluster.nodes.values():
        _finish_boot(node)
    tracer = attach_tracer(engine)
    deployment = ExamonDeployment(cluster)
    deployment.start()

    schedule = ChaosSchedule(seed)
    windows = schedule.windows(2, start_s=10.0, end_s=100.0,
                               min_len_s=8.0, max_len_s=20.0)
    log = ChaosLog()
    injector = BrokerOutageInjector(engine, log, deployment.broker)
    for start_s, end_s in windows:
        injector.schedule_window(start_s, end_s)

    engine.run(until=140.0)
    deployment.stop()
    engine.run(until=146.0)

    pmu_pattern = ("org/unibo/cluster/montecimone/node/mc-node-1"
                   "/plugin/pmu_pub/chnl/data/#")
    problems: List[str] = []
    plugins = list(deployment.pmu_plugins.values())
    if not any(p.samples_backfilled for p in plugins):
        problems.append("no plugin ever backfilled — outage not exercised")
    return ChaosRunResult(
        name="examon-outage", seed=seed, engine=engine, tracer=tracer,
        log=log,
        extras={
            "windows": windows,
            "db": deployment.db,
            "backfill": {
                "db": deployment.db,
                "topics": deployment.db.topics(pmu_pattern),
                "windows": windows,
                "period_s": plugins[0].period_s,
            },
            "publish_rejects": deployment.broker.publish_rejects,
            "samples_backfilled": sum(p.samples_backfilled for p in plugins),
            "problems": problems,
        })


def scenario_link_flap(seed: int = 0) -> ChaosRunResult:
    """One node's GbE link flaps under a steady collective workload.

    Collectives run every second through the retry-with-timeout path;
    a second link additionally spends a window at degraded bandwidth.
    """
    engine = Engine()
    tracer = attach_tracer(engine)
    names = [f"mc-node-{i + 1}" for i in range(4)]
    topology = ClusterTopology(names)
    model = MPICostModel(topology)

    schedule = ChaosSchedule(seed)
    victim = schedule.choice(names)
    windows = schedule.windows(3, start_s=8.0, end_s=68.0,
                               min_len_s=3.0, max_len_s=6.0)
    degraded_start = 70.0 + schedule.uniform(0.0, 2.0)
    degraded_window = (degraded_start, degraded_start + 6.0)
    other = names[(names.index(victim) + 1) % len(names)]

    log = ChaosLog()
    down = LinkFaultInjector(engine, log, topology.links[victim], mode="down")
    for start_s, end_s in windows:
        down.schedule_window(start_s, end_s)
    degraded = LinkFaultInjector(engine, log, topology.links[other],
                                 mode="degraded", factor=4.0)
    degraded.schedule_window(*degraded_window)

    results: List[Dict[str, float]] = []

    def driver() -> Generator[Event, Any, None]:
        while engine.now < 85.0:
            outcome = yield from run_collective_with_retry(
                engine, model, "allreduce", n_bytes=1 << 20, n_ranks=4)
            results.append(outcome)
            yield engine.timeout(1.0)

    engine.spawn(driver(), name="mpi-driver")
    engine.run(until=90.0)

    problems: List[str] = []
    if not any(r["retries"] > 0 for r in results):
        problems.append("no collective ever retried — flap not exercised")
    if topology.links[other].degraded_factor != 1.0:
        problems.append(f"{other}'s link still degraded after restore")
    return ChaosRunResult(
        name="link-flap", seed=seed, engine=engine, tracer=tracer, log=log,
        extras={
            "windows": windows,
            "degraded_window": degraded_window,
            "victim": victim,
            "collectives": len(results),
            "retries": sum(int(r["retries"]) for r in results),
            "problems": problems,
        })


def scenario_sensor_dropout(seed: int = 0) -> ChaosRunResult:
    """Table IV sensors misbehave under a live stats_pub daemon.

    The CPU sensor drops off the bus (reads fail, the daemon skips the
    metric and reports recovery at its first good read); the board sensor
    freezes (silent — the injector records the repair itself).
    """
    engine = Engine()
    tracer = attach_tracer(engine)
    node = ComputeNode(hostname="mc-node-1")
    _finish_boot(node)
    broker = MQTTBroker(hostname="mc-master")
    plugin = StatsPubPlugin(node, broker, sample_hz=1.0)
    engine.spawn(plugin.run(engine), name="stats_pub@mc-node-1")

    schedule = ChaosSchedule(seed)
    dropout_window = schedule.windows(1, start_s=5.0, end_s=25.0,
                                      min_len_s=6.0, max_len_s=10.0)[0]
    stuck_window = schedule.windows(1, start_s=30.0, end_s=50.0,
                                    min_len_s=6.0, max_len_s=10.0)[0]
    log = ChaosLog()
    sensors = node.board.hwmon.sensors
    dropout = SensorFaultInjector(engine, log, node.hostname,
                                  sensors["cpu_temp"], "cpu_temp",
                                  mode="dropout")
    dropout.schedule_window(*dropout_window)
    stuck = SensorFaultInjector(engine, log, node.hostname,
                                sensors["mb_temp"], "mb_temp", mode="stuck")
    stuck.schedule_window(*stuck_window)

    engine.run(until=60.0)
    plugin.stop()
    engine.run(until=62.0)

    problems: List[str] = []
    if plugin.sensor_faults == 0:
        problems.append("daemon never observed a failed sensor read")
    if not sensors["cpu_temp"].healthy or not sensors["mb_temp"].healthy:
        problems.append("a sensor is still faulty after restore")
    return ChaosRunResult(
        name="sensor-dropout", seed=seed, engine=engine, tracer=tracer,
        log=log,
        extras={
            "dropout_window": dropout_window,
            "stuck_window": stuck_window,
            "sensor_faults": plugin.sensor_faults,
            "problems": problems,
        })


def scenario_service_outage(seed: int = 0) -> ChaosRunResult:
    """LDAP then NFS go down under live users; the front door queues.

    A login during the LDAP window is parked and replayed on restore; a
    batch submission during the NFS window still reaches SLURM while its
    home-directory archive write is deferred and flushed on restore.
    """
    engine = Engine()
    cluster = MonteCimoneCluster(engine)
    for node in cluster.nodes.values():
        _finish_boot(node)
    tracer = attach_tracer(engine)
    cluster.ldap.add_user("alice", "alice-pw", "hpc-users")
    cluster.ldap.add_user("bob", "bob-pw", "hpc-users")
    login = LoginNode(cluster.ldap, cluster.nfs, cluster.modules,
                      cluster.slurm)

    schedule = ChaosSchedule(seed)
    ldap_window = schedule.windows(1, start_s=10.0, end_s=30.0,
                                   min_len_s=8.0, max_len_s=15.0)[0]
    nfs_window = schedule.windows(1, start_s=40.0, end_s=65.0,
                                  min_len_s=10.0, max_len_s=18.0)[0]
    log = ChaosLog()
    state: Dict[str, Any] = {}

    def on_ldap_restore() -> Dict[str, Any]:
        return {"logins_replayed": len(login.process_queued())}

    def on_nfs_restore() -> Dict[str, Any]:
        session = state.get("alice")
        flushed = session.flush_deferred_writes() if session else 0
        return {"writes_flushed": flushed}

    ldap_injector = ServiceOutageInjector(engine, log, cluster.ldap,
                                          on_restore=on_ldap_restore)
    ldap_injector.schedule_window(*ldap_window)
    nfs_injector = ServiceOutageInjector(engine, log, cluster.nfs,
                                         on_restore=on_nfs_restore)
    nfs_injector.schedule_window(*nfs_window)

    script = ("#!/bin/bash\n#SBATCH --job-name=chaos-probe\n"
              "#SBATCH --nodes=1\nsleep 5\n")

    def alice_login() -> None:
        state["alice"] = login.ssh("alice", "alice-pw")

    def bob_login() -> None:
        state["bob_ticket"] = login.ssh("bob", "bob-pw")

    def alice_sbatch() -> None:
        state["job_id"] = state["alice"].sbatch(script, duration_s=5.0)

    engine.call_at(5.0, alice_login)
    engine.call_at(ldap_window[0] + 1.0, bob_login)
    engine.call_at(nfs_window[0] + 1.0, alice_sbatch)
    engine.run(until=90.0)

    problems: List[str] = []
    ticket = state.get("bob_ticket")
    if ticket is None or getattr(ticket, "session", None) is None:
        problems.append("queued login was never replayed into a session")
    session = state.get("alice")
    if session is None:
        problems.append("baseline login failed outside any outage")
    elif session.deferred_writes:
        problems.append("deferred home-directory writes were never flushed")
    elif not cluster.nfs.listdir("/home/alice/jobs"):
        problems.append("archived batch script missing after NFS restore")
    if "job_id" not in state:
        problems.append("sbatch during the NFS outage never reached SLURM")
    return ChaosRunResult(
        name="service-outage", seed=seed, engine=engine, tracer=tracer,
        log=log,
        extras={
            "ldap_window": ldap_window,
            "nfs_window": nfs_window,
            "job_id": state.get("job_id"),
            "problems": problems,
        })


def scenario_node_trip(seed: int = 0) -> ChaosRunResult:
    """A compute node trips on temperature; SLURM drains and resumes it."""
    engine = Engine()
    cluster = MonteCimoneCluster(engine)
    for node in cluster.nodes.values():
        _finish_boot(node)
    tracer = attach_tracer(engine)
    cluster.enable_auto_recovery(delay_s=30.0)

    schedule = ChaosSchedule(seed)
    victim = schedule.choice(sorted(cluster.nodes))
    trip_at = schedule.uniform(10.0, 30.0)
    log = ChaosLog()
    injector = NodeTripInjector(engine, log, cluster, victim)
    injector.schedule_at(trip_at)

    while injector.recovered_at_s is None and engine.now < 3600.0:
        cluster.run_for(60.0)

    problems: List[str] = []
    if injector.recovered_at_s is None:
        problems.append(f"{victim} never returned to the schedulable pool")
    return ChaosRunResult(
        name="node-trip", seed=seed, engine=engine, tracer=tracer, log=log,
        extras={
            "victim": victim,
            "trip_at": trip_at,
            "recovered_at_s": injector.recovered_at_s,
            "problems": problems,
        })


#: Scenario registry driven by ``python -m repro chaos <name>``.
SCENARIOS: Dict[str, Callable[[int], ChaosRunResult]] = {
    "examon-outage": scenario_examon_outage,
    "link-flap": scenario_link_flap,
    "sensor-dropout": scenario_sensor_dropout,
    "service-outage": scenario_service_outage,
    "node-trip": scenario_node_trip,
}


def run_scenario(name: str, seed: int = 0) -> ChaosRunResult:
    """Run one named campaign (KeyError lists the valid names)."""
    if name not in SCENARIOS:
        raise KeyError(f"unknown scenario {name!r}; "
                       f"choose from {sorted(SCENARIOS)}")
    return SCENARIOS[name](seed)
