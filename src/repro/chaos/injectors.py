"""Fault injectors: one class per layer of the reproduced system.

Each injector drives a component's own failure surface (the components
know how to *be* broken — the injector only flips the switch at
scheduled simulated times) and keeps the campaign's book-keeping:

* every inject/restore lands in the shared
  :class:`~repro.chaos.faults.ChaosLog` the instant it happens;
* at restore time the injector records the *fault window* as a completed
  ``chaos.fault`` span named ``fault:<kind>:<target>`` on the engine's
  tracer (when attached).

Recovery spans (``chaos.recovery`` / ``recovery:<kind>:<target>``) are
recorded by whichever side actually performs the recovery: the sampling
plugins on reconnect/backfill, the MPI retry loop once a flapping link
returns, the injector itself for passive components (a slow broker, a
stuck sensor, a service whose queued clients it replays on restore).
The invariant checker in :mod:`repro.chaos.check` matches the two by
their ``kind``/``target`` attributes.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, Optional, Tuple

from repro.chaos.faults import ChaosLog, FaultKind
from repro.events.engine import Engine, Event

__all__ = ["FaultInjector", "SensorFaultInjector", "BrokerOutageInjector",
           "BrokerSlowInjector", "LinkFaultInjector", "ServiceOutageInjector",
           "NodeTripInjector"]


class FaultInjector:
    """Shared scheduling and span/log plumbing for concrete injectors."""

    #: Overridden by subclasses.
    KIND = "fault"

    def __init__(self, engine: Engine, log: ChaosLog, target: str) -> None:
        self.engine = engine
        self.log = log
        self.target = target
        self._injected_at: Optional[float] = None

    # -- subclass surface -----------------------------------------------------
    def _apply(self) -> None:
        """Break the component (subclass hook)."""
        raise NotImplementedError

    def _revert(self) -> None:
        """Unbreak the component (subclass hook)."""
        raise NotImplementedError

    def _detail(self) -> str:
        """Extra text for the chaos log (subclass hook)."""
        return ""

    # -- campaign surface -----------------------------------------------------
    def inject(self) -> None:
        """Break the target now (idempotent while already injected)."""
        if self._injected_at is not None:
            return
        self._injected_at = self.engine.now
        self._apply()
        self.log.add(self.engine.now, "inject", self.KIND, self.target,
                     self._detail())

    def restore(self) -> None:
        """Unbreak the target now and record the fault window span."""
        if self._injected_at is None:
            return
        start_s = self._injected_at
        self._injected_at = None
        self._revert()
        self.log.add(self.engine.now, "restore", self.KIND, self.target)
        self._record_span("fault", "chaos.fault", start_s, self.engine.now)

    def schedule_window(self, start_s: float, end_s: float) -> None:
        """Arrange inject at ``start_s`` and restore at ``end_s``."""
        if end_s <= start_s:
            raise ValueError(f"empty fault window [{start_s}, {end_s}]")
        self.engine.call_at(start_s, self.inject)
        self.engine.call_at(end_s, self.restore)

    # -- tracing -------------------------------------------------------------
    def _record_span(self, prefix: str, category: str, start_s: float,
                     end_s: float, **attributes: Any) -> None:
        tracer = self.engine.tracer
        if tracer is None:
            return
        tracer.record(f"{prefix}:{self.KIND}:{self.target}", start_s, end_s,
                      category=category, kind=self.KIND, target=self.target,
                      **attributes)

    def _record_recovery(self, start_s: float, end_s: float,
                         **attributes: Any) -> None:
        self._record_span("recovery", "chaos.recovery", start_s, end_s,
                          **attributes)


class SensorFaultInjector(FaultInjector):
    """A hwmon sensor drops off the bus or freezes (Table IV hardware).

    ``dropout`` recovery is *active*: the sampling plugin notices reads
    failing and records the recovery span at its first successful read
    (see ``SamplingPlugin.note_target_recovered``).  ``stuck`` is silent
    — reads keep succeeding with a frozen value — so the injector records
    the recovery itself at repair time.
    """

    def __init__(self, engine: Engine, log: ChaosLog, hostname: str,
                 sensor: Any, sensor_name: str, mode: str = "dropout") -> None:
        if mode not in ("dropout", "stuck"):
            raise ValueError(f"unknown sensor fault mode {mode!r}")
        super().__init__(engine, log, target=f"{hostname}/{sensor_name}")
        self.sensor = sensor
        self.mode = mode

    @property
    def KIND(self) -> str:  # noqa: N802 - property overriding a class attr
        return (FaultKind.SENSOR_DROPOUT if self.mode == "dropout"
                else FaultKind.SENSOR_STUCK)

    def _apply(self) -> None:
        if self.mode == "dropout":
            self.sensor.fail_dropout()
        else:
            self.sensor.fail_stuck()

    def _revert(self) -> None:
        self.sensor.repair()

    def _detail(self) -> str:
        return f"mode={self.mode}"

    def restore(self) -> None:
        start_s = self._injected_at
        super().restore()
        if start_s is not None and self.mode == "stuck":
            # Silent fault: nobody else saw it, so the repair instant is
            # the recovery.
            self._record_recovery(start_s, self.engine.now, silent=True)


class BrokerOutageInjector(FaultInjector):
    """The master-node MQTT broker goes down (§IV-B transport loss).

    Recovery is owned by the sampling plugins: each one reconnects under
    its seeded backoff and backfills its buffer, recording a
    ``recovery:broker-outage:<broker>`` span per daemon.
    """

    KIND = FaultKind.BROKER_OUTAGE

    def __init__(self, engine: Engine, log: ChaosLog, broker: Any) -> None:
        super().__init__(engine, log, target=broker.hostname)
        self.broker = broker

    def _apply(self) -> None:
        self.broker.go_offline()

    def _revert(self) -> None:
        self.broker.restore()


class BrokerSlowInjector(FaultInjector):
    """The broker answers, slowly; daemons degrade their cadence."""

    KIND = FaultKind.BROKER_SLOW

    def __init__(self, engine: Engine, log: ChaosLog, broker: Any,
                 delay_s: float = 0.25) -> None:
        super().__init__(engine, log, target=broker.hostname)
        self.broker = broker
        self.delay_s = delay_s

    def _apply(self) -> None:
        self.broker.set_slow(self.delay_s)

    def _revert(self) -> None:
        self.broker.restore()

    def _detail(self) -> str:
        return f"delay={self.delay_s:g}s"

    def restore(self) -> None:
        start_s = self._injected_at
        super().restore()
        if start_s is not None:
            # Passive degradation: daemons absorbed the slowdown without
            # state of their own, so restore *is* the recovery.
            self._record_recovery(start_s, self.engine.now,
                                  delay_s=self.delay_s)


class LinkFaultInjector(FaultInjector):
    """A GbE port link goes down or degrades (§IV star network).

    ``down`` recovery is owned by the MPI retry loop
    (:func:`repro.network.mpi.run_collective_with_retry`), which records
    the recovery span once a collective makes it through.  ``degraded``
    only stretches transfer times — passive, so the injector records the
    recovery at restore.
    """

    def __init__(self, engine: Engine, log: ChaosLog, link: Any,
                 mode: str = "down", factor: float = 4.0) -> None:
        if mode not in ("down", "degraded"):
            raise ValueError(f"unknown link fault mode {mode!r}")
        super().__init__(engine, log, target=link.name)
        self.link = link
        self.mode = mode
        self.factor = factor

    @property
    def KIND(self) -> str:  # noqa: N802 - property overriding a class attr
        return (FaultKind.LINK_DOWN if self.mode == "down"
                else FaultKind.LINK_DEGRADED)

    def _apply(self) -> None:
        if self.mode == "down":
            self.link.set_down()
        else:
            self.link.set_degraded(self.factor)

    def _revert(self) -> None:
        if self.mode == "down":
            self.link.set_up()
        else:
            self.link.clear_degraded()

    def _detail(self) -> str:
        return ("" if self.mode == "down"
                else f"bandwidth/{self.factor:g}")

    def restore(self) -> None:
        start_s = self._injected_at
        super().restore()
        if start_s is not None and self.mode == "degraded":
            self._record_recovery(start_s, self.engine.now,
                                  factor=self.factor)


class ServiceOutageInjector(FaultInjector):
    """NFS or LDAP on the master node goes down (§IV-A).

    Clients degrade by queueing (parked logins, deferred home-directory
    writes).  On restore the injector runs ``on_restore`` — typically
    ``LoginNode.process_queued`` plus ``flush_deferred_writes`` — and
    records the recovery span carrying whatever counts the callback
    returns.
    """

    KIND = FaultKind.SERVICE_OUTAGE

    def __init__(self, engine: Engine, log: ChaosLog, service: Any,
                 on_restore: Optional[Callable[[], Dict[str, Any]]] = None
                 ) -> None:
        super().__init__(engine, log, target=service.SERVICE_NAME)
        self.service = service
        self.on_restore = on_restore

    def _apply(self) -> None:
        self.service.stop_service()

    def _revert(self) -> None:
        self.service.start_service()

    def restore(self) -> None:
        start_s = self._injected_at
        super().restore()
        if start_s is None:
            return
        attrs: Dict[str, Any] = {
            "requests_refused": self.service.requests_refused}
        if self.on_restore is not None:
            attrs.update(self.on_restore() or {})
        self._record_recovery(start_s, self.engine.now, **attrs)


class NodeTripInjector(FaultInjector):
    """A compute node lost to an over-temperature trip (Fig. 6).

    Injection goes through the cluster's own failure path
    (``inject_node_failure``), so SLURM marks the node DOWN and — with
    auto-recovery enabled — starts its drain→cool→reboot→resume
    lifecycle.  A watcher process records both the fault window and the
    recovery span once the scheduler returns the node to IDLE; there is
    no scheduled restore, the cluster heals itself.
    """

    KIND = FaultKind.NODE_TRIP

    def __init__(self, engine: Engine, log: ChaosLog, cluster: Any,
                 hostname: str, poll_s: float = 5.0) -> None:
        super().__init__(engine, log, target=hostname)
        self.cluster = cluster
        self.hostname = hostname
        self.poll_s = poll_s
        self.recovered_at_s: Optional[float] = None

    def _apply(self) -> None:
        self.cluster.inject_node_failure(self.hostname,
                                         reason="chaos: injected trip")
        self.engine.spawn(self._watch(), name=f"chaos-watch-{self.hostname}")

    def _revert(self) -> None:  # pragma: no cover - never scheduled
        raise RuntimeError("node trips heal through SLURM, not restore()")

    def schedule_at(self, when_s: float) -> None:
        """Arrange the trip at ``when_s`` (no restore — see class docs)."""
        self.engine.call_at(when_s, self.inject)

    def _slurm_state(self) -> Tuple[str, Any]:
        for partition in self.cluster.slurm.partitions.values():
            if self.hostname in partition.nodes:
                return partition.nodes[self.hostname].state.value, partition
        raise KeyError(f"{self.hostname} is in no partition")

    def _watch(self) -> Generator[Event, None, None]:
        start_s = self.engine.now
        while True:
            yield self.engine.timeout(self.poll_s)
            state, _ = self._slurm_state()
            if state == "idle":
                break
        self.recovered_at_s = self.engine.now
        self._injected_at = None
        self.log.add(self.engine.now, "restore", self.KIND, self.target,
                     "drain->resume complete")
        self._record_span("fault", "chaos.fault", start_s, self.engine.now)
        self._record_recovery(start_s, self.engine.now,
                              via="slurm drain->resume")
