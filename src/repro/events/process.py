"""Generator-based cooperating processes for the simulation kernel.

A :class:`Process` wraps a Python generator that yields :class:`Event`
objects.  Each time a yielded event fires, the generator is resumed with the
event's value (or the event's exception is thrown into it).  A process is
itself an event, so processes can wait on each other:

>>> from repro.events import Engine
>>> eng = Engine()
>>> def child(env):
...     yield env.timeout(2)
...     return "done"
>>> def parent(env):
...     result = yield env.spawn(child(env))
...     assert result == "done"
>>> eng.spawn(parent(eng))     # doctest: +ELLIPSIS
Process(...)
>>> eng.run()
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.events.engine import Engine, Event, SimulationError

__all__ = ["Process", "Interrupt"]


class Interrupt(Exception):
    """Thrown into a process generator by :meth:`Process.interrupt`.

    The ``cause`` attribute carries the interrupting party's reason, e.g. a
    pre-emption notice from the scheduler or a thermal-trip shutdown from the
    enclosure model.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Process(Event):
    """A running simulation process.

    The process starts immediately: its first resumption is scheduled at the
    current simulated time (delay 0), preserving deterministic ordering with
    respect to other events scheduled in the same instant.
    """

    __slots__ = ("generator", "name", "_target")

    def __init__(self, engine: Engine, generator: Generator[Event, Any, Any], name: str = "") -> None:
        super().__init__(engine)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._target: Optional[Event] = None
        # Kick off the process via a zero-delay bootstrap event.
        bootstrap = Event(engine)
        bootstrap._triggered = True
        engine._schedule(bootstrap)
        bootstrap.callbacks.append(self._resume)
        self._target = bootstrap

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is an error; interrupting a process
        twice before it handles the first interrupt is allowed and delivers
        both, in order.
        """
        if self._triggered:
            raise SimulationError(f"cannot interrupt finished process {self.name!r}")
        interrupt_event = Event(self.engine)
        interrupt_event._triggered = True
        interrupt_event._exception = Interrupt(cause)
        # Detach from the event currently waited on so its later firing
        # does not resume us a second time.
        target = self._target
        if target is not None and self._resume in target.callbacks:
            target.callbacks.remove(self._resume)
        self.engine._schedule(interrupt_event)
        interrupt_event.callbacks.append(self._resume)
        self._target = interrupt_event

    # -- internal ----------------------------------------------------------
    def _resume(self, event: Event) -> None:
        try:
            if event._exception is not None:
                target = self.generator.throw(event._exception)
            else:
                target = self.generator.send(event._value)
        except StopIteration as stop:
            self._target = None
            self.succeed(stop.value)
            return
        except Interrupt as interrupt:
            # Unhandled interrupt terminates the process as failed.
            self._target = None
            self.fail(interrupt)
            return
        except BaseException as exc:  # propagate real bugs
            self._target = None
            if not self.callbacks:
                # Nobody is waiting on this process: a silent failure would
                # hang the simulation, so crash loudly out of engine.step().
                raise
            self.fail(exc)
            return

        if not isinstance(target, Event):
            self._target = None
            self.fail(SimulationError(f"process {self.name!r} yielded non-event {target!r}"))
            return
        self._target = target
        if target.processed:
            # The event already fired; resume immediately (zero delay).
            immediate = Event(self.engine)
            immediate._triggered = True
            immediate._value = target._value
            immediate._exception = target._exception
            self.engine._schedule(immediate)
            immediate.callbacks.append(self._resume)
            self._target = immediate
        else:
            target.callbacks.append(self._resume)

    def __repr__(self) -> str:
        state = "finished" if self._triggered else "alive"
        return f"Process({self.name!r}, {state})"
