"""Generator-based cooperating processes for the simulation kernel.

A :class:`Process` wraps a Python generator that yields :class:`Event`
objects.  Each time a yielded event fires, the generator is resumed with the
event's value (or the event's exception is thrown into it).  A process is
itself an event, so processes can wait on each other:

>>> from repro.events import Engine
>>> eng = Engine()
>>> def child(env):
...     yield env.timeout(2)
...     return "done"
>>> def parent(env):
...     result = yield env.spawn(child(env))
...     assert result == "done"
>>> eng.spawn(parent(eng))     # doctest: +ELLIPSIS
Process(...)
>>> eng.run()
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.events.engine import Engine, Event, SimulationError

__all__ = ["Process", "Interrupt"]


class Interrupt(Exception):
    """Thrown into a process generator by :meth:`Process.interrupt`.

    The ``cause`` attribute carries the interrupting party's reason, e.g. a
    pre-emption notice from the scheduler or a thermal-trip shutdown from the
    enclosure model.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Process(Event):
    """A running simulation process.

    The process starts immediately: its first resumption is scheduled at the
    current simulated time (delay 0), preserving deterministic ordering with
    respect to other events scheduled in the same instant.
    """

    __slots__ = ("generator", "name", "_target", "_started", "obs_span")

    def __init__(self, engine: Engine, generator: Generator[Event, Any, Any], name: str = "") -> None:
        super().__init__(engine)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._target: Optional[Event] = None
        self._started = False
        #: Trace span covering this process's lifetime (None when the
        #: engine is untraced; see repro.obs).
        self.obs_span = None
        # Kick off the process via a zero-delay bootstrap event.
        bootstrap = Event(engine)
        bootstrap._triggered = True
        engine._schedule(bootstrap)
        bootstrap.callbacks.append(self._resume)
        self._target = bootstrap
        if engine.tracer is not None:
            engine.tracer.on_process_spawn(self)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is an error; interrupting a process
        twice before it handles the first interrupt is allowed and delivers
        both, in order.  Interrupting a just-spawned process is deferred
        until after its bootstrap resumption, so the process body gets to
        run up to its first ``yield`` before the interrupt arrives (instead
        of the interrupt being thrown into a never-started generator and
        skipping the body entirely).  An interrupt whose target finishes in
        the same simulated instant, before delivery, is dropped: there is
        no frame left to deliver it to.
        """
        if self._triggered:
            raise SimulationError(f"cannot interrupt finished process {self.name!r}")
        deliver = Event(self.engine)
        deliver._triggered = True
        deliver._exception = Interrupt(cause)
        self.engine._schedule(deliver)
        deliver.callbacks.append(self._deliver_interrupt)

    def _deliver_interrupt(self, event: Event) -> None:
        """Late-bound interrupt delivery (runs when the delivery event fires).

        Detaching from the currently-waited-on event happens here, at
        delivery time, not when :meth:`interrupt` was called — that is what
        makes double interrupts deliver both, in order, and keeps a pending
        interrupt from cancelling the bootstrap resumption.
        """
        if self._triggered:
            # The process finished in this same instant, before delivery;
            # the interrupt is moot.  Consume it so the ledger stays clean.
            event.defuse()
            return
        if not self._started:
            # The generator has not been bootstrapped yet; re-queue the
            # delivery so it lands after the bootstrap resumption.
            event.defuse()
            redelivery = Event(self.engine)
            redelivery._triggered = True
            redelivery._exception = event._exception
            self.engine._schedule(redelivery)
            redelivery.callbacks.append(self._deliver_interrupt)
            return
        target = self._target
        if target is not None and self._resume in target.callbacks:
            target.callbacks.remove(self._resume)
        self._target = None
        self._resume(event)

    # -- internal ----------------------------------------------------------
    def _resume(self, event: Event) -> None:
        """Resume the generator, maintaining the tracer's span context.

        Tracing is folded into the single resume frame: the ``finally``
        suspend hook fires on every exit path (StopIteration, crash,
        re-yield), exactly as the former inner/outer split did, but
        without an extra Python call frame per resumption when untraced
        (the dominant mode — a ``try/finally`` with no exception is
        zero-cost on CPython 3.11+).
        """
        tracer = self.engine.tracer
        if tracer is not None:
            tracer.on_process_resume(self)
        self._started = True
        try:
            try:
                if event._exception is not None:
                    # The exception is being delivered into this generator:
                    # that consumes the failure.
                    event.defuse()
                    target = self.generator.throw(event._exception)
                else:
                    target = self.generator.send(event._value)
            except StopIteration as stop:
                self._target = None
                self.succeed(stop.value)
                return
            except Interrupt as interrupt:
                # Unhandled interrupt terminates the process as failed; the
                # failure ledger flags it unless a waiter (or defuse)
                # consumes it.
                self._target = None
                self.fail(interrupt)
                return
            except Exception as exc:
                # A crashed process becomes a failed event.  If somebody
                # waits on it, the exception propagates to them; if nobody
                # ever consumes it, Engine.run() raises an
                # UnconsumedFailureError diagnostic when the simulation
                # drains — replacing the old timing-dependent "crash only
                # if no callbacks yet" heuristic.
                self._target = None
                self.fail(exc)
                return
            except BaseException:
                # KeyboardInterrupt/SystemExit and friends are not
                # simulation outcomes; propagate immediately out of
                # engine.step().
                self._target = None
                raise

            if not isinstance(target, Event):
                self._target = None
                self.fail(SimulationError(
                    f"process {self.name!r} yielded non-event {target!r}"))
                return
            self._target = target
            if target.processed:
                # The event already fired; resume immediately (zero delay).
                if target._exception is not None:
                    # Waiting on a processed failed event consumes its
                    # failure.
                    target.defuse()
                immediate = Event(self.engine)
                immediate._triggered = True
                immediate._value = target._value
                immediate._exception = target._exception
                self.engine._schedule(immediate)
                immediate.callbacks.append(self._resume)
                self._target = immediate
            else:
                target.callbacks.append(self._resume)
        finally:
            if tracer is not None:
                tracer.on_process_suspend(self, finished=self._triggered)

    def __repr__(self) -> str:
        state = "finished" if self._triggered else "alive"
        return f"Process({self.name!r}, {state})"
