"""Shared resources for simulation processes.

Three primitives cover every contention point in the cluster model:

* :class:`Resource` — a counted semaphore with FIFO queueing; used for CPU
  cores, network link slots and scheduler node allocations.
* :class:`Container` — a continuous quantity (e.g. bytes of DRAM, watts of
  PSU budget) with blocking ``get``/``put``.
* :class:`Store` — a FIFO object queue; used for MQTT message delivery and
  the scheduler's pending-job queue.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Optional

from repro.events.engine import Engine, Event

__all__ = ["Resource", "Container", "Store"]


class Resource:
    """A counted, FIFO-fair resource.

    ``request()`` returns an event that fires once a slot is available; the
    caller must eventually call ``release()``.  Usage::

        req = resource.request()
        yield req
        try:
            ...critical section...
        finally:
            resource.release()
    """

    def __init__(self, engine: Engine, capacity: int = 1) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.engine = engine
        self.capacity = capacity
        self._in_use = 0
        self._waiters: Deque[Event] = deque()

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return self._in_use

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._waiters)

    def request(self) -> Event:
        """Return an event firing when a slot is granted to the caller."""
        event = self.engine.event()
        if self._in_use < self.capacity:
            self._in_use += 1
            event.succeed(self)
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        """Release one held slot, granting it to the next waiter if any."""
        if self._in_use <= 0:
            raise RuntimeError("release() without matching request()")
        if self._waiters:
            waiter = self._waiters.popleft()
            waiter.succeed(self)
        else:
            self._in_use -= 1


class Container:
    """A continuous quantity with blocking get/put.

    Used e.g. to model a PSU power budget: workloads ``get`` watts before
    starting and ``put`` them back when finished; an over-committed blade
    blocks until headroom frees up.
    """

    def __init__(self, engine: Engine, capacity: float = float("inf"), init: float = 0.0) -> None:
        if init < 0 or init > capacity:
            raise ValueError(f"init {init} outside [0, {capacity}]")
        self.engine = engine
        self.capacity = float(capacity)
        self._level = float(init)
        self._getters: Deque[tuple[float, Event]] = deque()
        self._putters: Deque[tuple[float, Event]] = deque()

    @property
    def level(self) -> float:
        """Current stored amount."""
        return self._level

    def get(self, amount: float) -> Event:
        """Return an event firing once ``amount`` has been withdrawn."""
        if amount < 0:
            raise ValueError(f"negative get amount {amount}")
        event = self.engine.event()
        self._getters.append((amount, event))
        self._settle()
        return event

    def put(self, amount: float) -> Event:
        """Return an event firing once ``amount`` has been deposited."""
        if amount < 0:
            raise ValueError(f"negative put amount {amount}")
        event = self.engine.event()
        self._putters.append((amount, event))
        self._settle()
        return event

    def _settle(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._putters:
                amount, event = self._putters[0]
                if self._level + amount <= self.capacity:
                    self._putters.popleft()
                    self._level += amount
                    event.succeed(amount)
                    progressed = True
            if self._getters:
                amount, event = self._getters[0]
                if amount <= self._level:
                    self._getters.popleft()
                    self._level -= amount
                    event.succeed(amount)
                    progressed = True


class Store:
    """A FIFO queue of arbitrary items with blocking get.

    ``put`` never blocks (unbounded by default, or raises when a finite
    ``capacity`` is exceeded — the MQTT broker uses the lossy variant via
    :meth:`try_put`).
    """

    def __init__(self, engine: Engine, capacity: float = float("inf")) -> None:
        self.engine = engine
        self.capacity = capacity
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Enqueue ``item``; wakes one blocked getter if present."""
        if len(self._items) >= self.capacity:
            raise OverflowError("store is full")
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def try_put(self, item: Any) -> bool:
        """Enqueue ``item`` if capacity allows; returns False when dropped."""
        try:
            self.put(item)
            return True
        except OverflowError:
            return False

    def get(self) -> Event:
        """Return an event firing with the next item (FIFO)."""
        event = self.engine.event()
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event

    def drain(self) -> list[Any]:
        """Remove and return all queued items without blocking."""
        items = list(self._items)
        self._items.clear()
        return items
