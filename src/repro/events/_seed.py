"""Frozen copy of the seed event kernel — the determinism reference.

This module preserves, verbatim in behaviour, the scheduler the repository
shipped with before the hot-path rework: a single ``heapq`` keyed by
``(time, sequence)``, one closure-wrapping ``call_at``, and a fresh
``_ProcessedCallbacks`` allocation per processed event.  It exists for two
reasons and must not be "improved":

* the determinism-equivalence suite (``tests/test_events_determinism_equiv``)
  replays recorded workloads on both kernels and asserts *byte-identical*
  event ordering — the proof that the calendar-bucket/FIFO scheduler in
  :mod:`repro.events.engine` is a pure optimisation;
* the benchmark harness (``python -m repro bench``,
  ``benchmarks/test_kernel_throughput.py``) measures the optimised kernel's
  speedup against this one, which makes the reported speedups
  machine-independent ratios rather than absolute wall-clock numbers.

Only the kernel classes are duplicated; the failure-ledger semantics,
interrupt delivery rules, and condition behaviour are identical to the
live kernel (they were not touched by the optimisation), so any behavioural
divergence the equivalence suite finds is a scheduler-ordering bug by
construction.
"""

from __future__ import annotations

import heapq
import itertools
import traceback as _traceback
from typing import Any, Callable, Generator, Iterable, List, Optional

from repro.events.engine import (Engine, Event, FailureRecord,
                                 SimulationError, UnconsumedFailureError)
from repro.events.process import Interrupt

__all__ = ["SeedEngine", "HeapReferenceEngine"]


class HeapReferenceEngine(Engine):
    """The *live* Event/Process machinery on the seed single-heap scheduler.

    Where :class:`SeedEngine` freezes the whole seed kernel (its own event,
    process and condition classes — the honest baseline for benchmarks),
    this class swaps only the scheduler: every event class, the resource
    layer, and the full cluster stack run unchanged on top of a plain
    ``heapq``.  That makes it the *ordering oracle* for the equivalence
    suite — a full-stack experiment (Fig. 5 heatmaps, a chaos campaign)
    can be replayed on both schedulers with byte-identical everything
    else, so any output difference is a tier-merge bug in the calendar
    wheel / FIFO lane and nothing but.
    """

    #: This class overrides ``_schedule``, so hot-path constructors must
    #: not write straight into the (unused) tier structures.
    _inline_schedule = False

    def __init__(self, start: float = 0.0) -> None:
        super().__init__(start)
        self._heap: list = []

    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        heapq.heappush(self._heap,
                       (self._now + delay, next(self._counter), event))
        self._pending += 1
        if self.tracer is not None:
            self.tracer.on_event_scheduled(self._pending)

    def step(self) -> None:
        when, _seq, event = heapq.heappop(self._heap)
        self._pending -= 1
        self._now = when
        if self.tracer is not None:
            self.tracer.on_event_processed()
        event._run_callbacks()
        if event._exception is not None and not event._defused:
            self._record_failure(event)

    def peek(self) -> float:
        return self._heap[0][0] if self._heap else float("inf")


class _ProcessedCallbacks(list):
    """Seed behaviour: one rejecting sentinel list allocated per event."""

    def _reject(self, *_args: Any) -> None:
        raise SimulationError(
            f"cannot add a callback to the already-processed {self.event!r}; "
            f"it would never run")

    def __init__(self, event: "SeedEvent") -> None:
        super().__init__()
        self.event = event

    append = extend = insert = _reject


class SeedEvent:
    """The seed kernel's event (see :class:`repro.events.engine.Event`)."""

    __slots__ = ("engine", "callbacks", "_value", "_exception", "_triggered",
                 "_processed", "_defused")

    def __init__(self, engine: "SeedEngine") -> None:
        self.engine = engine
        self.callbacks: list[Callable[["SeedEvent"], None]] = []
        self._value: Any = None
        self._exception: Optional[BaseException] = None
        self._triggered = False
        self._processed = False
        self._defused = False

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def processed(self) -> bool:
        return self._processed

    @property
    def ok(self) -> bool:
        return self._triggered and self._exception is None

    @property
    def defused(self) -> bool:
        return self._defused

    @property
    def value(self) -> Any:
        if self._exception is not None:
            self.defuse()
            raise self._exception
        return self._value

    def defuse(self) -> None:
        self._defused = True
        self.engine._discard_failure(self)

    def succeed(self, value: Any = None) -> "SeedEvent":
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self._value = value
        self.engine._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "SeedEvent":
        if self._triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        self._triggered = True
        self._exception = exception
        self.engine._schedule(self)
        return self

    def _run_callbacks(self) -> None:
        self._processed = True
        callbacks, self.callbacks = self.callbacks, _ProcessedCallbacks(self)
        for callback in callbacks:
            callback(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = ("processed" if self._processed
                 else ("triggered" if self._triggered else "pending"))
        return f"<{type(self).__name__} {state} at t={self.engine.now:.6f}>"


class SeedTimeout(SeedEvent):
    """Seed fixed-delay event."""

    __slots__ = ("delay",)

    def __init__(self, engine: "SeedEngine", delay: float,
                 value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(engine)
        self.delay = float(delay)
        self._triggered = True
        self._value = value
        engine._schedule(self, delay=self.delay)


class _SeedCondition(SeedEvent):
    __slots__ = ("events", "_n_fired")

    def __init__(self, engine: "SeedEngine",
                 events: Iterable[SeedEvent]) -> None:
        super().__init__(engine)
        self.events = list(events)
        self._n_fired = 0
        if not self.events:
            self.succeed({})
            return
        for event in self.events:
            if event.processed:
                self._on_fire(event)
            else:
                event.callbacks.append(self._on_fire)

    def _collect(self) -> dict:
        return {e: e._value for e in self.events
                if e.triggered and e._exception is None}

    def _on_fire(self, event: SeedEvent) -> None:
        raise NotImplementedError


class SeedAnyOf(_SeedCondition):
    __slots__ = ()

    def _on_fire(self, event: SeedEvent) -> None:
        if self._triggered:
            return
        if event._exception is not None:
            event.defuse()
            self.fail(event._exception)
        else:
            self.succeed(self._collect())


class SeedAllOf(_SeedCondition):
    __slots__ = ()

    def _on_fire(self, event: SeedEvent) -> None:
        if self._triggered:
            return
        if event._exception is not None:
            event.defuse()
            self.fail(event._exception)
            return
        self._n_fired += 1
        if self._n_fired == len(self.events):
            self.succeed(self._collect())


class SeedProcess(SeedEvent):
    """The seed kernel's process (see :class:`repro.events.process.Process`)."""

    __slots__ = ("generator", "name", "_target", "_started", "obs_span")

    def __init__(self, engine: "SeedEngine",
                 generator: Generator[SeedEvent, Any, Any],
                 name: str = "") -> None:
        super().__init__(engine)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._target: Optional[SeedEvent] = None
        self._started = False
        self.obs_span = None
        bootstrap = SeedEvent(engine)
        bootstrap._triggered = True
        engine._schedule(bootstrap)
        bootstrap.callbacks.append(self._resume)
        self._target = bootstrap

    @property
    def is_alive(self) -> bool:
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        if self._triggered:
            raise SimulationError(
                f"cannot interrupt finished process {self.name!r}")
        deliver = SeedEvent(self.engine)
        deliver._triggered = True
        deliver._exception = Interrupt(cause)
        self.engine._schedule(deliver)
        deliver.callbacks.append(self._deliver_interrupt)

    def _deliver_interrupt(self, event: SeedEvent) -> None:
        if self._triggered:
            event.defuse()
            return
        if not self._started:
            event.defuse()
            redelivery = SeedEvent(self.engine)
            redelivery._triggered = True
            redelivery._exception = event._exception
            self.engine._schedule(redelivery)
            redelivery.callbacks.append(self._deliver_interrupt)
            return
        target = self._target
        if target is not None and self._resume in target.callbacks:  # simlint: disable=PERF302  (frozen seed kernel — byte-for-byte reference, never optimised)
            target.callbacks.remove(self._resume)
        self._target = None
        self._resume(event)

    def _resume(self, event: SeedEvent) -> None:
        self._started = True
        try:
            if event._exception is not None:
                event.defuse()
                target = self.generator.throw(event._exception)
            else:
                target = self.generator.send(event._value)
        except StopIteration as stop:
            self._target = None
            self.succeed(stop.value)
            return
        except Interrupt as interrupt:
            self._target = None
            self.fail(interrupt)
            return
        except Exception as exc:
            self._target = None
            self.fail(exc)
            return
        except BaseException:
            self._target = None
            raise

        if not isinstance(target, SeedEvent):
            self._target = None
            self.fail(SimulationError(
                f"process {self.name!r} yielded non-event {target!r}"))
            return
        self._target = target
        if target.processed:
            if target._exception is not None:
                target.defuse()
            immediate = SeedEvent(self.engine)
            immediate._triggered = True
            immediate._value = target._value
            immediate._exception = target._exception
            self.engine._schedule(immediate)
            immediate.callbacks.append(self._resume)
            self._target = immediate
        else:
            target.callbacks.append(self._resume)

    def __repr__(self) -> str:
        state = "finished" if self._triggered else "alive"
        return f"SeedProcess({self.name!r}, {state})"


class SeedEngine:
    """The seed event loop: one heap, ``peek()`` twice per drain iteration."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._queue: list[tuple[float, int, SeedEvent]] = []
        self._counter = itertools.count()
        self._running = False
        self._failures: dict[SeedEvent, FailureRecord] = {}
        self.tracer: Optional[Any] = None

    @property
    def now(self) -> float:
        return self._now

    @property
    def unconsumed_failures(self) -> List[FailureRecord]:
        return list(self._failures.values())

    def _record_failure(self, event: SeedEvent) -> None:
        exc = event._exception
        assert exc is not None
        tb_text = "".join(
            _traceback.format_exception(type(exc), exc, exc.__traceback__)
        ) if exc.__traceback__ is not None else ""
        self._failures[event] = FailureRecord(
            event_repr=repr(event),
            process_name=getattr(event, "name", None),
            time_s=self._now,
            exception=exc,
            traceback_text=tb_text,
        )

    def _discard_failure(self, event: SeedEvent) -> None:
        self._failures.pop(event, None)

    def check_failures(self) -> None:
        if self._failures:
            records = list(self._failures.values())
            self._failures.clear()
            raise UnconsumedFailureError(records)

    def event(self) -> SeedEvent:
        return SeedEvent(self)

    def timeout(self, delay: float, value: Any = None) -> SeedTimeout:
        return SeedTimeout(self, delay, value)

    def any_of(self, events: Iterable[SeedEvent]) -> SeedAnyOf:
        return SeedAnyOf(self, events)

    def all_of(self, events: Iterable[SeedEvent]) -> SeedAllOf:
        return SeedAllOf(self, events)

    def spawn(self, generator: Generator[SeedEvent, Any, Any],
              name: str = "") -> SeedProcess:
        return SeedProcess(self, generator, name=name)

    process = spawn

    def _schedule(self, event: SeedEvent, delay: float = 0.0) -> None:
        heapq.heappush(self._queue,
                       (self._now + delay, next(self._counter), event))

    def call_at(self, when: float, callback: Callable[[], None]) -> SeedEvent:
        """Seed shape: a Timeout plus a fresh closure wrapper per call."""
        if when < self._now:
            raise ValueError(
                f"cannot schedule in the past: {when} < {self._now}")
        event = SeedTimeout(self, when - self._now)
        event.callbacks.append(lambda _e: callback())
        return event

    def step(self) -> None:
        when, _seq, event = heapq.heappop(self._queue)
        self._now = when
        event._run_callbacks()
        if event._exception is not None and not event._defused:
            self._record_failure(event)

    def peek(self) -> float:
        return self._queue[0][0] if self._queue else float("inf")

    def run(self, until: Optional[float] = None) -> None:
        if self._running:
            raise SimulationError("engine is already running")
        self._running = True
        try:
            while self._queue:
                when = self._queue[0][0]
                if until is not None and when > until:
                    break
                self.step()
            if until is not None and self._now < until:
                self._now = until
            if not self._queue:
                self.check_failures()
        finally:
            self._running = False

    def run_until_complete(self, process: SeedEvent,
                           limit: float = 1e12) -> Any:
        while not process.triggered:
            if not self._queue:
                raise SimulationError(
                    "deadlock: event queue drained before process finished")
            if self.peek() > limit:
                raise SimulationError(
                    f"simulation exceeded time limit {limit}")
            self.step()
        while not process.processed and self._queue and self.peek() <= self._now:
            self.step()
        return process.value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<SeedEngine t={self._now:.6f} queued={len(self._queue)}>"
