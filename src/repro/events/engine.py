"""Deterministic discrete-event simulation engine.

Determinism is a hard requirement for this project: the whole benchmark
harness asserts on simulated measurements, and a non-deterministic kernel
would make the reproduction unfalsifiable.  Events scheduled for the same
simulated timestamp fire in the order they were scheduled — every event
carries a monotonically increasing sequence number and the kernel dispatches
in exact ``(time, sequence)`` order.

The API is intentionally close to SimPy's (``env.timeout``, ``env.process``)
so the simulation code reads like standard discrete-event Python, but the
implementation is from scratch — no third-party simulation dependency is
used anywhere in the repository.

Scheduling tiers (the hot-path rework; see docs/ARCHITECTURE.md §1,
"Kernel performance"):

* **zero-delay FIFO lane** — ``delay == 0.0`` events (process bootstraps,
  ``succeed``/``fail`` triggers, immediate resumptions, interrupt
  deliveries) are appended to a deque.  Their fire time is the current
  instant and their sequence numbers are assigned in append order, so the
  deque is already sorted by ``(time, seq)`` and the head is always the
  lane's minimum — no heap traffic at all for the dominant event class.
* **calendar-bucket wheel** — future events are bucketed by *exact* fire
  time in a dict, with a heap over the distinct times only.  A thousand
  same-cadence sampling daemons firing at the same instant cost one heap
  push per distinct timestamp instead of one per event, and each bucket
  is drained by index (bucket entries are appended in sequence order, so
  a bucket never needs sorting).

The pop path merges the tiers by ``(time, seq)``, which makes the event
ordering *byte-identical* to the seed single-heap kernel preserved in
:mod:`repro.events._seed`; the equivalence suite replays recorded
workloads on both and asserts exact order equality.

Observability: an :class:`Engine` optionally carries a tracer
(:mod:`repro.obs`) in its ``tracer`` attribute.  Every kernel hook is
guarded by a single ``is not None`` test, so tracing costs nothing when
disabled.  The engine additionally keeps two deterministic fast-path
counters (``fifo_hits``, ``wheel_hits``) and exposes ``wheel_depth`` so
the metrics registry can report how the tiers are being used.
"""

from __future__ import annotations

import functools
import itertools
import traceback as _traceback
from collections import deque
from dataclasses import dataclass
from heapq import heappop, heappush
from typing import Any, Callable, Generator, Iterable, List, Optional

__all__ = ["Engine", "Event", "SimulationError", "UnconsumedFailureError",
           "FailureRecord", "Timeout", "AnyOf", "AllOf"]


class SimulationError(RuntimeError):
    """Raised for kernel-level misuse (double trigger, running twice, ...)."""


@dataclass(frozen=True)
class FailureRecord:
    """One failed event whose exception nobody consumed or defused.

    ``process_name`` is filled in when the failed event is a
    :class:`~repro.events.process.Process` (the common case: a crashed or
    force-killed simulation actor); for plain events it is ``None`` and
    ``event_repr`` identifies the source.
    """

    event_repr: str
    process_name: Optional[str]
    time_s: float
    exception: BaseException
    traceback_text: str

    def describe(self) -> str:
        """Multi-line human-readable account of the lost failure."""
        origin = (f"process {self.process_name!r}" if self.process_name
                  else self.event_repr)
        lines = [f"{self.exception!r} from {origin} at t={self.time_s:.6f}"]
        if self.traceback_text:
            lines.extend("    " + line
                         for line in self.traceback_text.rstrip().splitlines())
        return "\n".join(lines)


class UnconsumedFailureError(SimulationError):
    """The simulation drained while failed events were still unconsumed.

    Every failed :class:`Event` must either be *consumed* (its exception
    delivered to at least one waiter — a process that yielded it, a
    condition that absorbed it, or a caller reading ``event.value``) or
    explicitly *defused* via :meth:`Event.defuse`.  Anything else is a
    fault the simulation silently lost, which would make fault-injection
    tests pass vacuously — so :meth:`Engine.run` raises this diagnostic
    when the queue drains with live failures in the ledger.
    """

    def __init__(self, records: List[FailureRecord]) -> None:
        self.records = list(records)
        details = "\n".join("  - " + record.describe().replace("\n", "\n  ")
                            for record in self.records)
        super().__init__(
            f"{len(self.records)} unconsumed failure(s) when the simulation "
            f"drained — every failed event must be waited on or explicitly "
            f"defused (Event.defuse()):\n{details}")


class _ProcessedCallbacks(list):
    """Sentinel callback list installed once an event has been processed.

    Appending a callback to an already-processed event is a silent no-op in
    a naive kernel (the callback never runs); here it raises immediately so
    the bug surfaces at the call site.  Waiting on a processed event is
    still supported through the kernel APIs: ``yield event`` inside a
    process resumes immediately, and conditions absorb processed children.

    A single shared instance serves every processed event — the seed kernel
    allocated one per event, which showed up in the hot-path profile.
    """

    __slots__ = ()

    def _reject(self, *_args: Any) -> None:
        raise SimulationError(
            "cannot add a callback to an already-processed event; it would "
            "never run. Wait on events via yield/spawn/any_of/all_of (which "
            "handle processed events), or engine.call_at for plain "
            "scheduling")

    append = extend = insert = _reject


#: The one shared rejecting list every processed event points at.
_PROCESSED_CALLBACKS = _ProcessedCallbacks()


class Event:
    """A one-shot occurrence in simulated time.

    An event starts *pending*, becomes *triggered* once given a value (or an
    exception) and a fire time, and is *processed* after all callbacks ran.
    Processes waiting on the event are resumed through its callback list.

    Failure accounting: a *failed* event (one triggered via :meth:`fail`)
    must have its exception consumed by a waiter or be explicitly
    :meth:`defuse`\\ d; otherwise the engine's unconsumed-failure ledger
    reports it when the simulation drains (:class:`UnconsumedFailureError`).
    """

    __slots__ = ("engine", "callbacks", "_value", "_exception", "_triggered",
                 "_processed", "_defused")

    #: True when :meth:`Engine.step` may run this class's callbacks inline
    #: (i.e. :meth:`_run_callbacks` is the base implementation).  Any
    #: subclass that overrides ``_run_callbacks`` MUST set this to False,
    #: or the engine will bypass the override.
    _inline_callbacks = True

    def __init__(self, engine: "Engine") -> None:
        self.engine = engine
        self.callbacks: list[Callable[["Event"], None]] = []
        self._value: Any = None
        self._exception: Optional[BaseException] = None
        self._triggered = False
        self._processed = False
        self._defused = False

    # -- state ------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """True once all callbacks have run."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True when the event carries a value rather than an exception."""
        return self._triggered and self._exception is None

    @property
    def defused(self) -> bool:
        """True once the event's failure has been consumed or defused."""
        return self._defused

    @property
    def value(self) -> Any:
        """The event payload; raises if the event failed.

        Reading the value of a failed event delivers the exception to the
        caller, which counts as consuming the failure.
        """
        if self._exception is not None:
            self.defuse()
            raise self._exception
        return self._value

    def defuse(self) -> None:
        """Mark this event's failure as intentionally handled.

        Consumption points inside the kernel (a process resuming with the
        exception, a condition absorbing a child failure, ``value`` raising
        to a caller) call this automatically; user code calls it for
        fire-and-forget failures that are genuinely expected to go
        unobserved.  Defusing a successful event is a harmless no-op.
        """
        if (self._exception is not None and not self._defused
                and self.engine.tracer is not None):
            self.engine.tracer.on_failure_defused()
        self._defused = True
        self.engine._discard_failure(self)

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value`` at the current time."""
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self._value = value
        self.engine._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception delivered to waiters."""
        if self._triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        self._triggered = True
        self._exception = exception
        self.engine._schedule(self)
        return self

    def _run_callbacks(self) -> None:
        self._processed = True
        callbacks, self.callbacks = self.callbacks, _PROCESSED_CALLBACKS
        for callback in callbacks:
            callback(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "processed" if self._processed else ("triggered" if self._triggered else "pending")
        return f"<{type(self).__name__} {state} at t={self.engine.now:.6f}>"


class Timeout(Event):
    """An event that fires a fixed delay after creation."""

    __slots__ = ("delay",)

    def __init__(self, engine: "Engine", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        # Slot assignments are written out flat instead of chaining through
        # Event.__init__: timeouts are the single most-constructed object in
        # any simulation, and the extra frame is measurable at that volume.
        self.engine = engine
        self.callbacks = []
        self._exception = None
        self._processed = False
        self._defused = False
        self.delay = delay = float(delay)
        self._triggered = True
        self._value = value
        # Inlined Engine._schedule (same tier selection, same counter
        # consumption order): timeouts are constructed often enough on the
        # chaos-mix path that the extra call frame shows up in profiles.
        # Engines with a custom _schedule (``_inline_schedule = False``)
        # take the dispatching path instead.
        if not engine._inline_schedule:
            engine._schedule(self, delay=delay)
            return
        if delay == 0.0:
            engine._fifo.append((engine._now, next(engine._counter), self))
        else:
            when = engine._now + delay
            wheel = engine._wheel
            bucket = wheel.get(when)
            if bucket is None:
                wheel[when] = (next(engine._counter), self)
                heappush(engine._wheel_times, when)
            elif type(bucket) is list:
                bucket.append((next(engine._counter), self))
            else:
                wheel[when] = [bucket, (next(engine._counter), self)]
        engine._pending += 1
        if engine.tracer is not None:
            engine.tracer.on_event_scheduled(engine._pending)


class _Callback(Event):
    """A triggered event that invokes one stored callable when it fires.

    This is what :meth:`Engine.call_at` schedules.  The seed kernel built a
    :class:`Timeout` plus a fresh ``lambda`` wrapper per call — two extra
    allocations and an indirect call on a path the chaos injectors and
    SLURM trace replays hit constantly.  Here the callable is stored in a
    slot and invoked directly, before any conventionally appended
    callbacks (the same order the seed wrapper produced, since the wrapper
    was always the first callback in the list).
    """

    __slots__ = ("_fn",)

    _inline_callbacks = False  # overrides _run_callbacks below

    def __init__(self, engine: "Engine", delay: float,
                 fn: Callable[[], None]) -> None:
        super().__init__(engine)
        self._fn = fn
        self._triggered = True
        engine._schedule(self, delay)

    def _run_callbacks(self) -> None:
        self._processed = True
        callbacks, self.callbacks = self.callbacks, _PROCESSED_CALLBACKS
        self._fn()
        for callback in callbacks:
            callback(self)


class _Condition(Event):
    """Base for AnyOf/AllOf composite events."""

    __slots__ = ("events", "_n_fired")

    def __init__(self, engine: "Engine", events: Iterable[Event]) -> None:
        super().__init__(engine)
        self.events = list(events)
        self._n_fired = 0
        if not self.events:
            self.succeed({})
            return
        for event in self.events:
            if event.processed:
                self._on_fire(event)
            else:
                event.callbacks.append(self._on_fire)

    def _collect(self) -> dict[Event, Any]:
        return {e: e._value for e in self.events if e.triggered and e._exception is None}

    def _on_fire(self, event: Event) -> None:
        raise NotImplementedError


class AnyOf(_Condition):
    """Fires when the first of its child events fires.

    A child that fails *after* the condition already resolved is not
    silently swallowed: its exception stays unconsumed and surfaces through
    the engine's failure ledger unless some other waiter (or an explicit
    ``defuse()``) handles it.
    """

    __slots__ = ()

    def _on_fire(self, event: Event) -> None:
        if self._triggered:
            # Late child outcome.  A late success is simply ignored; a late
            # failure must not vanish — leave it to the unconsumed-failure
            # ledger rather than defusing it here.
            return
        if event._exception is not None:
            event.defuse()  # absorbed: the condition now carries the failure
            self.fail(event._exception)
        else:
            self.succeed(self._collect())


class AllOf(_Condition):
    """Fires when every child event has fired.

    Like :class:`AnyOf`, a child failing after the condition has already
    resolved (e.g. a second failure once the first aborted the condition)
    flows into the unconsumed-failure ledger instead of vanishing.
    """

    __slots__ = ()

    def _on_fire(self, event: Event) -> None:
        if self._triggered:
            return
        if event._exception is not None:
            event.defuse()  # absorbed: the condition now carries the failure
            self.fail(event._exception)
            return
        self._n_fired += 1
        if self._n_fired == len(self.events):
            self.succeed(self._collect())


class Engine:
    """The simulation event loop.

    Parameters
    ----------
    start:
        Initial simulated time, in seconds.  Defaults to ``0.0``.

    Scheduling state (three tiers, merged by ``(time, seq)`` on pop):

    * ``_fifo`` — zero-delay lane: ``(time, seq, event)`` deque, appended
      in sequence order at the then-current time, so it is sorted by
      construction;
    * ``_wheel`` / ``_wheel_times`` — calendar buckets: exact fire time →
      ``[(seq, event), ...]`` (each bucket is append-ordered by sequence),
      plus a heap over the *distinct* bucket times;
    * ``_slot`` — the bucket currently being drained, with ``_slot_time``
      and a read cursor ``_slot_pos``.  A bucket only activates when it
      holds the global minimum, at which point the simulated clock reaches
      its time; from then on only FIFO events (or, for pathological
      sub-resolution delays, a *new* bucket) can share that instant, and
      both carry later sequence numbers than anything already in the slot
      except where the pop comparison says otherwise.
    """

    #: True when hot-path event constructors (:class:`Timeout`) may write
    #: straight into this engine's scheduling tiers instead of calling
    #: :meth:`_schedule`.  Any subclass that overrides ``_schedule`` MUST
    #: set this to False, or constructors will bypass the override.
    _inline_schedule = True

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._fifo: deque[tuple[float, int, Event]] = deque()
        self._wheel: dict[float, list[tuple[int, Event]]] = {}
        self._wheel_times: list[float] = []
        self._slot: Optional[list[tuple[int, Event]]] = None
        self._slot_time = 0.0
        self._slot_pos = 0
        self._pending = 0
        self._counter = itertools.count()
        self._running = False
        #: Zero-delay-lane pops (deterministic fast-path counter).
        self.fifo_hits = 0
        #: Calendar-bucket pops (deterministic fast-path counter).
        self.wheel_hits = 0
        #: Failed, processed events whose exception nobody consumed yet.
        #: Insertion-ordered (dict) so diagnostics are deterministic.
        self._failures: dict[Event, FailureRecord] = {}
        #: Observability hook (duck-typed: repro.obs.trace.Tracer).  The
        #: kernel guards every hook call behind this single ``is not None``
        #: check, so an untraced simulation pays one attribute test per
        #: operation and allocates nothing.
        self.tracer: Optional[Any] = None
        # Instance-bound constructors: ``engine.timeout(...)`` and
        # ``engine.event()`` resolve to these C-level partials instead of
        # the method wrappers below, skipping one Python call frame on the
        # two hottest construction paths.  The methods remain on the class
        # as documentation and as the fallback for subclasses.
        self.timeout = functools.partial(Timeout, self)
        self.event = functools.partial(Event, self)

    # -- clock ------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def queue_depth(self) -> int:
        """Events scheduled but not yet dispatched, across all tiers."""
        return self._pending

    @property
    def wheel_depth(self) -> int:
        """Distinct future timestamps currently held in calendar buckets."""
        return len(self._wheel) + (1 if self._slot is not None else 0)

    # -- failure ledger -----------------------------------------------------
    @property
    def unconsumed_failures(self) -> List[FailureRecord]:
        """Records of failed events nobody has consumed or defused (a copy)."""
        return list(self._failures.values())

    def _record_failure(self, event: Event) -> None:
        exc = event._exception
        assert exc is not None
        tb_text = "".join(
            _traceback.format_exception(type(exc), exc, exc.__traceback__)
        ) if exc.__traceback__ is not None else ""
        self._failures[event] = FailureRecord(
            event_repr=repr(event),
            process_name=getattr(event, "name", None),
            time_s=self._now,
            exception=exc,
            traceback_text=tb_text,
        )
        if self.tracer is not None:
            self.tracer.on_failure_ledgered()

    def _discard_failure(self, event: Event) -> None:
        self._failures.pop(event, None)

    def check_failures(self) -> None:
        """Raise :class:`UnconsumedFailureError` if the ledger is non-empty.

        The raised records are removed from the ledger (they have been
        reported); callers that catch the diagnostic can keep running.
        """
        if self._failures:
            records = list(self._failures.values())
            self._failures.clear()
            raise UnconsumedFailureError(records)

    # -- event construction -------------------------------------------------
    def event(self) -> Event:
        """Create a new pending :class:`Event` bound to this engine."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event firing ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Composite event firing when any child fires."""
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Composite event firing when all children fired."""
        return AllOf(self, events)

    def spawn(self, generator: Generator[Event, Any, Any], name: str = "") -> "Process":
        """Start a new cooperating process from a generator.

        The generator yields :class:`Event` objects and is resumed with the
        event's value when it fires.  See :class:`repro.events.process.Process`.
        """
        from repro.events.process import Process

        return Process(self, generator, name=name)

    # alias matching SimPy-style code
    process = spawn

    # -- scheduling ---------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        if delay == 0.0:
            # Zero-delay lane: fire time is the current instant and the
            # sequence counter is monotone, so appending keeps the deque
            # sorted by (time, seq) with its minimum at the head.
            self._fifo.append((self._now, next(self._counter), event))
        else:
            when = self._now + delay
            bucket = self._wheel.get(when)
            if bucket is None:
                # Singleton bucket: a bare (seq, event) tuple.  Scattered
                # timestamps (the chaos-mix shape) never pay for a list;
                # one is only materialised when a second event lands on
                # the same instant.
                self._wheel[when] = (next(self._counter), event)
                heappush(self._wheel_times, when)
            elif type(bucket) is list:
                bucket.append((next(self._counter), event))
            else:
                self._wheel[when] = [bucket, (next(self._counter), event)]
        self._pending += 1
        if self.tracer is not None:
            self.tracer.on_event_scheduled(self._pending)

    def _activate_pop(self) -> tuple[float, Event]:
        """Pop the earliest calendar bucket's first event.

        The caller has already established that this bucket holds the
        global minimum.  A single-event bucket (the common shape for
        scattered timestamps) is consumed without touching the slot
        state at all; a multi-event bucket becomes the active slot with
        its read cursor past the entry returned here.
        """
        when = heappop(self._wheel_times)
        bucket = self._wheel.pop(when)
        self._pending -= 1
        self.wheel_hits += 1
        if type(bucket) is tuple:
            return when, bucket[1]
        self._slot = bucket
        self._slot_time = when
        self._slot_pos = 1
        return when, bucket[0][1]

    def call_at(self, when: float, callback: Callable[[], None]) -> Event:
        """Run ``callback()`` at absolute simulated time ``when``.

        Returns the scheduled event (a :class:`_Callback`): waiters may
        still append conventional callbacks to it, which run after
        ``callback`` itself, exactly as with the seed kernel's
        Timeout-plus-wrapper shape — but without allocating a closure per
        call.
        """
        if when < self._now:
            raise ValueError(f"cannot schedule in the past: {when} < {self._now}")
        return _Callback(self, when - self._now, callback)

    # -- execution ----------------------------------------------------------
    def step(self) -> None:
        """Process the single next event; raises IndexError when queue empty.

        A failed event that leaves processing with nobody having consumed
        its exception (and without being defused) enters the
        unconsumed-failure ledger; :meth:`run` raises a diagnostic if the
        simulation drains while the ledger is non-empty.

        The three scheduling tiers are merged by ``(time, seq)`` directly
        in this method — an active calendar slot can only be preempted by
        the FIFO lane (at the same instant with an older sequence number),
        the FIFO head competes with the earliest wheel bucket, and an
        empty queue raises exactly like the seed kernel's ``heappop``.
        """
        fifo = self._fifo
        slot = self._slot
        if slot is not None:
            pos = self._slot_pos
            entry = slot[pos]
            if fifo:
                head = fifo[0]
                slot_time = self._slot_time
                if head[0] < slot_time or (head[0] == slot_time
                                           and head[1] < entry[0]):
                    del fifo[0]
                    self._pending -= 1
                    self.fifo_hits += 1
                    when = head[0]
                    event = head[2]
                    entry = None
            if entry is not None:
                pos += 1
                if pos == len(slot):
                    self._slot = None
                else:
                    self._slot_pos = pos
                self._pending -= 1
                self.wheel_hits += 1
                when = self._slot_time
                event = entry[1]
        elif fifo:
            head = fifo[0]
            times = self._wheel_times
            take_fifo = True
            if times:
                wtime = times[0]
                if wtime < head[0]:
                    take_fifo = False
                elif wtime == head[0]:
                    bucket = self._wheel[wtime]
                    seq0 = bucket[0] if type(bucket) is tuple else bucket[0][0]
                    if seq0 < head[1]:
                        take_fifo = False
            if take_fifo:
                del fifo[0]
                self._pending -= 1
                self.fifo_hits += 1
                when = head[0]
                event = head[2]
            else:
                when, event = self._activate_pop()
        else:
            if not self._wheel_times:
                raise IndexError("pop from an empty event queue")
            when, event = self._activate_pop()
        self._now = when
        if self.tracer is not None:
            self.tracer.on_event_processed()
        if event._inline_callbacks:
            # Inlined Event._run_callbacks (the overwhelmingly common
            # shape): saves one Python call frame per processed event.
            event._processed = True
            callbacks = event.callbacks
            event.callbacks = _PROCESSED_CALLBACKS
            for callback in callbacks:
                callback(event)
        else:
            event._run_callbacks()
        if event._exception is not None and not event._defused:
            self._record_failure(event)

    def peek(self) -> float:
        """Time of the next scheduled event, or ``float('inf')`` if none."""
        if self._slot is not None:
            # An active slot is always at (or tied with) the minimum: its
            # time is the instant currently being drained.
            return self._slot_time
        best = self._fifo[0][0] if self._fifo else float("inf")
        if self._wheel_times and self._wheel_times[0] < best:
            return self._wheel_times[0]
        return best

    def run(self, until: Optional[float] = None) -> None:
        """Run the event loop.

        Parameters
        ----------
        until:
            Absolute simulated time at which to stop.  ``None`` runs until
            the event queue drains.  When stopping on ``until`` the clock is
            advanced exactly to ``until`` even if no event fires there.

        Raises
        ------
        UnconsumedFailureError
            When the event queue fully drains while failed events remain
            unconsumed (see the class docstring).  A run cut short by
            ``until`` with events still queued does not raise — a later
            waiter may still legitimately consume the failure.
        """
        if self._running:
            raise SimulationError("engine is already running")
        self._running = True
        try:
            step = self.step
            if until is None:
                while self._pending:
                    step()
            else:
                peek = self.peek
                while self._pending and peek() <= until:
                    step()
                if self._now < until:
                    self._now = until
            if not self._pending:
                self.check_failures()
        finally:
            self._running = False

    def run_until_complete(self, process: "Event", limit: float = 1e12) -> Any:
        """Run until ``process`` has fired, returning its value.

        ``limit`` bounds runaway simulations; exceeding it raises
        :class:`SimulationError`.  (The seed kernel computed ``peek()``
        twice per drain iteration; here each loop reads the next fire time
        exactly once.)
        """
        step = self.step
        peek = self.peek
        while not process.triggered:
            if not self._pending:
                raise SimulationError("deadlock: event queue drained before process finished")
            if peek() > limit:
                raise SimulationError(f"simulation exceeded time limit {limit}")
            step()
        # drain the zero-delay callbacks so the process is fully processed
        while not process.processed and self._pending and peek() <= self._now:
            step()
        return process.value  # a failed process raises here (and is defused)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Engine t={self._now:.6f} queued={self._pending}>"
