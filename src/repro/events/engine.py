"""Deterministic discrete-event simulation engine.

The engine keeps a priority queue of :class:`Event` objects keyed by
``(time, sequence)``.  The sequence number is a monotonically increasing
counter, so two events scheduled for the same simulated timestamp fire in the
order they were scheduled.  Determinism is a hard requirement for this
project: the whole benchmark harness asserts on simulated measurements, and a
non-deterministic kernel would make the reproduction unfalsifiable.

The API is intentionally close to SimPy's (``env.timeout``, ``env.process``)
so the simulation code reads like standard discrete-event Python, but the
implementation is from scratch — no third-party simulation dependency is
used anywhere in the repository.

Observability: an :class:`Engine` optionally carries a tracer
(:mod:`repro.obs`) in its ``tracer`` attribute.  Every kernel hook is
guarded by a single ``is not None`` test, so tracing costs nothing when
disabled; when enabled, the tracer sees events scheduled/processed, heap
depth, failure-ledger traffic, and the full process lifecycle as spans.
"""

from __future__ import annotations

import heapq
import itertools
import traceback as _traceback
from dataclasses import dataclass
from typing import Any, Callable, Generator, Iterable, List, Optional

__all__ = ["Engine", "Event", "SimulationError", "UnconsumedFailureError",
           "FailureRecord", "Timeout", "AnyOf", "AllOf"]


class SimulationError(RuntimeError):
    """Raised for kernel-level misuse (double trigger, running twice, ...)."""


@dataclass(frozen=True)
class FailureRecord:
    """One failed event whose exception nobody consumed or defused.

    ``process_name`` is filled in when the failed event is a
    :class:`~repro.events.process.Process` (the common case: a crashed or
    force-killed simulation actor); for plain events it is ``None`` and
    ``event_repr`` identifies the source.
    """

    event_repr: str
    process_name: Optional[str]
    time_s: float
    exception: BaseException
    traceback_text: str

    def describe(self) -> str:
        """Multi-line human-readable account of the lost failure."""
        origin = (f"process {self.process_name!r}" if self.process_name
                  else self.event_repr)
        lines = [f"{self.exception!r} from {origin} at t={self.time_s:.6f}"]
        if self.traceback_text:
            lines.extend("    " + line
                         for line in self.traceback_text.rstrip().splitlines())
        return "\n".join(lines)


class UnconsumedFailureError(SimulationError):
    """The simulation drained while failed events were still unconsumed.

    Every failed :class:`Event` must either be *consumed* (its exception
    delivered to at least one waiter — a process that yielded it, a
    condition that absorbed it, or a caller reading ``event.value``) or
    explicitly *defused* via :meth:`Event.defuse`.  Anything else is a
    fault the simulation silently lost, which would make fault-injection
    tests pass vacuously — so :meth:`Engine.run` raises this diagnostic
    when the queue drains with live failures in the ledger.
    """

    def __init__(self, records: List[FailureRecord]) -> None:
        self.records = list(records)
        details = "\n".join("  - " + record.describe().replace("\n", "\n  ")
                            for record in self.records)
        super().__init__(
            f"{len(self.records)} unconsumed failure(s) when the simulation "
            f"drained — every failed event must be waited on or explicitly "
            f"defused (Event.defuse()):\n{details}")


class _ProcessedCallbacks(list):
    """Sentinel callback list installed once an event has been processed.

    Appending a callback to an already-processed event is a silent no-op in
    a naive kernel (the callback never runs); here it raises immediately so
    the bug surfaces at the call site.  Waiting on a processed event is
    still supported through the kernel APIs: ``yield event`` inside a
    process resumes immediately, and conditions absorb processed children.
    """

    def _reject(self, *_args: Any) -> None:
        raise SimulationError(
            f"cannot add a callback to the already-processed {self.event!r}; "
            f"it would never run. Wait on events via yield/spawn/any_of/"
            f"all_of (which handle processed events), or engine.call_at for "
            f"plain scheduling")

    def __init__(self, event: "Event") -> None:
        super().__init__()
        self.event = event

    append = extend = insert = _reject


class Event:
    """A one-shot occurrence in simulated time.

    An event starts *pending*, becomes *triggered* once given a value (or an
    exception) and a fire time, and is *processed* after all callbacks ran.
    Processes waiting on the event are resumed through its callback list.

    Failure accounting: a *failed* event (one triggered via :meth:`fail`)
    must have its exception consumed by a waiter or be explicitly
    :meth:`defuse`\\ d; otherwise the engine's unconsumed-failure ledger
    reports it when the simulation drains (:class:`UnconsumedFailureError`).
    """

    __slots__ = ("engine", "callbacks", "_value", "_exception", "_triggered",
                 "_processed", "_defused")

    def __init__(self, engine: "Engine") -> None:
        self.engine = engine
        self.callbacks: list[Callable[["Event"], None]] = []
        self._value: Any = None
        self._exception: Optional[BaseException] = None
        self._triggered = False
        self._processed = False
        self._defused = False

    # -- state ------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """True once all callbacks have run."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True when the event carries a value rather than an exception."""
        return self._triggered and self._exception is None

    @property
    def defused(self) -> bool:
        """True once the event's failure has been consumed or defused."""
        return self._defused

    @property
    def value(self) -> Any:
        """The event payload; raises if the event failed.

        Reading the value of a failed event delivers the exception to the
        caller, which counts as consuming the failure.
        """
        if self._exception is not None:
            self.defuse()
            raise self._exception
        return self._value

    def defuse(self) -> None:
        """Mark this event's failure as intentionally handled.

        Consumption points inside the kernel (a process resuming with the
        exception, a condition absorbing a child failure, ``value`` raising
        to a caller) call this automatically; user code calls it for
        fire-and-forget failures that are genuinely expected to go
        unobserved.  Defusing a successful event is a harmless no-op.
        """
        if (self._exception is not None and not self._defused
                and self.engine.tracer is not None):
            self.engine.tracer.on_failure_defused()
        self._defused = True
        self.engine._discard_failure(self)

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value`` at the current time."""
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self._value = value
        self.engine._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception delivered to waiters."""
        if self._triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        self._triggered = True
        self._exception = exception
        self.engine._schedule(self)
        return self

    def _run_callbacks(self) -> None:
        self._processed = True
        callbacks, self.callbacks = self.callbacks, _ProcessedCallbacks(self)
        for callback in callbacks:
            callback(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "processed" if self._processed else ("triggered" if self._triggered else "pending")
        return f"<{type(self).__name__} {state} at t={self.engine.now:.6f}>"


class Timeout(Event):
    """An event that fires a fixed delay after creation."""

    __slots__ = ("delay",)

    def __init__(self, engine: "Engine", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(engine)
        self.delay = float(delay)
        self._triggered = True
        self._value = value
        engine._schedule(self, delay=self.delay)


class _Condition(Event):
    """Base for AnyOf/AllOf composite events."""

    __slots__ = ("events", "_n_fired")

    def __init__(self, engine: "Engine", events: Iterable[Event]) -> None:
        super().__init__(engine)
        self.events = list(events)
        self._n_fired = 0
        if not self.events:
            self.succeed({})
            return
        for event in self.events:
            if event.processed:
                self._on_fire(event)
            else:
                event.callbacks.append(self._on_fire)

    def _collect(self) -> dict[Event, Any]:
        return {e: e._value for e in self.events if e.triggered and e._exception is None}

    def _on_fire(self, event: Event) -> None:
        raise NotImplementedError


class AnyOf(_Condition):
    """Fires when the first of its child events fires.

    A child that fails *after* the condition already resolved is not
    silently swallowed: its exception stays unconsumed and surfaces through
    the engine's failure ledger unless some other waiter (or an explicit
    ``defuse()``) handles it.
    """

    __slots__ = ()

    def _on_fire(self, event: Event) -> None:
        if self._triggered:
            # Late child outcome.  A late success is simply ignored; a late
            # failure must not vanish — leave it to the unconsumed-failure
            # ledger rather than defusing it here.
            return
        if event._exception is not None:
            event.defuse()  # absorbed: the condition now carries the failure
            self.fail(event._exception)
        else:
            self.succeed(self._collect())


class AllOf(_Condition):
    """Fires when every child event has fired.

    Like :class:`AnyOf`, a child failing after the condition has already
    resolved (e.g. a second failure once the first aborted the condition)
    flows into the unconsumed-failure ledger instead of vanishing.
    """

    __slots__ = ()

    def _on_fire(self, event: Event) -> None:
        if self._triggered:
            return
        if event._exception is not None:
            event.defuse()  # absorbed: the condition now carries the failure
            self.fail(event._exception)
            return
        self._n_fired += 1
        if self._n_fired == len(self.events):
            self.succeed(self._collect())


class Engine:
    """The simulation event loop.

    Parameters
    ----------
    start:
        Initial simulated time, in seconds.  Defaults to ``0.0``.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._queue: list[tuple[float, int, Event]] = []
        self._counter = itertools.count()
        self._running = False
        #: Failed, processed events whose exception nobody consumed yet.
        #: Insertion-ordered (dict) so diagnostics are deterministic.
        self._failures: dict[Event, FailureRecord] = {}
        #: Observability hook (duck-typed: repro.obs.trace.Tracer).  The
        #: kernel guards every hook call behind this single ``is not None``
        #: check, so an untraced simulation pays one attribute test per
        #: operation and allocates nothing.
        self.tracer: Optional[Any] = None

    # -- clock ------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- failure ledger -----------------------------------------------------
    @property
    def unconsumed_failures(self) -> List[FailureRecord]:
        """Records of failed events nobody has consumed or defused (a copy)."""
        return list(self._failures.values())

    def _record_failure(self, event: Event) -> None:
        exc = event._exception
        assert exc is not None
        tb_text = "".join(
            _traceback.format_exception(type(exc), exc, exc.__traceback__)
        ) if exc.__traceback__ is not None else ""
        self._failures[event] = FailureRecord(
            event_repr=repr(event),
            process_name=getattr(event, "name", None),
            time_s=self._now,
            exception=exc,
            traceback_text=tb_text,
        )
        if self.tracer is not None:
            self.tracer.on_failure_ledgered()

    def _discard_failure(self, event: Event) -> None:
        self._failures.pop(event, None)

    def check_failures(self) -> None:
        """Raise :class:`UnconsumedFailureError` if the ledger is non-empty.

        The raised records are removed from the ledger (they have been
        reported); callers that catch the diagnostic can keep running.
        """
        if self._failures:
            records = list(self._failures.values())
            self._failures.clear()
            raise UnconsumedFailureError(records)

    # -- event construction -------------------------------------------------
    def event(self) -> Event:
        """Create a new pending :class:`Event` bound to this engine."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event firing ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Composite event firing when any child fires."""
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Composite event firing when all children fired."""
        return AllOf(self, events)

    def spawn(self, generator: Generator[Event, Any, Any], name: str = "") -> "Process":
        """Start a new cooperating process from a generator.

        The generator yields :class:`Event` objects and is resumed with the
        event's value when it fires.  See :class:`repro.events.process.Process`.
        """
        from repro.events.process import Process

        return Process(self, generator, name=name)

    # alias matching SimPy-style code
    process = spawn

    # -- scheduling ---------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        heapq.heappush(self._queue, (self._now + delay, next(self._counter), event))
        if self.tracer is not None:
            self.tracer.on_event_scheduled(len(self._queue))

    def call_at(self, when: float, callback: Callable[[], None]) -> Event:
        """Run ``callback()`` at absolute simulated time ``when``."""
        if when < self._now:
            raise ValueError(f"cannot schedule in the past: {when} < {self._now}")
        event = Timeout(self, when - self._now)
        event.callbacks.append(lambda _e: callback())
        return event

    # -- execution ----------------------------------------------------------
    def step(self) -> None:
        """Process the single next event; raises IndexError when queue empty.

        A failed event that leaves processing with nobody having consumed
        its exception (and without being defused) enters the
        unconsumed-failure ledger; :meth:`run` raises a diagnostic if the
        simulation drains while the ledger is non-empty.
        """
        when, _seq, event = heapq.heappop(self._queue)
        self._now = when
        if self.tracer is not None:
            self.tracer.on_event_processed()
        event._run_callbacks()
        if event._exception is not None and not event._defused:
            self._record_failure(event)

    def peek(self) -> float:
        """Time of the next scheduled event, or ``float('inf')`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def run(self, until: Optional[float] = None) -> None:
        """Run the event loop.

        Parameters
        ----------
        until:
            Absolute simulated time at which to stop.  ``None`` runs until
            the event queue drains.  When stopping on ``until`` the clock is
            advanced exactly to ``until`` even if no event fires there.

        Raises
        ------
        UnconsumedFailureError
            When the event queue fully drains while failed events remain
            unconsumed (see the class docstring).  A run cut short by
            ``until`` with events still queued does not raise — a later
            waiter may still legitimately consume the failure.
        """
        if self._running:
            raise SimulationError("engine is already running")
        self._running = True
        try:
            while self._queue:
                when = self._queue[0][0]
                if until is not None and when > until:
                    break
                self.step()
            if until is not None and self._now < until:
                self._now = until
            if not self._queue:
                self.check_failures()
        finally:
            self._running = False

    def run_until_complete(self, process: "Event", limit: float = 1e12) -> Any:
        """Run until ``process`` has fired, returning its value.

        ``limit`` bounds runaway simulations; exceeding it raises
        :class:`SimulationError`.
        """
        while not process.triggered:
            if not self._queue:
                raise SimulationError("deadlock: event queue drained before process finished")
            if self.peek() > limit:
                raise SimulationError(f"simulation exceeded time limit {limit}")
            self.step()
        # drain the zero-delay callbacks so the process is fully processed
        while not process.processed and self._queue and self.peek() <= self._now:
            self.step()
        return process.value  # a failed process raises here (and is defused)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Engine t={self._now:.6f} queued={len(self._queue)}>"
