"""Deterministic discrete-event simulation engine.

The engine keeps a priority queue of :class:`Event` objects keyed by
``(time, sequence)``.  The sequence number is a monotonically increasing
counter, so two events scheduled for the same simulated timestamp fire in the
order they were scheduled.  Determinism is a hard requirement for this
project: the whole benchmark harness asserts on simulated measurements, and a
non-deterministic kernel would make the reproduction unfalsifiable.

The API is intentionally close to SimPy's (``env.timeout``, ``env.process``)
so the simulation code reads like standard discrete-event Python, but the
implementation is from scratch — no third-party simulation dependency is
used anywhere in the repository.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = ["Engine", "Event", "SimulationError", "Timeout", "AnyOf", "AllOf"]


class SimulationError(RuntimeError):
    """Raised for kernel-level misuse (double trigger, running twice, ...)."""


class Event:
    """A one-shot occurrence in simulated time.

    An event starts *pending*, becomes *triggered* once given a value (or an
    exception) and a fire time, and is *processed* after all callbacks ran.
    Processes waiting on the event are resumed through its callback list.
    """

    __slots__ = ("engine", "callbacks", "_value", "_exception", "_triggered", "_processed")

    def __init__(self, engine: "Engine") -> None:
        self.engine = engine
        self.callbacks: list[Callable[["Event"], None]] = []
        self._value: Any = None
        self._exception: Optional[BaseException] = None
        self._triggered = False
        self._processed = False

    # -- state ------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """True once all callbacks have run."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True when the event carries a value rather than an exception."""
        return self._triggered and self._exception is None

    @property
    def value(self) -> Any:
        """The event payload; raises if the event failed."""
        if self._exception is not None:
            raise self._exception
        return self._value

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value`` at the current time."""
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self._value = value
        self.engine._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception delivered to waiters."""
        if self._triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        self._triggered = True
        self._exception = exception
        self.engine._schedule(self)
        return self

    def _run_callbacks(self) -> None:
        self._processed = True
        callbacks, self.callbacks = self.callbacks, []
        for callback in callbacks:
            callback(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "processed" if self._processed else ("triggered" if self._triggered else "pending")
        return f"<{type(self).__name__} {state} at t={self.engine.now:.6f}>"


class Timeout(Event):
    """An event that fires a fixed delay after creation."""

    __slots__ = ("delay",)

    def __init__(self, engine: "Engine", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(engine)
        self.delay = float(delay)
        self._triggered = True
        self._value = value
        engine._schedule(self, delay=self.delay)


class _Condition(Event):
    """Base for AnyOf/AllOf composite events."""

    __slots__ = ("events", "_n_fired")

    def __init__(self, engine: "Engine", events: Iterable[Event]) -> None:
        super().__init__(engine)
        self.events = list(events)
        self._n_fired = 0
        if not self.events:
            self.succeed({})
            return
        for event in self.events:
            if event.processed:
                self._on_fire(event)
            else:
                event.callbacks.append(self._on_fire)

    def _collect(self) -> dict[Event, Any]:
        return {e: e._value for e in self.events if e.triggered and e._exception is None}

    def _on_fire(self, event: Event) -> None:
        raise NotImplementedError


class AnyOf(_Condition):
    """Fires when the first of its child events fires."""

    __slots__ = ()

    def _on_fire(self, event: Event) -> None:
        if self._triggered:
            return
        if event._exception is not None:
            self.fail(event._exception)
        else:
            self.succeed(self._collect())


class AllOf(_Condition):
    """Fires when every child event has fired."""

    __slots__ = ()

    def _on_fire(self, event: Event) -> None:
        if self._triggered:
            return
        if event._exception is not None:
            self.fail(event._exception)
            return
        self._n_fired += 1
        if self._n_fired == len(self.events):
            self.succeed(self._collect())


class Engine:
    """The simulation event loop.

    Parameters
    ----------
    start:
        Initial simulated time, in seconds.  Defaults to ``0.0``.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._queue: list[tuple[float, int, Event]] = []
        self._counter = itertools.count()
        self._running = False

    # -- clock ------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- event construction -------------------------------------------------
    def event(self) -> Event:
        """Create a new pending :class:`Event` bound to this engine."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event firing ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Composite event firing when any child fires."""
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Composite event firing when all children fired."""
        return AllOf(self, events)

    def spawn(self, generator: Generator[Event, Any, Any], name: str = "") -> "Process":
        """Start a new cooperating process from a generator.

        The generator yields :class:`Event` objects and is resumed with the
        event's value when it fires.  See :class:`repro.events.process.Process`.
        """
        from repro.events.process import Process

        return Process(self, generator, name=name)

    # alias matching SimPy-style code
    process = spawn

    # -- scheduling ---------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        heapq.heappush(self._queue, (self._now + delay, next(self._counter), event))

    def call_at(self, when: float, callback: Callable[[], None]) -> Event:
        """Run ``callback()`` at absolute simulated time ``when``."""
        if when < self._now:
            raise ValueError(f"cannot schedule in the past: {when} < {self._now}")
        event = Timeout(self, when - self._now)
        event.callbacks.append(lambda _e: callback())
        return event

    # -- execution ----------------------------------------------------------
    def step(self) -> None:
        """Process the single next event; raises IndexError when queue empty."""
        when, _seq, event = heapq.heappop(self._queue)
        self._now = when
        event._run_callbacks()

    def peek(self) -> float:
        """Time of the next scheduled event, or ``float('inf')`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def run(self, until: Optional[float] = None) -> None:
        """Run the event loop.

        Parameters
        ----------
        until:
            Absolute simulated time at which to stop.  ``None`` runs until
            the event queue drains.  When stopping on ``until`` the clock is
            advanced exactly to ``until`` even if no event fires there.
        """
        if self._running:
            raise SimulationError("engine is already running")
        self._running = True
        try:
            while self._queue:
                when = self._queue[0][0]
                if until is not None and when > until:
                    break
                self.step()
            if until is not None and self._now < until:
                self._now = until
        finally:
            self._running = False

    def run_until_complete(self, process: "Event", limit: float = 1e12) -> Any:
        """Run until ``process`` has fired, returning its value.

        ``limit`` bounds runaway simulations; exceeding it raises
        :class:`SimulationError`.
        """
        while not process.triggered:
            if not self._queue:
                raise SimulationError("deadlock: event queue drained before process finished")
            if self.peek() > limit:
                raise SimulationError(f"simulation exceeded time limit {limit}")
            self.step()
        # drain the zero-delay callbacks so the process is fully processed
        while not process.processed and self._queue and self.peek() <= self._now:
            self.step()
        return process.value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Engine t={self._now:.6f} queued={len(self._queue)}>"
