"""Discrete-event simulation kernel.

This package provides the simulation substrate every other subsystem of the
Monte Cimone reproduction is built on: a deterministic event loop
(:class:`~repro.events.engine.Engine`), generator-based cooperating processes
(:class:`~repro.events.process.Process`), and shared resources
(:mod:`repro.events.resources`).

The kernel is intentionally small and fully deterministic: events scheduled
for the same timestamp are dispatched in insertion order, which makes every
simulation in the test-suite and benchmark harness exactly reproducible.

Example
-------
>>> from repro.events import Engine
>>> eng = Engine()
>>> log = []
>>> def worker(env):
...     yield env.timeout(1.5)
...     log.append(env.now)
>>> eng.spawn(worker(eng))
Process(...)
>>> eng.run(until=10.0)
>>> log
[1.5]
"""

from repro.events.engine import (AllOf, AnyOf, Engine, Event, FailureRecord,
                                 SimulationError, Timeout,
                                 UnconsumedFailureError)
from repro.events.process import Interrupt, Process
from repro.events.resources import Container, Resource, Store

__all__ = [
    "AllOf",
    "AnyOf",
    "Container",
    "Engine",
    "Event",
    "FailureRecord",
    "Interrupt",
    "Process",
    "Resource",
    "SimulationError",
    "Store",
    "Timeout",
    "UnconsumedFailureError",
]
