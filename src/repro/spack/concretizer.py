"""The concretizer: abstract spec → concrete dependency DAG.

Implements the Spack 0.17 "original concretizer" behaviour class:

* versions: newest version satisfying all constraints wins;
* dependencies: recipe edges are followed recursively; user ``^spec``
  constraints are merged into the matching dependency node;
* unification: one node per package name in a DAG (the classic Spack
  invariant), so conflicting constraints on a shared dependency are a
  :class:`ConcretizationError`;
* defaults: compiler and target propagate from the root (falling back to
  site defaults: gcc@10.3.0 on u74mc — the Monte Cimone deployment).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.spack.package import PackageDefinition
from repro.spack.repo import Repository, builtin_repo
from repro.spack.spec import Spec
from repro.spack.version import VersionRange

__all__ = ["Concretizer", "ConcretizationError"]


class ConcretizationError(RuntimeError):
    """Unsatisfiable constraints, unknown packages, dependency cycles."""


class Concretizer:
    """Resolves abstract specs against a repository."""

    DEFAULT_COMPILER = "gcc"
    DEFAULT_COMPILER_VERSION = "10.3.0"
    DEFAULT_TARGET = "u74mc"

    def __init__(self, repo: Optional[Repository] = None,
                 default_target: str = DEFAULT_TARGET,
                 default_compiler_version: str = DEFAULT_COMPILER_VERSION) -> None:
        self.repo = repo if repo is not None else builtin_repo()
        self.default_target = default_target
        self.default_compiler_version = default_compiler_version

    def concretize(self, abstract: Spec) -> Spec:
        """Produce a fully concrete copy of ``abstract``.

        Raises
        ------
        ConcretizationError
            On unknown packages, version conflicts, or cycles.
        """
        user_constraints = dict(abstract.dependencies)
        nodes: Dict[str, Spec] = {}
        self._build_node(abstract, user_constraints, nodes, stack=())
        root = nodes[abstract.name]
        # Unused ^constraints indicate a typo or a package outside the DAG.
        for name in user_constraints:
            if name not in nodes:
                raise ConcretizationError(
                    f"^{name} does not appear in {abstract.name}'s "
                    f"dependency graph")
        return root

    # -- internals ---------------------------------------------------------
    def _build_node(self, request: Spec, user: Dict[str, Spec],
                    nodes: Dict[str, Spec], stack: tuple[str, ...]) -> Spec:
        name = request.name
        if name in stack:
            cycle = " -> ".join(stack + (name,))
            raise ConcretizationError(f"dependency cycle: {cycle}")
        try:
            definition = self.repo.get(name)
        except KeyError as exc:
            raise ConcretizationError(str(exc)) from exc

        if name in nodes:
            node = nodes[name]
            self._merge(node, request, definition)
            return node

        node = Spec(name=name)
        nodes[name] = node
        self._merge(node, request, definition)
        if name in user and user[name] is not request:
            self._merge(node, user[name], definition)

        # Fill defaults.
        if node.target is None:
            node.target = self.default_target
        if node.compiler is None and name != "gcc":
            node.compiler = self.DEFAULT_COMPILER
            node.compiler_version = VersionRange.exact(
                self.default_compiler_version)
        for variant, default in definition.variants.items():
            node.variants.setdefault(variant, default)

        # Pin the version: newest satisfying the accumulated range.
        version = definition.preferred_version(node.versions)
        if version is None:
            raise ConcretizationError(
                f"{name}: no version satisfies {node.versions} "
                f"(available: {', '.join(definition.versions)})")
        node.versions = VersionRange.exact(version)

        # Recurse into recipe dependencies (build deps too: Spack installs
        # them, they just stay out of the link closure).
        for dep in definition.dependencies:
            dep_request = Spec(name=dep.name, versions=dep.constraint,
                               target=node.target, compiler=node.compiler,
                               compiler_version=node.compiler_version)
            child = self._build_node(dep_request, user, nodes, stack + (name,))
            node.dependencies[dep.name] = child
        return node

    def _merge(self, node: Spec, request: Spec,
               definition: PackageDefinition) -> None:
        for variant in request.variants:
            if variant not in definition.variants:
                raise ConcretizationError(
                    f"{node.name} has no variant {variant!r}")
        try:
            node.constrain(request)
        except ValueError as exc:
            raise ConcretizationError(str(exc)) from exc
