"""The Spack spec language: abstract and concrete specs.

A spec names a package with optional constraints::

    hpl@2.3 +openmp %gcc@10.3.0 target=u74mc ^openblas@0.3.18

* ``@ver`` or ``@low:high`` — version constraint;
* ``+variant`` / ``~variant`` — boolean variants;
* ``%compiler[@ver]`` — compiler request;
* ``target=...`` — microarchitecture target;
* ``^spec`` — constraint on a (transitive) dependency.

A spec is *concrete* when its version is exact, its target and compiler
are fixed and every dependency is itself concrete; only the concretizer
produces concrete specs.
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.spack.version import Version, VersionRange

__all__ = ["Spec", "SpecParseError"]

_NAME_RE = re.compile(r"^[a-z0-9][a-z0-9\-]*$")


class SpecParseError(ValueError):
    """Malformed spec string."""


@dataclass
class Spec:
    """One node of a spec expression."""

    name: str
    versions: VersionRange = field(default_factory=VersionRange)
    variants: Dict[str, bool] = field(default_factory=dict)
    compiler: Optional[str] = None
    compiler_version: Optional[VersionRange] = None
    target: Optional[str] = None
    dependencies: Dict[str, "Spec"] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not _NAME_RE.match(self.name):
            raise SpecParseError(f"invalid package name {self.name!r}")

    # -- parsing -----------------------------------------------------------
    @classmethod
    def parse(cls, text: str) -> "Spec":
        """Parse a spec string (see module docstring for the grammar)."""
        parts = text.split("^")
        root = cls._parse_single(parts[0])
        for dep_text in parts[1:]:
            dep = cls._parse_single(dep_text)
            root.dependencies[dep.name] = dep
        return root

    @classmethod
    def _parse_single(cls, text: str) -> "Spec":
        tokens = text.split()
        if not tokens:
            raise SpecParseError(f"empty spec in {text!r}")
        head = tokens[0]
        match = re.match(r"^([a-z0-9\-]+)(@([^\s%+~]+))?$", head)
        if not match:
            raise SpecParseError(f"cannot parse spec head {head!r}")
        spec = cls(name=match.group(1))
        if match.group(3):
            spec.versions = VersionRange.parse(match.group(3))
        for token in tokens[1:]:
            if token.startswith("+"):
                spec.variants[token[1:]] = True
            elif token.startswith("~") or token.startswith("-"):
                spec.variants[token[1:]] = False
            elif token.startswith("%"):
                comp = token[1:]
                if "@" in comp:
                    name, ver = comp.split("@", 1)
                    spec.compiler = name
                    spec.compiler_version = VersionRange.parse(ver)
                else:
                    spec.compiler = comp
            elif token.startswith("target="):
                spec.target = token[len("target="):]
            else:
                raise SpecParseError(f"unrecognised spec token {token!r}")
        return spec

    # -- properties ---------------------------------------------------------
    @property
    def version(self) -> Version:
        """The exact version; only valid on concrete specs."""
        if self.versions.exact_version is None:
            raise ValueError(f"spec {self.name} is not concrete")
        return self.versions.exact_version

    @property
    def is_concrete(self) -> bool:
        """Whether this node and all dependencies are fully pinned."""
        if self.versions.exact_version is None or self.target is None:
            return False
        if self.name != "gcc" and self.compiler is None:
            return False
        return all(dep.is_concrete for dep in self.dependencies.values())

    def dag_hash(self) -> str:
        """Spack-style short hash identifying the concrete DAG node."""
        if not self.is_concrete:
            raise ValueError(f"cannot hash abstract spec {self.name}")
        payload = self.format() + "|" + "|".join(
            self.dependencies[d].dag_hash() for d in sorted(self.dependencies))
        return hashlib.sha256(payload.encode()).hexdigest()[:7]

    def traverse(self, seen: Optional[set[str]] = None) -> List["Spec"]:
        """Post-order traversal (dependencies before dependents)."""
        seen = seen if seen is not None else set()
        order: List[Spec] = []
        for dep in sorted(self.dependencies.values(), key=lambda s: s.name):
            if dep.name not in seen:
                order.extend(dep.traverse(seen))
        if self.name not in seen:
            seen.add(self.name)
            order.append(self)
        return order

    def constrain(self, other: "Spec") -> None:
        """Merge ``other``'s constraints into this spec (same package)."""
        if other.name != self.name:
            raise ValueError(f"cannot constrain {self.name} with {other.name}")
        if not self.versions.intersects(other.versions):
            raise ValueError(
                f"conflicting versions for {self.name}: "
                f"{self.versions} vs {other.versions}")
        if other.versions.exact_version is not None:
            self.versions = other.versions
        elif other.versions.low or other.versions.high:
            self.versions = other.versions if self.versions.exact_version is None else self.versions
        for variant, value in other.variants.items():
            if self.variants.get(variant, value) != value:
                raise ValueError(f"conflicting variant {variant!r} on {self.name}")
            self.variants[variant] = value
        if other.compiler is not None:
            self.compiler = other.compiler
            if other.compiler_version is not None:
                self.compiler_version = other.compiler_version
        if other.target is not None:
            self.target = other.target

    def format(self) -> str:
        """Render this node (without dependencies) as a spec string."""
        parts = [self.name]
        if self.versions.exact_version is not None or self.versions.low or self.versions.high:
            parts[0] += f"@{self.versions}"
        for variant in sorted(self.variants):
            parts.append(("+" if self.variants[variant] else "~") + variant)
        if self.compiler:
            comp = f"%{self.compiler}"
            if self.compiler_version is not None:
                comp += f"@{self.compiler_version}"
            parts.append(comp)
        if self.target:
            parts.append(f"target={self.target}")
        return " ".join(parts)

    def __str__(self) -> str:
        rendered = [self.format()]
        rendered.extend(f"^{self.dependencies[d].format()}"
                        for d in sorted(self.dependencies))
        return " ".join(rendered)
