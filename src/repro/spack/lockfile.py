"""spack.lock-style environment lockfiles.

Reproducible deployments pin the *concretized* DAG, not the abstract
specs: Spack writes ``spack.lock`` JSON mapping each root to its concrete
spec closure.  This module serialises concretized environments to that
shape and rebuilds concrete :class:`~repro.spack.spec.Spec` DAGs from it,
so a Monte Cimone deployment can be reproduced bit-for-bit (same versions,
same hashes) on another instance of the simulator — or audited in git.
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.spack.spec import Spec
from repro.spack.version import VersionRange

__all__ = ["write_lockfile", "read_lockfile", "LockfileError"]

_FORMAT_VERSION = 1


class LockfileError(ValueError):
    """Malformed or incompatible lockfile content."""


def _node_record(spec: Spec) -> Dict:
    return {
        "name": spec.name,
        "version": str(spec.version),
        "compiler": (f"{spec.compiler}@{spec.compiler_version}"
                     if spec.compiler else None),
        "target": spec.target,
        "variants": dict(spec.variants),
        "dependencies": {name: dep.dag_hash()
                         for name, dep in sorted(spec.dependencies.items())},
        "hash": spec.dag_hash(),
    }


def write_lockfile(roots: List[Spec]) -> str:
    """Serialise concretized roots (and their closures) to lock JSON."""
    nodes: Dict[str, Dict] = {}
    root_hashes = []
    for root in roots:
        if not root.is_concrete:
            raise LockfileError(f"root {root.name!r} is not concrete")
        root_hashes.append(root.dag_hash())
        for node in root.traverse():
            nodes[node.dag_hash()] = _node_record(node)
    payload = {
        "_meta": {"file-type": "repro-spack-lockfile",
                  "lockfile-version": _FORMAT_VERSION},
        "roots": root_hashes,
        "concrete_specs": nodes,
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def read_lockfile(text: str) -> List[Spec]:
    """Rebuild the concrete root specs from lock JSON.

    The reconstructed DAG shares nodes exactly as the original did, and
    every node's recomputed hash must equal its recorded hash — a
    tamper/corruption check.
    """
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise LockfileError(f"not JSON: {exc}") from exc
    meta = payload.get("_meta", {})
    if meta.get("file-type") != "repro-spack-lockfile":
        raise LockfileError("not a repro-spack lockfile")
    if meta.get("lockfile-version") != _FORMAT_VERSION:
        raise LockfileError(
            f"unsupported lockfile version {meta.get('lockfile-version')}")

    records = payload["concrete_specs"]
    built: Dict[str, Spec] = {}

    def build(node_hash: str) -> Spec:
        if node_hash in built:
            return built[node_hash]
        if node_hash not in records:
            raise LockfileError(f"dangling dependency hash {node_hash}")
        record = records[node_hash]
        spec = Spec(name=record["name"],
                    versions=VersionRange.exact(record["version"]),
                    variants=dict(record["variants"]),
                    target=record["target"])
        if record["compiler"]:
            compiler_name, _, compiler_version = record["compiler"].partition("@")
            spec.compiler = compiler_name
            spec.compiler_version = VersionRange.exact(compiler_version)
        built[node_hash] = spec
        for dep_name, dep_hash in record["dependencies"].items():
            spec.dependencies[dep_name] = build(dep_hash)
        if spec.dag_hash() != node_hash:
            raise LockfileError(
                f"hash mismatch for {spec.name}: recorded {node_hash}, "
                f"recomputed {spec.dag_hash()} (corrupted lockfile?)")
        return spec

    return [build(h) for h in payload["roots"]]
