"""The Monte Cimone production environment: the Table I stack.

A Spack environment is a named list of root specs concretized and
installed together.  :data:`MONTE_CIMONE_STACK` is Table I verbatim —
the nine user-facing packages at the paper's versions; installing the
environment pulls in the transitive dependencies (omitted from the
paper's table "for brevity") and registers one module per package.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.spack.concretizer import Concretizer
from repro.spack.installer import Installer, InstallRecord
from repro.spack.spec import Spec

__all__ = ["MONTE_CIMONE_STACK", "SpackEnvironment"]

#: Table I of the paper: package → version.
MONTE_CIMONE_STACK: Dict[str, str] = {
    "gcc": "10.3.0",
    "openmpi": "4.1.1",
    "openblas": "0.3.18",
    "fftw": "3.3.10",
    "netlib-lapack": "3.9.1",
    "netlib-scalapack": "2.1.0",
    "hpl": "2.3",
    "stream": "5.10",
    "quantum-espresso": "6.8",
}


@dataclass
class SpackEnvironment:
    """A spack.yaml-style environment."""

    name: str
    root_specs: List[str] = field(default_factory=list)

    @classmethod
    def monte_cimone(cls) -> "SpackEnvironment":
        """The paper's production environment (Table I, pinned versions).

        The gcc root additionally pins binutils@2.36.1 — the assembler
        that shipped with the deployment and that §V-A notes cannot yet
        assemble the Zba/Zbb extensions (support lands in 2.37).
        """
        specs = []
        for name, version in MONTE_CIMONE_STACK.items():
            spec = f"{name}@{version} target=u74mc"
            if name == "gcc":
                spec += " ^binutils@2.36.1"
            specs.append(spec)
        return cls(name="montecimone-production", root_specs=specs)

    def add(self, spec_string: str) -> None:
        """``spack add``: append a root spec."""
        Spec.parse(spec_string)  # validate eagerly
        self.root_specs.append(spec_string)

    def concretize(self, concretizer: Optional[Concretizer] = None) -> List[Spec]:
        """Concretize every root spec."""
        concretizer = concretizer if concretizer is not None else Concretizer()
        return [concretizer.concretize(Spec.parse(text))
                for text in self.root_specs]

    def install(self, installer: Optional[Installer] = None,
                concretizer: Optional[Concretizer] = None) -> List[InstallRecord]:
        """``spack install``: concretize and install the whole environment."""
        installer = installer if installer is not None else Installer()
        records: List[InstallRecord] = []
        for concrete in self.concretize(concretizer):
            records.extend(installer.install(concrete))
        return records

    def user_facing_table(self, installer: Installer) -> List[tuple[str, str]]:
        """The Table I view: explicitly requested (package, version) rows."""
        rows = []
        for text in self.root_specs:
            name = Spec.parse(text).name
            installed = installer.find(name)
            if installed:
                rows.append((name, installed[-1].version))
        return rows
