"""Version objects and constraint ranges, Spack-style.

Versions are dotted numeric tuples with optional alphanumeric suffix
components (``2.37.x`` style); comparison is componentwise with numeric
components ordering before alphabetic ones, which matches Spack's
behaviour for the version strings in this repository.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from functools import total_ordering
from typing import Optional, Tuple, Union

__all__ = ["Version", "VersionRange"]

_COMPONENT_RE = re.compile(r"(\d+|[a-zA-Z]+)")


@total_ordering
class Version:
    """A package version such as ``10.3.0`` or ``2.37.x``."""

    def __init__(self, text: str) -> None:
        text = str(text).strip()
        if not text:
            raise ValueError("empty version string")
        self.text = text
        self.components: Tuple[Union[int, str], ...] = tuple(
            int(c) if c.isdigit() else c
            for c in _COMPONENT_RE.findall(text))
        if not self.components:
            raise ValueError(f"unparseable version {text!r}")

    @staticmethod
    def _key(component: Union[int, str]) -> tuple[int, Union[int, str]]:
        # Numeric components sort before and separately from alphabetic.
        return (0, component) if isinstance(component, int) else (1, component)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Version):
            return NotImplemented
        return self.components == other.components

    def __lt__(self, other: "Version") -> bool:
        if not isinstance(other, Version):
            return NotImplemented
        for mine, theirs in zip(self.components, other.components):
            if mine != theirs:
                return self._key(mine) < self._key(theirs)
        return len(self.components) < len(other.components)

    def __hash__(self) -> int:
        return hash(self.components)

    def up_to(self, n: int) -> "Version":
        """Truncate to the first ``n`` components (``10.3.0``→``10.3``)."""
        if n < 1:
            raise ValueError("need at least one component")
        return Version(".".join(str(c) for c in self.components[:n]))

    def satisfies(self, constraint: "VersionRange") -> bool:
        """Whether this version lies in ``constraint``."""
        return constraint.contains(self)

    def __str__(self) -> str:
        return self.text

    def __repr__(self) -> str:
        return f"Version({self.text!r})"


@dataclass(frozen=True)
class VersionRange:
    """An inclusive version interval; open ends are ``None``.

    The string forms mirror Spack: ``@1.2:`` (at least), ``@:2.0`` (at
    most), ``@1.2:2.0`` (between), ``@1.2`` (exactly, via
    :meth:`exact`).
    """

    low: Optional[Version] = None
    high: Optional[Version] = None
    exact_version: Optional[Version] = None

    @classmethod
    def exact(cls, version: Union[str, Version]) -> "VersionRange":
        """A single-version constraint."""
        return cls(exact_version=Version(str(version)))

    @classmethod
    def parse(cls, text: str) -> "VersionRange":
        """Parse Spack's ``@``-stripped constraint syntax."""
        text = text.strip()
        if not text or text == ":":
            return cls()
        if ":" not in text:
            return cls.exact(text)
        low_text, high_text = text.split(":", 1)
        return cls(low=Version(low_text) if low_text else None,
                   high=Version(high_text) if high_text else None)

    def contains(self, version: Version) -> bool:
        """Membership test."""
        if self.exact_version is not None:
            return version == self.exact_version
        if self.low is not None and version < self.low:
            return False
        if self.high is not None and self.high < version:
            return False
        return True

    def intersects(self, other: "VersionRange") -> bool:
        """Whether any version could satisfy both ranges."""
        if self.exact_version is not None:
            return other.contains(self.exact_version)
        if other.exact_version is not None:
            return self.contains(other.exact_version)
        if self.high is not None and other.low is not None and self.high < other.low:
            return False
        if other.high is not None and self.low is not None and other.high < self.low:
            return False
        return True

    def __str__(self) -> str:
        if self.exact_version is not None:
            return str(self.exact_version)
        return f"{self.low or ''}:{self.high or ''}"
