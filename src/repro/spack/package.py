"""Package definitions for the repository."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.spack.version import Version, VersionRange

__all__ = ["Dependency", "PackageDefinition"]


@dataclass(frozen=True)
class Dependency:
    """A dependency edge with an optional version constraint.

    ``deptype`` follows Spack: ``build`` dependencies are needed only at
    install time; ``link``/``run`` dependencies become part of the
    installed closure and its module environment.
    """

    name: str
    constraint: VersionRange = field(default_factory=VersionRange)
    deptype: str = "link"

    def __post_init__(self) -> None:
        if self.deptype not in ("build", "link", "run"):
            raise ValueError(f"bad deptype {self.deptype!r}")


@dataclass
class PackageDefinition:
    """One package recipe in the repository.

    ``versions`` must be listed newest-first; the concretizer prefers the
    first version satisfying all constraints (Spack's "preferred version"
    rule with the default ordering).
    """

    name: str
    versions: List[str]
    description: str = ""
    dependencies: List[Dependency] = field(default_factory=list)
    variants: Dict[str, bool] = field(default_factory=dict)
    #: Approximate build cost in seconds on the U740 (drives install-time
    #: modelling; compiling GCC on the target is famously slow).
    build_seconds_u74: float = 600.0

    def __post_init__(self) -> None:
        if not self.versions:
            raise ValueError(f"package {self.name} has no versions")
        parsed = [Version(v) for v in self.versions]
        if parsed != sorted(parsed, reverse=True):
            raise ValueError(f"package {self.name}: versions must be "
                             f"listed newest-first")

    def preferred_version(self, constraint: VersionRange) -> Optional[Version]:
        """Newest version satisfying ``constraint``, or None."""
        for text in self.versions:
            version = Version(text)
            if constraint.contains(version):
                return version
        return None

    def link_dependencies(self) -> List[Dependency]:
        """Dependencies that are part of the installed closure."""
        return [d for d in self.dependencies if d.deptype in ("link", "run")]
