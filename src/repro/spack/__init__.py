"""Spack-style package manager model.

§IV: the full user-facing stack is deployed with Spack 0.17.0 and exposed
through environment modules; architecture targeting comes from archspec,
whose ``linux-sifive-u74mc`` triple already worked unmodified.  This
package implements the Spack machinery the paper's deployment exercised:

* :mod:`repro.spack.version` — version objects and constraint ranges;
* :mod:`repro.spack.spec` — the spec language (``name@ver +variant
  ^dependency target=u74mc``), abstract and concrete specs;
* :mod:`repro.spack.package` — package definitions (versions, variants,
  dependencies);
* :mod:`repro.spack.repo` — the builtin repository with the Table I stack
  and its transitive dependencies;
* :mod:`repro.spack.archspec` — microarchitecture targets and toolchain
  flags, including ``u74mc``;
* :mod:`repro.spack.concretizer` — abstract spec → concrete dependency DAG;
* :mod:`repro.spack.installer` — topological build/install into the NFS
  software tree, with module generation;
* :mod:`repro.spack.environment` — the Monte Cimone production
  environment: exactly the Table I package list.
"""

from repro.spack.archspec import ARCHSPEC_TARGETS, Microarchitecture, detect_target
from repro.spack.concretizer import ConcretizationError, Concretizer
from repro.spack.environment import MONTE_CIMONE_STACK, SpackEnvironment
from repro.spack.installer import InstallError, Installer, InstallRecord
from repro.spack.package import Dependency, PackageDefinition
from repro.spack.repo import builtin_repo
from repro.spack.spec import Spec, SpecParseError
from repro.spack.version import Version, VersionRange

__all__ = [
    "ARCHSPEC_TARGETS",
    "ConcretizationError",
    "Concretizer",
    "Dependency",
    "InstallError",
    "InstallRecord",
    "Installer",
    "MONTE_CIMONE_STACK",
    "Microarchitecture",
    "PackageDefinition",
    "SpackEnvironment",
    "Spec",
    "SpecParseError",
    "Version",
    "VersionRange",
    "builtin_repo",
    "detect_target",
]
