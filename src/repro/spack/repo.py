"""The builtin package repository.

Carries the Table I user-facing stack at the paper's exact versions plus a
realistic transitive dependency set (what Spack 0.17 would actually pull
in, trimmed to the packages that matter for the stack's shape).  The
newest-first version lists include the paper's versions; pinned installs
(the environment) request them explicitly, so the repo can also serve
"latest" experiments such as the GCC 12 bit-manipulation ablation.
"""

from __future__ import annotations

from typing import Dict

from repro.spack.package import Dependency, PackageDefinition
from repro.spack.version import VersionRange

__all__ = ["builtin_repo", "Repository"]


class Repository:
    """A name → definition mapping with lookup helpers."""

    def __init__(self, packages: Dict[str, PackageDefinition]) -> None:
        self._packages = dict(packages)

    def get(self, name: str) -> PackageDefinition:
        """Look up a package; KeyError lists close alternatives."""
        if name not in self._packages:
            close = [p for p in self._packages if name in p or p in name]
            hint = f" (did you mean {', '.join(close)}?)" if close else ""
            raise KeyError(f"no package {name!r} in repository{hint}")
        return self._packages[name]

    def __contains__(self, name: str) -> bool:
        return name in self._packages

    def names(self) -> list[str]:
        """All package names, sorted."""
        return sorted(self._packages)


def _pkg(name: str, versions: list[str], description: str,
         deps: list[Dependency] | None = None,
         variants: Dict[str, bool] | None = None,
         build_seconds: float = 600.0) -> PackageDefinition:
    return PackageDefinition(name=name, versions=versions,
                             description=description,
                             dependencies=deps or [],
                             variants=variants or {},
                             build_seconds_u74=build_seconds)


def _dep(name: str, constraint: str = "", deptype: str = "link") -> Dependency:
    return Dependency(name=name, constraint=VersionRange.parse(constraint),
                      deptype=deptype)


def builtin_repo() -> Repository:
    """Build the repository (fresh instance; definitions are mutable)."""
    packages = [
        # -- toolchain ----------------------------------------------------
        _pkg("gcc", ["12.1.0", "11.2.0", "10.3.0"],
             "the GNU compiler collection",
             deps=[_dep("gmp"), _dep("mpfr"), _dep("mpc"),
                   _dep("binutils", deptype="link"), _dep("zlib")],
             build_seconds=28000.0),
        _pkg("binutils", ["2.37", "2.36.1"],
             "GNU binary utilities (as, ld); Zba/Zbb assembly lands in 2.37",
             deps=[_dep("zlib")], build_seconds=1500.0),
        _pkg("gmp", ["6.2.1"], "GNU multiple precision arithmetic",
             build_seconds=500.0),
        _pkg("mpfr", ["4.1.0"], "multiple-precision floating point",
             deps=[_dep("gmp")], build_seconds=400.0),
        _pkg("mpc", ["1.2.1"], "complex arithmetic on mpfr",
             deps=[_dep("gmp"), _dep("mpfr")], build_seconds=200.0),
        _pkg("zlib", ["1.2.11"], "compression library", build_seconds=60.0),

        # -- MPI and its plumbing ---------------------------------------------
        _pkg("openmpi", ["4.1.1"], "the Open MPI implementation",
             deps=[_dep("hwloc"), _dep("libevent"), _dep("pmix"),
                   _dep("zlib"), _dep("numactl")],
             build_seconds=5200.0),
        _pkg("hwloc", ["2.6.0"], "hardware locality discovery",
             deps=[_dep("libxml2")], build_seconds=700.0),
        _pkg("libevent", ["2.1.12"], "event notification library",
             build_seconds=300.0),
        _pkg("pmix", ["3.2.3"], "process management interface",
             deps=[_dep("libevent"), _dep("hwloc")], build_seconds=800.0),
        _pkg("numactl", ["2.0.14"], "NUMA policy control", build_seconds=150.0),
        _pkg("libxml2", ["2.9.12"], "XML parser",
             deps=[_dep("zlib")], build_seconds=600.0),

        # -- math libraries ---------------------------------------------------
        _pkg("openblas", ["0.3.18"], "optimised BLAS",
             variants={"threads": True}, build_seconds=4200.0),
        _pkg("fftw", ["3.3.10"], "fast Fourier transforms",
             deps=[_dep("openmpi", deptype="link")],
             variants={"mpi": True, "openmp": True}, build_seconds=2600.0),
        _pkg("netlib-lapack", ["3.9.1"], "reference LAPACK",
             deps=[_dep("openblas")], build_seconds=1900.0),
        _pkg("netlib-scalapack", ["2.1.0"], "reference ScaLAPACK",
             deps=[_dep("openmpi"), _dep("netlib-lapack"), _dep("openblas")],
             build_seconds=2400.0),

        # -- benchmarks and applications (Table I) ------------------------------
        _pkg("hpl", ["2.3"], "High-Performance Linpack",
             deps=[_dep("openmpi"), _dep("openblas")],
             build_seconds=350.0),
        _pkg("stream", ["5.10"], "McCalpin STREAM memory bandwidth",
             variants={"openmp": True}, build_seconds=20.0),
        _pkg("quantum-espresso", ["6.8"],
             "electronic-structure calculations (QE)",
             deps=[_dep("openmpi"), _dep("fftw"), _dep("openblas"),
                   _dep("netlib-lapack"), _dep("netlib-scalapack")],
             variants={"mpi": True}, build_seconds=9800.0),
    ]
    return Repository({p.name: p for p in packages})
