"""The installer: build concrete DAGs into the NFS software tree.

Installs dependencies before dependents (post-order), creates Spack-style
prefixes ``<root>/<target>/<name>-<version>-<hash>``, records an install
database, and generates environment modules — the §IV deployment path
("deploy the full software stack and make it available to all system
users via environment modules").  Build time is modelled from each
recipe's U740 build cost so examples can report realistic on-target
deployment times (compiling GCC on a 1.2 GHz in-order core hurts).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.cluster.services.modules import EnvironmentModules, Module
from repro.cluster.services.nfs import NFSServer
from repro.spack.repo import Repository, builtin_repo
from repro.spack.spec import Spec

__all__ = ["Installer", "InstallError", "InstallRecord"]


class InstallError(RuntimeError):
    """Install-time failures (abstract spec, missing dependency record)."""


@dataclass(frozen=True)
class InstallRecord:
    """One installed package instance."""

    spec_string: str
    name: str
    version: str
    dag_hash: str
    prefix: str
    build_seconds: float
    explicit: bool


class Installer:
    """Installs concrete specs into an NFS-backed store."""

    def __init__(self, nfs: Optional[NFSServer] = None,
                 modules: Optional[EnvironmentModules] = None,
                 repo: Optional[Repository] = None,
                 root: str = "/opt/spack") -> None:
        self.nfs = nfs if nfs is not None else NFSServer()
        if not self.nfs.is_exported(root):
            self.nfs.export(root)
        self.modules = modules if modules is not None else EnvironmentModules()
        self.repo = repo if repo is not None else builtin_repo()
        self.root = root
        self._db: Dict[str, InstallRecord] = {}   # dag_hash -> record

    # -- queries ----------------------------------------------------------
    def is_installed(self, spec: Spec) -> bool:
        """Whether this exact concrete spec is already installed."""
        return spec.is_concrete and spec.dag_hash() in self._db

    def find(self, name: str) -> List[InstallRecord]:
        """All installed instances of a package."""
        return sorted((r for r in self._db.values() if r.name == name),
                      key=lambda r: r.version)

    def records(self) -> List[InstallRecord]:
        """The full install database, deterministic order."""
        return sorted(self._db.values(), key=lambda r: (r.name, r.version))

    # -- installation ------------------------------------------------------
    def install(self, spec: Spec, explicit: bool = True) -> List[InstallRecord]:
        """Install a concrete spec and its closure; returns new records.

        Already-installed nodes are skipped (the Spack behaviour that
        makes a shared dependency tree cheap across the Table I stack).
        """
        if not spec.is_concrete:
            raise InstallError(
                f"cannot install abstract spec {spec.name!r}; concretize first")
        new_records: List[InstallRecord] = []
        for node in spec.traverse():
            dag_hash = node.dag_hash()
            if dag_hash in self._db:
                continue
            definition = self.repo.get(node.name)
            prefix = f"{self.root}/{node.target}/{node.name}-{node.version}-{dag_hash}"
            self.nfs.mkdir(prefix, parents=True)
            self.nfs.write(f"{prefix}/.spack-spec", str(node).encode())
            record = InstallRecord(
                spec_string=str(node), name=node.name,
                version=str(node.version), dag_hash=dag_hash, prefix=prefix,
                build_seconds=definition.build_seconds_u74,
                explicit=explicit and node.name == spec.name)
            self._db[dag_hash] = record
            self._register_module(node, prefix)
            new_records.append(record)
        return new_records

    def total_build_seconds(self) -> float:
        """Cumulative modelled build time of everything installed."""
        return sum(r.build_seconds for r in self._db.values())

    def _register_module(self, node: Spec, prefix: str) -> None:
        self.modules.register(Module(name=node.name,
                                     version=str(node.version),
                                     prefix=prefix))

    # -- uninstall -----------------------------------------------------------
    def uninstall(self, name: str, version: str) -> None:
        """Remove an installed instance (refuses if it has dependents)."""
        target = next((r for r in self._db.values()
                       if r.name == name and r.version == version), None)
        if target is None:
            raise InstallError(f"{name}@{version} is not installed")
        for record in self._db.values():
            if record is target:
                continue
            spec_text = self.nfs.read(f"{record.prefix}/.spack-spec").decode()
            if name in spec_text and record.name != name:
                # Conservative dependent check: the dependency closure of
                # every record embeds its dependency names.
                definition = self.repo.get(record.name)
                if any(d.name == name for d in definition.dependencies):
                    raise InstallError(
                        f"cannot uninstall {name}@{version}: required by "
                        f"{record.name}@{record.version}")
        del self._db[target.dag_hash]
