"""Spack-style display helpers: ``spack spec`` trees and ``spack find``.

Rendering utilities the examples and CLI use to show concrete DAGs the
way Spack users expect to see them.
"""

from __future__ import annotations

from typing import List

from repro.spack.installer import Installer
from repro.spack.spec import Spec

__all__ = ["render_spec_tree", "render_find"]


def render_spec_tree(spec: Spec, indent: int = 0,
                     _seen: set | None = None) -> str:
    """Render a concrete spec as Spack's indented dependency tree.

    Shared dependencies are printed once at their first occurrence and
    referenced by name afterwards (Spack prints them fully each time; the
    compact form keeps deep DAGs readable in terminal sessions).
    """
    seen = _seen if _seen is not None else set()
    pad = "    " * indent
    version = f"@{spec.versions}" if spec.versions.exact_version else ""
    line = f"{pad}{spec.name}{version}"
    if spec.target:
        line += f" target={spec.target}"
    if spec.name in seen:
        return line + "  (see above)"
    seen.add(spec.name)
    lines = [line]
    for name in sorted(spec.dependencies):
        lines.append(render_spec_tree(spec.dependencies[name], indent + 1,
                                      _seen=seen))
    return "\n".join(lines)


def render_find(installer: Installer) -> str:
    """``spack find``-style listing of the install database."""
    records = installer.records()
    if not records:
        return "==> 0 installed packages"
    lines = [f"==> {len(records)} installed packages"]
    by_target: dict[str, List[str]] = {}
    for record in records:
        target = record.prefix.split("/")[3] if record.prefix.count("/") >= 3 \
            else "unknown"
        by_target.setdefault(target, []).append(
            f"{record.name}@{record.version}")
    for target in sorted(by_target):
        lines.append(f"-- linux-{target} / gcc ------------------------")
        lines.append("  ".join(sorted(by_target[target])))
    return "\n".join(lines)
