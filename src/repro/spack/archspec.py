"""archspec: microarchitecture detection, labels and toolchain flags.

§IV: "Actual Spack architecture and microarchitecture support, in the form
of platform-specific toolchain flags, is provided by the archspec module.
Explicit support for the linux-sifive-u74mc target triple was already
present (archspec version 0.1.3) and tested to be working without
modifications."  This module reproduces that contract: a target database
with the ``u74mc`` entry (including its ISA feature list and the GCC flags
it maps to), plus detection from a SoC spec.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.hardware.specs import SoCSpec

__all__ = ["Microarchitecture", "ARCHSPEC_TARGETS", "detect_target"]


@dataclass(frozen=True)
class Microarchitecture:
    """One archspec target."""

    name: str
    vendor: str
    family: str                       # ISA family (riscv64, ppc64le, aarch64)
    features: Tuple[str, ...]
    compiler_flags: Dict[str, str] = field(default_factory=dict)
    parent: Optional[str] = None

    @property
    def triple(self) -> str:
        """The platform-os-target triple Spack displays."""
        return f"linux-{self.vendor.lower()}-{self.name}"

    def supports(self, feature: str) -> bool:
        """Whether the target advertises an ISA feature."""
        return feature in self.features

    def gcc_flags(self) -> str:
        """Flags a GCC toolchain should receive for this target."""
        return self.compiler_flags.get("gcc", "")


#: The archspec 0.1.3 database slice this project uses.
ARCHSPEC_TARGETS: Dict[str, Microarchitecture] = {
    "riscv64": Microarchitecture(
        name="riscv64", vendor="generic", family="riscv64",
        features=("rv64", "i", "m", "a", "f", "d", "c"),
        compiler_flags={"gcc": "-march=rv64gc -mabi=lp64d"}),
    "u74mc": Microarchitecture(
        name="u74mc", vendor="SiFive", family="riscv64",
        features=("rv64", "i", "m", "a", "f", "d", "c", "zba", "zbb"),
        compiler_flags={"gcc": "-march=rv64gc -mabi=lp64d -mtune=sifive-7-series"},
        parent="riscv64"),
    "power9": Microarchitecture(
        name="power9", vendor="IBM", family="ppc64le",
        features=("altivec", "vsx", "htm"),
        compiler_flags={"gcc": "-mcpu=power9 -mtune=power9"}),
    "thunderx2": Microarchitecture(
        name="thunderx2", vendor="Cavium", family="aarch64",
        features=("fp", "asimd", "atomics", "cpuid"),
        compiler_flags={"gcc": "-mcpu=thunderx2t99"},
        parent="aarch64"),
    "aarch64": Microarchitecture(
        name="aarch64", vendor="generic", family="aarch64",
        features=("fp", "asimd"),
        compiler_flags={"gcc": "-march=armv8-a"}),
}

_SOC_TO_TARGET = {
    "SiFive Freedom U740": "u74mc",
    "Marconi100 Power9": "power9",
    "Armida ThunderX2": "thunderx2",
}


def detect_target(soc: SoCSpec) -> Microarchitecture:
    """Map a SoC spec to its archspec target (the ``archspec cpu`` call).

    Unknown RISC-V parts fall back to the generic ``riscv64`` family
    target, exactly as archspec does for unrecognised cores.
    """
    name = _SOC_TO_TARGET.get(soc.name)
    if name is not None:
        return ARCHSPEC_TARGETS[name]
    if soc.isa.lower().startswith("rv64"):
        return ARCHSPEC_TARGETS["riscv64"]
    raise KeyError(f"no archspec target for SoC {soc.name!r} ({soc.isa})")
