"""Datasheet constants for the machines in the paper.

Every number here is taken from the paper or the documents it cites (the
SiFive U74-MC core-complex manual for Monte Cimone, the published Marconi100
and Armida system descriptions for the two comparison nodes).  They form the
calibration anchors of all performance, power and thermal models: efficiency
numbers in the evaluation are *ratios against these peaks*, so getting the
peaks right is what makes the reproduced ratios meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "SoCSpec",
    "CacheSpec",
    "MemorySpec",
    "NodeSpec",
    "U740_SPEC",
    "L2_SPEC",
    "DDR_SPEC",
    "MONTE_CIMONE_NODE",
    "MARCONI100_NODE",
    "ARMIDA_NODE",
    "GIB",
    "MIB",
]

GIB = 1024 ** 3
MIB = 1024 ** 2


@dataclass(frozen=True)
class CacheSpec:
    """Geometry and bandwidth of a cache level."""

    level: int
    size_bytes: int
    line_bytes: int
    associativity: int
    bandwidth_bytes_per_s: float
    prefetch_streams: int = 0


@dataclass(frozen=True)
class MemorySpec:
    """Main-memory subsystem description."""

    technology: str
    capacity_bytes: int
    peak_bandwidth_bytes_per_s: float
    mt_per_s: int
    bus_width_bits: int


@dataclass(frozen=True)
class SoCSpec:
    """An application SoC as seen by the performance/power models."""

    name: str
    isa: str
    n_cores: int
    clock_hz: float
    issue_width: int
    flops_per_cycle_per_core: float
    l2: CacheSpec
    memory: MemorySpec

    @property
    def peak_flops_per_core(self) -> float:
        """Peak double-precision FLOP/s of one core."""
        return self.clock_hz * self.flops_per_cycle_per_core

    @property
    def peak_flops(self) -> float:
        """Peak double-precision FLOP/s of the whole SoC."""
        return self.peak_flops_per_core * self.n_cores


@dataclass(frozen=True)
class NodeSpec:
    """A compute node: SoC(s) + memory + per-benchmark attained fractions.

    ``hpl_fraction`` and ``stream_fraction`` are the *paper-reported*
    efficiencies attained by the upstream, unoptimised software stack — they
    calibrate each machine's software-stack maturity in the models (§V-A).
    """

    name: str
    soc: SoCSpec
    n_sockets: int
    dram_bytes: int
    hpl_fraction: float
    stream_fraction: float

    @property
    def peak_flops(self) -> float:
        """Node peak double-precision FLOP/s."""
        return self.soc.peak_flops * self.n_sockets

    @property
    def peak_bandwidth(self) -> float:
        """Node peak memory bandwidth, bytes/s."""
        return self.soc.memory.peak_bandwidth_bytes_per_s * self.n_sockets

    @property
    def n_cores(self) -> int:
        """Total physical cores in the node."""
        return self.soc.n_cores * self.n_sockets


# --------------------------------------------------------------------------
# Monte Cimone: SiFive Freedom U740 (HiFive Unmatched)
# --------------------------------------------------------------------------
#: Shared 2 MiB L2 with an 8-stream-per-core prefetcher (§V-A discussion).
L2_SPEC = CacheSpec(
    level=2,
    size_bytes=2 * MIB,
    line_bytes=64,
    associativity=16,
    # L2-resident STREAM copy attains 7079 MB/s (Table V); headroom above
    # that is modest on this part, so the L2 peak is set at ~9.6 GB/s.
    bandwidth_bytes_per_s=9.6e9,
    prefetch_streams=8,
)

#: 16 GB single-channel DDR4 operating up to 1866 MT/s; the paper quotes a
#: peak of 7760 MB/s, which is what all efficiency ratios are computed from.
DDR_SPEC = MemorySpec(
    technology="DDR4-1866",
    capacity_bytes=16 * GIB,
    peak_bandwidth_bytes_per_s=7760e6,
    mt_per_s=1866,
    bus_width_bits=64,
)

#: The U740: four U74 RV64GCB application cores, dual-issue in-order, up to
#: 1.2 GHz.  Peak 1.0 GFLOP/s per core (paper §V-A, inferred from the
#: micro-architecture specification) => 4.0 GFLOP/s per chip.
U740_SPEC = SoCSpec(
    name="SiFive Freedom U740",
    isa="RV64GCB",
    n_cores=4,
    clock_hz=1.2e9,
    issue_width=2,
    flops_per_cycle_per_core=1.0e9 / 1.2e9,  # 1.0 GFLOP/s at 1.2 GHz
    l2=L2_SPEC,
    memory=DDR_SPEC,
)

#: One Monte Cimone node: a single U740 with 16 GB DDR4.
#: HPL fraction 0.465 and STREAM fraction 0.155 are the §V-A results.
MONTE_CIMONE_NODE = NodeSpec(
    name="montecimone",
    soc=U740_SPEC,
    n_sockets=1,
    dram_bytes=16 * GIB,
    hpl_fraction=0.465,
    stream_fraction=0.155,
)


# --------------------------------------------------------------------------
# Comparison nodes (same upstream-stack benchmarking boundary conditions)
# --------------------------------------------------------------------------
def _comparator(name: str, isa: str, n_cores: int, clock_hz: float,
                flops_per_cycle: float, mem_bw: float, dram: int,
                hpl_fraction: float, stream_fraction: float,
                n_sockets: int = 2) -> NodeSpec:
    """Build a comparison-node spec with a generic cache description."""
    soc = SoCSpec(
        name=name,
        isa=isa,
        n_cores=n_cores,
        clock_hz=clock_hz,
        issue_width=4,
        flops_per_cycle_per_core=flops_per_cycle,
        l2=CacheSpec(level=2, size_bytes=8 * MIB, line_bytes=128,
                     associativity=16, bandwidth_bytes_per_s=mem_bw * 4,
                     prefetch_streams=16),
        memory=MemorySpec(technology="DDR4", capacity_bytes=dram,
                          peak_bandwidth_bytes_per_s=mem_bw,
                          mt_per_s=2933, bus_width_bits=64 * 8),
    )
    return NodeSpec(name=name.lower().replace(" ", ""), soc=soc,
                    n_sockets=n_sockets, dram_bytes=dram,
                    hpl_fraction=hpl_fraction, stream_fraction=stream_fraction)


#: Marconi100 node (CINECA): 2× IBM POWER9 AC922, CPU-only peak considered.
#: Upstream HPL attains 59.7% of CPU-only peak; upstream STREAM 48.2% (§V-A).
MARCONI100_NODE = _comparator(
    name="Marconi100 Power9", isa="ppc64le",
    n_cores=16, clock_hz=3.1e9, flops_per_cycle=8.0,
    mem_bw=140e9, dram=256 * GIB,
    hpl_fraction=0.597, stream_fraction=0.482,
)

#: Armida node (E4): 2× Marvell ThunderX2 CN9980 (ARMv8a).
#: Upstream HPL attains 65.79% of peak; upstream STREAM 63.21% (§V-A).
ARMIDA_NODE = _comparator(
    name="Armida ThunderX2", isa="armv8a",
    n_cores=32, clock_hz=2.2e9, flops_per_cycle=8.0,
    mem_bw=160e9, dram=256 * GIB,
    hpl_fraction=0.6579, stream_fraction=0.6321,
)
