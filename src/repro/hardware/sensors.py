"""Thermal sensors and the hwmon sysfs layout of Table IV.

The HiFive Unmatched exposes three temperature sensors through hwmon:

=========  ====================================
sensor     sysfs file (Table IV)
=========  ====================================
nvme_temp  /sys/class/hwmon/hwmon0/temp1_input
mb_temp    /sys/class/hwmon/hwmon1/temp1_input
cpu_temp   /sys/class/hwmon/hwmon1/temp2_input
=========  ====================================

stats_pub reads these files at 0.2 Hz; the thermal model writes them.  The
hwmon convention reports millidegrees Celsius as integer strings, which is
what :meth:`HwmonTree.read` returns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

__all__ = ["ThermalSensor", "HwmonTree", "HWMON_PATHS", "SensorReadError"]


class SensorReadError(OSError):
    """A hwmon read failed (the kernel's ``EIO`` on a wedged sensor bus).

    Real RISC-V testbeds see exactly this: I2C sensors drop off the bus
    under thermal stress and every read of the sysfs file errors until the
    device recovers.  Consumers (stats_pub) must treat it as a per-sensor
    outage, not a fatal daemon error.
    """

#: The Table IV sensor → sysfs-path mapping.
HWMON_PATHS = {
    "nvme_temp": "/sys/class/hwmon/hwmon0/temp1_input",
    "mb_temp": "/sys/class/hwmon/hwmon1/temp1_input",
    "cpu_temp": "/sys/class/hwmon/hwmon1/temp2_input",
}


@dataclass
class ThermalSensor:
    """One temperature measurement point.

    ``trip_celsius`` is the over-temperature trip: the paper's node 7
    stopped executing at 107 °C during the first HPL runs (Fig. 6).
    """

    name: str
    temperature_c: float = 25.0
    trip_celsius: float = 107.0
    #: Fault-injection state: ``None`` (healthy), ``"dropout"`` (reads
    #: raise :class:`SensorReadError`) or ``"stuck"`` (the reading froze
    #: at the value it had when the fault landed; updates are ignored).
    failure_mode: Optional[str] = None

    def set(self, temperature_c: float) -> None:
        """Update the sensed temperature (ignored while stuck-at)."""
        if self.failure_mode == "stuck":
            return
        self.temperature_c = float(temperature_c)

    @property
    def healthy(self) -> bool:
        """Whether the sensor currently has no injected fault."""
        return self.failure_mode is None

    @property
    def tripped(self) -> bool:
        """Whether the sensor is at/above its trip point."""
        return self.temperature_c >= self.trip_celsius

    def millidegrees(self) -> int:
        """hwmon integer reading (m°C); raises while dropped out."""
        if self.failure_mode == "dropout":
            raise SensorReadError(f"sensor {self.name!r} dropped off the bus")
        return int(round(self.temperature_c * 1000.0))

    # -- fault injection ----------------------------------------------------
    def fail_dropout(self) -> None:
        """Inject a dropout: every read errors until :meth:`repair`."""
        self.failure_mode = "dropout"

    def fail_stuck(self) -> None:
        """Inject a stuck-at fault: the reading freezes at its current value."""
        self.failure_mode = "stuck"

    def repair(self) -> None:
        """Clear any injected fault; the next write updates normally again."""
        self.failure_mode = None


class HwmonTree:
    """The node's hwmon sysfs subtree.

    Maps the Table IV paths onto the three sensors and renders readings the
    way the kernel does: ASCII integers in millidegrees.
    """

    def __init__(self) -> None:
        self.sensors: Dict[str, ThermalSensor] = {
            name: ThermalSensor(name=name) for name in HWMON_PATHS
        }

    def path_of(self, sensor_name: str) -> str:
        """sysfs path for ``sensor_name`` (KeyError on unknown sensors)."""
        return HWMON_PATHS[sensor_name]

    def read(self, path: str) -> str:
        """Read a sysfs temperature file; returns the kernel's string form."""
        for name, sensor_path in HWMON_PATHS.items():
            if sensor_path == path:
                return f"{self.sensors[name].millidegrees()}\n"
        raise FileNotFoundError(path)

    def read_celsius(self, sensor_name: str) -> float:
        """Convenience float read in °C for plugins and tests."""
        return self.sensors[sensor_name].temperature_c

    def set_celsius(self, sensor_name: str, temperature_c: float) -> None:
        """Thermal-model hook: update one sensor."""
        self.sensors[sensor_name].set(temperature_c)

    def any_tripped(self) -> bool:
        """Whether any sensor is at its over-temperature trip."""
        return any(sensor.tripped for sensor in self.sensors.values())
