"""Node-local storage: the 1 TB NVMe system disk and the UEFI micro-SD.

§III: the M.2 slot carries a 1 TB NVMe 2280 SSD holding the operating
system; a micro-SD card provides the UEFI boot path.  The models track I/O
counters (stats_pub's ``dsk_total.read``/``dsk_total.writ``) and the NVMe
temperature input consumed by the hwmon tree.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["NVMeDrive", "MicroSDCard"]


@dataclass
class NVMeDrive:
    """The 1 TB NVMe 2280 system disk."""

    capacity_bytes: int = 10 ** 12
    read_bandwidth_bytes_per_s: float = 1.6e9
    write_bandwidth_bytes_per_s: float = 1.1e9
    #: Cumulative transfer counters for stats_pub.
    bytes_read: int = 0
    bytes_written: int = 0
    #: Device temperature, written by the thermal model, read via hwmon0.
    temperature_c: float = 30.0

    def read(self, n_bytes: int) -> float:
        """Account a read; returns the transfer time in seconds."""
        if n_bytes < 0:
            raise ValueError("negative read size")
        self.bytes_read += n_bytes
        return n_bytes / self.read_bandwidth_bytes_per_s

    def write(self, n_bytes: int) -> float:
        """Account a write; returns the transfer time in seconds."""
        if n_bytes < 0:
            raise ValueError("negative write size")
        self.bytes_written += n_bytes
        return n_bytes / self.write_bandwidth_bytes_per_s


@dataclass
class MicroSDCard:
    """The micro-SD card holding the UEFI boot firmware.

    Only the boot path touches it: the card is read once per boot at a very
    modest bandwidth, which is part of why the bootloader region (R2 in
    Fig. 4) lasts as long as it does.
    """

    capacity_bytes: int = 32 * 1024 ** 3
    read_bandwidth_bytes_per_s: float = 20e6
    firmware_bytes: int = 24 * 1024 ** 2

    def firmware_load_time(self) -> float:
        """Seconds spent streaming the boot firmware off the card."""
        return self.firmware_bytes / self.read_bandwidth_bytes_per_s
