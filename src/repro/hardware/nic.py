"""Network interfaces: the on-board GbE and the Infiniband FDR HCA.

§III of the paper: every node has a Microsemi VSC8541 gigabit Ethernet PHY;
two nodes additionally carry a Mellanox ConnectX-4 FDR (56 Gbit/s) HCA on
the PCIe Gen3 x8 slot.  The Infiniband bring-up reached a precise, partial
state that the model reproduces as a small state machine:

* the kernel recognises the device and loads the mlx5 module,
* the Mellanox OFED stack mounts,
* ``ibping`` between two boards (and board↔server) succeeds,
* RDMA verbs fail due to unresolved software-stack/kernel incompatibilities.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

__all__ = ["GigabitEthernet", "InfinibandHCA", "IBState", "RDMAUnsupportedError"]


class RDMAUnsupportedError(RuntimeError):
    """RDMA verbs are not functional on the Monte Cimone IB stack (§III)."""


@dataclass
class GigabitEthernet:
    """The VSC8541-attached 1 Gbit/s Ethernet port.

    This is the interconnect the whole-machine HPL run used; its bandwidth
    and latency feed the MPI cost model behind Fig. 2.
    """

    name: str = "eth0"
    bandwidth_bits_per_s: float = 1e9
    latency_s: float = 50e-6
    link_up: bool = False
    #: Cumulative traffic counters surfaced by stats_pub (net_total.*).
    bytes_sent: int = 0
    bytes_received: int = 0

    def bring_up(self) -> None:
        """Administratively enable the link."""
        self.link_up = True

    def account_send(self, n_bytes: int) -> None:
        """Record transmitted payload bytes."""
        if n_bytes < 0:
            raise ValueError("negative byte count")
        self.bytes_sent += n_bytes

    def account_receive(self, n_bytes: int) -> None:
        """Record received payload bytes."""
        if n_bytes < 0:
            raise ValueError("negative byte count")
        self.bytes_received += n_bytes

    def transfer_time(self, n_bytes: int) -> float:
        """Wire time for an ``n_bytes`` message (latency + serialisation)."""
        return self.latency_s + (n_bytes * 8) / self.bandwidth_bits_per_s


class IBState(Enum):
    """Bring-up states of the ConnectX-4 HCA on RISC-V (§III narrative)."""

    ABSENT = "absent"
    DETECTED = "detected"          # PCIe enumeration found the device
    DRIVER_LOADED = "driver"       # mlx5_core bound, OFED stack mounted
    LINK_ACTIVE = "link_active"    # port active, ibping works


class InfinibandHCA:
    """A Mellanox ConnectX-4 FDR HCA in its Monte Cimone bring-up state.

    The class walks the state machine the paper describes and hard-fails on
    RDMA — full support is explicitly future work.
    """

    SPEED_BITS_PER_S = 56e9  # FDR 4x

    def __init__(self, installed: bool = True) -> None:
        self._state = IBState.DETECTED if installed else IBState.ABSENT

    @property
    def state(self) -> IBState:
        """Current bring-up state."""
        return self._state

    @property
    def installed(self) -> bool:
        """Whether a physical HCA is present in this node's PCIe slot."""
        return self._state is not IBState.ABSENT

    def load_driver(self) -> None:
        """Bind mlx5 and mount the OFED stack (works on Monte Cimone)."""
        if self._state is IBState.ABSENT:
            raise RuntimeError("no HCA installed")
        if self._state is IBState.DETECTED:
            self._state = IBState.DRIVER_LOADED

    def activate_link(self) -> None:
        """Bring the IB port to ACTIVE (works on Monte Cimone)."""
        if self._state is IBState.ABSENT:
            raise RuntimeError("no HCA installed")
        if self._state is IBState.DETECTED:
            raise RuntimeError("driver not loaded")
        self._state = IBState.LINK_ACTIVE

    def ibping(self, peer: "InfinibandHCA") -> bool:
        """The paper's successful IB ping test between two active ports."""
        return (self._state is IBState.LINK_ACTIVE
                and peer._state is IBState.LINK_ACTIVE)

    def rdma_write(self, peer: "InfinibandHCA", n_bytes: int) -> None:
        """RDMA verbs — not functional on Monte Cimone.

        Raises
        ------
        RDMAUnsupportedError
            Always, reproducing the yet-to-be-pinpointed software-stack and
            kernel-driver incompatibilities reported in §III.
        """
        raise RDMAUnsupportedError(
            "RDMA capabilities unavailable: software stack / kernel driver "
            "incompatibilities (Monte Cimone §III; full support is future work)")
