"""The assembled HiFive Unmatched board.

One board = one compute node's hardware: the U740 core complex, L2, DDR4,
NVMe + micro-SD storage, GbE, optional Infiniband HCA, the nine-rail power
measurement harness, and the three hwmon thermal sensors.  The board is
deliberately free of behaviour — it is the *composition* the node
lifecycle (:mod:`repro.cluster.node`), power model (:mod:`repro.power`)
and thermal model (:mod:`repro.thermal`) animate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.hardware.cache import L2Cache
from repro.hardware.cores import CoreComplex
from repro.hardware.hpm import PerfEventsInterface
from repro.hardware.memory import DDR4Subsystem
from repro.hardware.nic import GigabitEthernet, InfinibandHCA
from repro.hardware.rails import RailSet
from repro.hardware.sensors import HwmonTree
from repro.hardware.specs import SoCSpec, U740_SPEC
from repro.hardware.storage import MicroSDCard, NVMeDrive

__all__ = ["HiFiveUnmatched"]


class HiFiveUnmatched:
    """A HiFive Unmatched board in Mini-ITX form factor (170 mm × 170 mm).

    Parameters
    ----------
    with_infiniband:
        Two of the eight Monte Cimone nodes carry a ConnectX-4 FDR HCA in
        the PCIe slot (§III); pass True for those.
    soc_spec:
        The SoC datasheet; defaults to the U740.
    """

    FORM_FACTOR_MM = (170, 170)

    def __init__(self, with_infiniband: bool = False,
                 soc_spec: SoCSpec = U740_SPEC) -> None:
        self.soc_spec = soc_spec
        self.cores = CoreComplex(soc=soc_spec)
        self.l2 = L2Cache(spec=soc_spec.l2)
        self.memory = DDR4Subsystem(spec=soc_spec.memory)
        self.nvme = NVMeDrive()
        self.sdcard = MicroSDCard()
        self.ethernet = GigabitEthernet()
        self.infiniband: Optional[InfinibandHCA] = (
            InfinibandHCA(installed=True) if with_infiniband else None)
        self.rails = RailSet()
        self.hwmon = HwmonTree()
        self.perf = PerfEventsInterface(core.hpm for core in self.cores)

    @property
    def n_cores(self) -> int:
        """Application-core count (the S7 monitor core is not schedulable)."""
        return len(self.cores)

    @property
    def peak_flops(self) -> float:
        """Board peak double-precision FLOP/s (4.0 GFLOP/s on the U740)."""
        return self.soc_spec.peak_flops

    @property
    def peak_memory_bandwidth(self) -> float:
        """Board peak DRAM bandwidth in bytes/s (7760 MB/s on the U740)."""
        return self.soc_spec.memory.peak_bandwidth_bytes_per_s

    def enable_hpm_counters(self) -> None:
        """Apply the authors' U-Boot patch: unlock programmable counters."""
        for core in self.cores:
            core.hpm.enable_programmable()

    def sync_nvme_temperature(self) -> None:
        """Propagate the NVMe device temperature into the hwmon tree."""
        self.hwmon.set_celsius("nvme_temp", self.nvme.temperature_c)

    def __repr__(self) -> str:
        ib = "+IB" if self.infiniband is not None else ""
        return f"HiFiveUnmatched({self.soc_spec.name}{ib})"
