"""Hardware substrate: the simulated SiFive Freedom U740 node.

The paper's cluster is built from HiFive Unmatched boards carrying the
SiFive Freedom U740 SoC; this package models every hardware element the
paper's experiments touch:

* :mod:`repro.hardware.specs` — datasheet constants (clock, peaks, cache
  sizes) taken from the U74-MC core-complex manual figures the paper cites.
* :mod:`repro.hardware.cores` — the four U74 application cores plus the S7
  monitor core, with per-core performance counters.
* :mod:`repro.hardware.cache` — the shared L2 with its stream prefetcher.
* :mod:`repro.hardware.memory` — the DDR4-1866 subsystem (7760 MB/s peak).
* :mod:`repro.hardware.hpm` — the hardware performance-monitoring counters
  exposed through perf_events, including the "programmable counters are
  disabled until a U-Boot patch enables them" behaviour from §IV-B.
* :mod:`repro.hardware.rails` — the seven SoC power rails plus the two DDR
  module rails, each with a shunt-resistor current sensor.
* :mod:`repro.hardware.sensors` — the three hwmon thermal sensors
  (SoC, motherboard, NVMe) with the sysfs paths of Table IV.
* :mod:`repro.hardware.nic` — the VSC8541 GbE interface and the Mellanox
  ConnectX-4 FDR Infiniband HCA (recognised, ping-capable, RDMA-incapable).
* :mod:`repro.hardware.storage` — 1 TB NVMe system disk and the micro-SD
  UEFI boot device.
* :mod:`repro.hardware.board` — the assembled HiFive Unmatched board.
"""

from repro.hardware.accelerator import (
    AcceleratorCard,
    PCIeSlot,
    RISCV_VECTOR_CARD,
    SlotError,
)
from repro.hardware.board import HiFiveUnmatched
from repro.hardware.cache import L2Cache, StreamPrefetcher
from repro.hardware.cores import CoreComplex, S7Core, U74Core
from repro.hardware.hpm import HPMUnit, PerfEventsInterface
from repro.hardware.memory import DDR4Subsystem
from repro.hardware.nic import GigabitEthernet, InfinibandHCA
from repro.hardware.rails import PowerRail, RailSet, ShuntSensor
from repro.hardware.sensors import HwmonTree, ThermalSensor
from repro.hardware.specs import (
    DDR_SPEC,
    L2_SPEC,
    MARCONI100_NODE,
    ARMIDA_NODE,
    MONTE_CIMONE_NODE,
    NodeSpec,
    U740_SPEC,
    SoCSpec,
)
from repro.hardware.storage import MicroSDCard, NVMeDrive

__all__ = [
    "ARMIDA_NODE",
    "AcceleratorCard",
    "PCIeSlot",
    "RISCV_VECTOR_CARD",
    "SlotError",
    "CoreComplex",
    "DDR4Subsystem",
    "DDR_SPEC",
    "GigabitEthernet",
    "HPMUnit",
    "HiFiveUnmatched",
    "HwmonTree",
    "InfinibandHCA",
    "L2Cache",
    "L2_SPEC",
    "MARCONI100_NODE",
    "MONTE_CIMONE_NODE",
    "MicroSDCard",
    "NVMeDrive",
    "NodeSpec",
    "PerfEventsInterface",
    "PowerRail",
    "RailSet",
    "S7Core",
    "ShuntSensor",
    "SoCSpec",
    "StreamPrefetcher",
    "ThermalSensor",
    "U740_SPEC",
    "U74Core",
]
