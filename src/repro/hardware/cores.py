"""The U74-MC core complex: four U74 application cores plus one S7 core.

Each :class:`U74Core` is a *cycle-approximate analytic* model: it does not
execute instructions, but it accounts for them.  Workload models (HPL,
STREAM, QE-LAX) drive cores through :meth:`U74Core.advance`, declaring how
many seconds of activity elapsed and with which instructions-per-cycle and
floating-point intensity; the core updates its architectural counters
(CYCLE, INSTRET, plus programmable HPM events) that the monitoring stack
later samples through perf_events — exactly the path pmu_pub uses on the
real machine (§IV-B).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.hardware.hpm import HPMUnit
from repro.hardware.specs import SoCSpec, U740_SPEC

__all__ = ["U74Core", "S7Core", "CoreComplex", "CoreActivity"]


@dataclass
class CoreActivity:
    """A slice of work executed on one core.

    Attributes
    ----------
    duration_s:
        Wall-clock seconds of activity.
    ipc:
        Attained instructions-per-cycle (the U74 is dual-issue, so the
        hardware ceiling is 2.0).
    flop_fraction:
        Fraction of retired instructions that are double-precision FLOPs.
    l2_miss_rate:
        L2 misses per retired instruction (drives DDR traffic and the
        ``ddr_mem`` power rail).
    utilisation:
        Busy fraction within ``duration_s`` (1.0 = fully busy).
    """

    duration_s: float
    ipc: float = 1.0
    flop_fraction: float = 0.0
    l2_miss_rate: float = 0.0
    utilisation: float = 1.0

    def __post_init__(self) -> None:
        if self.duration_s < 0:
            raise ValueError(f"negative duration {self.duration_s}")
        if not 0.0 <= self.utilisation <= 1.0:
            raise ValueError(f"utilisation {self.utilisation} outside [0, 1]")
        if self.ipc < 0:
            raise ValueError(f"negative ipc {self.ipc}")


class U74Core:
    """One 64-bit U74 application core.

    The core tracks architectural counters and an activity level that the
    power model converts into rail currents.  It supports the three RISC-V
    privilege modes only insofar as the counters are concerned (user-mode
    sampling reads the same CSRs the kernel virtualises through perf).
    """

    #: Hardware issue ceiling of the dual-issue in-order pipeline.
    MAX_IPC = 2.0

    def __init__(self, core_id: int, soc: SoCSpec = U740_SPEC) -> None:
        self.core_id = core_id
        self.soc = soc
        self.hpm = HPMUnit(core_id=core_id)
        self._busy_until = 0.0
        self._current_utilisation = 0.0
        self._clock_on = False

    # -- lifecycle ----------------------------------------------------------
    def power_on(self) -> None:
        """Apply power; the core holds in reset until the clock starts."""
        self._clock_on = False

    def start_clock(self) -> None:
        """PLL locked, clock propagating (boot region R2 of Fig. 4)."""
        self._clock_on = True

    @property
    def clock_running(self) -> bool:
        """Whether the core clock is active."""
        return self._clock_on

    # -- accounting ----------------------------------------------------------
    @property
    def utilisation(self) -> float:
        """Instantaneous busy fraction, as the OS would report it."""
        return self._current_utilisation

    def advance(self, activity: CoreActivity) -> None:
        """Account for a slice of executed work.

        Updates CYCLE, INSTRET and the programmable HPM counters.  The clock
        must be running; calling this on a gated core is a modelling bug.
        """
        if not self._clock_on:
            raise RuntimeError(f"core {self.core_id}: advance() with clock gated")
        busy_s = activity.duration_s * activity.utilisation
        cycles = int(self.soc.clock_hz * activity.duration_s)
        busy_cycles = int(self.soc.clock_hz * busy_s)
        instructions = int(busy_cycles * min(activity.ipc, self.MAX_IPC))
        flops = int(instructions * activity.flop_fraction)
        l2_misses = int(instructions * activity.l2_miss_rate)
        self.hpm.add_cycles(cycles)
        self.hpm.add_instructions(instructions)
        self.hpm.add_event("fp_ops", flops)
        self.hpm.add_event("l2_miss", l2_misses)
        self.hpm.add_event("load_store", int(instructions * 0.3))
        self._current_utilisation = activity.utilisation

    def idle(self, duration_s: float) -> None:
        """Account for OS-idle time (cycles tick, few instructions retire)."""
        self.advance(CoreActivity(duration_s=duration_s, ipc=0.02,
                                  utilisation=0.01))
        self._current_utilisation = 0.0

    def __repr__(self) -> str:
        return f"U74Core(id={self.core_id}, util={self._current_utilisation:.2f})"


class S7Core:
    """The S7 monitor core of the U74-MC complex.

    The S7 runs machine-mode firmware only; it never appears in the OS
    topology and contributes a small fixed share of core-rail power.  It is
    modelled for completeness of the core-complex inventory (§III).
    """

    def __init__(self) -> None:
        self.core_id = -1
        self._clock_on = False

    def start_clock(self) -> None:
        """Clock the monitor core (happens together with the U74s)."""
        self._clock_on = True

    @property
    def clock_running(self) -> bool:
        """Whether the monitor core is clocked."""
        return self._clock_on


class CoreComplex:
    """The heterogeneous U74-MC complex: 4× U74 + 1× S7.

    Provides aggregate views the monitoring plugins and the power model
    consume: total utilisation, per-core counter access, aggregate retired
    FLOPs (used by benchmark validation).
    """

    def __init__(self, soc: SoCSpec = U740_SPEC) -> None:
        self.soc = soc
        self.cores = [U74Core(core_id=i, soc=soc) for i in range(soc.n_cores)]
        self.monitor_core = S7Core()

    def __iter__(self):
        return iter(self.cores)

    def __len__(self) -> int:
        return len(self.cores)

    def start_clocks(self) -> None:
        """Bring the whole complex out of reset (PLL lock moment)."""
        for core in self.cores:
            core.start_clock()
        self.monitor_core.start_clock()

    @property
    def clock_running(self) -> bool:
        """True once the complex has been clocked."""
        return self.monitor_core.clock_running

    @property
    def utilisation(self) -> float:
        """Mean busy fraction across application cores."""
        return sum(c.utilisation for c in self.cores) / len(self.cores)

    def total_instructions(self) -> int:
        """Sum of INSTRET over all application cores."""
        return sum(c.hpm.instret for c in self.cores)

    def total_flops(self) -> int:
        """Sum of retired floating-point operations over all cores."""
        return sum(c.hpm.read_event("fp_ops") for c in self.cores)

    def idle(self, duration_s: float) -> None:
        """Advance every core through an OS-idle interval."""
        for core in self.cores:
            core.idle(duration_s)
