"""Power rails and shunt-resistor current sensors.

§III: the U740 exposes seven separated power rails (core complex, IOs,
PLLs, DDR subsystem, PCIe, ...) and the HiFive Unmatched adds shunt
resistors in series with each rail and with the on-board memory.  Table VI
reports nine lines; :data:`RAIL_NAMES` reproduces them in the paper's
order.  The rails are the *measurement* layer — the power *model*
(:mod:`repro.power.model`) decides how many milliwatts each rail draws; the
rail object converts that into a shunt voltage and back like the real
acquisition chain, and keeps an energy integral.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator

__all__ = ["PowerRail", "ShuntSensor", "RailSet", "RAIL_NAMES"]

#: The nine measurement lines of Table VI, in row order.
RAIL_NAMES = (
    "core",      # U74-MC core complex supply
    "ddr_soc",   # DDR controller/PHY inside the SoC
    "io",        # SoC IO ring
    "pll",       # SoC PLLs
    "pcievp",    # PCIe rail (vp)
    "pcievph",   # PCIe rail (vph)
    "ddr_mem",   # on-board DDR4 modules
    "ddr_pll",   # DDR PLL
    "ddr_vpp",   # DDR VPP pump
)


@dataclass(frozen=True)
class ShuntSensor:
    """A shunt resistor + ADC pair on one rail.

    The acquisition chain measures the voltage drop across ``shunt_ohm``
    and multiplies by the rail voltage; quantisation is the ADC's LSB.
    """

    shunt_ohm: float = 0.01
    rail_voltage: float = 1.0
    adc_lsb_volt: float = 1e-5

    def measure(self, true_power_w: float) -> float:
        """Convert true rail power into the sensor's reported watts.

        The conversion goes power → current → shunt drop → quantised drop →
        reported power, so tiny powers quantise visibly just as they do on
        the real board (the ``pll`` rail reports 1 mW).
        """
        if true_power_w < 0:
            raise ValueError(f"negative power {true_power_w}")
        current_a = true_power_w / self.rail_voltage
        drop_v = current_a * self.shunt_ohm
        quantised_drop = round(drop_v / self.adc_lsb_volt) * self.adc_lsb_volt
        return (quantised_drop / self.shunt_ohm) * self.rail_voltage


class PowerRail:
    """One supply rail: instantaneous power plus an energy integral."""

    def __init__(self, name: str, sensor: ShuntSensor | None = None) -> None:
        self.name = name
        self.sensor = sensor if sensor is not None else ShuntSensor()
        self._power_w = 0.0
        self._energy_j = 0.0
        self._last_update_s = 0.0

    @property
    def power_w(self) -> float:
        """Current true power on the rail, watts."""
        return self._power_w

    @property
    def energy_j(self) -> float:
        """Energy integrated over all ``set_power`` intervals, joules."""
        return self._energy_j

    def set_power(self, power_w: float, now_s: float) -> None:
        """Update the rail draw at simulated time ``now_s``.

        Energy is integrated assuming the previous power level held since
        the last update (zero-order hold), which matches how the 1 ms
        averaging windows of Fig. 3 are produced from raw samples.
        """
        if power_w < 0:
            raise ValueError(f"negative power {power_w} on rail {self.name}")
        dt = now_s - self._last_update_s
        if dt < 0:
            raise ValueError(f"time went backwards on rail {self.name}")
        self._energy_j += self._power_w * dt
        self._power_w = power_w
        self._last_update_s = now_s

    def measure_w(self) -> float:
        """Power as reported through the shunt/ADC chain."""
        return self.sensor.measure(self._power_w)

    def measure_mw(self) -> float:
        """Measured power in milliwatts (the unit of Table VI)."""
        return self.measure_w() * 1e3


class RailSet:
    """The full nine-line measurement harness of one board."""

    def __init__(self, names: Iterable[str] = RAIL_NAMES) -> None:
        self._rails: Dict[str, PowerRail] = {name: PowerRail(name) for name in names}
        if not self._rails:
            raise ValueError("rail set cannot be empty")

    def __getitem__(self, name: str) -> PowerRail:
        return self._rails[name]

    def __iter__(self) -> Iterator[PowerRail]:
        return iter(self._rails.values())

    def __contains__(self, name: str) -> bool:
        return name in self._rails

    @property
    def names(self) -> list[str]:
        """Rail names in declaration order."""
        return list(self._rails)

    def set_powers(self, powers_w: Dict[str, float], now_s: float) -> None:
        """Update several rails at one timestamp."""
        for name, power in powers_w.items():
            self._rails[name].set_power(power, now_s)

    def total_w(self) -> float:
        """True total board power, watts."""
        return sum(rail.power_w for rail in self)

    def measure_all_mw(self) -> Dict[str, float]:
        """Per-rail measured power in mW — one Table VI column."""
        return {rail.name: rail.measure_mw() for rail in self}

    def total_measured_mw(self) -> float:
        """Measured total (the Table VI 'Total' row)."""
        return sum(self.measure_all_mw().values())
