"""Hardware performance-monitoring (HPM) counters and the perf_events view.

§IV-B of the paper: the Linux perf_events interface on RISC-V exposes the
fixed INSTRET and CYCLE counters; the *programmable* counters of the U740's
HPM unit are disabled at boot and the authors developed a U-Boot patch to
enable and program them.  This module models both layers:

* :class:`HPMUnit` — the per-core counter bank with the boot-time enable
  mask; programmable events silently read zero until the bootloader patch
  (modelled by :meth:`HPMUnit.enable_programmable`) has run.
* :class:`PerfEventsInterface` — the per-node OS view pmu_pub samples at
  2 Hz, returning monotonically increasing counts per core.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping

__all__ = ["HPMUnit", "PerfEventsInterface", "PROGRAMMABLE_EVENTS", "FIXED_EVENTS"]

#: Events available on the fixed counters (always on).
FIXED_EVENTS = ("cycles", "instructions")

#: Events the programmable HPM counters can be configured for.  The list
#: follows the U74-MC manual's event groups at the granularity the paper's
#: plugin samples.
PROGRAMMABLE_EVENTS = (
    "fp_ops",
    "l2_miss",
    "load_store",
    "branch_mispredict",
    "itlb_miss",
    "dtlb_miss",
)


class HPMUnit:
    """Per-core hardware counter bank.

    Fixed counters (CYCLE, INSTRET) always accumulate.  Programmable
    counters accumulate only after :meth:`enable_programmable` — the
    behaviour of the stock U-Boot (counters off) versus the authors' patched
    U-Boot (counters on and programmed).
    """

    def __init__(self, core_id: int) -> None:
        self.core_id = core_id
        self.cycle = 0
        self.instret = 0
        self._programmable_enabled = False
        self._events: Dict[str, int] = {name: 0 for name in PROGRAMMABLE_EVENTS}

    # -- configuration -------------------------------------------------------
    @property
    def programmable_enabled(self) -> bool:
        """Whether the U-Boot patch has enabled the programmable bank."""
        return self._programmable_enabled

    def enable_programmable(self) -> None:
        """Enable and program all HPM counters (the paper's U-Boot patch)."""
        self._programmable_enabled = True

    # -- accumulation ----------------------------------------------------------
    def add_cycles(self, n: int) -> None:
        """Accumulate elapsed core cycles."""
        if n < 0:
            raise ValueError(f"negative cycle count {n}")
        self.cycle += n

    def add_instructions(self, n: int) -> None:
        """Accumulate retired instructions."""
        if n < 0:
            raise ValueError(f"negative instruction count {n}")
        self.instret += n

    def add_event(self, name: str, n: int) -> None:
        """Accumulate a programmable event.

        Counts are discarded while the programmable bank is disabled,
        mirroring hardware counters that are simply not counting.
        """
        if name not in self._events:
            raise KeyError(f"unknown HPM event {name!r}")
        if n < 0:
            raise ValueError(f"negative event count {n}")
        if self._programmable_enabled:
            self._events[name] += n

    # -- reads -------------------------------------------------------------
    def read_event(self, name: str) -> int:
        """Read a programmable event counter (zero while disabled)."""
        if name not in self._events:
            raise KeyError(f"unknown HPM event {name!r}")
        return self._events[name]

    def snapshot(self) -> Dict[str, int]:
        """All counters as one mapping, as perf would enumerate them."""
        data = {"cycles": self.cycle, "instructions": self.instret}
        data.update(self._events)
        return data


class PerfEventsInterface:
    """The OS-level perf_events view over a set of per-core HPM units.

    pmu_pub opens one event group per core and reads deltas at a fixed rate;
    this class supports that by exposing absolute counter reads (the plugin
    differentiates).  Reads are user-mode safe: no special privilege state
    is modelled because the kernel's perf layer virtualises the CSRs.
    """

    def __init__(self, hpm_units: Iterable[HPMUnit]) -> None:
        self._units = {unit.core_id: unit for unit in hpm_units}
        if not self._units:
            raise ValueError("perf interface needs at least one core")

    @property
    def core_ids(self) -> list[int]:
        """Cores enumerated by the interface, ascending."""
        return sorted(self._units)

    def available_events(self, core_id: int) -> list[str]:
        """Event names that return live values on ``core_id`` right now."""
        unit = self._units[core_id]
        events = list(FIXED_EVENTS)
        if unit.programmable_enabled:
            events.extend(PROGRAMMABLE_EVENTS)
        return events

    def read(self, core_id: int, event: str) -> int:
        """Absolute counter value for ``event`` on ``core_id``.

        Fixed counters always read; programmable events read zero while the
        bank is disabled — the exact symptom the paper's U-Boot patch fixes.
        """
        unit = self._units[core_id]
        if event == "cycles":
            return unit.cycle
        if event == "instructions":
            return unit.instret
        return unit.read_event(event)

    def read_all(self, core_id: int) -> Mapping[str, int]:
        """Snapshot of every counter on one core."""
        return self._units[core_id].snapshot()
