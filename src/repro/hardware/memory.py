"""DDR4 memory-subsystem model.

The HiFive Unmatched carries 16 GB of 64-bit DDR4 at up to 1866 MT/s; the
paper computes STREAM efficiency against a 7760 MB/s peak.  Beyond the
bandwidth role (delegated to :class:`repro.hardware.cache.L2Cache` for
pattern effects), this model tracks allocation (the scheduler and the
benchmarks reserve memory) and activity level (the power model's
``ddr_mem`` rail input).
"""

from __future__ import annotations

from typing import Dict

from repro.hardware.specs import MemorySpec, DDR_SPEC

__all__ = ["DDR4Subsystem", "OutOfMemoryError"]


class OutOfMemoryError(RuntimeError):
    """Raised when an allocation exceeds the remaining node DRAM."""


class DDR4Subsystem:
    """The node's main memory: capacity accounting plus activity level.

    ``activity`` is the fraction of peak bandwidth currently being drawn;
    the power model maps it onto the ``ddr_mem``/``ddr_soc``/``ddr_vpp``
    rails (Table VI shows STREAM.DDR pushing ddr_mem from 404 mW idle to
    592 mW).
    """

    def __init__(self, spec: MemorySpec = DDR_SPEC) -> None:
        self.spec = spec
        self._allocations: Dict[str, int] = {}
        self._activity = 0.0
        self._initialised = False

    # -- boot --------------------------------------------------------------
    @property
    def initialised(self) -> bool:
        """Whether memory training (bootloader region R2) has completed."""
        return self._initialised

    def initialise(self) -> None:
        """Run DDR training; required before any allocation.

        A (re-)initialisation clears all previous allocations — DRAM does
        not survive a power cycle.
        """
        self._initialised = True
        self._allocations.clear()
        self._activity = 0.0

    # -- capacity ------------------------------------------------------------
    @property
    def capacity_bytes(self) -> int:
        """Installed capacity."""
        return self.spec.capacity_bytes

    @property
    def allocated_bytes(self) -> int:
        """Currently reserved bytes across all owners."""
        return sum(self._allocations.values())

    @property
    def free_bytes(self) -> int:
        """Bytes available for new allocations."""
        return self.capacity_bytes - self.allocated_bytes

    def allocate(self, owner: str, n_bytes: int) -> None:
        """Reserve ``n_bytes`` for ``owner`` (cumulative per owner)."""
        if not self._initialised:
            raise RuntimeError("allocation before DDR initialisation")
        if n_bytes < 0:
            raise ValueError(f"negative allocation {n_bytes}")
        if n_bytes > self.free_bytes:
            raise OutOfMemoryError(
                f"{owner}: requested {n_bytes} bytes, only {self.free_bytes} free")
        self._allocations[owner] = self._allocations.get(owner, 0) + n_bytes

    def release(self, owner: str) -> int:
        """Free everything held by ``owner``; returns the byte count."""
        return self._allocations.pop(owner, 0)

    def usage(self) -> Dict[str, int]:
        """Memory usage in the shape stats_pub reports (Table III)."""
        used = self.allocated_bytes
        free = self.free_bytes
        # Buffers/cache modelled as a fixed small OS share of free memory.
        buff = int(0.01 * self.capacity_bytes)
        cach = int(0.04 * self.capacity_bytes)
        return {"used": used, "free": max(0, free - buff - cach),
                "buff": buff, "cach": cach}

    # -- activity -----------------------------------------------------------
    @property
    def activity(self) -> float:
        """Fraction of peak bandwidth currently drawn (power-model input)."""
        return self._activity

    def set_activity(self, fraction: float) -> None:
        """Set instantaneous bandwidth draw as a fraction of peak."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"activity {fraction} outside [0, 1]")
        self._activity = fraction
