"""PCIe accelerator cards — the §VI future-work expansion, modelled.

§III: the RV007 blade's dual 250 W supplies leave "abundant power headroom
for future expansions with hardware accelerators and PCIe Network Card
connector"; §VI lists "extend Monte Cimone with PCIe RISC-V based
accelerators" as future work.  This module models that expansion so the
headroom claim can be checked quantitatively:

* an :class:`AcceleratorCard` with idle/TDP power and a compute peak;
* PCIe electrical/mechanical compatibility against the board's Gen3 x8
  slot (x16 connector, 8 lanes wired — §III);
* offload accounting so an accelerated job's FLOPs can be split between
  the host FPU and the card.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["AcceleratorCard", "PCIeSlot", "RISCV_VECTOR_CARD", "SlotError"]


class SlotError(RuntimeError):
    """Electrical or mechanical incompatibility with the PCIe slot."""


@dataclass(frozen=True)
class PCIeSlot:
    """The HiFive Unmatched PCIe slot: Gen3, x16 mechanical, x8 electrical."""

    generation: int = 3
    mechanical_lanes: int = 16
    electrical_lanes: int = 8

    def lane_bandwidth_bytes_per_s(self) -> float:
        """Per-lane payload bandwidth (Gen3 ≈ 0.985 GB/s/lane)."""
        per_lane = {1: 0.25e9, 2: 0.5e9, 3: 0.985e9, 4: 1.97e9}
        return per_lane[self.generation]

    def link_bandwidth_bytes_per_s(self, card_lanes: int) -> float:
        """Negotiated link bandwidth for a card requesting ``card_lanes``."""
        return (min(card_lanes, self.electrical_lanes)
                * self.lane_bandwidth_bytes_per_s())


@dataclass(frozen=True)
class AcceleratorCard:
    """A PCIe accelerator: power envelope, peak and link width."""

    name: str
    tdp_w: float
    idle_w: float
    peak_flops: float
    lanes: int = 8
    requires_aux_power: bool = False

    def __post_init__(self) -> None:
        if self.idle_w < 0 or self.tdp_w < self.idle_w:
            raise ValueError("need 0 <= idle_w <= tdp_w")
        if self.peak_flops <= 0:
            raise ValueError("peak must be positive")
        if self.lanes not in (1, 2, 4, 8, 16):
            raise ValueError(f"invalid lane count {self.lanes}")

    def power_w(self, utilisation: float) -> float:
        """Card power at a given compute utilisation."""
        if not 0.0 <= utilisation <= 1.0:
            raise ValueError(f"utilisation {utilisation} outside [0, 1]")
        return self.idle_w + utilisation * (self.tdp_w - self.idle_w)

    def validate_in(self, slot: PCIeSlot, psu_headroom_w: float) -> float:
        """Check this card fits the slot and PSU budget.

        Returns the negotiated link bandwidth.  Raises :class:`SlotError`
        when the card cannot be powered from the slot + headroom (the
        RV007's per-board 250 W supply is the budget the paper highlights).
        """
        if self.lanes > slot.mechanical_lanes:
            raise SlotError(f"{self.name}: x{self.lanes} card does not fit "
                            f"an x{slot.mechanical_lanes} slot")
        slot_power_budget = 75.0  # PCIe CEM slot power
        if not self.requires_aux_power and self.tdp_w > slot_power_budget:
            raise SlotError(f"{self.name}: {self.tdp_w} W exceeds the 75 W "
                            f"slot budget without aux power")
        if self.tdp_w > psu_headroom_w:
            raise SlotError(f"{self.name}: {self.tdp_w} W exceeds the "
                            f"remaining PSU headroom {psu_headroom_w:.0f} W")
        return slot.link_bandwidth_bytes_per_s(self.lanes)

    def offload_speedup(self, host_peak_flops: float,
                        offload_fraction: float,
                        accelerator_efficiency: float = 0.5) -> float:
        """Amdahl-style speedup of offloading part of a workload.

        ``offload_fraction`` of the work runs on the card at
        ``accelerator_efficiency`` of its peak; the rest stays on the host.
        """
        if not 0.0 <= offload_fraction <= 1.0:
            raise ValueError("offload_fraction outside [0, 1]")
        card_rate = self.peak_flops * accelerator_efficiency
        host_time = (1.0 - offload_fraction)
        card_time = offload_fraction * host_peak_flops / card_rate
        return 1.0 / max(host_time + card_time, 1e-12)


#: A plausible RISC-V vector accelerator of the class §VI anticipates
#: (EPI-style PCIe card): 64 GFLOP/s DP within a 60 W slot-powered budget.
RISCV_VECTOR_CARD = AcceleratorCard(
    name="riscv-vector-accel", tdp_w=60.0, idle_w=9.0,
    peak_flops=64e9, lanes=8)
