"""L2 cache and stream-prefetcher model.

§V-A of the paper attributes the poor DDR-resident STREAM result (≤15.5% of
peak) partly to the L2 prefetcher not being exploited by the upstream
toolchain, while L2-resident STREAM reaches much higher bandwidth.  The
model here captures exactly the quantities that discussion turns on:

* working-set classification (fits in L2 vs spills to DDR),
* a prefetcher with a bounded number of tracked streams per core whose
  *efficiency* (fraction of demand misses it hides) is a calibration knob,
* effective bandwidth for a given access pattern.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.specs import CacheSpec, L2_SPEC

__all__ = ["StreamPrefetcher", "L2Cache", "AccessPattern"]


@dataclass(frozen=True)
class AccessPattern:
    """A memory access pattern as the bandwidth model sees it.

    Attributes
    ----------
    working_set_bytes:
        Total bytes touched per iteration across all threads.
    n_streams:
        Concurrent sequential streams per core (STREAM copy has 2,
        triad has 3, HPL's DGEMM inner loops have ~3).
    read_fraction:
        Fraction of traffic that is reads (write-allocate traffic is
        added by the model).
    spatial_locality:
        Fraction of accesses that hit the same cache line as a
        predecessor; 1.0 for unit-stride.
    """

    working_set_bytes: int
    n_streams: int = 2
    read_fraction: float = 0.5
    spatial_locality: float = 1.0

    def __post_init__(self) -> None:
        if self.working_set_bytes < 0:
            raise ValueError("negative working set")
        if self.n_streams < 1:
            raise ValueError("need at least one stream")
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ValueError(f"read_fraction {self.read_fraction} outside [0, 1]")


class StreamPrefetcher:
    """The U74 L2 prefetcher: tracks up to ``max_streams`` per core.

    ``efficiency`` is the fraction of sequential demand misses whose latency
    the prefetcher hides when it *is* tracking the stream.  The paper's
    observation is that with the upstream stack the attained efficiency is
    far below what eight tracked streams should allow — the default value
    (0.30) is calibrated so the STREAM.DDR numbers of Table V emerge, and
    the ablation benchmark raises it to show the headroom the authors
    predict.
    """

    def __init__(self, max_streams: int = L2_SPEC.prefetch_streams,
                 efficiency: float = 0.30) -> None:
        if max_streams < 0:
            raise ValueError("negative stream count")
        if not 0.0 <= efficiency <= 1.0:
            raise ValueError(f"efficiency {efficiency} outside [0, 1]")
        self.max_streams = max_streams
        self.efficiency = efficiency

    def coverage(self, pattern: AccessPattern) -> float:
        """Fraction of miss latency hidden for ``pattern``.

        When a workload uses more concurrent streams than the prefetcher can
        track, coverage degrades proportionally; irregular (low spatial
        locality) patterns are not prefetched at all.
        """
        if self.max_streams == 0:
            return 0.0
        tracked = min(pattern.n_streams, self.max_streams) / pattern.n_streams
        return self.efficiency * tracked * pattern.spatial_locality


class L2Cache:
    """The shared 2 MiB L2 of the U740, with its prefetcher.

    The central question every workload model asks is *what bandwidth do I
    get for this pattern* — answered by :meth:`effective_bandwidth`.
    """

    def __init__(self, spec: CacheSpec = L2_SPEC,
                 prefetcher: StreamPrefetcher | None = None) -> None:
        self.spec = spec
        self.prefetcher = prefetcher if prefetcher is not None else StreamPrefetcher(
            max_streams=spec.prefetch_streams)

    def fits(self, pattern: AccessPattern) -> bool:
        """Whether the working set is L2-resident.

        A small safety margin (90% of capacity) accounts for code,
        stack and OS lines co-resident in the cache.
        """
        return pattern.working_set_bytes <= 0.9 * self.spec.size_bytes

    def hit_rate(self, pattern: AccessPattern) -> float:
        """Steady-state L2 hit rate for ``pattern``.

        L2-resident sets hit almost always; streaming sets hit only on the
        within-line reuse implied by spatial locality plus prefetch coverage.
        """
        if self.fits(pattern):
            return 0.995
        line_reuse = 1.0 - 8.0 / self.spec.line_bytes  # 8-byte doubles
        base = line_reuse * pattern.spatial_locality
        return min(0.999, base + (1 - base) * self.prefetcher.coverage(pattern))

    def effective_bandwidth(self, pattern: AccessPattern,
                            ddr_bandwidth: float) -> float:
        """Deliverable bandwidth in bytes/s for ``pattern``.

        L2-resident patterns stream from the cache at a kernel-dependent
        fraction of the L2 port bandwidth; DDR-bound patterns are limited by
        memory-level parallelism: an in-order core exposes few outstanding
        misses, and only prefetch coverage recovers bandwidth beyond that
        latency-bound floor.
        """
        if self.fits(pattern):
            return self.spec.bandwidth_bytes_per_s
        # Latency-bound floor: an in-order dual-issue core sustains a small
        # fraction of DDR peak on demand misses alone (the paper's ~13-16%
        # STREAM result *is* this floor with the prefetcher barely helping).
        demand_floor = 0.13 * ddr_bandwidth
        coverage = self.prefetcher.coverage(pattern)
        return min(ddr_bandwidth, demand_floor + coverage * (ddr_bandwidth - demand_floor))
