"""Trace exporters: Chrome ``trace_event`` JSON and a plain-text tree.

The JSON form follows the Trace Event Format used by ``chrome://tracing``
and Perfetto: one complete-duration event (``"ph": "X"``) per finished
span, timestamps in microseconds, plus metadata events naming each track.
Tracks (``tid``) map to the span's nearest enclosing *process* span, so a
node's boot phases stack inside its boot process, a job's slices inside
the job process — the layout the scheduler actually produced.

The text form is the grep-friendly equivalent: an indented tree with
durations and attributes, one span per line.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.obs.trace import Span, Tracer

__all__ = ["to_chrome_trace", "chrome_trace_json", "span_tree_text",
           "validate_chrome_trace"]

#: Synthetic process id for the whole simulation (one sim = one "process").
_PID = 1


def _track_of(span: Span, spans: Dict[int, Span]) -> int:
    """The track a span renders on: its nearest process-span ancestor."""
    node: Optional[Span] = span
    while node is not None:
        if node.category == "process":
            return node.span_id
        node = spans.get(node.parent_id) if node.parent_id is not None else None
    return 0  # top-level non-process spans share the "main" track


def to_chrome_trace(tracer: Tracer) -> Dict[str, Any]:
    """Render finished spans as a Chrome trace_event document.

    Open spans (a daemon still running when the run stopped) are clamped
    to the tracer's current time so the export is always loadable.
    """
    spans = tracer.by_id()
    events: List[Dict[str, Any]] = []
    tracks: Dict[int, str] = {}
    for span in tracer.spans:
        end_s = span.end_s if span.end_s is not None else tracer.now
        tid = _track_of(span, spans)
        if tid not in tracks:
            tracks[tid] = (spans[tid].name if tid in spans else "main")
        args: Dict[str, Any] = {"span_id": span.span_id,
                                "status": span.status}
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        args.update(span.attributes)
        events.append({
            "name": span.name,
            "cat": span.category,
            "ph": "X",
            "ts": span.start_s * 1e6,
            "dur": max(end_s - span.start_s, 0.0) * 1e6,
            "pid": _PID,
            "tid": tid,
            "args": args,
        })
    # Monotone per-track timestamps: sort by (tid, ts, span_id).
    events.sort(key=lambda e: (e["tid"], e["ts"], e["args"]["span_id"]))
    metadata: List[Dict[str, Any]] = [{
        "name": "process_name", "ph": "M", "pid": _PID, "tid": 0,
        "args": {"name": "repro simulation"},
    }]
    for tid in sorted(tracks):
        metadata.append({"name": "thread_name", "ph": "M", "pid": _PID,
                         "tid": tid, "args": {"name": tracks[tid]}})
    return {"traceEvents": metadata + events, "displayTimeUnit": "ms"}


def chrome_trace_json(tracer: Tracer) -> str:
    """The trace document serialised (stable key order)."""
    return json.dumps(to_chrome_trace(tracer), sort_keys=True, indent=1)


def span_tree_text(tracer: Tracer, metrics: bool = True) -> str:
    """Indented span forest with durations, statuses and attributes."""
    lines: List[str] = []
    for depth, span in tracer.walk():
        end_s = span.end_s if span.end_s is not None else tracer.now
        marker = "" if span.finished else " (open)"
        status = "" if span.status == "ok" else f" !{span.status}"
        attrs = ""
        if span.attributes:
            attrs = "  {" + ", ".join(
                f"{k}={v}" for k, v in sorted(span.attributes.items())) + "}"
        lines.append(f"{'  ' * depth}{span.name}  "
                     f"[{span.start_s:.3f}s – {end_s:.3f}s, "
                     f"{end_s - span.start_s:.3f}s]{status}{marker}{attrs}")
    if not lines:
        lines.append("(no spans recorded)")
    if metrics:
        lines.append("")
        lines.append("-- metrics " + "-" * 40)
        lines.append(tracer.metrics.render())
    return "\n".join(lines)


def validate_chrome_trace(document: Any) -> List[str]:
    """Structural validation against the Trace Event Format.

    Returns a list of problems (empty = valid).  Checks the invariants
    Perfetto's importer actually enforces: the event array exists, every
    event carries name/ph/pid/tid, ``X`` events have numeric ``ts`` and a
    non-negative ``dur``, and timestamps are monotone within each track.
    """
    problems: List[str] = []
    if not isinstance(document, dict) or "traceEvents" not in document:
        return ["document is not an object with a 'traceEvents' array"]
    events = document["traceEvents"]
    if not isinstance(events, list):
        return ["'traceEvents' is not an array"]
    last_ts: Dict[Any, float] = {}
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        for key in ("name", "ph", "pid", "tid"):
            if key not in event:
                problems.append(f"{where}: missing {key!r}")
        ph = event.get("ph")
        if ph == "M":
            continue
        if ph != "X":
            problems.append(f"{where}: unexpected phase {ph!r}")
            continue
        ts, dur = event.get("ts"), event.get("dur")
        if not isinstance(ts, (int, float)):
            problems.append(f"{where}: non-numeric ts {ts!r}")
            continue
        if not isinstance(dur, (int, float)) or dur < 0:
            problems.append(f"{where}: bad dur {dur!r}")
        track = (event.get("pid"), event.get("tid"))
        if ts < last_ts.get(track, float("-inf")):
            problems.append(f"{where}: ts {ts} goes backwards on track {track}")
        last_ts[track] = ts
    return problems
