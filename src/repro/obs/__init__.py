"""Observability for the simulator itself: span tracing and metrics.

The ExaMon substrate (:mod:`repro.examon`) observes the *simulated*
cluster; this package observes the *simulation* — which processes ran
when, where engine time went, what the broker hot path cost.  It is the
measurement layer every performance PR asserts against.

Layout:

* :mod:`repro.obs.trace` — spans over simulated time, the tracer, and
  the kernel hook protocol (``Engine.tracer``);
* :mod:`repro.obs.metrics` — counters/gauges and the registry;
* :mod:`repro.obs.export` — Chrome ``trace_event`` JSON (Perfetto /
  ``chrome://tracing``) and plain-text span trees;
* :mod:`repro.obs.instrument` — attaching tracers and registering
  broker/scheduler/MPI metrics;
* :mod:`repro.obs.experiments` — the canned traced runs behind the
  ``repro trace`` CLI subcommand.

Everything here is deterministic: spans carry simulated timestamps and
metrics count simulation work, so traces are byte-identical across runs
and machines (simlint's DET rules apply to this package like any other).
"""

from repro.obs.export import (chrome_trace_json, span_tree_text,
                              to_chrome_trace, validate_chrome_trace)
from repro.obs.instrument import (attach_tracer, detach_tracer,
                                  register_broker_metrics,
                                  register_engine_metrics,
                                  register_mpi_metrics,
                                  register_scheduler_metrics,
                                  register_tsdb_metrics)
from repro.obs.metrics import Counter, Gauge, MetricsRegistry
from repro.obs.trace import NULL_SPAN, Span, Tracer, span_of

__all__ = [
    "Counter", "Gauge", "MetricsRegistry",
    "NULL_SPAN", "Span", "Tracer", "span_of",
    "attach_tracer", "detach_tracer",
    "register_broker_metrics", "register_engine_metrics",
    "register_mpi_metrics", "register_scheduler_metrics",
    "register_tsdb_metrics",
    "chrome_trace_json", "span_tree_text", "to_chrome_trace",
    "validate_chrome_trace",
]
