"""Span tracing for the simulation substrate.

A :class:`Span` is one named interval of *simulated* time — a process
lifetime, a boot region, a SLURM job attempt, an MPI collective — with a
parent link, so a run unfolds into a tree ("which job attempt, on which
node, spent its time in which phase").  The design follows the Dapper
lineage of span trees, with one deliberate difference: timestamps come
from the engine's simulated clock, never the host's, so a trace is as
deterministic as the run it observed and two runs of the same experiment
produce byte-identical traces.

The tracer attaches to an :class:`~repro.events.engine.Engine` as its
``tracer`` attribute (see :func:`repro.obs.instrument.attach_tracer`).
The kernel guards every hook behind a single ``is not None`` check, so a
simulation without a tracer pays one attribute test per operation and
nothing else — tracing is strictly opt-in.

Hook protocol (called by the kernel, cheap by construction):

* ``on_event_scheduled(queue_depth)`` / ``on_event_processed()`` —
  engine heap accounting;
* ``on_failure_ledgered()`` / ``on_failure_defused()`` — failure-ledger
  accounting;
* ``on_process_spawn(process)`` — opens the process span;
* ``on_process_resume(process)`` / ``on_process_suspend(process,
  finished)`` — maintain the current-span context across generator
  resumes, and close the process span at its final suspension.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Optional

from repro.obs.metrics import MetricsRegistry

__all__ = ["Span", "Tracer", "NULL_SPAN", "span_of"]


class Span:
    """One named interval of simulated time in the trace tree."""

    __slots__ = ("span_id", "name", "category", "start_s", "end_s",
                 "parent_id", "attributes", "status", "_tracer")

    def __init__(self, tracer: "Tracer", span_id: int, name: str,
                 category: str, start_s: float, parent_id: Optional[int],
                 attributes: Optional[Dict[str, Any]]) -> None:
        self._tracer = tracer
        self.span_id = span_id
        self.name = name
        self.category = category
        self.start_s = start_s
        self.end_s: Optional[float] = None
        self.parent_id = parent_id
        self.attributes: Dict[str, Any] = dict(attributes) if attributes else {}
        self.status = "ok"

    @property
    def finished(self) -> bool:
        """True once the span's end time is recorded."""
        return self.end_s is not None

    @property
    def duration_s(self) -> float:
        """Span length; an open span extends to the tracer's current time."""
        end = self.end_s if self.end_s is not None else self._tracer.now
        return end - self.start_s

    def set(self, **attributes: Any) -> "Span":
        """Attach attributes to the span (last write wins per key)."""
        self.attributes.update(attributes)
        return self

    def end(self, status: Optional[str] = None) -> None:
        """Close the span at the current simulated time (idempotent)."""
        if self.end_s is None:
            self.end_s = self._tracer.now
            if status is not None:
                self.status = status

    # -- context manager ----------------------------------------------------
    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type: Any, exc: Any, _tb: Any) -> None:
        self.end(status="failed" if exc_type is not None else None)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        end = f"{self.end_s:.6f}" if self.end_s is not None else "open"
        return (f"Span#{self.span_id}({self.name!r}, {self.category}, "
                f"[{self.start_s:.6f}, {end}])")


class _NullSpan:
    """The do-nothing span returned by :meth:`Tracer.maybe_span` helpers."""

    __slots__ = ()

    def set(self, **_attributes: Any) -> "_NullSpan":
        return self

    def end(self, status: Optional[str] = None) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *_exc: Any) -> None:
        pass


#: Shared inert span: call sites can trace unconditionally through
#: ``span_of(engine, ...)`` without per-call allocations when disabled.
NULL_SPAN = _NullSpan()


class Tracer:
    """Collects spans and engine metrics for one simulation run.

    Parameters
    ----------
    clock:
        Anything with a ``now`` attribute in simulated seconds — in
        practice the :class:`~repro.events.engine.Engine` itself.
    metrics:
        Registry receiving the engine counters; a fresh one is created
        when omitted.
    """

    def __init__(self, clock: Any, metrics: Optional[MetricsRegistry] = None) -> None:
        self._clock = clock
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.spans: List[Span] = []
        self._next_id = 1
        self._stack: List[Span] = []
        # Engine instruments, resolved once so hooks are dict-free.
        self._events_scheduled = self.metrics.counter("engine.events_scheduled")
        self._events_processed = self.metrics.counter("engine.events_processed")
        self._heap_depth = self.metrics.gauge("engine.heap_depth")
        self._failures_ledgered = self.metrics.counter("engine.failures_ledgered")
        self._failures_defused = self.metrics.counter("engine.failures_defused")
        self._processes_spawned = self.metrics.counter("engine.processes_spawned")

    # -- clock ---------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time, read from the attached clock."""
        return self._clock.now

    # -- span construction ---------------------------------------------------
    @property
    def current(self) -> Optional[Span]:
        """The innermost open span of the currently-resuming process."""
        return self._stack[-1] if self._stack else None

    def begin(self, name: str, category: str = "sim",
              parent: Optional[Span] = None,
              **attributes: Any) -> Span:
        """Open a span starting now; parent defaults to the current span."""
        if parent is None:
            parent = self.current
        span = Span(self, self._next_id, name, category, self.now,
                    parent.span_id if parent is not None else None,
                    attributes or None)
        self._next_id += 1
        self.spans.append(span)
        return span

    def span(self, name: str, category: str = "sim",
             **attributes: Any) -> Span:
        """Context-manager form of :meth:`begin` (span ends on exit)."""
        return self.begin(name, category, **attributes)

    def record(self, name: str, start_s: float, end_s: float,
               category: str = "sim", parent: Optional[Span] = None,
               **attributes: Any) -> Span:
        """Add an already-completed span (e.g. a modelled collective)."""
        if end_s < start_s:
            raise ValueError(f"span {name!r} ends before it starts: "
                             f"[{start_s}, {end_s}]")
        span = self.begin(name, category, parent=parent, **attributes)
        span.start_s = start_s
        span.end_s = end_s
        return span

    # -- tree views ----------------------------------------------------------
    def by_id(self) -> Dict[int, Span]:
        """Span lookup table."""
        return {span.span_id: span for span in self.spans}

    def children_of(self, span: Optional[Span]) -> List[Span]:
        """Direct children (roots for ``None``), in start order."""
        wanted = span.span_id if span is not None else None
        return sorted((s for s in self.spans if s.parent_id == wanted),
                      key=lambda s: (s.start_s, s.span_id))

    def find(self, name_prefix: str) -> List[Span]:
        """All spans whose name starts with ``name_prefix``."""
        return [s for s in self.spans if s.name.startswith(name_prefix)]

    def walk(self) -> Iterator[tuple[int, Span]]:
        """Depth-first (depth, span) traversal of the whole forest."""
        def visit(span: Span, depth: int) -> Iterator[tuple[int, Span]]:
            yield depth, span
            for child in self.children_of(span):
                yield from visit(child, depth + 1)
        for root in self.children_of(None):
            yield from visit(root, 0)

    # -- kernel hooks --------------------------------------------------------
    def on_event_scheduled(self, queue_depth: int) -> None:
        self._events_scheduled.inc()
        self._heap_depth.set(queue_depth)

    def on_event_processed(self) -> None:
        self._events_processed.inc()

    def on_failure_ledgered(self) -> None:
        self._failures_ledgered.inc()

    def on_failure_defused(self) -> None:
        self._failures_defused.inc()

    def on_process_spawn(self, process: Any) -> None:
        self._processes_spawned.inc()
        process.obs_span = self.begin(f"process:{process.name}",
                                      category="process")

    def on_process_resume(self, process: Any) -> None:
        if process.obs_span is None:
            # Tracer attached after this process was spawned: open its
            # span late, covering the observed remainder of its life.
            self.on_process_spawn(process)
        self._stack.append(process.obs_span)

    def on_process_suspend(self, process: Any, finished: bool) -> None:
        self._stack.pop()
        if finished:
            span = process.obs_span
            if span is not None and span.end_s is None:
                span.end("failed" if process._exception is not None else "ok")


def span_of(engine: Any, name: str, category: str = "sim",
            **attributes: Any) -> Any:
    """A span on ``engine``'s tracer, or the shared no-op when untraced.

    The instrumentation idiom for simulation code::

        with span_of(engine, "boot.R1", "boot", node=self.hostname):
            yield engine.timeout(...)

    costs one attribute check when tracing is disabled.
    """
    tracer = engine.tracer
    if tracer is None:
        return NULL_SPAN
    return tracer.begin(name, category, **attributes)
