"""Traced simulation experiments for the ``repro trace`` CLI.

Each experiment builds a fully-instrumented run — tracer on the engine,
broker/scheduler metrics registered — drives a representative scenario,
and returns the :class:`~repro.obs.trace.Tracer` holding the span tree
and the metrics snapshot.  They are deliberately small (tens of simulated
seconds) so tracing a misbehaving campaign locally takes moments, not the
campaign's full runtime.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.obs.instrument import (attach_tracer, register_broker_metrics,
                                  register_scheduler_metrics)
from repro.obs.trace import Tracer

__all__ = ["TRACED_EXPERIMENTS", "trace_boot_power", "trace_fault_recovery"]


def trace_boot_power(job_duration_s: float = 30.0) -> Tracer:
    """The Fig. 4 boot-power scenario, traced end to end.

    Boots all eight nodes (R1/R2 region spans per node), starts the
    ExaMon deployment (plugin daemon processes), then runs a short
    four-node HPL job — so the trace shows boot phases, SLURM job
    attempts and the job's MPI panel-broadcast collectives on one
    timeline.
    """
    from repro.cluster.cluster import MonteCimoneCluster
    from repro.events.engine import Engine
    from repro.examon.deployment import ExamonDeployment
    from repro.power.model import HPL_PROFILE
    from repro.slurm.api import SlurmAPI
    from repro.thermal.enclosure import EnclosureConfig

    engine = Engine()
    tracer = attach_tracer(engine)
    cluster = MonteCimoneCluster(engine=engine,
                                 enclosure_config=EnclosureConfig.mitigated())
    register_scheduler_metrics(tracer.metrics, cluster.slurm)
    with tracer.span("experiment.boot-power", "experiment"):
        cluster.boot_all()
        deployment = ExamonDeployment(cluster)
        register_broker_metrics(tracer.metrics, deployment.broker)
        deployment.start()
        api = SlurmAPI(cluster.slurm)
        api.srun("hpl", "trace", nodes=4, duration_s=job_duration_s,
                 profile=HPL_PROFILE)
        deployment.stop()
        # One more sampling period so the plugin daemons observe their
        # stop flag and their process spans close.
        cluster.run_for(max(p.period_s for p in
                            deployment.stats_plugins.values()))
    return tracer


def trace_fault_recovery(job_duration_s: float = 60.0,
                         trip_at_s: float = 20.0) -> Tracer:
    """A fault-injection run: node trip mid-job, requeue, auto-recovery.

    The trace shows the failed first attempt, the backoff window (the gap
    between attempt spans inside the job span), the recovery process of
    the tripped node, and the successful second attempt.
    """
    from repro.cluster.cluster import MonteCimoneCluster
    from repro.events.engine import Engine
    from repro.power.model import HPL_PROFILE
    from repro.thermal.enclosure import EnclosureConfig

    engine = Engine()
    tracer = attach_tracer(engine)
    cluster = MonteCimoneCluster(engine=engine,
                                 enclosure_config=EnclosureConfig.mitigated())
    register_scheduler_metrics(tracer.metrics, cluster.slurm)
    with tracer.span("experiment.fault-recovery", "experiment"):
        cluster.boot_all()
        cluster.enable_auto_recovery(delay_s=30.0)
        job = cluster.slurm.submit("hpl", "trace", n_nodes=4,
                                   duration_s=job_duration_s,
                                   profile=HPL_PROFILE, requeue=True)
        victim = job.allocated_nodes[0]
        cluster.run_for(trip_at_s)
        cluster.inject_node_failure(victim, reason="injected fault")
        guard = engine.now + 100 * job_duration_s
        while not job.state.is_terminal and engine.peek() <= guard:
            engine.step()
    return tracer


#: Experiment name → builder, as exposed by ``repro trace <experiment>``.
TRACED_EXPERIMENTS: Dict[str, Callable[[], Tracer]] = {
    "boot-power": trace_boot_power,
    "fault-recovery": trace_fault_recovery,
}
