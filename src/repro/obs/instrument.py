"""Wiring the observability layer onto a running simulation.

The kernel hooks (engine/process) activate the moment an engine gains a
tracer; everything else — broker transport counters, scheduler queue
metrics, MPI collective accounting — attaches here through read-through
gauges and listener callbacks, so the observed subsystems carry no
observability dependency of their own.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer

__all__ = ["attach_tracer", "detach_tracer", "register_broker_metrics",
           "register_scheduler_metrics", "register_mpi_metrics"]


def attach_tracer(engine: Any, metrics: Optional[MetricsRegistry] = None) -> Tracer:
    """Create a :class:`Tracer` and install it as ``engine.tracer``.

    From this point on, every spawned process opens a span and the engine
    counters tick; processes already alive get their spans opened lazily
    at their next resumption.
    """
    tracer = Tracer(engine, metrics)
    engine.tracer = tracer
    return tracer


def detach_tracer(engine: Any) -> None:
    """Remove the engine's tracer; the kernel reverts to zero-cost mode."""
    engine.tracer = None


def register_broker_metrics(registry: MetricsRegistry, broker: Any,
                            prefix: str = "broker") -> None:
    """Expose an :class:`~repro.examon.broker.MQTTBroker`'s transport load.

    ``broker.match_ops`` counts subscription-index nodes visited while
    matching — the deterministic stand-in for "time spent matching"
    (wall-clock reads are banned in simulation code by simlint DET101).
    """
    registry.gauge_callback(f"{prefix}.messages_published",
                            lambda: broker.messages_published)
    registry.gauge_callback(f"{prefix}.messages_delivered",
                            lambda: broker.messages_delivered)
    registry.gauge_callback(f"{prefix}.bytes_published",
                            lambda: broker.bytes_published)
    registry.gauge_callback(f"{prefix}.match_ops", lambda: broker.match_ops)
    registry.gauge_callback(f"{prefix}.subscriptions",
                            lambda: broker.subscription_count)
    registry.gauge_callback(f"{prefix}.retained_topics",
                            lambda: len(broker.retained_topics()))


def register_scheduler_metrics(registry: MetricsRegistry, controller: Any,
                               prefix: str = "slurm") -> None:
    """Expose a :class:`~repro.slurm.scheduler.SlurmController`'s load.

    Queue depth is a read-through gauge; requeues and completions are
    counted through the controller's listener lists, so the counters see
    exactly the transitions accounting sees.
    """
    registry.gauge_callback(f"{prefix}.queue_depth",
                            lambda: controller.queue_depth)
    registry.gauge_callback(f"{prefix}.jobs_known",
                            lambda: len(controller.jobs))
    requeues = registry.counter(f"{prefix}.requeues")
    finished = registry.counter(f"{prefix}.jobs_finished")
    controller.on_job_requeue.append(lambda _job: requeues.inc())
    controller.on_job_end.append(lambda _job: finished.inc())


def register_mpi_metrics(registry: MetricsRegistry, model: Any,
                         tracer: Optional[Tracer] = None,
                         prefix: str = "mpi") -> None:
    """Count (and optionally trace) an :class:`MPICostModel`'s collectives.

    Installs the model's ``observer`` hook.  With a tracer, every
    modelled collective is also recorded as a completed span starting at
    the current simulated time and spanning its modelled cost — analytic
    models (the HPL predictor) thereby show up on the same timeline as
    the engine-driven processes that invoked them.
    """
    collectives = registry.counter(f"{prefix}.collectives")
    bytes_moved = registry.counter(f"{prefix}.bytes")
    time_gauge = registry.gauge(f"{prefix}.modelled_time_s")
    total = {"s": 0.0}

    def observe(kind: str, n_bytes: int, n_ranks: int, cost_s: float) -> None:
        collectives.inc()
        bytes_moved.inc(int(n_bytes))
        total["s"] += cost_s
        time_gauge.set(total["s"])
        if tracer is not None:
            start = tracer.now
            tracer.record(f"mpi.{kind}", start, start + cost_s,
                          category="mpi", n_bytes=int(n_bytes),
                          n_ranks=n_ranks)

    model.observer = observe
