"""Wiring the observability layer onto a running simulation.

The kernel hooks (engine/process) activate the moment an engine gains a
tracer; everything else — broker transport counters, scheduler queue
metrics, MPI collective accounting — attaches here through read-through
gauges and listener callbacks, so the observed subsystems carry no
observability dependency of their own.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer

__all__ = ["attach_tracer", "detach_tracer", "register_engine_metrics",
           "register_broker_metrics", "register_scheduler_metrics",
           "register_mpi_metrics", "register_tsdb_metrics"]


def attach_tracer(engine: Any, metrics: Optional[MetricsRegistry] = None) -> Tracer:
    """Create a :class:`Tracer` and install it as ``engine.tracer``.

    From this point on, every spawned process opens a span and the engine
    counters tick; processes already alive get their spans opened lazily
    at their next resumption.
    """
    tracer = Tracer(engine, metrics)
    engine.tracer = tracer
    return tracer


def detach_tracer(engine: Any) -> None:
    """Remove the engine's tracer; the kernel reverts to zero-cost mode."""
    engine.tracer = None


def register_engine_metrics(registry: MetricsRegistry, engine: Any,
                            prefix: str = "engine") -> None:
    """Expose the kernel's scheduling-tier usage as read-through gauges.

    ``fifo_hits`` / ``wheel_hits`` are the engine's deterministic
    fast-path counters (how many pops the zero-delay lane and the
    calendar buckets served); ``wheel_depth`` is the number of distinct
    future timestamps currently bucketed.  Together they say *why* a
    workload is fast or slow on the tiered scheduler — a wheel_depth
    that tracks queue_depth means the workload has no timestamp sharing
    for the wheel to exploit.
    """
    registry.gauge_callback(f"{prefix}.queue_depth",
                            lambda: engine.queue_depth)
    registry.gauge_callback(f"{prefix}.wheel_depth",
                            lambda: engine.wheel_depth)
    registry.gauge_callback(f"{prefix}.fifo_hits", lambda: engine.fifo_hits)
    registry.gauge_callback(f"{prefix}.wheel_hits", lambda: engine.wheel_hits)


def register_broker_metrics(registry: MetricsRegistry, broker: Any,
                            prefix: str = "broker") -> None:
    """Expose an :class:`~repro.examon.broker.MQTTBroker`'s transport load.

    ``broker.match_ops`` counts subscription-index nodes visited while
    matching — the deterministic stand-in for "time spent matching"
    (wall-clock reads are banned in simulation code by simlint DET101).
    """
    registry.gauge_callback(f"{prefix}.messages_published",
                            lambda: broker.messages_published)
    registry.gauge_callback(f"{prefix}.messages_delivered",
                            lambda: broker.messages_delivered)
    registry.gauge_callback(f"{prefix}.bytes_published",
                            lambda: broker.bytes_published)
    registry.gauge_callback(f"{prefix}.match_ops", lambda: broker.match_ops)
    registry.gauge_callback(f"{prefix}.match_cache_hits",
                            lambda: broker.match_cache_hits)
    registry.gauge_callback(f"{prefix}.subscriptions",
                            lambda: broker.subscription_count)
    registry.gauge_callback(f"{prefix}.retained_topics",
                            lambda: len(broker.retained_topics()))


def register_tsdb_metrics(registry: MetricsRegistry, tsdb: Any,
                          prefix: str = "tsdb") -> None:
    """Expose a :class:`~repro.examon.tsdb.TimeSeriesDB`'s ingest load.

    ``fast_appends`` vs ``sorted_inserts`` splits the insert traffic into
    the monotone append-only fast path and the out-of-order ``bisect``
    slow path (outage backfills) — the ratio is the health indicator for
    the storage hot path.
    """
    registry.gauge_callback(f"{prefix}.points_stored",
                            lambda: tsdb.points_stored)
    registry.gauge_callback(f"{prefix}.fast_appends",
                            lambda: tsdb.fast_appends)
    registry.gauge_callback(f"{prefix}.sorted_inserts",
                            lambda: tsdb.sorted_inserts)
    registry.gauge_callback(f"{prefix}.decode_errors",
                            lambda: tsdb.decode_errors)


def register_scheduler_metrics(registry: MetricsRegistry, controller: Any,
                               prefix: str = "slurm") -> None:
    """Expose a :class:`~repro.slurm.scheduler.SlurmController`'s load.

    Queue depth is a read-through gauge; requeues and completions are
    counted through the controller's listener lists, so the counters see
    exactly the transitions accounting sees.
    """
    registry.gauge_callback(f"{prefix}.queue_depth",
                            lambda: controller.queue_depth)
    registry.gauge_callback(f"{prefix}.jobs_known",
                            lambda: len(controller.jobs))
    requeues = registry.counter(f"{prefix}.requeues")
    finished = registry.counter(f"{prefix}.jobs_finished")
    controller.on_job_requeue.append(lambda _job: requeues.inc())
    controller.on_job_end.append(lambda _job: finished.inc())


def register_mpi_metrics(registry: MetricsRegistry, model: Any,
                         tracer: Optional[Tracer] = None,
                         prefix: str = "mpi") -> None:
    """Count (and optionally trace) an :class:`MPICostModel`'s collectives.

    Installs the model's ``observer`` hook.  With a tracer, every
    modelled collective is also recorded as a completed span starting at
    the current simulated time and spanning its modelled cost — analytic
    models (the HPL predictor) thereby show up on the same timeline as
    the engine-driven processes that invoked them.
    """
    collectives = registry.counter(f"{prefix}.collectives")
    bytes_moved = registry.counter(f"{prefix}.bytes")
    time_gauge = registry.gauge(f"{prefix}.modelled_time_s")
    total = {"s": 0.0}

    def observe(kind: str, n_bytes: int, n_ranks: int, cost_s: float) -> None:
        collectives.inc()
        bytes_moved.inc(int(n_bytes))
        total["s"] += cost_s
        time_gauge.set(total["s"])
        if tracer is not None:
            start = tracer.now
            tracer.record(f"mpi.{kind}", start, start + cost_s,
                          category="mpi", n_bytes=int(n_bytes),
                          n_ranks=n_ranks)

    model.observer = observe
