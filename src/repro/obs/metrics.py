"""Counters and gauges for the simulation substrate itself.

The ExaMon layer observes the *simulated* cluster; this registry observes
the *simulator*: how many kernel events fired, how deep the heap got, how
many broker deliveries a fault campaign cost.  Everything here is
deterministic — metrics count simulation work, never host wall-clock time
— so a metrics snapshot is as replayable as the run that produced it.

Three instrument kinds cover every use in the tree:

* :class:`Counter` — monotone event counts (``engine.events_processed``);
* :class:`Gauge` — last-value-wins levels with a high-watermark
  (``engine.heap_depth``);
* callback gauges — read-through views over state other subsystems
  already keep (``broker.messages_published``), registered with
  :meth:`MetricsRegistry.gauge_callback` so a snapshot never requires the
  owner to push updates.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, Optional, Tuple, Union

__all__ = ["Counter", "Gauge", "MetricsRegistry"]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (must be non-negative) to the count."""
        if n < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease by {n}")
        self.value += n

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Counter({self.name!r}, {self.value})"


class Gauge:
    """A last-value level that also remembers its high watermark."""

    __slots__ = ("name", "value", "max_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self.max_value = 0.0

    def set(self, value: float) -> None:
        """Record the current level."""
        self.value = value
        if value > self.max_value:
            self.max_value = value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Gauge({self.name!r}, {self.value}, max={self.max_value})"


class MetricsRegistry:
    """Name-keyed instruments with a flat snapshot view.

    Instruments are created on first use (``registry.counter(name)`` is
    get-or-create), so instrumented code never needs a registration phase
    and two subsystems naming the same metric share one instrument.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._callbacks: Dict[str, Callable[[], float]] = {}

    # -- construction -------------------------------------------------------
    def counter(self, name: str) -> Counter:
        """Get or create the counter ``name``."""
        counter = self._counters.get(name)
        if counter is None:
            self._check_fresh(name, self._counters)
            counter = self._counters[name] = Counter(name)
        return counter

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge ``name``."""
        gauge = self._gauges.get(name)
        if gauge is None:
            self._check_fresh(name, self._gauges)
            gauge = self._gauges[name] = Gauge(name)
        return gauge

    def gauge_callback(self, name: str, read: Callable[[], float]) -> None:
        """Register a read-through gauge backed by ``read()``.

        Re-registering the same name replaces the callback (an experiment
        re-wiring a fresh broker onto a long-lived registry).
        """
        if name in self._counters or name in self._gauges:
            raise ValueError(f"metric {name!r} already exists as an instrument")
        self._callbacks[name] = read

    def _check_fresh(self, name: str, own: Dict[str, object]) -> None:
        for kind in (self._counters, self._gauges, self._callbacks):
            if kind is not own and name in kind:
                raise ValueError(
                    f"metric {name!r} already registered as a different kind")

    # -- views ---------------------------------------------------------------
    def snapshot(self) -> Dict[str, float]:
        """All metric values by name, sorted for deterministic rendering."""
        out: Dict[str, float] = {}
        for name, counter in self._counters.items():
            out[name] = float(counter.value)
        for name, gauge in self._gauges.items():
            out[name] = gauge.value
            out[name + ".max"] = gauge.max_value
        for name, read in self._callbacks.items():
            out[name] = float(read())
        return dict(sorted(out.items()))

    def render(self) -> str:
        """Plain-text ``name value`` listing (one metric per line)."""
        snap = self.snapshot()
        if not snap:
            return "(no metrics)"
        width = max(len(name) for name in snap)
        return "\n".join(f"{name:<{width}}  {value:g}"
                         for name, value in snap.items())

    def __iter__(self) -> Iterator[Tuple[str, float]]:
        return iter(self.snapshot().items())
