"""ExaMon analytics: anomaly detection over monitored series.

§II positions ExaMon's visualization-and-analytics layer as "targeting
anomaly detection and intrusion detection systems"; §V-C shows the human
version of that loop — operators staring at dashboards until they spot the
thermal hazard.  This module closes the loop programmatically:

* :class:`ZScoreDetector` — cross-sectional outlier detection across the
  cluster's nodes at each sampling instant (node 7 is a thermal outlier
  long before it trips);
* :class:`TrendDetector` — per-series rate-of-rise analysis with
  time-to-threshold extrapolation (predicts the 107 °C trip minutes in
  advance, which is exactly what a DTM policy would consume);
* :func:`scan_cluster_temperatures` — the convenience sweep the
  monitoring examples use.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.examon.topics import TopicSchema
from repro.examon.tsdb import TimeSeriesDB

__all__ = ["Anomaly", "ZScoreDetector", "TrendDetector",
           "scan_cluster_temperatures"]


@dataclass(frozen=True)
class Anomaly:
    """One detected anomaly."""

    time_s: float
    subject: str          # node or series the anomaly is about
    kind: str             # "outlier" | "trend"
    value: float
    detail: str


class ZScoreDetector:
    """Cross-sectional outlier detection across nodes.

    At each sampling instant, a node whose reading deviates from the
    cluster mean by more than ``threshold`` standard deviations is
    anomalous.  Robust to the *common-mode* load signal: when all eight
    nodes run HPL, all get hot together; only the badly-seated one
    stands out.
    """

    def __init__(self, threshold: float = 2.5,
                 min_absolute_spread: float = 2.0) -> None:
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        self.threshold = threshold
        self.min_absolute_spread = min_absolute_spread

    def scan(self, time_s: float,
             readings: Dict[str, float]) -> List[Anomaly]:
        """Check one instant's cross-section of per-node readings."""
        if len(readings) < 3:
            return []  # no meaningful statistics on fewer than 3 nodes
        values = list(readings.values())
        mean = sum(values) / len(values)
        variance = sum((v - mean) ** 2 for v in values) / len(values)
        std = math.sqrt(variance)
        anomalies = []
        for subject, value in sorted(readings.items()):  # simlint: disable=PERF303  (analysis sweep, runs once per scan not per publish)
            deviation = abs(value - mean)
            if deviation < self.min_absolute_spread:
                continue
            if std > 0 and deviation / std >= self.threshold:
                anomalies.append(Anomaly(
                    time_s=time_s, subject=subject, kind="outlier",
                    value=value,
                    detail=(f"{deviation / std:.1f}σ from cluster mean "
                            f"{mean:.1f}")))
        return anomalies


class TrendDetector:
    """Per-series rate-of-rise detection with time-to-threshold estimate.

    Fits a least-squares line to the last ``window_s`` of a series; if the
    slope is positive and the extrapolated threshold crossing is within
    ``horizon_s``, an anomaly is raised carrying the predicted crossing
    time — the predictive alarm a thermal governor wants.
    """

    def __init__(self, threshold: float, window_s: float = 120.0,
                 horizon_s: float = 900.0) -> None:
        self.threshold = threshold
        self.window_s = window_s
        self.horizon_s = horizon_s

    @staticmethod
    def _fit_line(points: Sequence[Tuple[float, float]]) -> Tuple[float, float]:
        """Least-squares (slope, intercept) fit."""
        n = len(points)
        mean_t = sum(t for t, _v in points) / n
        mean_v = sum(v for _t, v in points) / n
        num = sum((t - mean_t) * (v - mean_v) for t, v in points)
        den = sum((t - mean_t) ** 2 for t, _v in points)
        if den == 0:
            return 0.0, mean_v
        slope = num / den
        return slope, mean_v - slope * mean_t

    def predict_crossing(self, points: Sequence[Tuple[float, float]]
                         ) -> Optional[float]:
        """Predicted time the fitted line reaches the threshold, or None."""
        if len(points) < 4:
            return None
        slope, intercept = self._fit_line(points)
        if slope <= 0:
            return None
        crossing = (self.threshold - intercept) / slope
        latest = points[-1][0]
        if crossing <= latest:
            return latest  # already above threshold by the fit
        return crossing

    def scan(self, subject: str,
             points: Sequence[Tuple[float, float]]) -> List[Anomaly]:
        """Check one series' recent window for a dangerous rising trend."""
        if not points:
            return []
        latest_t = points[-1][0]
        window = [(t, v) for t, v in points if t >= latest_t - self.window_s]
        crossing = self.predict_crossing(window)
        if crossing is None or crossing - latest_t > self.horizon_s:
            return []
        return [Anomaly(
            time_s=latest_t, subject=subject, kind="trend",
            value=window[-1][1],
            detail=(f"predicted to reach {self.threshold:.0f} "
                    f"in {crossing - latest_t:.0f} s"))]


def scan_cluster_temperatures(db: TimeSeriesDB, hostnames: Sequence[str],
                              start_s: float, end_s: float,
                              schema: Optional[TopicSchema] = None,
                              trip_celsius: float = 107.0) -> List[Anomaly]:
    """Run both detectors over the cluster's cpu_temp series.

    Returns the merged, time-ordered anomaly list — the programmatic
    version of the §V-C dashboard inspection that found the node 7 hazard.
    """
    schema = schema if schema is not None else TopicSchema()
    series = {host: db.query(schema.stats_topic(host, "temperature.cpu_temp"),
                             start_s, end_s)
              for host in hostnames}

    anomalies: List[Anomaly] = []
    trend = TrendDetector(threshold=trip_celsius)
    for host, points in series.items():
        anomalies.extend(trend.scan(host, points))

    # Cross-sectional scan at each common sampling instant.
    zscore = ZScoreDetector()
    all_times = sorted(  # simlint: disable=PERF303  (offline report sweep, not per event)
        {t for points in series.values() for t, _v in points})
    for time_s in all_times:
        cross_section = {}
        for host, points in series.items():
            at_instant = [v for t, v in points if t == time_s]
            if at_instant:
                cross_section[host] = at_instant[0]
        anomalies.extend(zscore.scan(time_s, cross_section))

    return sorted(anomalies,  # simlint: disable=PERF303  (once per scan, output ordering contract)
                  key=lambda a: (a.time_s, a.subject))
