"""The ExaMon MQTT topic schema (Table II) and wildcard matching.

Table II defines two topic templates::

    pmu_pub:   org/<org>/cluster/<cluster>/node/<hostname>/plugin/pmu_pub/
               chnl/data/core/<id>/<metric_name>
    stats_pub: org/<org>/cluster/<cluster>/node/<hostname>/plugin/dstat_pub/
               chnl/data/<metric_name>

(The stats_pub plugin publishes under the ``dstat_pub`` plugin directory —
a faithful quirk of the paper's table.)  Matching supports the MQTT
single-level ``+`` and multi-level ``#`` wildcards used by the storage
backend's subscriptions.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["TopicSchema", "topic_matches"]


def topic_matches(pattern: str, topic: str) -> bool:
    """MQTT wildcard matching: ``+`` one level, ``#`` the remaining levels.

    ``#`` is only valid as the final level (the MQTT spec); an interior
    ``#`` raises ``ValueError`` rather than silently matching nothing.
    """
    pattern_parts = pattern.split("/")
    topic_parts = topic.split("/")
    if "#" in pattern_parts[:-1]:
        raise ValueError(f"'#' must be the last level: {pattern!r}")
    for i, part in enumerate(pattern_parts):
        if part == "#":
            return True
        if i >= len(topic_parts):
            return False
        if part != "+" and part != topic_parts[i]:
            return False
    return len(pattern_parts) == len(topic_parts)


@dataclass(frozen=True)
class TopicSchema:
    """Topic construction for one ExaMon deployment."""

    org: str = "unibo"
    cluster: str = "montecimone"

    def _base(self, hostname: str, plugin: str) -> str:
        return (f"org/{self.org}/cluster/{self.cluster}/node/{hostname}"
                f"/plugin/{plugin}/chnl/data")

    def pmu_topic(self, hostname: str, core_id: int, metric: str) -> str:
        """The pmu_pub per-core metric topic of Table II."""
        if core_id < 0:
            raise ValueError(f"negative core id {core_id}")
        return f"{self._base(hostname, 'pmu_pub')}/core/{core_id}/{metric}"

    def stats_topic(self, hostname: str, metric: str) -> str:
        """The stats_pub metric topic of Table II (dstat_pub directory)."""
        return f"{self._base(hostname, 'dstat_pub')}/{metric}"

    def all_nodes_pattern(self, plugin: str = "+") -> str:
        """Subscription covering every node's data channel."""
        return (f"org/{self.org}/cluster/{self.cluster}/node/+"
                f"/plugin/{plugin}/chnl/data/#")

    def parse(self, topic: str) -> dict[str, str]:
        """Decompose a data topic into its schema fields.

        Returns keys ``org``, ``cluster``, ``node``, ``plugin``,
        ``metric`` and, for per-core topics, ``core``.
        """
        parts = topic.split("/")
        try:
            fields = {"org": parts[parts.index("org") + 1],
                      "cluster": parts[parts.index("cluster") + 1],
                      "node": parts[parts.index("node") + 1],
                      "plugin": parts[parts.index("plugin") + 1]}
            data_idx = parts.index("data")
        except (ValueError, IndexError) as exc:
            raise ValueError(f"not an ExaMon data topic: {topic!r}") from exc
        tail = parts[data_idx + 1:]
        if not tail:
            raise ValueError(f"topic has no metric: {topic!r}")
        if tail[0] == "core":
            if len(tail) < 3:
                raise ValueError(f"malformed per-core topic: {topic!r}")
            fields["core"] = tail[1]
            fields["metric"] = "/".join(tail[2:])
        else:
            fields["metric"] = "/".join(tail)
        return fields
