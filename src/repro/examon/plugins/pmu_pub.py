"""pmu_pub: per-core performance counters at 2 Hz (§IV-B).

The plugin reads, in user mode through the perf_events interface, the
fixed INSTRET and CYCLE counters of every core — plus the programmable
HPM events once the authors' U-Boot patch has enabled them — and publishes
each value on its Table II topic.  Counter values are published as
absolute counts; rate conversion happens at query time
(:meth:`repro.examon.tsdb.TimeSeriesDB.rate`), which is also how the
Fig. 5 instructions/s heatmap is produced.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.cluster.node import ComputeNode
from repro.examon.broker import MQTTBroker
from repro.examon.plugins.base import SamplingPlugin
from repro.examon.topics import TopicSchema

__all__ = ["PmuPubPlugin"]


class PmuPubPlugin(SamplingPlugin):
    """The per-core PMU sampler."""

    DEFAULT_HZ = 2.0

    def __init__(self, node: ComputeNode, broker: MQTTBroker,
                 sample_hz: float = DEFAULT_HZ,
                 schema: Optional[TopicSchema] = None,
                 **hardening: object) -> None:
        # ``hardening`` forwards the outage knobs (buffer_limit,
        # reconnect_backoff) without restating the base signature.
        super().__init__(hostname=node.hostname, broker=broker,
                         sample_hz=sample_hz, schema=schema, **hardening)
        self.node = node
        #: (core_id, event) → formatted Table II topic.  The topic of a
        #: metric never changes over a plugin's life, and rebuilding the
        #: six-segment f-string chain per publish dominated the sampling
        #: profile at 2 Hz × cores × events.
        self._topic_cache: Dict[Tuple[int, str], str] = {}

    def sample(self, now_s: float) -> Dict[str, float]:
        """Read every available event on every core.

        With the stock U-Boot only ``cycles`` and ``instructions`` appear;
        the patched bootloader exposes the full programmable set — the
        exact difference §IV-B describes.
        """
        perf = self.node.board.perf
        topics = self._topic_cache
        metrics: Dict[str, float] = {}
        for core_id in perf.core_ids:
            for event in perf.available_events(core_id):
                topic = topics.get((core_id, event))
                if topic is None:
                    topic = self.schema.pmu_topic(self.hostname, core_id,
                                                  event)
                    topics[(core_id, event)] = topic
                metrics[topic] = float(perf.read(core_id, event))
        return metrics
