"""Plugin base: periodic sampling into the MQTT transport.

Failure semantics (the chaos harness leans on these):

* **Cadence** — the daemon samples *first*, then sleeps, so the boot
  window ``t=0..period`` is monitored.  (An earlier revision slept a full
  period before its first sample and left that window blind.)
* **Broker outage** — a refused publish flips the plugin into a
  disconnected state: samples keep landing in a bounded in-memory buffer
  (drop-oldest beyond ``buffer_limit``, like mosquitto's client queue),
  reconnect attempts follow a seeded exponential backoff, and on
  reconnect the buffer is *backfilled* — republished with the original
  sample timestamps, so the TSDB series covers the outage window.
* **Slow broker** — a broker in slow mode charges ``publish_delay_s``
  per sampling instant; the daemon absorbs it in simulated time, so the
  effective cadence degrades instead of the daemon wedging.
* **Sensor faults** — subclasses report per-sensor read failures through
  :meth:`note_target_fault` / :meth:`note_target_recovered`; the base
  class records a ``chaos.recovery`` span once the sensor reads again.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import deque
from itertools import islice
from typing import Deque, Dict, Generator, Optional, Tuple

from repro.chaos.backoff import ExponentialBackoff
from repro.events.engine import Engine, Event
from repro.examon.broker import BrokerUnavailableError, MQTTBroker
from repro.examon.payload import encode_payload
from repro.examon.topics import TopicSchema

__all__ = ["SamplingPlugin"]

#: One buffered sample awaiting backfill: (topic, value, timestamp_s).
_BufferedSample = Tuple[str, float, float]


class SamplingPlugin(ABC):
    """A node-resident daemon publishing samples at a fixed rate.

    Subclasses implement :meth:`sample`, returning topic → value for one
    sampling instant; the base class handles the MQTT encoding, the
    publish loop, outage buffering/reconnect/backfill, and sample
    accounting.
    """

    #: Bounded publish buffer: samples held across a broker outage.
    DEFAULT_BUFFER_LIMIT = 4096

    def __init__(self, hostname: str, broker: MQTTBroker,
                 sample_hz: float, schema: Optional[TopicSchema] = None,
                 buffer_limit: int = DEFAULT_BUFFER_LIMIT,
                 reconnect_backoff: Optional[ExponentialBackoff] = None) -> None:
        if sample_hz <= 0:
            raise ValueError("sampling rate must be positive")
        if buffer_limit < 1:
            raise ValueError("buffer limit must be at least one sample")
        self.hostname = hostname
        self.broker = broker
        self.sample_hz = sample_hz
        self.schema = schema if schema is not None else TopicSchema()
        self.samples_taken = 0
        self._running = False
        self._engine: Optional[Engine] = None
        # -- outage state ---------------------------------------------------
        self.buffer_limit = buffer_limit
        self.reconnect_backoff = (reconnect_backoff if reconnect_backoff
                                  is not None else ExponentialBackoff(
                                      base_s=1.0, factor=2.0, max_s=30.0))
        self._buffer: Deque[_BufferedSample] = deque()
        self._connected = True
        self._disconnected_at_s = 0.0
        self._reconnect_attempt = 0
        self._next_reconnect_s = 0.0
        # -- degradation counters ------------------------------------------
        self.publish_failures = 0
        self.reconnect_attempts = 0
        self.samples_buffered = 0
        self.samples_dropped = 0
        self.samples_backfilled = 0
        self.slow_publishes = 0
        self.sensor_faults = 0
        #: (kind, target) → simulated time the fault was first observed.
        self._fault_since: Dict[Tuple[str, str], float] = {}

    @property
    def period_s(self) -> float:
        """Sampling period in seconds."""
        return 1.0 / self.sample_hz

    @property
    def connected(self) -> bool:
        """Whether the plugin currently believes the broker is reachable."""
        return self._connected

    @property
    def buffered_samples(self) -> int:
        """Samples currently waiting for backfill."""
        return len(self._buffer)

    @abstractmethod
    def sample(self, now_s: float) -> Dict[str, float]:
        """One sampling instant: topic → numeric value."""

    def publish_once(self, now_s: float) -> int:
        """Take one sample and publish every metric; returns publish count.

        The direct path — a down broker raises
        :class:`~repro.examon.broker.BrokerUnavailableError` straight
        through.  The daemon loop uses the hardened
        :meth:`sample_and_publish` instead.
        """
        metrics = self.sample(now_s)
        for topic, value in metrics.items():
            self.broker.publish(topic, encode_payload(value, now_s), now_s)
        self.samples_taken += 1
        return len(metrics)

    # -- hardened sampling path ---------------------------------------------
    def sample_and_publish(self, now_s: float) -> int:
        """One sampling instant of the daemon loop; never raises on outage.

        Returns the number of metrics delivered to the broker this instant
        (0 while disconnected — those samples went to the buffer).
        """
        metrics = self.sample(now_s)
        self.samples_taken += 1
        if not self._connected:
            self._buffer_metrics(metrics, now_s)
            self._maybe_reconnect(now_s)
            return 0
        # Batched publish: the whole node's metric set goes out under one
        # try block with the broker method bound once, instead of a list
        # copy plus a per-metric exception frame.  Broker availability
        # cannot change mid-batch (nothing yields to the engine here), so
        # the only divergence point is the broker refusing the connect —
        # in which case ``published`` marks where the batch stopped and
        # the failed metric onwards is buffered, exactly as before.
        publish = self.broker.publish
        published = 0
        try:
            for topic, value in metrics.items():
                publish(topic, encode_payload(value, now_s), now_s)
                published += 1
        except BrokerUnavailableError:
            self._buffer_metrics(dict(islice(metrics.items(), published,
                                             None)), now_s)
            self._disconnect(now_s)
        return published

    def _buffer_metrics(self, metrics: Dict[str, float], now_s: float) -> None:
        for topic, value in metrics.items():
            if len(self._buffer) >= self.buffer_limit:
                self._buffer.popleft()  # drop-oldest, like a client queue
                self.samples_dropped += 1
            self._buffer.append((topic, value, now_s))
            self.samples_buffered += 1

    def _disconnect(self, now_s: float) -> None:
        self.publish_failures += 1
        self._connected = False
        self._disconnected_at_s = now_s
        self._reconnect_attempt = 0
        self._next_reconnect_s = now_s + self.reconnect_backoff.delay(0)

    def _maybe_reconnect(self, now_s: float) -> None:
        if now_s + 1e-9 < self._next_reconnect_s:
            return  # still backing off
        self.reconnect_attempts += 1
        if not getattr(self.broker, "available", True):
            self._reconnect_attempt += 1
            self._next_reconnect_s = now_s + self.reconnect_backoff.delay(
                self._reconnect_attempt)
            return
        self._reconnect(now_s)

    def _reconnect(self, now_s: float) -> None:
        """Broker reachable again: backfill the buffer, resume live mode."""
        backfilled = 0
        while self._buffer:
            topic, value, timestamp_s = self._buffer[0]
            try:
                # Original sample timestamp: the payload clock (which the
                # TSDB indexes by) covers the outage window, and
                # chronological flush order keeps the retained store's
                # last-sample-per-topic invariant.
                self.broker.publish(topic, encode_payload(value, timestamp_s),
                                    timestamp_s)
            except BrokerUnavailableError:
                # Flapped down again mid-backfill; keep the rest buffered.
                self._disconnect(now_s)
                return
            self._buffer.popleft()
            backfilled += 1
        self.samples_backfilled += backfilled
        self._connected = True
        self._record_recovery("broker-outage", self.broker.hostname,
                              self._disconnected_at_s, now_s,
                              backfilled=backfilled,
                              attempts=self.reconnect_attempts)

    # -- per-sensor fault tracking (subclass hooks) ---------------------------
    def note_target_fault(self, kind: str, target: str, now_s: float) -> None:
        """Record a per-target read failure (first failure starts the clock)."""
        if (kind, target) not in self._fault_since:
            self._fault_since[(kind, target)] = now_s
        self.sensor_faults += 1

    def note_target_recovered(self, kind: str, target: str,
                              now_s: float) -> None:
        """Record a successful read of a previously-failed target."""
        started = self._fault_since.pop((kind, target), None)
        if started is not None:
            self._record_recovery(kind, target, started, now_s)

    def _record_recovery(self, kind: str, target: str, start_s: float,
                         end_s: float, **attributes: float) -> None:
        """Emit a completed ``chaos.recovery`` span when the engine is traced."""
        engine = self._engine
        if engine is None or engine.tracer is None:
            return
        engine.tracer.record(f"recovery:{kind}:{target}", start_s, end_s,
                             category="chaos.recovery", kind=kind,
                             target=target, component=f"plugin@{self.hostname}",
                             **attributes)

    # -- daemon loop ----------------------------------------------------------
    def run(self, engine: Engine) -> Generator[Event, None, None]:
        """The daemon loop as a simulation process.

        Samples immediately (t=0 of the daemon's life), then sleeps one
        period per iteration; a slow broker adds its per-instant penalty
        to the sleep, degrading the cadence instead of wedging the loop.
        """
        self._running = True
        self._engine = engine
        while self._running:
            self.sample_and_publish(engine.now)
            delay_s = getattr(self.broker, "publish_delay_s", 0.0)
            if delay_s > 0 and self._connected:
                self.slow_publishes += 1
                yield engine.timeout(delay_s)
            yield engine.timeout(self.period_s)
            # A stop() issued while sleeping lands here: the while guard
            # exits without a trailing sample.

    def stop(self) -> None:
        """Stop the daemon at its next wakeup."""
        self._running = False
