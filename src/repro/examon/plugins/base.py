"""Plugin base: periodic sampling into the MQTT transport."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Generator, Optional

from repro.events.engine import Engine, Event
from repro.examon.broker import MQTTBroker
from repro.examon.payload import encode_payload
from repro.examon.topics import TopicSchema

__all__ = ["SamplingPlugin"]


class SamplingPlugin(ABC):
    """A node-resident daemon publishing samples at a fixed rate.

    Subclasses implement :meth:`sample`, returning topic → value for one
    sampling instant; the base class handles the MQTT encoding, the
    publish loop and sample accounting.
    """

    def __init__(self, hostname: str, broker: MQTTBroker,
                 sample_hz: float, schema: Optional[TopicSchema] = None) -> None:
        if sample_hz <= 0:
            raise ValueError("sampling rate must be positive")
        self.hostname = hostname
        self.broker = broker
        self.sample_hz = sample_hz
        self.schema = schema if schema is not None else TopicSchema()
        self.samples_taken = 0
        self._running = False

    @property
    def period_s(self) -> float:
        """Sampling period in seconds."""
        return 1.0 / self.sample_hz

    @abstractmethod
    def sample(self, now_s: float) -> Dict[str, float]:
        """One sampling instant: topic → numeric value."""

    def publish_once(self, now_s: float) -> int:
        """Take one sample and publish every metric; returns publish count."""
        metrics = self.sample(now_s)
        for topic, value in metrics.items():
            self.broker.publish(topic, encode_payload(value, now_s), now_s)
        self.samples_taken += 1
        return len(metrics)

    def run(self, engine: Engine) -> Generator[Event, None, None]:
        """The daemon loop as a simulation process."""
        self._running = True
        while self._running:
            yield engine.timeout(self.period_s)
            if not self._running:
                break  # stopped while sleeping: no trailing sample
            self.publish_once(engine.now)

    def stop(self) -> None:
        """Stop the daemon at its next wakeup."""
        self._running = False
