"""ExaMon sampling plugins.

Two plugins were "specifically developed/adapted for this project and
installed on the compute nodes" (§IV-B):

* :mod:`repro.examon.plugins.pmu_pub` — per-core performance counters via
  perf_events, 2 Hz;
* :mod:`repro.examon.plugins.stats_pub` — OS statistics from procfs/sysfs
  (Table III), 0.2 Hz.
"""

from repro.examon.plugins.base import SamplingPlugin
from repro.examon.plugins.pmu_pub import PmuPubPlugin
from repro.examon.plugins.stats_pub import StatsPubPlugin

__all__ = ["PmuPubPlugin", "SamplingPlugin", "StatsPubPlugin"]
