"""stats_pub: OS statistics at 0.2 Hz (§IV-B, Table III).

The plugin reads procfs and sysfs — load, CPU usage split, memory usage,
paging, disk and network totals, interrupts/context switches, process
counts, and the three hwmon temperature sensors of Table IV — and
publishes each metric under its Table II/III name (note the ``dstat_pub``
plugin directory in the topic, a quirk kept from the paper).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.cluster.node import ComputeNode
from repro.examon.broker import MQTTBroker
from repro.examon.plugins.base import SamplingPlugin
from repro.examon.topics import TopicSchema
from repro.hardware.sensors import SensorReadError

__all__ = ["StatsPubPlugin", "TABLE_III_METRICS"]

#: The Table III metric catalogue, by group.
TABLE_III_METRICS = {
    "Load": ["load_avg.1m", "load_avg.5m", "load_avg.15m"],
    "I/O": ["io_total.read", "io_total.writ"],
    "Processes": ["procs.run", "procs.blk", "procs.new"],
    "Memory": ["memory_usage.used", "memory_usage.free",
               "memory_usage.buff", "memory_usage.cach",
               "paging.in", "paging.out"],
    "Disk": ["dsk_total.read", "dsk_total.writ"],
    "System": ["system.int", "system.csw"],
    "CPU": ["total_cpu_usage.usr", "total_cpu_usage.sys",
            "total_cpu_usage.idl", "total_cpu_usage.wai",
            "total_cpu_usage.stl"],
    "Network": ["net_total.recv", "net_total.send"],
    "Temperatures": ["temperature.mb_temp", "temperature.cpu_temp",
                     "temperature.nvme_temp"],
}


class StatsPubPlugin(SamplingPlugin):
    """The OS-statistics sampler."""

    DEFAULT_HZ = 0.2

    def __init__(self, node: ComputeNode, broker: MQTTBroker,
                 sample_hz: float = DEFAULT_HZ,
                 schema: Optional[TopicSchema] = None,
                 **hardening: object) -> None:
        # ``hardening`` forwards the outage knobs (buffer_limit,
        # reconnect_backoff) without restating the base signature.
        super().__init__(hostname=node.hostname, broker=broker,
                         sample_hz=sample_hz, schema=schema, **hardening)
        self.node = node
        #: metric name → formatted Table II topic (topics are immutable
        #: per plugin; format once, look up every sampling instant).
        self._topic_cache: Dict[str, str] = {}

    def sample(self, now_s: float) -> Dict[str, float]:
        """Collect every Table III metric for this node."""
        node = self.node
        procfs = node.procfs
        board = node.board
        values: Dict[str, float] = {}

        load = procfs.loadavg()
        values["load_avg.1m"] = load["1m"]
        values["load_avg.5m"] = load["5m"]
        values["load_avg.15m"] = load["15m"]

        values["io_total.read"] = float(procfs.io_read_total)
        values["io_total.writ"] = float(procfs.io_write_total)

        procs = procfs.processes()
        values["procs.run"] = float(procs["run"])
        values["procs.blk"] = float(procs["blk"])
        values["procs.new"] = float(procs["new"])

        memory = procfs.memory()
        values["memory_usage.used"] = float(memory["used"])
        values["memory_usage.free"] = float(memory["free"])
        values["memory_usage.buff"] = float(memory["buff"])
        values["memory_usage.cach"] = float(memory["cach"])

        paging = procfs.paging()
        values["paging.in"] = float(paging["in"])
        values["paging.out"] = float(paging["out"])

        values["dsk_total.read"] = float(board.nvme.bytes_read)
        values["dsk_total.writ"] = float(board.nvme.bytes_written)

        system = procfs.system()
        values["system.int"] = float(system["int"])
        values["system.csw"] = float(system["csw"])

        cpu = procfs.cpu.percentages()
        for key, value in cpu.items():
            values[f"total_cpu_usage.{key}"] = value

        values["net_total.recv"] = float(board.ethernet.bytes_received)
        values["net_total.send"] = float(board.ethernet.bytes_sent)

        # Table IV sensors through the hwmon sysfs paths.  A sensor that
        # dropped off the bus (SensorReadError, the kernel's EIO) is
        # skipped for this instant rather than killing the daemon; the
        # first successful read afterwards closes the recovery window.
        for sensor in ("mb_temp", "cpu_temp", "nvme_temp"):
            target = f"{self.hostname}/{sensor}"
            try:
                raw = board.hwmon.read(board.hwmon.path_of(sensor))
            except SensorReadError:
                self.note_target_fault("sensor-dropout", target, now_s)
                continue
            self.note_target_recovered("sensor-dropout", target, now_s)
            values[f"temperature.{sensor}"] = int(raw.strip()) / 1000.0

        topics = self._topic_cache
        out: Dict[str, float] = {}
        for metric, value in values.items():
            topic = topics.get(metric)
            if topic is None:
                topic = self.schema.stats_topic(self.hostname, metric)
                topics[metric] = topic
            out[topic] = value
        return out
