"""Grafana-style dashboard views over the time-series store.

Builds the two figures ExaMon produces in the paper:

* **Fig. 5** — per-node heatmaps during an HPL run: instructions/s (rate
  of the per-core INSTRET counters summed over cores), network traffic
  (rate of net_total.*), memory usage;
* **Fig. 6** — the thermal timeline with the node 7 runaway.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.examon.topics import TopicSchema
from repro.examon.tsdb import TimeSeriesDB

__all__ = ["Heatmap", "Dashboard"]


@dataclass
class Heatmap:
    """A node × time matrix of one metric.

    ``rows`` maps hostname → list of per-bucket values; all rows share
    ``times`` (bucket start times).  Missing buckets carry ``None``.
    """

    metric: str
    times: List[float]
    rows: Dict[str, List[Optional[float]]]

    def node_mean(self, hostname: str) -> float:
        """Mean over the non-empty buckets of one node's row."""
        values = [v for v in self.rows[hostname] if v is not None]
        if not values:
            raise ValueError(f"no data for {hostname} in {self.metric}")
        return sum(values) / len(values)

    def hottest_row(self) -> str:
        """Hostname with the highest row mean."""
        return max(self.rows, key=self.node_mean)

    def render_ascii(self, width: int = 40) -> str:
        """A quick-look ASCII rendering (one row per node)."""
        flat = [v for row in self.rows.values() for v in row if v is not None]
        if not flat:
            return f"[{self.metric}: no data]"
        lo, hi = min(flat), max(flat)
        shades = " .:-=+*#%@"
        if hi == lo:
            # Flat field: render a uniform mid shade rather than blanks.
            lo, hi = lo - 1.0, hi + 1.0
        span = hi - lo
        lines = [f"heatmap: {self.metric}  [{lo:.3g} .. {hi:.3g}]"]
        for host in sorted(self.rows):  # simlint: disable=PERF303  (render path, runs once per dashboard refresh)
            cells = self.rows[host][:width]
            line = "".join(
                shades[min(int((v - lo) / span * (len(shades) - 1)),
                           len(shades) - 1)] if v is not None else " "
                for v in cells)
            lines.append(f"{host:>12} |{line}|")
        return "\n".join(lines)


class Dashboard:
    """The cluster dashboards of §IV-B / §V-C."""

    def __init__(self, db: TimeSeriesDB, hostnames: List[str],
                 schema: Optional[TopicSchema] = None,
                 n_cores: int = 4) -> None:
        self.db = db
        self.hostnames = list(hostnames)
        self.schema = schema if schema is not None else TopicSchema()
        self.n_cores = n_cores

    # -- Fig. 5 -------------------------------------------------------------
    def instructions_heatmap(self, start_s: float, end_s: float,
                             window_s: float = 10.0) -> Heatmap:
        """Instructions/s per node (sum of per-core INSTRET rates)."""
        times = self._bucket_times(start_s, end_s, window_s)
        rows: Dict[str, List[Optional[float]]] = {}
        for host in self.hostnames:
            total = [0.0] * len(times)
            seen = [False] * len(times)
            for core in range(self.n_cores):
                topic = self.schema.pmu_topic(host, core, "instructions")
                rate_points = self.db.rate(topic, start_s, end_s)
                bucketed = self._bucketise(rate_points, start_s, window_s,
                                           len(times))
                for i, value in enumerate(bucketed):
                    if value is not None:
                        total[i] += value
                        seen[i] = True
            rows[host] = [total[i] if seen[i] else None
                          for i in range(len(times))]
        return Heatmap(metric="instructions/s", times=times, rows=rows)

    def network_heatmap(self, start_s: float, end_s: float,
                        window_s: float = 10.0) -> Heatmap:
        """Bytes/s per node (receive + send rates)."""
        times = self._bucket_times(start_s, end_s, window_s)
        rows: Dict[str, List[Optional[float]]] = {}
        for host in self.hostnames:
            total = [0.0] * len(times)
            seen = [False] * len(times)
            for metric in ("net_total.recv", "net_total.send"):
                topic = self.schema.stats_topic(host, metric)
                bucketed = self._bucketise(self.db.rate(topic, start_s, end_s),
                                           start_s, window_s, len(times))
                for i, value in enumerate(bucketed):
                    if value is not None:
                        total[i] += value
                        seen[i] = True
            rows[host] = [total[i] if seen[i] else None
                          for i in range(len(times))]
        return Heatmap(metric="net bytes/s", times=times, rows=rows)

    def memory_heatmap(self, start_s: float, end_s: float,
                       window_s: float = 10.0) -> Heatmap:
        """Memory used (bytes) per node."""
        times = self._bucket_times(start_s, end_s, window_s)
        rows: Dict[str, List[Optional[float]]] = {}
        for host in self.hostnames:
            topic = self.schema.stats_topic(host, "memory_usage.used")
            points = self.db.query(topic, start_s, end_s)
            rows[host] = self._bucketise(points, start_s, window_s, len(times))
        return Heatmap(metric="memory used", times=times, rows=rows)

    # -- Fig. 6 -------------------------------------------------------------
    def thermal_timeline(self, start_s: float, end_s: float,
                         sensor: str = "cpu_temp") -> Dict[str, List]:
        """Per-node temperature series (the Fig. 6 plot data)."""
        series = {}
        for host in self.hostnames:
            topic = self.schema.stats_topic(host, f"temperature.{sensor}")
            series[host] = self.db.query(topic, start_s, end_s)
        return series

    def peak_temperatures(self, start_s: float, end_s: float) -> Dict[str, float]:
        """Per-node maximum SoC temperature in a window."""
        peaks = {}
        for host, points in self.thermal_timeline(start_s, end_s).items():
            if points:
                peaks[host] = max(v for _t, v in points)
        return peaks

    # -- helpers -------------------------------------------------------------
    @staticmethod
    def _bucket_times(start_s: float, end_s: float,
                      window_s: float) -> List[float]:
        if window_s <= 0:
            raise ValueError("window must be positive")
        if end_s <= start_s:
            raise ValueError("empty time range")
        times = []
        t = start_s
        while t < end_s:
            times.append(t)
            t += window_s
        return times

    @staticmethod
    def _bucketise(points, start_s: float, window_s: float,
                   n_buckets: int) -> List[Optional[float]]:
        buckets: List[List[float]] = [[] for _ in range(n_buckets)]
        for t, v in points:
            index = int((t - start_s) / window_s)
            if 0 <= index < n_buckets:
                buckets[index].append(v)
        return [sum(b) / len(b) if b else None for b in buckets]
