"""The storage backend: a time-series database fed by the broker.

Plays the role of ExaMon's Cassandra/KairosDB backend: it subscribes to
the cluster-wide data pattern, decodes payloads, and stores (time, value)
points per topic.  Queries support time ranges, window aggregation
(mean/max/min/sum/rate) and cross-series alignment — enough surface for
the Grafana-style dashboards and the batch REST API of §IV-B.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.examon.broker import MQTTBroker, MQTTMessage
from repro.examon.payload import decode_payload
from repro.examon.topics import topic_matches

__all__ = ["TimeSeriesDB", "SeriesPoint"]

SeriesPoint = Tuple[float, float]  # (timestamp_s, value)

_AGGREGATORS = {
    "mean": lambda vals: sum(vals) / len(vals),
    "max": max,
    "min": min,
    "sum": sum,
    "last": lambda vals: vals[-1],
}


class TimeSeriesDB:
    """Topic-keyed time series with range queries and aggregation."""

    def __init__(self) -> None:
        self._series: Dict[str, List[SeriesPoint]] = {}
        self.points_stored = 0
        self.decode_errors = 0
        #: Monotone-timestamp inserts served by the append-only fast path.
        self.fast_appends = 0
        #: Out-of-order inserts that paid the ``bisect.insort`` slow path
        #: (backfilled samples after a broker outage, mostly).
        self.sorted_inserts = 0

    # -- ingestion ----------------------------------------------------------
    def attach(self, broker: MQTTBroker, pattern: str,
               client_id: str = "tsdb") -> None:
        """Subscribe this store to a broker pattern."""
        broker.subscribe(client_id, pattern, self.ingest)

    def ingest(self, message: MQTTMessage) -> None:
        """Store one MQTT message (malformed payloads are counted, kept out)."""
        try:
            value, timestamp = decode_payload(message.payload)
        except ValueError:
            self.decode_errors += 1
            return
        self.insert(message.topic, timestamp, value)

    def insert(self, topic: str, timestamp_s: float, value: float) -> None:
        """Direct insertion (plugins under test use this path).

        Live monitoring traffic is monotone per topic (each sampling
        daemon stamps its own clock), so the overwhelmingly common case
        is a plain list append; only out-of-order arrivals — outage
        backfills replayed with their original timestamps — pay the
        ``bisect`` insertion that keeps the series sorted.
        """
        series = self._series.get(topic)
        if series is None:
            series = self._series[topic] = []
        if series and timestamp_s < series[-1][0]:
            # Out-of-order arrival: keep the store sorted.
            bisect.insort(series, (timestamp_s, value))
            self.sorted_inserts += 1
        else:
            series.append((timestamp_s, value))
            self.fast_appends += 1
        self.points_stored += 1

    # -- queries ------------------------------------------------------------
    def topics(self, pattern: str = "#") -> List[str]:
        """Stored topics matching an MQTT pattern."""
        return sorted(  # simlint: disable=PERF303  (query endpoint, not on the insert path)
            t for t in self._series if topic_matches(pattern, t))

    def query(self, topic: str, start_s: float = float("-inf"),
              end_s: float = float("inf")) -> List[SeriesPoint]:
        """Raw points of one series inside [start, end]."""
        series = self._series.get(topic, [])
        lo = bisect.bisect_left(series, (start_s, float("-inf")))
        hi = bisect.bisect_right(series, (end_s, float("inf")))
        return series[lo:hi]

    def latest(self, topic: str) -> Optional[SeriesPoint]:
        """Most recent point of a series, or None."""
        series = self._series.get(topic)
        return series[-1] if series else None

    def aggregate(self, topic: str, start_s: float, end_s: float,
                  window_s: float, how: str = "mean") -> List[SeriesPoint]:
        """Window aggregation: one point per ``window_s`` bucket.

        Buckets are ``[start, start + window)`` half-open intervals
        labelled by their start time; empty buckets are omitted (Grafana's
        default null handling).  A point exactly at ``end_s`` is included
        only when a bucket *starting* before ``end_s`` covers it, matching
        the label contract — the last bucket is never labelled at or past
        ``end_s``.

        The scan is a single forward pass over the (sorted) points in
        range: each point is visited once and assigned to the bucket it
        falls in, so a query costs O(points + log(series)) regardless of
        how many buckets the window divides the range into.  (An earlier
        revision rescanned the full point list for every bucket —
        O(points × buckets) — and carried a vestigial bucket counter whose
        ``i <= len(points)`` guard silently truncated aggregations with
        more leading empty buckets than stored points.)
        """
        if window_s <= 0:
            raise ValueError("window must be positive")
        if how not in _AGGREGATORS:
            raise KeyError(f"unknown aggregator {how!r}; choose from "
                           f"{sorted(_AGGREGATORS)}")  # simlint: disable=PERF303  (error path)
        aggregate = _AGGREGATORS[how]
        points = self.query(topic, start_s, end_s)
        out: List[SeriesPoint] = []
        idx, n_points = 0, len(points)
        bucket_start = start_s
        while bucket_start < end_s and idx < n_points:
            bucket_end = bucket_start + window_s
            # Points before the first bucket cannot exist (query() already
            # clipped at start_s), so idx only ever moves forward.
            bucket_vals: List[float] = []
            while idx < n_points:
                t, v = points[idx]
                if t >= bucket_end:
                    break
                bucket_vals.append(v)
                idx += 1
            if bucket_vals:
                out.append((bucket_start, aggregate(bucket_vals)))
            bucket_start = bucket_end
        return out

    def rate(self, topic: str, start_s: float = float("-inf"),
             end_s: float = float("inf")) -> List[SeriesPoint]:
        """First-difference rate of a (monotone) counter series, per second.

        This is how the dashboards turn the INSTRET counter into the
        instructions/s heatmap of Fig. 5.  Counter resets (value drops,
        e.g. a node reboot) yield a zero-rate point rather than a negative
        spike.
        """
        points = self.query(topic, start_s, end_s)
        out: List[SeriesPoint] = []
        for (t0, v0), (t1, v1) in zip(points, points[1:]):
            dt = t1 - t0
            if dt <= 0:
                continue
            out.append((t1, max(v1 - v0, 0.0) / dt))
        return out
