"""Wiring ExaMon onto a Monte Cimone cluster.

§IV-B's deployment: broker and database on the master node in their basic
configuration; plugins developed/adapted for the project on the compute
nodes.  :class:`ExamonDeployment` performs that installation on a
simulated cluster and starts the sampling daemons as engine processes.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cluster.cluster import MonteCimoneCluster
from repro.examon.broker import MQTTBroker
from repro.examon.dashboard import Dashboard
from repro.examon.plugins.pmu_pub import PmuPubPlugin
from repro.examon.plugins.stats_pub import StatsPubPlugin
from repro.examon.rest import ExamonRestAPI
from repro.examon.topics import TopicSchema
from repro.examon.tsdb import TimeSeriesDB

__all__ = ["ExamonDeployment"]


class ExamonDeployment:
    """The full ODA vertical on one cluster."""

    def __init__(self, cluster: MonteCimoneCluster,
                 schema: Optional[TopicSchema] = None) -> None:
        self.cluster = cluster
        self.schema = schema if schema is not None else TopicSchema()
        self.broker = MQTTBroker(hostname="mc-master")
        self.db = TimeSeriesDB()
        self.db.attach(self.broker, self.schema.all_nodes_pattern())
        self.rest = ExamonRestAPI(self.db)
        self.pmu_plugins: Dict[str, PmuPubPlugin] = {}
        self.stats_plugins: Dict[str, StatsPubPlugin] = {}
        self.dashboard = Dashboard(self.db, list(cluster.nodes),
                                   schema=self.schema)
        self._started = False

    def install_plugins(self) -> None:
        """Create one pmu_pub and one stats_pub instance per compute node."""
        for hostname, node in self.cluster.nodes.items():
            self.pmu_plugins[hostname] = PmuPubPlugin(
                node, self.broker, schema=self.schema)
            self.stats_plugins[hostname] = StatsPubPlugin(
                node, self.broker, schema=self.schema)

    def start(self) -> None:
        """Start every plugin daemon on the simulation engine."""
        if not self.pmu_plugins:
            self.install_plugins()
        if self._started:
            return
        engine = self.cluster.engine
        for hostname in self.cluster.nodes:
            engine.spawn(self.pmu_plugins[hostname].run(engine),
                         name=f"pmu_pub@{hostname}")
            engine.spawn(self.stats_plugins[hostname].run(engine),
                         name=f"stats_pub@{hostname}")
        self._started = True

    def stop(self) -> None:
        """Stop all plugin daemons at their next wakeup."""
        for plugin in [*self.pmu_plugins.values(), *self.stats_plugins.values()]:
            plugin.stop()
        self._started = False

    def monitoring_overhead_summary(self) -> Dict[str, float]:
        """Transport-layer load: messages and bytes through the broker."""
        return {
            "messages_published": float(self.broker.messages_published),
            "messages_delivered": float(self.broker.messages_delivered),
            "bytes_published": float(self.broker.bytes_published),
            "points_stored": float(self.db.points_stored),
        }
