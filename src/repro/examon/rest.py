"""The batch-analysis REST-style API over the time-series store.

§IV-B: "The data can also be analyzed in batch mode using scripts and
accessing the database through the dedicated RESTful API over HTTP."
This facade mirrors that interface shape: string endpoints with query
dictionaries returning JSON-able structures, so the analysis scripts in
``examples/`` read like clients of the real service.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.examon.tsdb import TimeSeriesDB

__all__ = ["ExamonRestAPI"]


class ExamonRestAPI:
    """GET-style query endpoints."""

    def __init__(self, db: TimeSeriesDB) -> None:
        self.db = db
        self.requests_served = 0

    def get(self, endpoint: str, params: Optional[Dict[str, Any]] = None) -> Any:
        """Dispatch a request path to its handler.

        Supported endpoints: ``/api/topics``, ``/api/query``,
        ``/api/aggregate``, ``/api/rate``, ``/api/latest``.
        """
        params = params or {}
        handlers = {
            "/api/topics": self._topics,
            "/api/query": self._query,
            "/api/aggregate": self._aggregate,
            "/api/rate": self._rate,
            "/api/latest": self._latest,
        }
        if endpoint not in handlers:
            raise KeyError(f"404: no endpoint {endpoint!r}")
        self.requests_served += 1
        return handlers[endpoint](params)

    # -- handlers -----------------------------------------------------------
    def _topics(self, params: Dict[str, Any]) -> List[str]:
        return self.db.topics(params.get("pattern", "#"))

    def _query(self, params: Dict[str, Any]) -> List[Dict[str, float]]:
        points = self.db.query(params["topic"],
                               params.get("start", float("-inf")),
                               params.get("end", float("inf")))
        return [{"t": t, "v": v} for t, v in points]

    def _aggregate(self, params: Dict[str, Any]) -> List[Dict[str, float]]:
        points = self.db.aggregate(params["topic"], params["start"],
                                   params["end"], params["window"],
                                   params.get("how", "mean"))
        return [{"t": t, "v": v} for t, v in points]

    def _rate(self, params: Dict[str, Any]) -> List[Dict[str, float]]:
        points = self.db.rate(params["topic"],
                              params.get("start", float("-inf")),
                              params.get("end", float("inf")))
        return [{"t": t, "v": v} for t, v in points]

    def _latest(self, params: Dict[str, Any]) -> Optional[Dict[str, float]]:
        point = self.db.latest(params["topic"])
        return None if point is None else {"t": point[0], "v": point[1]}
