"""ExaMon: the Operational Data Analytics stack ported to Monte Cimone.

§IV-B: ExaMon consists of sampling plugins on the compute nodes, an MQTT
broker for transport and a database for storage, with Grafana and a
RESTful API on top.  This package implements the whole vertical:

* :mod:`repro.examon.topics` — the Table II topic schema plus MQTT
  wildcard matching (``+``/``#``);
* :mod:`repro.examon.payload` — the ``<value>;<timestamp>`` payload codec;
* :mod:`repro.examon.broker` — a topic-tree MQTT broker;
* :mod:`repro.examon.tsdb` — the time-series store with range queries and
  window aggregation;
* :mod:`repro.examon.plugins` — pmu_pub (2 Hz per-core performance
  counters through perf_events) and stats_pub (0.2 Hz OS statistics from
  procfs/sysfs, Table III);
* :mod:`repro.examon.rest` — the batch-analysis HTTP-style query facade;
* :mod:`repro.examon.dashboard` — Grafana-style views: the Fig. 5 HPL
  heatmaps and the Fig. 6 thermal timeline;
* :mod:`repro.examon.deployment` — wiring onto a
  :class:`~repro.cluster.cluster.MonteCimoneCluster`.
"""

from repro.examon.analytics import (
    Anomaly,
    TrendDetector,
    ZScoreDetector,
    scan_cluster_temperatures,
)
from repro.examon.broker import MQTTBroker, MQTTMessage
from repro.examon.dashboard import Dashboard, Heatmap
from repro.examon.deployment import ExamonDeployment
from repro.examon.payload import decode_payload, encode_payload
from repro.examon.plugins.pmu_pub import PmuPubPlugin
from repro.examon.plugins.stats_pub import StatsPubPlugin
from repro.examon.rest import ExamonRestAPI
from repro.examon.topics import TopicSchema, topic_matches
from repro.examon.tsdb import TimeSeriesDB

__all__ = [
    "Anomaly",
    "Dashboard",
    "TrendDetector",
    "ZScoreDetector",
    "scan_cluster_temperatures",
    "ExamonDeployment",
    "ExamonRestAPI",
    "Heatmap",
    "MQTTBroker",
    "MQTTMessage",
    "PmuPubPlugin",
    "StatsPubPlugin",
    "TimeSeriesDB",
    "TopicSchema",
    "decode_payload",
    "encode_payload",
    "topic_matches",
]
