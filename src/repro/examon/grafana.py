"""Grafana dashboard definitions for the ExaMon deployment.

§IV-B: "Through an instance of Grafana connected to the database it is
possible to visualize the trend of the metrics in real time".  Operations
teams keep those dashboards as JSON under version control; this module
generates the dashboard definitions for the two views the paper shows —
the Fig. 5 cluster heatmaps and the Fig. 6 thermal timeline — targeting
the ExaMon REST datasource.

The output is a plain dict matching Grafana's dashboard JSON model
(schema subset: title/panels/targets/gridPos); :func:`export_dashboard`
serialises it.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.examon.topics import TopicSchema

__all__ = ["build_cluster_dashboard", "build_thermal_dashboard",
           "export_dashboard"]

_PANEL_WIDTH = 24
_PANEL_HEIGHT = 8


def _panel(panel_id: int, title: str, panel_type: str, y: int,
           targets: List[Dict]) -> Dict:
    return {
        "id": panel_id,
        "title": title,
        "type": panel_type,
        "gridPos": {"h": _PANEL_HEIGHT, "w": _PANEL_WIDTH, "x": 0, "y": y},
        "datasource": {"type": "examon-rest", "uid": "examon"},
        "targets": targets,
    }


def _rate_target(ref_id: str, topic_pattern: str) -> Dict:
    return {"refId": ref_id, "endpoint": "/api/rate",
            "params": {"topic": topic_pattern}}


def _query_target(ref_id: str, topic_pattern: str) -> Dict:
    return {"refId": ref_id, "endpoint": "/api/query",
            "params": {"topic": topic_pattern}}


def build_cluster_dashboard(hostnames: List[str],
                            schema: Optional[TopicSchema] = None,
                            n_cores: int = 4) -> Dict:
    """The Fig. 5 dashboard: instruction, network and memory heatmaps."""
    schema = schema if schema is not None else TopicSchema()
    panels = []
    instruction_targets = [
        _rate_target(f"I{i}_{c}",
                     schema.pmu_topic(host, c, "instructions"))
        for i, host in enumerate(hostnames) for c in range(n_cores)]
    panels.append(_panel(1, "Instructions/s per node", "heatmap", 0,
                         instruction_targets))
    network_targets = [
        _rate_target(f"N{i}_{direction}",
                     schema.stats_topic(host, f"net_total.{direction}"))
        for i, host in enumerate(hostnames)
        for direction in ("recv", "send")]
    panels.append(_panel(2, "Network traffic per node", "heatmap",
                         _PANEL_HEIGHT, network_targets))
    memory_targets = [
        _query_target(f"M{i}", schema.stats_topic(host, "memory_usage.used"))
        for i, host in enumerate(hostnames)]
    panels.append(_panel(3, "Memory usage per node", "heatmap",
                         2 * _PANEL_HEIGHT, memory_targets))
    return {
        "title": "Monte Cimone — HPL cluster view (Fig. 5)",
        "uid": "mc-cluster",
        "tags": ["montecimone", "examon"],
        "refresh": "5s",
        "panels": panels,
        "schemaVersion": 39,
    }


def build_thermal_dashboard(hostnames: List[str],
                            schema: Optional[TopicSchema] = None,
                            trip_celsius: float = 107.0) -> Dict:
    """The Fig. 6 dashboard: per-node SoC temperatures with the trip line."""
    schema = schema if schema is not None else TopicSchema()
    targets = [
        _query_target(f"T{i}",
                      schema.stats_topic(host, "temperature.cpu_temp"))
        for i, host in enumerate(hostnames)]
    panel = _panel(1, "SoC temperature per node", "timeseries", 0, targets)
    panel["fieldConfig"] = {
        "defaults": {
            "unit": "celsius",
            "thresholds": {"mode": "absolute", "steps": [
                {"color": "green", "value": None},
                {"color": "orange", "value": 90.0},
                {"color": "red", "value": trip_celsius},
            ]},
        }
    }
    return {
        "title": "Monte Cimone — thermal (Fig. 6)",
        "uid": "mc-thermal",
        "tags": ["montecimone", "examon", "thermal"],
        "refresh": "5s",
        "panels": [panel],
        "schemaVersion": 39,
    }


def export_dashboard(dashboard: Dict) -> str:
    """Serialise a dashboard to committed-to-git JSON (stable ordering)."""
    return json.dumps(dashboard, indent=2, sort_keys=True)
