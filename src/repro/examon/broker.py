"""The MQTT broker on the master node.

A topic-tree publish/subscribe broker with the subset of MQTT semantics
ExaMon uses: QoS-0 delivery (fire and forget), wildcard subscriptions,
retained messages (so a dashboard attaching late sees the last sample of
each series), and per-client delivery callbacks.  Delivery statistics are
kept because the paper's deployment cares about monitoring overhead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.examon.topics import topic_matches

__all__ = ["MQTTMessage", "MQTTBroker", "Subscription"]


@dataclass(frozen=True)
class MQTTMessage:
    """One published message."""

    topic: str
    payload: str
    timestamp_s: float
    retained: bool = False


@dataclass
class Subscription:
    """One client subscription: a pattern and its delivery callback."""

    client_id: str
    pattern: str
    callback: Callable[[MQTTMessage], None]


class MQTTBroker:
    """The transport layer of the ExaMon deployment."""

    def __init__(self, hostname: str = "mc-master") -> None:
        self.hostname = hostname
        self._subscriptions: List[Subscription] = []
        self._retained: Dict[str, MQTTMessage] = {}
        self.messages_published = 0
        self.messages_delivered = 0
        self.bytes_published = 0

    # -- subscribe ----------------------------------------------------------
    def subscribe(self, client_id: str, pattern: str,
                  callback: Callable[[MQTTMessage], None]) -> Subscription:
        """Register a wildcard subscription.

        Retained messages matching the pattern are delivered immediately,
        per MQTT retained-message semantics.
        """
        topic_matches(pattern, "probe")  # validates '#' placement
        subscription = Subscription(client_id=client_id, pattern=pattern,
                                    callback=callback)
        self._subscriptions.append(subscription)
        for topic, message in self._retained.items():
            if topic_matches(pattern, topic):
                callback(message)
                self.messages_delivered += 1
        return subscription

    def unsubscribe(self, subscription: Subscription) -> None:
        """Drop a subscription (no-op if already gone)."""
        if subscription in self._subscriptions:
            self._subscriptions.remove(subscription)

    def subscriptions_of(self, client_id: str) -> List[Subscription]:
        """All live subscriptions of one client."""
        return [s for s in self._subscriptions if s.client_id == client_id]

    # -- publish -----------------------------------------------------------
    def publish(self, topic: str, payload: str, timestamp_s: float,
                retain: bool = True) -> int:
        """Publish one message; returns the number of deliveries.

        ExaMon retains the last sample per topic by default so that
        dashboards attaching mid-run render immediately.
        """
        if "+" in topic or "#" in topic:
            raise ValueError(f"cannot publish to a wildcard topic: {topic!r}")
        message = MQTTMessage(topic=topic, payload=payload,
                              timestamp_s=timestamp_s, retained=retain)
        self.messages_published += 1
        self.bytes_published += len(topic) + len(payload)
        if retain:
            self._retained[topic] = message
        delivered = 0
        for subscription in list(self._subscriptions):
            if topic_matches(subscription.pattern, topic):
                subscription.callback(message)
                delivered += 1
        self.messages_delivered += delivered
        return delivered

    def retained_topics(self) -> List[str]:
        """Topics with a retained last sample, sorted."""
        return sorted(self._retained)
