"""The MQTT broker on the master node.

A topic-tree publish/subscribe broker with the subset of MQTT semantics
ExaMon uses: QoS-0 delivery (fire and forget), wildcard subscriptions,
retained messages (so a dashboard attaching late sees the last sample of
each series), and per-client delivery callbacks.  Delivery statistics are
kept because the paper's deployment cares about monitoring overhead.

Matching is served by a topic trie keyed on topic levels, with dedicated
branches for the ``+`` and ``#`` wildcards, so a publish visits
O(topic depth) index nodes instead of scanning every subscription — the
structure mosquitto and every production broker use.  ``match_ops``
counts visited index nodes; the observability layer exposes it as the
deterministic measure of matching cost (simulation code may not read the
host wall clock).

Retained-flag semantics follow MQTT 3.1.1 §3.3.1.3: a message delivered
live to an existing subscriber carries ``retained=False``; a message
replayed from the retained store to a *new* subscriber carries
``retained=True``.  (An earlier revision inverted this — live deliveries
copied the publisher's ``retain`` request and replays reused the stored
flag — which made it impossible for a dashboard to tell a fresh sample
from a stale replay.)
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional

from repro.examon.topics import topic_matches

__all__ = ["MQTTMessage", "MQTTBroker", "Subscription",
           "BrokerUnavailableError"]


class BrokerUnavailableError(ConnectionError):
    """A publish hit a broker that is down (the client's ``ECONNREFUSED``).

    Raised instead of silently dropping the message: QoS-0 loses messages
    in flight, but a *connect* failure is visible to the client, and the
    sampling plugins use it to switch into their buffer-and-reconnect
    path (see :class:`repro.examon.plugins.base.SamplingPlugin`).
    """


@dataclass(frozen=True, slots=True)
class MQTTMessage:
    """One published message."""

    topic: str
    payload: str
    timestamp_s: float
    retained: bool = False


@dataclass(slots=True)
class Subscription:
    """One client subscription: a pattern and its delivery callback."""

    client_id: str
    pattern: str
    callback: Callable[[MQTTMessage], None]
    #: Broker-assigned insertion sequence; deliveries happen in
    #: subscription order regardless of the index traversal order.
    seq: int = 0


class _TrieNode:
    """One level of the subscription index."""

    __slots__ = ("children", "plus", "here", "hash_here")

    def __init__(self) -> None:
        #: Exact next-level branches.
        self.children: Dict[str, _TrieNode] = {}
        #: The ``+`` single-level wildcard branch.
        self.plus: Optional[_TrieNode] = None
        #: Subscriptions whose pattern ends exactly at this node.
        self.here: List[Subscription] = []
        #: Subscriptions whose pattern ends in ``#`` at this node (they
        #: match this node's topic and everything below it).
        self.hash_here: List[Subscription] = []

    def is_empty(self) -> bool:
        """True when the node indexes nothing and can be pruned."""
        return (not self.children and self.plus is None
                and not self.here and not self.hash_here)


class MQTTBroker:
    """The transport layer of the ExaMon deployment."""

    def __init__(self, hostname: str = "mc-master") -> None:
        self.hostname = hostname
        self._subscriptions: List[Subscription] = []
        self._root = _TrieNode()
        self._retained: Dict[str, MQTTMessage] = {}
        #: Per-topic resolved subscription lists.  The sampling plugins
        #: publish the same few hundred concrete topics every period, so
        #: after the first publish of each topic the trie walk (and its
        #: subscription-order sort) is a dict hit.  Any subscribe or
        #: unsubscribe clears the cache wholesale — correctness first; a
        #: deployment's subscription set changes a handful of times per
        #: run, its topic set never.
        self._match_cache: Dict[str, List[Subscription]] = {}
        self._next_seq = 1
        self.messages_published = 0
        self.messages_delivered = 0
        self.bytes_published = 0
        #: Subscription-index nodes visited while matching (the
        #: deterministic "match time" the metrics registry exposes).
        #: Cache hits visit zero index nodes and are counted separately.
        self.match_ops = 0
        #: Publishes whose subscription set came from the match cache.
        self.match_cache_hits = 0
        #: Availability (chaos injection): a down broker refuses publishes.
        self.available = True
        #: Slow-broker fault: extra per-publish latency the *publishing*
        #: daemon must absorb (modelled client-side, since the broker
        #: object itself has no clock).  ``0`` means healthy.
        self.publish_delay_s = 0.0
        #: Publishes refused while the broker was down.
        self.publish_rejects = 0

    @property
    def subscription_count(self) -> int:
        """Live subscriptions across all clients."""
        return len(self._subscriptions)

    # -- subscribe ----------------------------------------------------------
    def subscribe(self, client_id: str, pattern: str,
                  callback: Callable[[MQTTMessage], None]) -> Subscription:
        """Register a wildcard subscription.

        Retained messages matching the pattern are delivered immediately
        with the retain flag **set**, per MQTT retained-message semantics
        (the subscriber can tell these replays from live traffic).
        """
        topic_matches(pattern, "probe")  # validates '#' placement
        subscription = Subscription(client_id=client_id, pattern=pattern,
                                    callback=callback, seq=self._next_seq)
        self._next_seq += 1
        self._subscriptions.append(subscription)
        self._index_insert(subscription)
        self._match_cache.clear()
        # Replay order is part of the subscribe contract (alphabetical);
        # this is a cold path — it runs once per subscription, not per
        # publish.
        for topic in sorted(self._retained):  # simlint: disable=PERF303
            if topic_matches(pattern, topic):
                callback(replace(self._retained[topic], retained=True))
                self.messages_delivered += 1
        return subscription

    def unsubscribe(self, subscription: Subscription) -> None:
        """Drop a subscription (no-op if already gone)."""
        # Linear scan over live subscriptions; a deployment holds a handful
        # and unsubscribe is a cold path.
        if subscription in self._subscriptions:  # simlint: disable=PERF302
            self._subscriptions.remove(subscription)
            self._index_remove(subscription)
            self._match_cache.clear()

    def subscriptions_of(self, client_id: str) -> List[Subscription]:
        """All live subscriptions of one client."""
        return [s for s in self._subscriptions if s.client_id == client_id]

    # -- subscription index --------------------------------------------------
    def _index_insert(self, subscription: Subscription) -> None:
        node = self._root
        parts = subscription.pattern.split("/")
        for i, part in enumerate(parts):
            if part == "#":
                # topic_matches already rejected interior '#'.
                node.hash_here.append(subscription)
                return
            if part == "+":
                if node.plus is None:
                    node.plus = _TrieNode()
                node = node.plus
            else:
                node = node.children.setdefault(part, _TrieNode())
        node.here.append(subscription)

    def _index_remove(self, subscription: Subscription) -> None:
        """Remove a subscription from the trie, pruning emptied nodes."""
        path: List[tuple[_TrieNode, str]] = []
        node = self._root
        for part in subscription.pattern.split("/"):
            if part == "#":
                node.hash_here.remove(subscription)
                break
            path.append((node, part))
            node = node.plus if part == "+" else node.children[part]
        else:
            node.here.remove(subscription)
        for parent, part in reversed(path):
            child = parent.plus if part == "+" else parent.children[part]
            if not child.is_empty():
                break
            if part == "+":
                parent.plus = None
            else:
                del parent.children[part]

    def _match(self, topic_parts: List[str]) -> List[Subscription]:
        """Subscriptions matching a topic, in subscription order."""
        matched: List[Subscription] = []
        stack: List[tuple[_TrieNode, int]] = [(self._root, 0)]
        n_levels = len(topic_parts)
        while stack:
            node, depth = stack.pop()
            self.match_ops += 1
            # A '#' ending here matches the remaining levels (including
            # zero of them): 'a/#' matches both 'a' and 'a/b/c'.
            matched.extend(node.hash_here)
            if depth == n_levels:
                matched.extend(node.here)
                continue
            part = topic_parts[depth]
            child = node.children.get(part)
            if child is not None:
                stack.append((child, depth + 1))
            if node.plus is not None:
                stack.append((node.plus, depth + 1))
        # Trie traversal order is structural, not subscription order; the
        # delivery contract is subscription order, so sort by seq.  Runs
        # once per topic — publish hits the match cache afterwards.
        matched.sort(key=lambda s: s.seq)  # simlint: disable=PERF303
        return matched

    # -- publish -----------------------------------------------------------
    def publish(self, topic: str, payload: str, timestamp_s: float,
                retain: bool = True) -> int:
        """Publish one message; returns the number of deliveries.

        ExaMon retains the last sample per topic by default so that
        dashboards attaching mid-run render immediately.  Live deliveries
        carry ``retained=False`` (MQTT 3.1.1: the retain flag marks store
        replays, not the publisher's retain request).
        """
        if "+" in topic or "#" in topic:
            raise ValueError(f"cannot publish to a wildcard topic: {topic!r}")
        if not self.available:
            self.publish_rejects += 1
            raise BrokerUnavailableError(
                f"broker {self.hostname!r} is down; connect refused")
        message = MQTTMessage(topic=topic, payload=payload,
                              timestamp_s=timestamp_s, retained=False)
        self.messages_published += 1
        self.bytes_published += len(topic) + len(payload)
        if retain:
            self._retained[topic] = message
        subscriptions = self._match_cache.get(topic)
        if subscriptions is None:
            subscriptions = self._match(topic.split("/"))
            self._match_cache[topic] = subscriptions
        else:
            self.match_cache_hits += 1
        delivered = 0
        for subscription in subscriptions:
            subscription.callback(message)
            delivered += 1
        self.messages_delivered += delivered
        return delivered

    def retained_topics(self) -> List[str]:
        """Topics with a retained last sample, sorted."""
        return sorted(self._retained)  # simlint: disable=PERF303  (introspection endpoint, not on the publish path)

    # -- fault injection -----------------------------------------------------
    def go_offline(self) -> None:
        """Take the broker down: publishes raise until :meth:`restore`.

        Subscriptions and the retained store survive the outage (mosquitto
        restarted with persistence behaves the same way); only the live
        publish path is refused.
        """
        self.available = False

    def restore(self) -> None:
        """Bring the broker back up and clear any slow-mode penalty."""
        self.available = True
        self.publish_delay_s = 0.0

    def set_slow(self, delay_s: float) -> None:
        """Degrade the broker: every publish costs ``delay_s`` extra."""
        if delay_s < 0:
            raise ValueError("slow-broker delay cannot be negative")
        self.publish_delay_s = float(delay_s)
