"""The ExaMon payload format: ``<value>;<timestamp>`` (Table II).

Values are numeric; timestamps are seconds (the simulated clock plays the
role of Unix time).  The codec is strict — a malformed payload raises
rather than silently producing NaNs in the database, because storage-side
validation is what keeps an ODA pipeline debuggable.
"""

from __future__ import annotations

__all__ = ["encode_payload", "decode_payload"]


def encode_payload(value: float, timestamp_s: float) -> str:
    """Render one measurement in the Table II wire format."""
    if not isinstance(value, (int, float)):
        raise TypeError(f"value must be numeric, got {type(value).__name__}")
    return f"{value};{timestamp_s}"


def decode_payload(payload: str) -> tuple[float, float]:
    """Parse ``<value>;<timestamp>`` back into floats.

    Raises
    ------
    ValueError
        On missing separator or non-numeric fields.
    """
    if ";" not in payload:
        raise ValueError(f"payload missing ';' separator: {payload!r}")
    value_text, _, ts_text = payload.partition(";")
    try:
        return float(value_text), float(ts_text)
    except ValueError as exc:
        raise ValueError(f"non-numeric payload: {payload!r}") from exc
