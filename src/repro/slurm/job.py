"""Job records and the SLURM job state machine."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional, Tuple

from repro.power.model import IDLE_PROFILE, WorkloadProfile

__all__ = ["Job", "JobAttempt", "JobState"]


class JobState(Enum):
    """The SLURM states the model distinguishes."""

    PENDING = "PD"
    RUNNING = "R"
    COMPLETED = "CD"
    FAILED = "F"
    CANCELLED = "CA"
    TIMEOUT = "TO"
    NODE_FAIL = "NF"
    #: ``--requeue`` semantics: the job hit NODE_FAIL, sits out a backoff
    #: window, and returns to PENDING for another attempt.
    REQUEUED = "RQ"

    @property
    def is_terminal(self) -> bool:
        """Whether the job has left the system."""
        return self not in (JobState.PENDING, JobState.RUNNING,
                            JobState.REQUEUED)


@dataclass(frozen=True)
class JobAttempt:
    """One execution attempt of a job, as recorded by accounting.

    A job without requeues has exactly one attempt; a ``--requeue`` job
    that survived node failures carries one record per attempt, so sacct
    can show the full retry history (real SLURM's ``sacct --duplicates``).
    """

    attempt: int                 # 1-based attempt number
    nodes: Tuple[str, ...]       # allocation this attempt ran on
    start_time_s: float
    end_time_s: float
    state: JobState              # how this attempt ended
    reason: str
    #: Backoff until the next attempt becomes eligible (0 for the last one).
    backoff_s: float = 0.0

    @property
    def elapsed_s(self) -> float:
        """Wall time of this attempt."""
        return self.end_time_s - self.start_time_s


@dataclass
class Job:
    """One batch job.

    ``profile`` describes the workload's hardware activity (it drives the
    power/thermal/monitoring substrates while the job runs); ``duration_s``
    is the modelled execution time on the requested allocation.
    """

    job_id: int
    name: str
    user: str
    n_nodes: int
    duration_s: float
    time_limit_s: float = float("inf")
    partition: str = "compute"
    profile: WorkloadProfile = IDLE_PROFILE
    state: JobState = JobState.PENDING
    #: ``--dependency=afterok:<id>`` semantics: this job may start only
    #: after every listed job COMPLETED; if any of them fails, this job is
    #: cancelled as DependencyNeverSatisfied.
    depends_on: List[int] = field(default_factory=list)
    #: Set by scancel on a running job; the run process observes it at its
    #: next execution slice and winds the job down cleanly.
    cancel_requested: bool = False
    #: ``sbatch --requeue``: on NODE_FAIL the job is retried (bounded by
    #: ``max_requeues``) after an exponential backoff instead of failing.
    requeue: bool = False
    max_requeues: int = 3
    #: Base of the exponential backoff: attempt *n* waits
    #: ``requeue_backoff_s * 2**(n-1)`` before re-entering the queue.
    requeue_backoff_s: float = 30.0
    #: Number of times the job has been requeued so far.
    restart_count: int = 0
    #: Per-attempt accounting records (including the final attempt).
    attempts: List[JobAttempt] = field(default_factory=list)
    submit_time_s: float = 0.0
    start_time_s: Optional[float] = None
    end_time_s: Optional[float] = None
    allocated_nodes: List[str] = field(default_factory=list)
    exit_reason: str = ""

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError("a job needs at least one node")
        if self.duration_s < 0:
            raise ValueError("negative duration")
        if self.time_limit_s <= 0:
            raise ValueError("time limit must be positive")
        if self.max_requeues < 0:
            raise ValueError("max_requeues cannot be negative")
        if self.requeue_backoff_s < 0:
            raise ValueError("requeue backoff cannot be negative")

    @property
    def wait_time_s(self) -> Optional[float]:
        """Queue wait, once started."""
        if self.start_time_s is None:
            return None
        return self.start_time_s - self.submit_time_s

    @property
    def elapsed_s(self) -> Optional[float]:
        """Wall time used, once finished."""
        if self.start_time_s is None or self.end_time_s is None:
            return None
        return self.end_time_s - self.start_time_s

    def squeue_row(self) -> str:
        """One squeue-format line."""
        nodes = ",".join(self.allocated_nodes) if self.allocated_nodes else "(none)"
        return (f"{self.job_id:>8} {self.partition:>9} {self.name:>12.12} "
                f"{self.user:>8} {self.state.value:>2} {self.n_nodes:>5} {nodes}")
