"""Fault-injection campaigns: node trips swept across the job lifecycle.

The Fig. 6 thermal-runaway incident is the repository's canonical fault,
but a single mid-job trip exercises only one corner of the failure
surface.  This module drives a whole *campaign*: fresh cluster per trial,
one node tripped at a swept simulated time — during boot, mid-job, or
after teardown — with ``--requeue`` jobs and the automatic node
drain→resume lifecycle enabled, then checks that the system converged to
a coherent state and that the event kernel's unconsumed-failure ledger is
empty (i.e. no injected fault was silently lost).

Real RISC-V testbeds report exactly this operational profile — nodes
tripping, jobs needing requeue (Brown et al., *Experiences of running an
HPC RISC-V testbed*) — so the campaign doubles as the regression harness
for the recovery path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.slurm.job import JobState
from repro.slurm.partition import NodeAllocState

__all__ = ["TrialResult", "CampaignResult", "run_trip_campaign"]


@dataclass(frozen=True)
class TrialResult:
    """Outcome of one fault-injection trial."""

    trip_time_s: float
    phase: str                    # "boot" | "mid-job" | "teardown"
    victim: str
    job_state: JobState
    n_attempts: int
    restart_count: int
    node_state: NodeAllocState    # scheduler-visible state at campaign end
    #: Failed events the kernel ledger still holds at the end (must be 0:
    #: a non-zero count means a fault was injected and then silently lost).
    unconsumed_failures: int

    @property
    def node_recovered(self) -> bool:
        """Whether the tripped node returned to the schedulable pool."""
        return self.node_state is NodeAllocState.IDLE


@dataclass
class CampaignResult:
    """All trials of one sweep."""

    trials: List[TrialResult]

    @property
    def all_jobs_completed(self) -> bool:
        return all(t.job_state is JobState.COMPLETED for t in self.trials)

    @property
    def all_nodes_recovered(self) -> bool:
        return all(t.node_recovered for t in self.trials)

    @property
    def no_lost_failures(self) -> bool:
        return all(t.unconsumed_failures == 0 for t in self.trials)

    def phases_covered(self) -> List[str]:
        """Distinct lifecycle phases the sweep actually hit, in order."""
        seen: List[str] = []
        for trial in self.trials:
            if trial.phase not in seen:
                seen.append(trial.phase)
        return seen

    def summary(self) -> str:
        """One line per trial, campaign-report style."""
        lines = [f"{'t_trip':>8} {'phase':>9} {'job':>10} {'attempts':>8} "
                 f"{'node':>6} {'lost':>4}"]
        for t in self.trials:
            lines.append(f"{t.trip_time_s:8.1f} {t.phase:>9} "
                         f"{t.job_state.name:>10} {t.n_attempts:>8} "
                         f"{t.node_state.value:>6} {t.unconsumed_failures:>4}")
        return "\n".join(lines)


def run_trip_campaign(trip_times_s: Sequence[float],
                      victim: str = "mc-node-3",
                      job_nodes: int = 8,
                      job_duration_s: float = 120.0,
                      recovery_delay_s: float = 30.0,
                      requeue_backoff_s: float = 20.0,
                      settle_s: float = 2400.0,
                      enclosure_config: Optional[object] = None
                      ) -> CampaignResult:
    """Sweep node-trip times across the job lifecycle; one trial per time.

    Each trial builds a fresh mitigated cluster (deterministic — the
    engine's insertion-order rule makes every trial exactly reproducible),
    enables automatic node recovery, schedules the trip, boots, submits a
    ``--requeue`` job, and runs until everything settles.  The trial's
    ``phase`` label is derived from when the trip actually landed relative
    to boot completion and the job's execution window.
    """
    from repro.cluster.cluster import MonteCimoneCluster
    from repro.power.model import HPL_PROFILE
    from repro.slurm.api import SlurmAPI
    from repro.thermal.enclosure import EnclosureConfig

    trials: List[TrialResult] = []
    for trip_time_s in trip_times_s:
        cluster = MonteCimoneCluster(
            enclosure_config=(enclosure_config if enclosure_config is not None
                              else EnclosureConfig.mitigated()))
        cluster.enable_auto_recovery(delay_s=recovery_delay_s)
        cluster.engine.call_at(
            trip_time_s,
            lambda c=cluster: c.inject_node_failure(victim,
                                                    reason="campaign trip"))
        cluster.boot_all()
        boot_done_s = cluster.engine.now
        api = SlurmAPI(cluster.slurm)
        job_id = api.sbatch("campaign-hpl", "ops", nodes=job_nodes,
                            duration_s=job_duration_s, profile=HPL_PROFILE,
                            requeue=True,
                            requeue_backoff_s=requeue_backoff_s)
        api.wait_all()
        # Let a post-job trip fire and the recovery lifecycle finish.
        cluster.run_for(settle_s)
        job = cluster.slurm.jobs[job_id]
        if trip_time_s <= boot_done_s:
            phase = "boot"
        elif job.attempts and trip_time_s <= job.attempts[-1].end_time_s:
            phase = "mid-job"
        else:
            phase = "teardown"
        info = cluster.slurm.partitions["compute"].nodes[victim]
        trials.append(TrialResult(
            trip_time_s=trip_time_s,
            phase=phase,
            victim=victim,
            job_state=job.state,
            n_attempts=len(job.attempts),
            restart_count=job.restart_count,
            node_state=info.state,
            unconsumed_failures=len(cluster.engine.unconsumed_failures)))
    return CampaignResult(trials=trials)
