"""sacct-style accounting output, with the energy column.

Combines the controller's job records with the
:class:`~repro.power.energy.JobEnergyAccounting` ledger into the
fixed-width accounting listing operators pull after a benchmarking
campaign (real SLURM exposes the same through its energy plugin).
"""

from __future__ import annotations

from typing import List, Optional

from repro.power.energy import JobEnergyAccounting
from repro.slurm.job import JobState
from repro.slurm.scheduler import SlurmController

__all__ = ["render_sacct"]

_HEADER = (f"{'JobID':>8} {'JobName':>14} {'User':>8} {'NNodes':>6} "
           f"{'Elapsed':>9} {'State':>10} {'Energy(kJ)':>10} {'AvgW':>7}")


def _format_elapsed(seconds: Optional[float]) -> str:
    if seconds is None:
        return "--:--:--"
    total = int(round(seconds))
    return f"{total // 3600:02d}:{total % 3600 // 60:02d}:{total % 60:02d}"


def render_sacct(controller: SlurmController,
                 energy: Optional[JobEnergyAccounting] = None,
                 user: Optional[str] = None) -> str:
    """Render terminal accounting rows for finished jobs.

    Energy columns show ``--`` when no accounting ledger covers a job
    (e.g. jobs on nodes the controller has no hardware binding for).
    """
    rows: List[str] = [_HEADER, "-" * len(_HEADER)]
    for job in controller.jobs.values():
        if not job.state.is_terminal:
            continue
        if user is not None and job.user != user:
            continue
        record = energy.record_for(job.job_id) if energy is not None else None
        energy_text = f"{record.energy_j / 1e3:10.2f}" if record else \
            f"{'--':>10}"
        watts_text = f"{record.mean_power_w:7.2f}" if record else f"{'--':>7}"
        rows.append(
            f"{job.job_id:>8} {job.name:>14.14} {job.user:>8} "
            f"{len(job.allocated_nodes):>6} "
            f"{_format_elapsed(job.elapsed_s):>9} "
            f"{job.state.name:>10} {energy_text} {watts_text}")
    if len(rows) == 2:
        rows.append("(no finished jobs)")
    return "\n".join(rows)
