"""sacct-style accounting output, with the energy column.

Combines the controller's job records with the
:class:`~repro.power.energy.JobEnergyAccounting` ledger into the
fixed-width accounting listing operators pull after a benchmarking
campaign (real SLURM exposes the same through its energy plugin).
"""

from __future__ import annotations

from typing import List, Optional

from repro.power.energy import JobEnergyAccounting
from repro.slurm.job import JobState
from repro.slurm.scheduler import SlurmController

__all__ = ["render_sacct"]

_HEADER = (f"{'JobID':>8} {'JobName':>14} {'User':>8} {'NNodes':>6} "
           f"{'Elapsed':>9} {'State':>10} {'Energy(kJ)':>10} {'AvgW':>7}")


def _format_elapsed(seconds: Optional[float]) -> str:
    if seconds is None:
        return "--:--:--"
    total = int(round(seconds))
    return f"{total // 3600:02d}:{total % 3600 // 60:02d}:{total % 60:02d}"


def render_sacct(controller: SlurmController,
                 energy: Optional[JobEnergyAccounting] = None,
                 user: Optional[str] = None) -> str:
    """Render terminal accounting rows for finished jobs.

    A job that was requeued after node failures gets one row per attempt
    (``sacct --duplicates`` semantics: same JobID, each attempt's state and
    elapsed time), so a NODE_FAIL followed by a successful retry shows both
    the failed and the completed attempt.  Energy columns show ``--`` when
    no accounting ledger covers a row (requeued attempts' energy is
    attributed to the final attempt; jobs on nodes the controller has no
    hardware binding for have none at all).
    """
    rows: List[str] = [_HEADER, "-" * len(_HEADER)]
    for job in controller.jobs.values():
        if not job.state.is_terminal:
            continue
        if user is not None and job.user != user:
            continue
        record = energy.record_for(job.job_id) if energy is not None else None
        energy_text = f"{record.energy_j / 1e3:10.2f}" if record else \
            f"{'--':>10}"
        watts_text = f"{record.mean_power_w:7.2f}" if record else f"{'--':>7}"
        no_energy = f"{'--':>10} {'--':>7}"
        last = job.attempts[-1] if job.attempts else None
        final_is_attempt = last is not None and last.state is job.state
        history = job.attempts[:-1] if final_is_attempt else job.attempts
        for attempt in history:
            # Earlier attempts: shown like sacct --duplicates rows.
            rows.append(
                f"{job.job_id:>8} {job.name:>14.14} {job.user:>8} "
                f"{len(attempt.nodes):>6} "
                f"{_format_elapsed(attempt.elapsed_s):>9} "
                f"{attempt.state.name:>10} {no_energy}")
        if final_is_attempt:
            # The final attempt is the job's terminal record.
            rows.append(
                f"{job.job_id:>8} {job.name:>14.14} {job.user:>8} "
                f"{len(last.nodes):>6} "
                f"{_format_elapsed(last.elapsed_s):>9} "
                f"{job.state.name:>10} {energy_text} {watts_text}")
        else:
            # Terminal state not reached by an execution attempt (cancelled
            # while pending or during a requeue backoff): summary row after
            # any recorded attempts.
            rows.append(
                f"{job.job_id:>8} {job.name:>14.14} {job.user:>8} "
                f"{len(job.allocated_nodes):>6} "
                f"{_format_elapsed(job.elapsed_s):>9} "
                f"{job.state.name:>10} {energy_text} {watts_text}")
    if len(rows) == 2:
        rows.append("(no finished jobs)")
    return "\n".join(rows)
