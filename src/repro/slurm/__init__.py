"""SLURM-style workload manager.

§IV-A: SLURM is one of the essential production services ported to the
RISC-V cluster.  This package implements the scheduling substrate the
paper's experiments ran under:

* :mod:`repro.slurm.job` — job records and their state machine;
* :mod:`repro.slurm.partition` — partitions and per-node scheduler state;
* :mod:`repro.slurm.scheduler` — the controller: FIFO queue with
  conservative backfill, node allocation, time limits, node-failure
  handling (a thermal trip drains the node and fails the job, which is
  exactly what happened to node 7's HPL run in Fig. 6);
* :mod:`repro.slurm.api` — an sbatch/squeue/sinfo/scancel-shaped facade.
"""

from repro.slurm.api import SlurmAPI
from repro.slurm.job import Job, JobAttempt, JobState
from repro.slurm.partition import NodeAllocState, Partition, SlurmNodeInfo
from repro.slurm.scheduler import SlurmController

__all__ = [
    "Job",
    "JobAttempt",
    "JobState",
    "NodeAllocState",
    "Partition",
    "SlurmAPI",
    "SlurmController",
    "SlurmNodeInfo",
]
