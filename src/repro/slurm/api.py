"""User-facing SLURM command facade.

Wraps :class:`~repro.slurm.scheduler.SlurmController` in the command
shapes users type — ``sbatch``, ``srun``, ``squeue``, ``sinfo``,
``scancel``, ``sacct`` — so the examples read like a session on the real
login node.
"""

from __future__ import annotations

from typing import List, Optional

from repro.events.engine import Engine
from repro.power.model import WorkloadProfile
from repro.slurm.batch_script import parse_batch_script
from repro.slurm.job import Job, JobAttempt, JobState
from repro.slurm.scheduler import SlurmController

__all__ = ["SlurmAPI"]


class SlurmAPI:
    """The login node's view of the batch system."""

    def __init__(self, controller: SlurmController) -> None:
        self.controller = controller

    @property
    def engine(self) -> Engine:
        """The simulation engine driving the controller."""
        return self.controller.engine

    def sbatch(self, name: str, user: str, nodes: int, duration_s: float,
               time_s: Optional[float] = None, partition: Optional[str] = None,
               profile: Optional[WorkloadProfile] = None,
               depends_on: Optional[list[int]] = None,
               requeue: bool = False, max_requeues: int = 3,
               requeue_backoff_s: float = 30.0) -> int:
        """Submit a batch job; returns the job id (like ``sbatch``'s stdout).

        ``depends_on`` is ``--dependency=afterok:<id>[,<id>...]``;
        ``requeue`` is ``--requeue``: retry the job (with exponential
        backoff) when a node failure kills it, up to ``max_requeues`` times.
        """
        job = self.controller.submit(
            name=name, user=user, n_nodes=nodes, duration_s=duration_s,
            time_limit_s=time_s, partition=partition, profile=profile,
            depends_on=depends_on, requeue=requeue,
            max_requeues=max_requeues, requeue_backoff_s=requeue_backoff_s)
        return job.job_id

    def sbatch_script(self, script_text: str, user: str, duration_s: float,
                      profile: Optional[WorkloadProfile] = None) -> int:
        """Submit a ``#SBATCH``-directive shell script, like real sbatch.

        ``duration_s`` is the modelled execution time of the script's
        payload (the simulation cannot execute shell commands); the
        directives control name, node count, time limit and partition.
        """
        script = parse_batch_script(script_text)
        job = self.controller.submit(
            name=script.job_name, user=user, n_nodes=script.n_nodes,
            duration_s=duration_s, time_limit_s=script.time_limit_s,
            partition=script.partition, profile=profile)
        return job.job_id

    def srun(self, name: str, user: str, nodes: int, duration_s: float,
             profile: Optional[WorkloadProfile] = None,
             limit_s: float = 1e9) -> Job:
        """Blocking run: submit, then advance the simulation to completion."""
        job = self.controller.submit(
            name=name, user=user, n_nodes=nodes, duration_s=duration_s,
            profile=profile)
        guard = self.engine.now + limit_s
        while not job.state.is_terminal:
            if self.engine.peek() > guard:
                raise TimeoutError(f"srun guard expired for job {job.job_id}")
            self.engine.step()
        return job

    def scancel(self, job_id: int) -> None:
        """Cancel a job."""
        self.controller.cancel(job_id)

    def squeue(self) -> str:
        """The queue listing."""
        return "\n".join(self.controller.squeue())

    def sinfo(self) -> str:
        """The partition/node listing."""
        return "\n".join(self.controller.sinfo())

    def sacct(self, user: Optional[str] = None) -> List[Job]:
        """Accounting: all terminal jobs, optionally filtered by user."""
        return [job for job in self.controller.jobs.values()
                if job.state.is_terminal and (user is None or job.user == user)]

    def sacct_attempts(self, job_id: int) -> List[JobAttempt]:
        """Per-attempt history of one job (``sacct --duplicates`` view)."""
        return list(self.controller.jobs[job_id].attempts)

    def scontrol_resume(self, hostname: str) -> None:
        """Return a down/drained node to service and reschedule."""
        for partition in self.controller.partitions.values():
            if hostname in partition.nodes:
                partition.nodes[hostname].resume()
        self.controller.schedule_pass()

    def scontrol_drain(self, hostname: str, reason: str = "maintenance") -> None:
        """Administratively drain an idle node (no new work placed on it)."""
        for partition in self.controller.partitions.values():
            if hostname in partition.nodes:
                partition.nodes[hostname].drain(reason)

    def wait_all(self, limit_s: float = 1e9) -> None:
        """Advance the simulation until no job is pending or running."""
        guard = self.engine.now + limit_s
        while any(not j.state.is_terminal for j in self.controller.jobs.values()):
            if self.engine.peek() > guard:
                raise TimeoutError("wait_all guard expired")
            self.engine.step()
