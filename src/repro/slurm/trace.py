"""Job-trace generation and replay: cluster-operations studies.

A production system like Monte Cimone sees a mixed stream of user jobs;
this module generates seeded synthetic traces shaped like the paper's
workload set (HPL solves, STREAM sweeps, QE-LAX calculations at various
sizes/node counts) and replays them through the scheduler, reporting the
operator metrics (utilisation, wait times, throughput) the ODA framing
cares about.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.power.model import (
    HPL_PROFILE,
    QE_PROFILE,
    STREAM_DDR_PROFILE,
    WorkloadProfile,
)
from repro.slurm.job import Job, JobState
from repro.slurm.scheduler import SlurmController

__all__ = ["TraceEntry", "generate_trace", "replay_trace", "TraceReport"]

#: Workload mix of the synthetic trace: (name, profile, duration range s,
#: node count choices, relative frequency).
_MIX = (
    ("hpl", HPL_PROFILE, (600.0, 3600.0), (1, 2, 4, 8), 0.3),
    ("stream", STREAM_DDR_PROFILE, (120.0, 600.0), (1,), 0.3),
    ("qe", QE_PROFILE, (40.0, 1200.0), (1, 2, 4), 0.4),
)


@dataclass(frozen=True)
class TraceEntry:
    """One job of a synthetic trace."""

    submit_time_s: float
    name: str
    user: str
    n_nodes: int
    duration_s: float
    profile: WorkloadProfile


def generate_trace(n_jobs: int, horizon_s: float, seed: int = 2022,
                   users: tuple[str, ...] = ("alice", "bob", "carol")
                   ) -> List[TraceEntry]:
    """Generate a seeded synthetic job trace.

    Submission times are uniform over the horizon; job classes follow the
    :data:`_MIX` frequencies; everything is deterministic in ``seed``.
    """
    if n_jobs < 1:
        raise ValueError("need at least one job")
    if horizon_s <= 0:
        raise ValueError("horizon must be positive")
    rng = np.random.default_rng(seed)
    weights = np.array([m[4] for m in _MIX])
    weights = weights / weights.sum()
    entries = []
    submit_times = np.sort(rng.uniform(0.0, horizon_s, n_jobs))
    for i, submit_time in enumerate(submit_times):
        kind = _MIX[rng.choice(len(_MIX), p=weights)]
        name, profile, (d_lo, d_hi), node_choices, _w = kind
        entries.append(TraceEntry(
            submit_time_s=float(submit_time),
            name=f"{name}-{i:03d}",
            user=str(rng.choice(users)),
            n_nodes=int(rng.choice(node_choices)),
            duration_s=float(rng.uniform(d_lo, d_hi)),
            profile=profile))
    return entries


@dataclass
class TraceReport:
    """Operator metrics from one trace replay."""

    n_jobs: int
    completed: int
    failed: int
    makespan_s: float
    mean_wait_s: float
    max_wait_s: float
    node_seconds_used: float
    node_seconds_available: float
    per_user_jobs: Dict[str, int] = field(default_factory=dict)

    @property
    def utilisation(self) -> float:
        """Allocated node-seconds over available node-seconds."""
        if self.node_seconds_available <= 0:
            return 0.0
        return self.node_seconds_used / self.node_seconds_available


def replay_trace(controller: SlurmController, trace: List[TraceEntry],
                 guard_s: float = 1e7) -> TraceReport:
    """Replay a trace through a controller and collect the report.

    Submissions are scheduled at their trace times on the controller's
    engine; the engine then runs until every job is terminal.
    """
    if not trace:
        raise ValueError("empty trace")
    engine = controller.engine
    jobs: List[Job] = []

    start_time = engine.now
    for entry in trace:
        def submit(entry=entry):
            jobs.append(controller.submit(
                name=entry.name, user=entry.user, n_nodes=entry.n_nodes,
                duration_s=entry.duration_s, profile=entry.profile))

        engine.call_at(start_time + entry.submit_time_s, submit)

    guard = engine.now + guard_s
    while True:
        if not engine.queue_depth:
            break
        if engine.peek() > guard:
            raise TimeoutError("trace replay guard expired")
        engine.step()
        if (len(jobs) == len(trace)
                and all(job.state.is_terminal for job in jobs)):
            break

    end_time = max((job.end_time_s or engine.now) for job in jobs)
    waits = [job.wait_time_s or 0.0 for job in jobs]
    n_cluster_nodes = sum(len(p.nodes) for p in controller.partitions.values())
    used = sum((job.elapsed_s or 0.0) * len(job.allocated_nodes)
               for job in jobs)
    per_user: Dict[str, int] = {}
    for job in jobs:
        per_user[job.user] = per_user.get(job.user, 0) + 1
    return TraceReport(
        n_jobs=len(jobs),
        completed=sum(j.state is JobState.COMPLETED for j in jobs),
        failed=sum(j.state in (JobState.FAILED, JobState.NODE_FAIL)
                   for j in jobs),
        makespan_s=end_time - start_time,
        mean_wait_s=sum(waits) / len(waits),
        max_wait_s=max(waits),
        node_seconds_used=used,
        node_seconds_available=(end_time - start_time) * n_cluster_nodes,
        per_user_jobs=per_user)
