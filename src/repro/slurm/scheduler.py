"""The SLURM controller: queueing, placement, backfill, failures.

Scheduling policy
-----------------
The controller runs FIFO with **conservative backfill**: the head-of-queue
job reserves the earliest time enough nodes will be free; later jobs may
jump ahead only if their projected end (now + time limit) does not push
past that reservation.  This is slurmctld's default behaviour class and
what a small production system like Monte Cimone runs.

Execution
---------
The controller is driven by a :class:`~repro.events.engine.Engine`.  When
a job starts it optionally drives real :class:`~repro.cluster.node
.ComputeNode` objects (power/thermal/monitoring side effects); a node trip
mid-job fails the job with ``NODE_FAIL`` and marks the node down — the
paper's Fig. 6 incident, as seen by the scheduler.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, List, Optional

from repro.events.engine import Engine, Event
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # runtime import is lazy: cluster imports this module
    from repro.cluster.node import ComputeNode
from repro.slurm.job import Job, JobAttempt, JobState
from repro.slurm.partition import NodeAllocState, Partition, SlurmNodeInfo

__all__ = ["SlurmController"]


class SlurmController:
    """slurmctld for the simulated cluster."""

    def __init__(self, engine: Engine) -> None:
        self.engine = engine
        self.partitions: Dict[str, Partition] = {}
        self.jobs: Dict[int, Job] = {}
        self._queue: List[int] = []          # pending job ids, FIFO order
        self._next_job_id = 1
        #: Optional binding of hostnames to real simulated nodes.
        self.compute_nodes: Dict[str, "ComputeNode"] = {}
        #: Completion listeners: job -> None callbacks.
        self.on_job_end: List[Callable[[Job], None]] = []
        #: Requeue listeners: called when a NODE_FAIL job re-enters backoff.
        self.on_job_requeue: List[Callable[[Job], None]] = []
        # -- automatic node recovery (drain -> resume lifecycle) ----------
        self._recovery_enabled = False
        self.node_recovery_delay_s = 120.0
        self._node_service: Optional[Callable[[str], Generator[Event, None, None]]] = None
        self._recovering: set[str] = set()
        #: Open trace spans per job id (submit → terminal state), present
        #: only while the engine carries a tracer (see repro.obs).
        self._job_spans: Dict[int, Any] = {}

    @property
    def queue_depth(self) -> int:
        """Jobs currently waiting in the pending queue."""
        return len(self._queue)

    def enable_node_recovery(self, delay_s: float = 120.0,
                             service: Optional[Callable[[str], Generator[Event, None, None]]] = None) -> None:
        """Turn on the automatic drain→resume lifecycle for failed nodes.

        A node marked down via :meth:`node_failed` waits ``delay_s`` of
        simulated operator-response time in DOWN, transitions to DRAINED
        for servicing, then returns to IDLE and triggers a scheduling pass.
        ``service`` is an optional cooperative generator ``(hostname) ->
        events`` that performs the actual hardware service (cool-down wait,
        reboot) while the node is DRAINED — the cluster wires
        ``MonteCimoneCluster.service_node_process`` here.  Without a
        service hook only the scheduler state cycles, which is appropriate
        when no hardware nodes are bound.
        """
        self._recovery_enabled = True
        self.node_recovery_delay_s = float(delay_s)
        self._node_service = service

    # -- configuration ---------------------------------------------------------
    def add_partition(self, partition: Partition) -> None:
        """Register a partition."""
        if partition.name in self.partitions:
            raise ValueError(f"partition {partition.name!r} already exists")
        self.partitions[partition.name] = partition

    def bind_node(self, hostname: str, node: "ComputeNode") -> None:
        """Associate a scheduler record with a simulated compute node."""
        self.compute_nodes[hostname] = node

    def default_partition(self) -> Partition:
        """The partition used when jobs do not name one."""
        for partition in self.partitions.values():
            if partition.default:
                return partition
        if not self.partitions:
            raise RuntimeError("no partitions configured")
        return next(iter(self.partitions.values()))

    # -- submission ----------------------------------------------------------
    def submit(self, name: str, user: str, n_nodes: int, duration_s: float,
               time_limit_s: Optional[float] = None,
               partition: Optional[str] = None, profile=None,
               depends_on: Optional[List[int]] = None,
               requeue: bool = False, max_requeues: int = 3,
               requeue_backoff_s: float = 30.0) -> Job:
        """sbatch: enqueue a job and trigger a scheduling pass.

        ``depends_on`` lists job ids this job must wait for
        (``--dependency=afterok`` semantics).  ``requeue`` enables
        ``sbatch --requeue`` behaviour: a NODE_FAIL outcome puts the job
        back in the queue after an exponential backoff
        (``requeue_backoff_s * 2**restarts``) for up to ``max_requeues``
        retries, each attempt recorded in the job's accounting history.
        """
        part = self.partitions.get(partition) if partition else self.default_partition()
        if part is None:
            raise KeyError(f"no such partition {partition!r}")
        if n_nodes > len(part.nodes):
            raise ValueError(
                f"job needs {n_nodes} nodes but partition {part.name} "
                f"has only {len(part.nodes)}")
        limit = time_limit_s if time_limit_s is not None else part.max_time_s
        if limit > part.max_time_s:
            raise ValueError(f"time limit {limit}s exceeds partition max "
                             f"{part.max_time_s}s")
        for dep_id in depends_on or []:
            if dep_id not in self.jobs:
                raise KeyError(f"dependency job {dep_id} does not exist")
        job = Job(job_id=self._next_job_id, name=name, user=user,
                  n_nodes=n_nodes, duration_s=duration_s, time_limit_s=limit,
                  partition=part.name, submit_time_s=self.engine.now,
                  depends_on=list(depends_on or []),
                  requeue=requeue, max_requeues=max_requeues,
                  requeue_backoff_s=requeue_backoff_s)
        if profile is not None:
            job.profile = profile
        self._next_job_id += 1
        self.jobs[job.job_id] = job
        self._queue.append(job.job_id)
        if self.engine.tracer is not None:
            self._job_spans[job.job_id] = self.engine.tracer.begin(
                f"slurm.job:{job.job_id}", "slurm", job_id=job.job_id,
                job_name=job.name, user=job.user, n_nodes=job.n_nodes)
        self.schedule_pass()
        return job

    def cancel(self, job_id: int) -> None:
        """scancel: remove a pending job or kill a running one."""
        job = self.jobs[job_id]
        if job.state is JobState.PENDING:
            self._queue.remove(job_id)
            self._finish(job, JobState.CANCELLED, "cancelled while pending")
        elif job.state is JobState.RUNNING:
            # The run process observes the flag at its next slice; the job
            # stays RUNNING (nodes held) until it winds down cleanly.
            job.cancel_requested = True
        elif job.state is JobState.REQUEUED:
            # Sitting out a requeue backoff; the backoff process observes
            # the flag when it fires and cancels instead of re-enqueueing.
            job.cancel_requested = True

    # -- scheduling ----------------------------------------------------------
    def _dependency_state(self, job: Job) -> str:
        """'ready' | 'waiting' | 'failed' for afterok dependencies."""
        for dep_id in job.depends_on:
            dep = self.jobs[dep_id]
            if dep.state is JobState.COMPLETED:
                continue
            if dep.state.is_terminal:
                return "failed"
            return "waiting"
        return "ready"

    def _resolve_dependencies(self) -> List[int]:
        """Cancel never-satisfiable jobs; return eligible pending ids."""
        eligible = []
        for job_id in list(self._queue):
            job = self.jobs[job_id]
            state = self._dependency_state(job)
            if state == "failed":
                self._queue.remove(job_id)
                self._finish(job, JobState.CANCELLED,
                             "DependencyNeverSatisfied")
            elif state == "ready":
                eligible.append(job_id)
        return eligible

    def schedule_pass(self) -> None:
        """One FIFO + conservative-backfill pass over the pending queue.

        Dependency-held jobs neither run nor block the queue (SLURM's
        behaviour); jobs whose dependency failed are cancelled.
        """
        started = True
        while started:
            started = False
            eligible = self._resolve_dependencies()
            if not eligible:
                return
            head_id = eligible[0]
            head = self.jobs[head_id]
            part = self.partitions[head.partition]
            if part.n_idle() >= head.n_nodes:
                self._start(head, part)
                self._queue.remove(head_id)
                started = True
                continue
            # Conservative backfill: the head job's reservation is the
            # earliest completion among running jobs that frees enough
            # nodes; a later job may start only if it cannot delay that.
            reservation = self._head_reservation_time(head, part)
            for job_id in eligible[1:]:
                job = self.jobs[job_id]
                jpart = self.partitions[job.partition]
                if jpart.n_idle() < job.n_nodes:
                    continue
                if jpart is part and self.engine.now + job.time_limit_s > reservation:
                    continue  # would delay the head job
                self._start(job, jpart)
                self._queue.remove(job_id)
                started = True
                break

    def _head_reservation_time(self, head: Job, part: Partition) -> float:
        """Earliest time ``head`` could start, from running jobs' limits."""
        running = sorted(
            (j for j in self.jobs.values()
             if j.state is JobState.RUNNING and j.partition == part.name),
            key=lambda j: (j.start_time_s or 0) + j.time_limit_s)
        free = part.n_idle()
        for job in running:
            free += len(job.allocated_nodes)
            if free >= head.n_nodes:
                return (job.start_time_s or 0) + job.time_limit_s
        return float("inf")

    def _start(self, job: Job, part: Partition) -> None:
        nodes = part.idle_nodes()[:job.n_nodes]
        job.allocated_nodes = [n.hostname for n in nodes]
        for info in nodes:
            info.allocate(job.job_id)
        job.state = JobState.RUNNING
        job.start_time_s = self.engine.now
        job.end_time_s = None
        self.engine.spawn(self._run_job(job), name=f"job-{job.job_id}")

    # -- execution -----------------------------------------------------------
    def _run_job(self, job: Job) -> Generator[Event, None, None]:
        """Drive one running job to completion/limit/failure."""
        from repro.cluster.node import NodeState

        bound = [self.compute_nodes[h] for h in job.allocated_nodes
                 if h in self.compute_nodes]
        tracer = self.engine.tracer
        attempt_span = None
        if tracer is not None:
            attempt_span = tracer.begin(
                f"slurm.attempt:{job.job_id}.{len(job.attempts) + 1}",
                "slurm", parent=self._job_spans.get(job.job_id),
                job_id=job.job_id, attempt=len(job.attempts) + 1,
                job_name=job.name,
                nodes=",".join(job.allocated_nodes))
        for node in bound:
            node.begin_workload(job.profile, self.engine.now)
        step = 1.0
        elapsed = 0.0
        outcome = JobState.COMPLETED
        reason = ""
        while elapsed < min(job.duration_s, job.time_limit_s):
            slice_s = min(step, job.duration_s - elapsed,
                          job.time_limit_s - elapsed)
            yield self.engine.timeout(slice_s)
            elapsed += slice_s
            if job.cancel_requested:
                outcome, reason = JobState.CANCELLED, "cancelled by user"
                break
            tripped = [n for n in bound if n.state is NodeState.TRIPPED]
            if tripped:
                outcome = JobState.NODE_FAIL
                reason = (f"node failure: "
                          f"{','.join(n.hostname for n in tripped)} tripped")
                for node in tripped:
                    self.node_failed(node.hostname, "thermal trip")
                break
            if len(bound) > 1:
                self._account_mpi_traffic(job, bound, slice_s,
                                          span=attempt_span)
            for node in bound:
                node.sync_to(self.engine.now)
        else:
            if elapsed >= job.time_limit_s and job.duration_s > job.time_limit_s:
                outcome, reason = JobState.TIMEOUT, "time limit exhausted"
        for node in bound:
            if node.state is NodeState.RUNNING:
                node.end_workload(self.engine.now)
        if attempt_span is not None:
            attempt_span.set(outcome=outcome.value)
            attempt_span.end("ok" if outcome is JobState.COMPLETED
                             else "failed")
        self._release(job)
        if (outcome is JobState.NODE_FAIL and job.requeue
                and not job.cancel_requested
                and job.restart_count < job.max_requeues):
            self._requeue(job, reason)
        else:
            self._record_attempt(job, outcome, reason)
            self._finish(job, outcome, reason)
        self.schedule_pass()

    #: Mean per-node GbE payload of a communication-heavy multi-node job
    #: (calibrated from the 8-node HPL communication volume over runtime).
    MPI_BYTES_PER_NODE_S = 15e6

    def _account_mpi_traffic(self, job: Job, bound: List["ComputeNode"],
                             slice_s: float, span: Any = None) -> None:
        """Drive the nodes' network counters during a multi-node job.

        Communication is anti-correlated with compute phases: the
        instruction-rate dips of Fig. 5 are panel broadcasts, i.e. network
        bursts — so the traffic factor inverts the activity modulation.
        When traced, each slice's burst is recorded as an ``mpi.*``
        collective span under the job attempt (``span``).
        """
        from repro.power.traces import activity_modulation

        modulation = activity_modulation(job.profile.name, self.engine.now)
        comm_factor = max(0.2, 1.8 - modulation)
        per_node = int(self.MPI_BYTES_PER_NODE_S * comm_factor * slice_s
                       * job.profile.utilisation)
        for node in bound:
            node.board.ethernet.account_send(per_node // 2)
            node.board.ethernet.account_receive(per_node // 2)
        tracer = self.engine.tracer
        if tracer is not None:
            tracer.record("mpi.panel_broadcast",
                          self.engine.now - slice_s, self.engine.now,
                          category="mpi", parent=span,
                          bytes_per_node=per_node, n_ranks=len(bound))

    def _node_info(self, job: Job, hostname: str) -> SlurmNodeInfo:
        return self.partitions[job.partition].nodes[hostname]

    def _release(self, job: Job) -> None:
        for hostname in job.allocated_nodes:
            info = self._node_info(job, hostname)
            if info.state is NodeAllocState.ALLOCATED:
                info.release()

    # -- requeue (--requeue semantics) ----------------------------------------
    def _record_attempt(self, job: Job, state: JobState, reason: str,
                        backoff_s: float = 0.0) -> None:
        if job.start_time_s is None:
            return  # never ran (cancelled while pending / in backoff)
        job.attempts.append(JobAttempt(
            attempt=len(job.attempts) + 1,
            nodes=tuple(job.allocated_nodes),
            start_time_s=job.start_time_s,
            end_time_s=self.engine.now,
            state=state,
            reason=reason,
            backoff_s=backoff_s))

    def _requeue(self, job: Job, reason: str) -> None:
        backoff = job.requeue_backoff_s * (2 ** job.restart_count)
        self._record_attempt(job, JobState.NODE_FAIL, reason,
                             backoff_s=backoff)
        job.restart_count += 1
        job.state = JobState.REQUEUED
        job.end_time_s = self.engine.now
        job.exit_reason = (f"requeued after node failure "
                           f"(restart {job.restart_count}/{job.max_requeues}, "
                           f"backoff {backoff:g}s)")
        span = self._job_spans.get(job.job_id)
        if span is not None:
            span.set(restarts=job.restart_count, last_backoff_s=backoff)
        for callback in self.on_job_requeue:
            callback(job)
        self.engine.spawn(self._requeue_after_backoff(job, backoff),
                          name=f"requeue-job-{job.job_id}")

    def _requeue_after_backoff(self, job: Job,
                               backoff_s: float) -> Generator[Event, None, None]:
        """Hold the job out of the queue for its backoff, then re-enqueue."""
        yield self.engine.timeout(backoff_s)
        job.start_time_s = None
        job.end_time_s = None
        job.allocated_nodes = []
        if job.cancel_requested:
            self._finish(job, JobState.CANCELLED,
                         "cancelled during requeue backoff")
            return
        job.state = JobState.PENDING
        self._queue.append(job.job_id)
        self.schedule_pass()

    # -- node failure and recovery --------------------------------------------
    def node_failed(self, hostname: str, reason: str) -> None:
        """Record a node failure: mark it DOWN and start recovery if enabled.

        Idempotent per outage — a node already DOWN/DRAINED (or already in
        its recovery window) is not re-processed, so the watchdog trip path
        and the per-job trip detection can both report the same incident.
        """
        for partition in self.partitions.values():
            info = partition.nodes.get(hostname)
            if info is None:
                continue
            if info.state not in (NodeAllocState.DOWN, NodeAllocState.DRAINED):
                info.mark_down(reason)
            if self._recovery_enabled and hostname not in self._recovering:
                self._recovering.add(hostname)
                self.engine.spawn(self._recover_node(hostname, info),
                                  name=f"recover-{hostname}")

    def _recover_node(self, hostname: str,
                      info: SlurmNodeInfo) -> Generator[Event, None, None]:
        """Drive one failed node through DOWN → DRAINED → IDLE."""
        try:
            # Operator response time: the node sits DOWN until someone acts.
            yield self.engine.timeout(self.node_recovery_delay_s)
            info.drain(f"recovering: {info.reason}")
            if self._node_service is not None:
                # Cooperative hardware service (cool-down wait + reboot).
                yield from self._node_service(hostname)
            info.resume()
        finally:
            self._recovering.discard(hostname)
        self.schedule_pass()

    def _finish(self, job: Job, state: JobState, reason: str) -> None:
        job.state = state
        job.end_time_s = self.engine.now
        job.exit_reason = reason
        span = self._job_spans.pop(job.job_id, None)
        if span is not None:
            span.set(final_state=state.value, reason=reason)
            span.end("ok" if state is JobState.COMPLETED else "failed")
        for callback in self.on_job_end:
            callback(job)

    # -- queries ----------------------------------------------------------------
    def squeue(self) -> List[str]:
        """Pending + running jobs in squeue format."""
        header = ("   JOBID PARTITION         NAME     USER ST NODES NODELIST")
        rows = [job.squeue_row() for job in self.jobs.values()
                if not job.state.is_terminal]
        return [header] + rows

    def sinfo(self) -> List[str]:
        """Partition/node-state summary in sinfo format."""
        header = " PARTITION  STATE NODES NODELIST"
        rows: List[str] = []
        for partition in self.partitions.values():
            rows.extend(partition.sinfo_rows())
        return [header] + rows
