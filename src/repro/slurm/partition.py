"""Partitions and per-node scheduler state."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional

__all__ = ["NodeAllocState", "SlurmNodeInfo", "Partition"]


class NodeAllocState(Enum):
    """Scheduler-visible node states (sinfo vocabulary)."""

    IDLE = "idle"
    ALLOCATED = "alloc"
    DOWN = "down"
    DRAINED = "drain"


@dataclass
class SlurmNodeInfo:
    """The controller's record for one compute node."""

    hostname: str
    n_cores: int = 4
    state: NodeAllocState = NodeAllocState.IDLE
    running_job: Optional[int] = None
    reason: str = ""

    @property
    def schedulable(self) -> bool:
        """Whether new work may be placed here."""
        return self.state is NodeAllocState.IDLE

    def allocate(self, job_id: int) -> None:
        """Mark the node allocated to a job."""
        if not self.schedulable:
            raise RuntimeError(f"{self.hostname} is {self.state.value}, "
                               f"cannot allocate")
        self.state = NodeAllocState.ALLOCATED
        self.running_job = job_id

    def release(self) -> None:
        """Return the node to the idle pool (unless down/drained)."""
        if self.state is NodeAllocState.ALLOCATED:
            self.state = NodeAllocState.IDLE
        self.running_job = None

    def mark_down(self, reason: str) -> None:
        """Take the node out of service (hardware failure, thermal trip)."""
        self.state = NodeAllocState.DOWN
        self.reason = reason
        self.running_job = None

    def drain(self, reason: str) -> None:
        """Move the node into maintenance (DRAINED): no new work placed.

        Legal from IDLE (administrative drain) and DOWN (a failed node
        entering its recovery window).  Draining a node with a job still
        allocated is an error — the controller must fail or finish the job
        first (``mark_down`` is the failure path).
        """
        if self.state is NodeAllocState.ALLOCATED:
            raise RuntimeError(
                f"cannot drain {self.hostname} while job "
                f"{self.running_job} is allocated; mark_down() is the "
                f"failure path")
        self.state = NodeAllocState.DRAINED
        self.reason = reason

    def resume(self) -> None:
        """Return a down/drained node to service."""
        self.state = NodeAllocState.IDLE
        self.reason = ""


@dataclass
class Partition:
    """A named set of nodes with a default time limit."""

    name: str
    nodes: Dict[str, SlurmNodeInfo] = field(default_factory=dict)
    max_time_s: float = 86400.0
    default: bool = False

    def add_node(self, info: SlurmNodeInfo) -> None:
        """Attach a node to the partition."""
        if info.hostname in self.nodes:
            raise ValueError(f"{info.hostname} already in partition {self.name}")
        self.nodes[info.hostname] = info

    def idle_nodes(self) -> List[SlurmNodeInfo]:
        """Schedulable nodes, in hostname order (deterministic placement)."""
        return sorted((n for n in self.nodes.values() if n.schedulable),
                      key=lambda n: n.hostname)

    def n_idle(self) -> int:
        """Count of schedulable nodes."""
        return sum(1 for n in self.nodes.values() if n.schedulable)

    def sinfo_rows(self) -> List[str]:
        """sinfo-format summary: one row per (state) group."""
        by_state: Dict[NodeAllocState, List[str]] = {}
        for node in sorted(self.nodes.values(), key=lambda n: n.hostname):
            by_state.setdefault(node.state, []).append(node.hostname)
        return [
            f"{self.name:>10} {state.value:>6} {len(hosts):>5} {','.join(hosts)}"
            for state, hosts in sorted(by_state.items(), key=lambda kv: kv[0].value)
        ]
