"""sbatch batch-script parsing.

Production users submit shell scripts with ``#SBATCH`` directives; this
module parses the subset the Monte Cimone queue uses so the examples can
submit realistic scripts:

* ``--job-name`` / ``-J``
* ``--nodes`` / ``-N``
* ``--time`` / ``-t``  (``[days-]HH:MM:SS``, ``MM:SS`` or minutes)
* ``--partition`` / ``-p``

Unknown directives are collected (not rejected) — real sbatch tolerates
plenty of options slurmctld features we do not model.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["BatchScript", "parse_batch_script", "parse_time_limit"]

_DIRECTIVE_RE = re.compile(r"^#SBATCH\s+(.*)$")


def parse_time_limit(text: str) -> float:
    """Parse a SLURM time specification into seconds.

    Accepted forms (as in real sbatch): ``minutes``, ``MM:SS``,
    ``HH:MM:SS``, ``days-HH[:MM[:SS]]``.
    """
    text = text.strip()
    days = 0
    if "-" in text:
        day_text, text = text.split("-", 1)
        days = int(day_text)
        if ":" not in text:
            text += ":00:00"  # "days-HH"
    parts = text.split(":")
    if not 1 <= len(parts) <= 3 or not all(p.isdigit() for p in parts):
        raise ValueError(f"unparseable time limit {text!r}")
    if len(parts) == 1 and days == 0:
        return float(int(parts[0]) * 60)  # bare minutes
    while len(parts) < 3:
        parts.insert(0, "0")
    hours, minutes, seconds = (int(p) for p in parts)
    return float(days * 86400 + hours * 3600 + minutes * 60 + seconds)


@dataclass
class BatchScript:
    """A parsed batch script."""

    job_name: str = "sbatch"
    n_nodes: int = 1
    time_limit_s: Optional[float] = None
    partition: Optional[str] = None
    command_lines: List[str] = field(default_factory=list)
    unknown_directives: List[str] = field(default_factory=list)


_OPTION_ALIASES = {
    "-J": "--job-name", "-N": "--nodes", "-t": "--time", "-p": "--partition",
}


def _split_directive(text: str) -> Dict[str, str]:
    """Split one #SBATCH argument string into option → value pairs."""
    options: Dict[str, str] = {}
    tokens = text.split()
    i = 0
    while i < len(tokens):
        token = tokens[i]
        if "=" in token and token.startswith("--"):
            key, _, value = token.partition("=")
            options[key] = value
            i += 1
        elif token in _OPTION_ALIASES or token.startswith("--"):
            key = _OPTION_ALIASES.get(token, token)
            if i + 1 >= len(tokens):
                raise ValueError(f"directive {token!r} missing a value")
            options[key] = tokens[i + 1]
            i += 2
        else:
            raise ValueError(f"unparseable sbatch token {token!r}")
    return options


def parse_batch_script(text: str) -> BatchScript:
    """Parse a batch script's directives and payload commands."""
    script = BatchScript()
    if not text.lstrip().startswith("#!"):
        raise ValueError("batch script must start with a shebang line")
    for line in text.splitlines()[1:]:
        stripped = line.strip()
        match = _DIRECTIVE_RE.match(stripped)
        if match:
            for key, value in _split_directive(match.group(1)).items():
                if key == "--job-name":
                    script.job_name = value
                elif key == "--nodes":
                    script.n_nodes = int(value)
                    if script.n_nodes < 1:
                        raise ValueError("--nodes must be >= 1")
                elif key == "--time":
                    script.time_limit_s = parse_time_limit(value)
                elif key == "--partition":
                    script.partition = value
                else:
                    script.unknown_directives.append(f"{key}={value}")
        elif stripped and not stripped.startswith("#"):
            script.command_lines.append(stripped)
    return script
