"""Command-line entry point: ``python -m repro <command>``.

Commands
--------
``report``      regenerate EXPERIMENTS.md (all tables and figures)
``quickstart``  boot the cluster and run a short HPL job
``scaling``     print the Fig. 2 strong-scaling table and ASCII plot
``stack``       deploy the Table I software stack and list it
``power``       print the Table VI power model and boot decomposition
``lint``        run simlint (determinism / engine / calibration / units)
``trace``       run a traced experiment, export Chrome trace_event JSON
``chaos``       run a fault-injection campaign, verify recovery invariants
``bench``       measure kernel/pipeline throughput vs the frozen seed kernel
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis.report import generate_experiments_report

    text = generate_experiments_report(
        full_sim_duration_s=args.sim_duration)
    output = Path(args.output)
    output.write_text(text)
    print(f"wrote {output} ({len(text)} chars)")
    return 0


def _cmd_quickstart(_args: argparse.Namespace) -> int:
    from repro.cluster.cluster import MonteCimoneCluster
    from repro.power.model import HPL_PROFILE
    from repro.slurm.api import SlurmAPI
    from repro.thermal.enclosure import EnclosureConfig

    cluster = MonteCimoneCluster(
        enclosure_config=EnclosureConfig.mitigated())
    cluster.boot_all()
    api = SlurmAPI(cluster.slurm)
    print(api.sinfo())
    job = api.srun("hpl", "operator", nodes=8, duration_s=300.0,
                   profile=HPL_PROFILE)
    print(f"job {job.job_id}: {job.state.value}, "
          f"power peak ~{8 * 5.935:.1f} W, "
          f"hottest node {cluster.hottest_node()[0]} at "
          f"{cluster.hottest_node()[1]:.1f} °C")
    return 0


def _cmd_scaling(_args: argparse.Namespace) -> int:
    from repro.benchmarks.hpl import HPLModel
    from repro.perf.plots import render_scaling_plot
    from repro.perf.scaling import strong_scaling_table

    points = strong_scaling_table(HPLModel())
    print(render_scaling_plot(points))
    return 0


def _cmd_stack(_args: argparse.Namespace) -> int:
    from repro.spack.display import render_find
    from repro.spack.environment import SpackEnvironment
    from repro.spack.installer import Installer

    installer = Installer()
    SpackEnvironment.monte_cimone().install(installer)
    print(render_find(installer))
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.analysis.validate import render_checklist, run_validation

    checks = run_validation(include_slow=args.slow)
    print(render_checklist(checks))
    return 0 if all(check.passed for check in checks) else 1


def _cmd_power(_args: argparse.Namespace) -> int:
    from repro.analysis.experiments import fig4_boot_power, table6_power
    from repro.analysis.tables import render_table

    table = table6_power()
    rails = list(next(iter(table.values())))
    rows = [[rail] + [f"{table[c][rail][0]:.0f}" for c in table]
            for rail in rails]
    print(render_table(["rail (mW)"] + list(table), rows))
    print()
    for key, value in fig4_boot_power().items():
        print(f"  {key:24s} {value:.4g}")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint.cli import main as lint_main

    argv = list(args.paths) or ["src"]
    if args.format != "text":
        argv += ["--format", args.format]
    if args.show_suppressed:
        argv.append("--show-suppressed")
    return lint_main(argv)


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs.experiments import TRACED_EXPERIMENTS
    from repro.obs.export import (chrome_trace_json, span_tree_text,
                                  to_chrome_trace, validate_chrome_trace)

    tracer = TRACED_EXPERIMENTS[args.experiment]()
    if args.format in ("tree", "both"):
        print(span_tree_text(tracer))
    if args.format in ("chrome", "both"):
        output = Path(args.output if args.output
                      else f"{args.experiment}-trace.json")
        output.write_text(chrome_trace_json(tracer))
        print(f"wrote {output} ({len(tracer.spans)} spans); load it in "
              f"chrome://tracing or https://ui.perfetto.dev")
    if args.check:
        problems = validate_chrome_trace(to_chrome_trace(tracer))
        if problems:
            for problem in problems:
                print(f"INVALID: {problem}")
            return 1
        print("trace_event schema: OK")
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.chaos.check import run_checks
    from repro.chaos.scenarios import run_scenario

    result = run_scenario(args.scenario, seed=args.seed)
    for line in result.log.lines():
        print(line)
    print(f"{result.name}: seed={result.seed} "
          f"faults={len(result.log.injections())} "
          f"restores={len(result.log.restores())}")
    if not args.check:
        return 0
    problems = run_checks(result)
    if problems:
        for problem in problems:
            print(f"INVARIANT VIOLATED: {problem}")
        return 1
    print("recovery invariants: OK "
          "(every fault has a matching recovery span, ledger clean)")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    import json

    from repro.perf.bench import (check_regression, load_trajectory,
                                  render_report, run_bench, trajectory_entry,
                                  validate_report)

    report = run_bench(quick=args.quick, repeats=args.repeats,
                       label=args.label)
    print(render_report(report))
    problems = validate_report(report)
    if args.output:
        output = Path(args.output)
        output.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
        print(f"wrote {output}")
    if args.append:
        path = Path(args.append)
        trajectory = load_trajectory(str(path)) if path.exists() else []
        trajectory.append(trajectory_entry(report))
        path.write_text(json.dumps(trajectory, indent=2, sort_keys=True) + "\n")
        print(f"appended trajectory point to {path} "
              f"({len(trajectory)} points)")
    if args.check:
        trajectory = load_trajectory(args.check)
        problems += check_regression(report, trajectory,
                                     tolerance=args.tolerance)
        if not problems:
            baseline = trajectory[-1] if trajectory else None
            label = baseline.get("label", "") if baseline else "(empty)"
            print(f"regression gate: OK vs baseline {label!r} "
                  f"(tolerance {args.tolerance:.0%})")
    if problems:
        for problem in problems:
            print(f"BENCH FAILED: {problem}")
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    """Parse arguments and dispatch."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Monte Cimone reproduction (SOCC 2022)")
    subparsers = parser.add_subparsers(dest="command", required=True)

    report = subparsers.add_parser("report",
                                   help="regenerate EXPERIMENTS.md")
    report.add_argument("--output", default="EXPERIMENTS.md")
    report.add_argument("--sim-duration", type=float, default=600.0)
    report.set_defaults(func=_cmd_report)

    validate = subparsers.add_parser(
        "validate", help="run the paper-claims validation checklist")
    validate.add_argument("--slow", action="store_true",
                          help="include the Fig. 6 cluster simulation")
    validate.set_defaults(func=_cmd_validate)

    lint = subparsers.add_parser(
        "lint", help="run simlint over the source tree")
    lint.add_argument("paths", nargs="*", default=["src"],
                      help="files or directories to lint (default: src)")
    lint.add_argument("--format", choices=("text", "json"), default="text")
    lint.add_argument("--show-suppressed", action="store_true")
    lint.set_defaults(func=_cmd_lint)

    trace = subparsers.add_parser(
        "trace", help="trace the simulator itself over a canned experiment")
    trace.add_argument("experiment",
                       choices=("boot-power", "fault-recovery"),
                       help="which instrumented scenario to run")
    trace.add_argument("--output", default=None,
                       help="Chrome trace JSON path "
                            "(default: <experiment>-trace.json)")
    trace.add_argument("--format", choices=("chrome", "tree", "both"),
                       default="both",
                       help="chrome trace_event JSON, text span tree, or both")
    trace.add_argument("--check", action="store_true",
                       help="validate the export against the trace_event "
                            "schema (exit 1 on problems)")
    trace.set_defaults(func=_cmd_trace)

    chaos = subparsers.add_parser(
        "chaos", help="run a seeded fault-injection campaign")
    chaos.add_argument("scenario",
                       choices=("examon-outage", "link-flap",
                                "sensor-dropout", "service-outage",
                                "node-trip"),
                       help="which chaos campaign to run")
    chaos.add_argument("--seed", type=int, default=0,
                       help="campaign seed (same seed → identical log)")
    chaos.add_argument("--check", action="store_true",
                       help="verify the recovery invariants "
                            "(exit 1 on violations)")
    chaos.set_defaults(func=_cmd_chaos)

    bench = subparsers.add_parser(
        "bench", help="measure kernel throughput vs the frozen seed kernel")
    bench.add_argument("--quick", action="store_true",
                       help="smaller workloads, fewer repeats (CI mode)")
    bench.add_argument("--repeats", type=int, default=None,
                       help="best-of-N repeats (default: 2 quick, 3 full)")
    bench.add_argument("--label", default="",
                       help="free-form label stamped into the report")
    bench.add_argument("--output", default=None,
                       help="write the full report JSON here")
    bench.add_argument("--append", default=None,
                       help="append a trajectory point to this BENCH_*.json")
    bench.add_argument("--check", default=None, metavar="TRAJECTORY",
                       help="regression-gate against the last point of this "
                            "BENCH_*.json (exit 1 on regression)")
    bench.add_argument("--tolerance", type=float, default=0.2,
                       help="allowed fractional speedup drop vs baseline "
                            "(default: 0.2)")
    bench.set_defaults(func=_cmd_bench)

    for name, func, help_text in [
        ("quickstart", _cmd_quickstart, "boot the cluster, run HPL"),
        ("scaling", _cmd_scaling, "Fig. 2 strong-scaling plot"),
        ("stack", _cmd_stack, "deploy and list the Table I stack"),
        ("power", _cmd_power, "Table VI power model"),
    ]:
        sub = subparsers.add_parser(name, help=help_text)
        sub.set_defaults(func=func)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
