"""Analysis layer: regenerate every table and figure of the paper.

* :mod:`repro.analysis.paper` — the paper's reported values, verbatim,
  used as the comparison column everywhere;
* :mod:`repro.analysis.tables` — plain-text table rendering;
* :mod:`repro.analysis.experiments` — one driver function per experiment
  (Tables I–VI, Figures 2–6, the §V-A comparison rows, the §III
  Infiniband status), each returning structured results;
* :mod:`repro.analysis.report` — runs every driver and renders the
  EXPERIMENTS.md paper-vs-measured report.
"""

from repro.analysis.experiments import (
    comparison_table,
    fig2_hpl_scaling,
    fig3_power_traces,
    fig4_boot_power,
    fig5_heatmaps,
    fig6_thermal_runaway,
    infiniband_status,
    qe_lax_result,
    table1_software_stack,
    table2_topics,
    table3_stats_metrics,
    table4_hwmon,
    table5_stream,
    table6_power,
)
from repro.analysis.report import generate_experiments_report
from repro.analysis.tables import render_table

__all__ = [
    "comparison_table",
    "fig2_hpl_scaling",
    "fig3_power_traces",
    "fig4_boot_power",
    "fig5_heatmaps",
    "fig6_thermal_runaway",
    "generate_experiments_report",
    "infiniband_status",
    "qe_lax_result",
    "render_table",
    "table1_software_stack",
    "table2_topics",
    "table3_stats_metrics",
    "table4_hwmon",
    "table5_stream",
    "table6_power",
]
