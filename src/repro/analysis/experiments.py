"""One driver per paper experiment.

Every function is self-contained (builds the models/simulations it needs)
and returns structured results carrying both the measured value and the
paper's value, so callers — the benchmark harness, the report generator,
the examples — never re-derive the comparison.

The two full-cluster simulations (Fig. 5 and Fig. 6) accept a
``duration_s`` so the harness can trade fidelity for runtime; the thermal
time constants are honest, so the default durations are long enough for
the runaway to develop exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis import paper
from repro.benchmarks.hpl import HPLConfig, HPLModel
from repro.benchmarks.qe_lax import QELaxConfig, QELaxModel
from repro.benchmarks.stream import StreamModel
from repro.cluster.cluster import MonteCimoneCluster
from repro.examon.deployment import ExamonDeployment
from repro.examon.plugins.stats_pub import TABLE_III_METRICS
from repro.examon.topics import TopicSchema
from repro.hardware.sensors import HWMON_PATHS
from repro.network.infiniband import InfinibandFabric
from repro.perf.machines import utilisation_table
from repro.perf.scaling import ScalingPoint, strong_scaling_table
from repro.power.boot import BootPowerModel
from repro.power.model import (
    IDLE_PROFILE,
    HPL_PROFILE,
    NodePhase,
    QE_PROFILE,
    RailPowerModel,
    STREAM_DDR_PROFILE,
    STREAM_L2_PROFILE,
    TABLE_VI_MILLIWATTS,
)
from repro.power.traces import RAIL_GROUPS, TraceSynthesizer
from repro.slurm.api import SlurmAPI
from repro.spack.environment import SpackEnvironment
from repro.spack.installer import Installer
from repro.thermal.enclosure import EnclosureConfig

__all__ = [
    "comparison_table", "fig2_hpl_scaling", "fig3_power_traces",
    "fig4_boot_power", "fig5_heatmaps", "fig6_thermal_runaway",
    "infiniband_status", "qe_lax_result", "table1_software_stack",
    "table2_topics", "table3_stats_metrics", "table4_hwmon",
    "table5_stream", "table6_power",
]


# ---------------------------------------------------------------------------
# Table I
# ---------------------------------------------------------------------------
def table1_software_stack() -> List[Tuple[str, str, str, bool]]:
    """Install the production environment; compare versions to Table I.

    Returns rows ``(package, installed_version, paper_version, match)``.
    """
    environment = SpackEnvironment.monte_cimone()
    installer = Installer()
    environment.install(installer)
    rows = []
    for name, installed_version in environment.user_facing_table(installer):
        expected = paper.TABLE_I_STACK[name]
        rows.append((name, installed_version, expected,
                     installed_version == expected))
    return rows


# ---------------------------------------------------------------------------
# Tables II / III / IV
# ---------------------------------------------------------------------------
def table2_topics() -> Dict[str, str]:
    """Example topics in the Table II formats, one per plugin."""
    schema = TopicSchema()
    return {
        "pmu_pub": schema.pmu_topic("mc-node-1", 0, "instructions"),
        "stats_pub": schema.stats_topic("mc-node-1", "load_avg.1m"),
        "payload_format": "<value>;<timestamp>",
    }


def table3_stats_metrics(duration_s: float = 30.0) -> Dict[str, List[str]]:
    """Boot one node, run stats_pub, return the published metric names.

    The returned mapping has ``expected`` (Table III flattened) and
    ``published`` (what the plugin actually emitted) — the harness asserts
    they are equal as sets.
    """
    cluster = MonteCimoneCluster(
        enclosure_config=EnclosureConfig.mitigated())
    cluster.boot_all()
    deployment = ExamonDeployment(cluster)
    deployment.start()
    cluster.run_for(duration_s)
    schema = deployment.schema
    prefix = schema.stats_topic("mc-node-1", "")
    published = sorted(
        topic[len(prefix):] for topic in deployment.db.topics()
        if topic.startswith(prefix))
    expected = sorted(metric for group in TABLE_III_METRICS.values()
                      for metric in group)
    return {"expected": expected, "published": published}


def table4_hwmon() -> Dict[str, str]:
    """The sensor → sysfs-path mapping (must equal Table IV)."""
    return dict(HWMON_PATHS)


# ---------------------------------------------------------------------------
# §V-A: HPL, STREAM, QE, comparison
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ScalingComparison:
    """Fig. 2 outcome with the paper's anchor points."""

    points: List[ScalingPoint]
    paper_single_gflops: float
    paper_full_gflops: float
    paper_fraction_of_linear: float

    def point(self, n_nodes: int) -> ScalingPoint:
        """The scaling point for a node count."""
        for point in self.points:
            if point.n_nodes == n_nodes:
                return point
        raise KeyError(f"no point for {n_nodes} nodes")


def fig2_hpl_scaling(node_counts: Tuple[int, ...] = (1, 2, 4, 8)) -> ScalingComparison:
    """The Fig. 2 strong-scaling experiment."""
    points = strong_scaling_table(HPLModel(), node_counts)
    return ScalingComparison(
        points=points,
        paper_single_gflops=paper.HPL_SINGLE_NODE["gflops"],
        paper_full_gflops=paper.HPL_FULL_MACHINE["gflops"],
        paper_fraction_of_linear=paper.HPL_FULL_MACHINE["fraction_of_linear"])


def table5_stream() -> Dict[str, Dict[str, Tuple[float, float]]]:
    """Table V: per-kernel (measured, paper) MB/s for both regimes."""
    results = StreamModel().table_v()
    reference = {"STREAM.DDR": paper.TABLE_V_DDR_MB_S,
                 "STREAM.L2": paper.TABLE_V_L2_MB_S}
    table: Dict[str, Dict[str, Tuple[float, float]]] = {}
    for column, result in results.items():
        table[column] = {
            kernel: (stats.mean, reference[column][kernel])
            for kernel, stats in result.bandwidth_mb_s.items()}
    return table


def comparison_table() -> List[Tuple[str, float, float, float, float]]:
    """§V-A comparison: (machine, hpl_model, hpl_paper, stream_model, stream_paper)."""
    rows = []
    for name, row in utilisation_table().items():
        reference = paper.COMPARISON_FRACTIONS[name]
        rows.append((name, row.hpl_fraction, reference["hpl"],
                     row.stream_fraction, reference["stream"]))
    return rows


def qe_lax_result():
    """The QE LAX benchmark result (512² matrix, single node)."""
    return QELaxModel().run(QELaxConfig(n=paper.QE_LAX["n"]))


# ---------------------------------------------------------------------------
# Table VI and the power figures
# ---------------------------------------------------------------------------
def table6_power() -> Dict[str, Dict[str, Tuple[float, float]]]:
    """Table VI: per-rail (model mW, paper mW) for every column."""
    model = RailPowerModel()
    columns = {
        "idle": (NodePhase.R3_OS, IDLE_PROFILE),
        "hpl": (NodePhase.R3_OS, HPL_PROFILE),
        "stream_l2": (NodePhase.R3_OS, STREAM_L2_PROFILE),
        "stream_ddr": (NodePhase.R3_OS, STREAM_DDR_PROFILE),
        "qe": (NodePhase.R3_OS, QE_PROFILE),
        "boot_r1": (NodePhase.R1_POWER_ON, IDLE_PROFILE),
        "boot_r2": (NodePhase.R2_BOOTLOADER, IDLE_PROFILE),
    }
    table: Dict[str, Dict[str, Tuple[float, float]]] = {}
    for column, (phase, profile) in columns.items():
        modelled = model.rail_powers_mw(phase, profile)
        reference = TABLE_VI_MILLIWATTS[column]
        table[column] = {rail: (modelled[rail], reference[rail])
                         for rail in reference}
    return table


def fig3_power_traces(duration_s: float = 8.0) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Fig. 3: per-workload, per-rail-group trace statistics (watts)."""
    synthesizer = TraceSynthesizer()
    out: Dict[str, Dict[str, Dict[str, float]]] = {}
    for workload, groups in synthesizer.all_benchmark_traces(duration_s).items():
        out[workload] = {
            group: {"mean_w": trace.mean_w(), "peak_w": trace.peak_w(),
                    "std_w": trace.std_w()}
            for group, trace in groups.items()}
    return out


def fig4_boot_power() -> Dict[str, float]:
    """Fig. 4: boot region averages and the §V-B core decomposition."""
    boot = BootPowerModel()
    decomposition = boot.decomposition()
    return {
        "r1_core_w": boot.region_average_mw("R1", "core") / 1e3,
        "r2_core_w": boot.region_average_mw("R2", "core") / 1e3,
        "r3_core_w": boot.region_average_mw("R3", "core", margin_s=16.0) / 1e3,
        "ddr_mem_r1_w": boot.region_average_mw("R1", "ddr_mem") / 1e3,
        "leakage_fraction": decomposition["leakage"],
        "dynamic_clock_fraction": decomposition["clock_and_dynamic"],
        "os_fraction": decomposition["os_baseline"],
    }


# ---------------------------------------------------------------------------
# Fig. 5 and Fig. 6: full-cluster simulations
# ---------------------------------------------------------------------------
def fig5_heatmaps(duration_s: float = 300.0):
    """Fig. 5: run HPL on all 8 nodes under ExaMon; return the heatmaps.

    Returns ``(instructions, network, memory)`` heatmap objects.
    """
    cluster = MonteCimoneCluster(enclosure_config=EnclosureConfig.mitigated())
    cluster.boot_all()
    deployment = ExamonDeployment(cluster)
    deployment.start()
    api = SlurmAPI(cluster.slurm)
    start = cluster.engine.now
    api.srun("hpl", "bench", 8, duration_s=duration_s, profile=HPL_PROFILE)
    end = cluster.engine.now
    window = max(duration_s / 30.0, 1.0)
    dashboard = deployment.dashboard
    return (dashboard.instructions_heatmap(start, end, window),
            dashboard.network_heatmap(start, end, window),
            dashboard.memory_heatmap(start, end, window))


@dataclass(frozen=True)
class ThermalRunawayResult:
    """Fig. 6 outcome."""

    tripped_nodes: List[str]
    trip_temperature_c: float
    pre_mitigation_hot_node: str
    pre_mitigation_hot_c: float
    post_mitigation_hot_node: str
    post_mitigation_hot_c: float
    job_outcome: str
    retry_outcome: str


def fig6_thermal_runaway(run_s: float = 1800.0) -> ThermalRunawayResult:
    """Fig. 6: the runaway with lids on, then the §V-C mitigation.

    Runs HPL on all 8 nodes in the original enclosure until node 7 trips,
    records the hottest *surviving* node (the paper's 71 °C point), applies
    the mitigation, services the tripped node and reruns.
    """
    cluster = MonteCimoneCluster(enclosure_config=EnclosureConfig.original())
    cluster.boot_all()
    deployment = ExamonDeployment(cluster)
    deployment.start()
    api = SlurmAPI(cluster.slurm)

    start = cluster.engine.now
    job = api.srun("hpl", "bench", 8, duration_s=run_s, profile=HPL_PROFILE)
    end = cluster.engine.now
    peaks = deployment.dashboard.peak_temperatures(start, end)
    tripped = cluster.watchdog.tripped_nodes()
    survivors = {host: temp for host, temp in peaks.items()
                 if host not in tripped}
    hot_host = max(survivors, key=survivors.get) if survivors else ""

    cluster.apply_thermal_mitigation()
    for hostname in tripped:
        cluster.service_node(hostname)

    retry_start = cluster.engine.now
    retry = api.srun("hpl-retry", "bench", 8, duration_s=run_s,
                     profile=HPL_PROFILE)
    retry_end = cluster.engine.now
    retry_peaks = deployment.dashboard.peak_temperatures(retry_start, retry_end)
    post_host = max(retry_peaks, key=retry_peaks.get)

    trip_events = [e for e in cluster.watchdog.events if e.kind == "trip"]
    trip_temp = trip_events[0].temperature_c if trip_events else float("nan")
    return ThermalRunawayResult(
        tripped_nodes=tripped,
        trip_temperature_c=trip_temp,
        pre_mitigation_hot_node=hot_host,
        pre_mitigation_hot_c=survivors.get(hot_host, float("nan")),
        post_mitigation_hot_node=post_host,
        post_mitigation_hot_c=retry_peaks[post_host],
        job_outcome=job.state.value,
        retry_outcome=retry.state.value)


# ---------------------------------------------------------------------------
# §III: Infiniband status
# ---------------------------------------------------------------------------
def infiniband_status():
    """The §III Infiniband bring-up snapshot."""
    fabric = InfinibandFabric()
    fabric.bring_up()
    return fabric.status()
