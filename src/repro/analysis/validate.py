"""Programmatic validation checklist: every paper claim, pass/fail.

The benchmark harness asserts these via pytest; this module exposes the
same checks as a callable API so operators (and ``python -m repro
validate``) can verify an installation in one line.  Each check returns a
:class:`CheckResult` carrying the measured value, the paper value and the
tolerance applied.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

from repro.analysis import experiments, paper

__all__ = ["CheckResult", "run_validation", "render_checklist"]


@dataclass(frozen=True)
class CheckResult:
    """One validated claim."""

    name: str
    measured: float
    expected: float
    tolerance: float     # absolute
    passed: bool

    @classmethod
    def compare(cls, name: str, measured: float, expected: float,
                tolerance: float) -> "CheckResult":
        """Build a check from a measured/expected pair."""
        return cls(name=name, measured=measured, expected=expected,
                   tolerance=tolerance,
                   passed=abs(measured - expected) <= tolerance)


def run_validation(include_slow: bool = False) -> List[CheckResult]:
    """Run the fast validation set (plus the cluster sims if asked).

    The fast set covers Tables I/V/VI, Fig. 2/4 and the §V-A scalars in a
    few seconds; ``include_slow`` adds the Fig. 6 thermal-runaway run.
    """
    checks: List[CheckResult] = []

    # -- Table I -------------------------------------------------------------
    stack_rows = experiments.table1_software_stack()
    checks.append(CheckResult(
        name="Table I: all 9 packages at paper versions",
        measured=float(sum(match for *_x, match in stack_rows)),
        expected=9.0, tolerance=0.0,
        passed=all(match for *_x, match in stack_rows)))

    # -- Fig. 2 / §V-A ---------------------------------------------------------
    scaling = experiments.fig2_hpl_scaling()
    checks.append(CheckResult.compare(
        "HPL single node GFLOP/s", scaling.point(1).gflops,
        paper.HPL_SINGLE_NODE["gflops"], tolerance=0.04))
    checks.append(CheckResult.compare(
        "HPL single node fraction of peak", scaling.point(1).fraction_of_peak,
        paper.HPL_SINGLE_NODE["fraction_of_peak"], tolerance=0.005))
    checks.append(CheckResult.compare(
        "HPL 8-node GFLOP/s", scaling.point(8).gflops,
        paper.HPL_FULL_MACHINE["gflops"], tolerance=0.52))
    checks.append(CheckResult.compare(
        "HPL 8-node fraction of linear", scaling.point(8).fraction_of_linear,
        paper.HPL_FULL_MACHINE["fraction_of_linear"], tolerance=0.03))

    comparison = {row[0]: row for row in experiments.comparison_table()}
    for machine, label in (("marconi100power9", "Marconi100"),
                           ("armidathunderx2", "Armida")):
        _m, hpl, hpl_ref, stream, stream_ref = comparison[machine]
        checks.append(CheckResult.compare(
            f"{label} HPL fraction", hpl, hpl_ref, tolerance=0.005))
        checks.append(CheckResult.compare(
            f"{label} STREAM fraction", stream, stream_ref, tolerance=0.005))

    # -- Table V ----------------------------------------------------------------
    stream_table = experiments.table5_stream()
    for column, kernels in stream_table.items():
        for kernel, (measured, reference) in kernels.items():
            checks.append(CheckResult.compare(
                f"Table V {column} {kernel} MB/s", measured, reference,
                tolerance=0.01 * reference))

    # -- QE ------------------------------------------------------------------------
    qe = experiments.qe_lax_result()
    checks.append(CheckResult.compare(
        "QE LAX GFLOP/s", qe.throughput.mean, paper.QE_LAX["gflops"],
        tolerance=0.05))

    # -- Table VI --------------------------------------------------------------------
    power = experiments.table6_power()
    worst = max(abs(measured - reference)
                for rails in power.values()
                for measured, reference in rails.values())
    checks.append(CheckResult(
        name="Table VI worst per-rail error (mW)", measured=worst,
        expected=0.0, tolerance=25.0, passed=worst <= 25.0))

    # -- Fig. 4 ------------------------------------------------------------------------
    boot = experiments.fig4_boot_power()
    for key, expected, tolerance in (
            ("r1_core_w", paper.BOOT_DECOMPOSITION["r1_core_w"], 0.01),
            ("leakage_fraction",
             paper.BOOT_DECOMPOSITION["leakage_fraction"], 0.01),
            ("os_fraction", paper.BOOT_DECOMPOSITION["os_fraction"], 0.01)):
        checks.append(CheckResult.compare(
            f"Fig. 4 {key}", boot[key], expected, tolerance))

    # -- Infiniband ----------------------------------------------------------------------
    status = experiments.infiniband_status()
    checks.append(CheckResult(
        name="§III IB: ping works, RDMA does not",
        measured=float(status.board_to_board_ping
                       and not status.rdma_functional),
        expected=1.0, tolerance=0.0,
        passed=status.board_to_board_ping and not status.rdma_functional))

    if include_slow:
        thermal = experiments.fig6_thermal_runaway(run_s=1800.0)
        checks.append(CheckResult(
            name="Fig. 6 runaway node is node 7",
            measured=float(thermal.tripped_nodes == ["mc-node-7"]),
            expected=1.0, tolerance=0.0,
            passed=thermal.tripped_nodes == ["mc-node-7"]))
        checks.append(CheckResult.compare(
            "Fig. 6 post-mitigation hottest °C",
            thermal.post_mitigation_hot_c,
            paper.THERMAL["post_mitigation_hot_c"], tolerance=3.0))

    return checks


def render_checklist(checks: List[CheckResult]) -> str:
    """Human-readable checklist with a summary line."""
    lines = []
    for check in checks:
        mark = "PASS" if check.passed else "FAIL"
        lines.append(f"[{mark}] {check.name}: measured {check.measured:.4g} "
                     f"vs paper {check.expected:.4g} "
                     f"(±{check.tolerance:.3g})")
    n_passed = sum(check.passed for check in checks)
    lines.append(f"\n{n_passed}/{len(checks)} checks passed")
    return "\n".join(lines)
