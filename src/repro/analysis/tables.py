"""Plain-text table rendering for reports and examples."""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = ["render_table"]


def render_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: str = "") -> str:
    """Render a fixed-width table.

    Cells are stringified; floats keep four significant digits.  Column
    widths adapt to content.  Returns a multi-line string ending without a
    trailing newline.
    """
    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.4g}"
        return str(cell)

    text_rows: List[List[str]] = [[fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        if len(row) != len(headers):
            raise ValueError(f"row has {len(row)} cells, expected {len(headers)}")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    out = []
    if title:
        out.append(title)
    out.append(line(list(headers)))
    out.append("-+-".join("-" * w for w in widths))
    out.extend(line(row) for row in text_rows)
    return "\n".join(out)
