"""The paper's reported numbers, verbatim.

Single source of truth for every assertion in the benchmark harness and
every "paper" column in EXPERIMENTS.md.  Each constant cites the paper
location it comes from.
"""

from __future__ import annotations

__all__ = [
    "TABLE_I_STACK",
    "HPL_SINGLE_NODE",
    "HPL_FULL_MACHINE",
    "COMPARISON_FRACTIONS",
    "TABLE_V_DDR_MB_S",
    "TABLE_V_L2_MB_S",
    "QE_LAX",
    "POWER_SUMMARY",
    "BOOT_DECOMPOSITION",
    "THERMAL",
]

#: Table I: the user-facing Spack stack.
TABLE_I_STACK = {
    "gcc": "10.3.0",
    "openmpi": "4.1.1",
    "openblas": "0.3.18",
    "fftw": "3.3.10",
    "netlib-lapack": "3.9.1",
    "netlib-scalapack": "2.1.0",
    "hpl": "2.3",
    "stream": "5.10",
    "quantum-espresso": "6.8",
}

#: §V-A single-node HPL: N=40704, NB=192.
HPL_SINGLE_NODE = {
    "gflops": 1.86, "gflops_std": 0.04,
    "fraction_of_peak": 0.465,
    "runtime_s": 24105.0, "runtime_std_s": 587.0,
    "n": 40704, "nb": 192,
}

#: §V-A full-machine HPL over 1 GbE.
HPL_FULL_MACHINE = {
    "gflops": 12.65, "gflops_std": 0.52,
    "fraction_of_peak": 0.395,
    "fraction_of_linear": 0.85,
    "runtime_s": 3548.0, "runtime_std_s": 136.0,
    "n_nodes": 8,
}

#: §V-A efficiency comparison under identical upstream-stack conditions.
COMPARISON_FRACTIONS = {
    "montecimone": {"hpl": 0.465, "stream": 0.155},
    "marconi100power9": {"hpl": 0.597, "stream": 0.482},
    "armidathunderx2": {"hpl": 0.6579, "stream": 0.6321},
}

#: Table V, DDR-resident (1945.5 MiB working set), MB/s.
TABLE_V_DDR_MB_S = {"copy": 1206.0, "scale": 1025.0, "add": 1124.0,
                    "triad": 1122.0}
#: Table V, L2-resident (1.1 MiB working set), MB/s.
TABLE_V_L2_MB_S = {"copy": 7079.0, "scale": 3558.0, "add": 4380.0,
                   "triad": 4365.0}
#: The STREAM peak both regimes are measured against (§V-A).
STREAM_PEAK_MB_S = 7760.0

#: §V-A QuantumESPRESSO LAX on a 512² matrix.
QE_LAX = {"gflops": 1.44, "gflops_std": 0.05, "fraction": 0.36,
          "runtime_s": 37.40, "runtime_std_s": 0.14, "n": 512}

#: §I/§V-B headline power numbers (watts and share of total).
POWER_SUMMARY = {
    "idle_w": 4.810,
    "max_w": 5.935,
    "idle_core_share": 0.64,
    "idle_ddr_share": 0.13,   # ddr_soc+ddr_mem+ddr_pll+ddr_vpp ≈ 13%
    "idle_pci_share": 0.23,
}

#: Fig. 4 / §V-B boot decomposition of core power.
BOOT_DECOMPOSITION = {
    "r1_core_w": 0.984,            # leakage
    "r2_core_w": 2.561,
    "r3_core_w": 3.082,
    "leakage_fraction": 0.32,
    "dynamic_clock_w": 1.577,
    "dynamic_clock_fraction": 0.51,
    "os_w": 0.514,
    "os_fraction": 0.17,
    "ddr_mem_r1_w": 0.275,
    "ddr_mem_leakage_fraction": 0.68,
}

#: §V-C thermal narrative.
THERMAL = {
    "trip_celsius": 107.0,
    "runaway_node": "mc-node-7",
    "pre_mitigation_hot_c": 71.0,
    "post_mitigation_hot_c": 39.0,
}
