"""Calibrated per-rail power model of the SiFive Freedom U740 node.

Model structure
---------------
The paper's boot experiment (Fig. 4, §V-B) decomposes the core rail into
three additive components, and the model adopts that structure literally:

* **leakage** — present whenever the rail is powered (boot region R1 shows
  0.984 W on the core rail with the clock gated);
* **clock tree + idle dynamic** — present once the PLL locks and the clock
  propagates (R2 − R1 = 1.577 W on the core rail);
* **OS baseline** — the resident-OS housekeeping cost (idle − R2 ≈ 0.514 W);
* **activity power** — a linear function of the workload's issue rate, FPU
  throughput and L2 traffic.

Per-rail coefficients are calibrated against Table VI: each benchmark
column corresponds to a :class:`WorkloadProfile` whose activity numbers,
combined with the shared slopes below, reproduce the measured milliwatts.
The calibration residual is bounded by the test-suite at ≤ 25 mW per rail
and ≤ 1% on totals.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict

__all__ = [
    "NodePhase",
    "WorkloadProfile",
    "RailPowerModel",
    "IDLE_PROFILE",
    "HPL_PROFILE",
    "STREAM_L2_PROFILE",
    "STREAM_DDR_PROFILE",
    "QE_PROFILE",
    "TABLE_VI_MILLIWATTS",
]


class NodePhase(Enum):
    """Electrical phase of the node (Fig. 4 regions plus off/run)."""

    OFF = "off"
    R1_POWER_ON = "r1"     # rails powered, core clock gated
    R2_BOOTLOADER = "r2"   # PLL locked, U-Boot + DDR training running
    R3_OS = "r3"           # OS booted; idle or running workloads


@dataclass(frozen=True)
class WorkloadProfile:
    """Activity description of a workload class, as the power model sees it.

    Attributes
    ----------
    name:
        Profile label (used by traces and reports).
    utilisation:
        Busy fraction of the application cores.
    ipc:
        Attained instructions per cycle while busy (hardware max 2.0).
    flop_fraction:
        Fraction of issue slots doing double-precision FP work.
    l2_traffic:
        L2 port utilisation, 0..1.
    ddr_ctrl_activity:
        DDR controller command-bus activity (drives ``ddr_soc``/``ddr_vpp``).
    ddr_data_activity:
        DDR data-bus utilisation (drives ``ddr_mem``); equals attained
        bandwidth / peak bandwidth.
    pcie_activity:
        Extra PCIe traffic beyond the always-on link (≈0 on these nodes).
    mem_fraction:
        Share of node DRAM the workload allocates (HPL's N=40704 matrix
        fills ~83% of the 16 GB).
    """

    name: str
    utilisation: float = 0.0
    ipc: float = 0.0
    flop_fraction: float = 0.0
    l2_traffic: float = 0.0
    ddr_ctrl_activity: float = 0.0
    ddr_data_activity: float = 0.0
    pcie_activity: float = 0.0
    mem_fraction: float = 0.0

    def __post_init__(self) -> None:
        for field_name in ("utilisation", "flop_fraction", "l2_traffic",
                           "ddr_ctrl_activity", "ddr_data_activity",
                           "pcie_activity", "mem_fraction"):
            value = getattr(self, field_name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{field_name}={value} outside [0, 1]")
        if self.ipc < 0 or self.ipc > 2.0:
            raise ValueError(f"ipc={self.ipc} outside [0, 2]")


#: OS idle: daemons only (§V-B "only normal OS services ... running").
IDLE_PROFILE = WorkloadProfile(name="idle")

#: HPL: dense LU — near-peak issue rate, heavy FPU, moderate L2, light DDR.
HPL_PROFILE = WorkloadProfile(
    name="hpl", utilisation=1.0, ipc=1.20, flop_fraction=0.45,
    l2_traffic=0.413, ddr_ctrl_activity=0.063, ddr_data_activity=0.0297,
    mem_fraction=0.83)

#: STREAM with an L2-resident working set: saturated L2 port, no DRAM role.
STREAM_L2_PROFILE = WorkloadProfile(
    name="stream_l2", utilisation=1.0, ipc=0.818, flop_fraction=0.10,
    l2_traffic=1.0, ddr_ctrl_activity=0.052, ddr_data_activity=0.0,
    mem_fraction=0.001)

#: STREAM with a DDR-resident working set: cores stalled on memory, the
#: DDR data bus at its attained-bandwidth level (~15.5% of peak).
STREAM_DDR_PROFILE = WorkloadProfile(
    name="stream_ddr", utilisation=1.0, ipc=0.253, flop_fraction=0.06,
    l2_traffic=0.25, ddr_ctrl_activity=0.155, ddr_data_activity=0.155,
    mem_fraction=0.12)

#: QuantumESPRESSO LAX: blocked diagonalisation, between HPL and STREAM.
QE_PROFILE = WorkloadProfile(
    name="qe", utilisation=1.0, ipc=0.95, flop_fraction=0.30,
    l2_traffic=0.23, ddr_ctrl_activity=0.062, ddr_data_activity=0.0247,
    mem_fraction=0.02)


#: Table VI of the paper, verbatim, in milliwatts.  Used for calibration
#: asserts in the test-suite and as the paper-side column of EXPERIMENTS.md.
TABLE_VI_MILLIWATTS: Dict[str, Dict[str, float]] = {
    "idle":       {"core": 3075, "ddr_soc": 139, "io": 20, "pll": 1,
                   "pcievp": 521, "pcievph": 555, "ddr_mem": 404,
                   "ddr_pll": 28, "ddr_vpp": 67},
    "hpl":        {"core": 4097, "ddr_soc": 177, "io": 20, "pll": 1,
                   "pcievp": 527, "pcievph": 554, "ddr_mem": 440,
                   "ddr_pll": 28, "ddr_vpp": 90},
    "stream_l2":  {"core": 3714, "ddr_soc": 170, "io": 20, "pll": 1,
                   "pcievp": 524, "pcievph": 554, "ddr_mem": 401,
                   "ddr_pll": 28, "ddr_vpp": 73},
    "stream_ddr": {"core": 3287, "ddr_soc": 232, "io": 20, "pll": 1,
                   "pcievp": 522, "pcievph": 555, "ddr_mem": 592,
                   "ddr_pll": 28, "ddr_vpp": 98},
    "qe":         {"core": 3825, "ddr_soc": 176, "io": 20, "pll": 1,
                   "pcievp": 530, "pcievph": 561, "ddr_mem": 434,
                   "ddr_pll": 28, "ddr_vpp": 95},
    "boot_r1":    {"core": 984, "ddr_soc": 59, "io": 5, "pll": 0,
                   "pcievp": 12, "pcievph": 1, "ddr_mem": 275,
                   "ddr_pll": 0, "ddr_vpp": 49},
    "boot_r2":    {"core": 2561, "ddr_soc": 197, "io": 20, "pll": 2,
                   "pcievp": 231, "pcievph": 395, "ddr_mem": 467,
                   "ddr_pll": 29, "ddr_vpp": 122},
}


class RailPowerModel:
    """Maps (node phase, workload profile) → per-rail power in watts.

    All constants are in milliwatts for direct comparability with Table VI;
    :meth:`rail_powers_w` converts to watts for the rail harness.
    """

    # -- core rail decomposition (paper §V-B) --------------------------------
    CORE_LEAKAGE_MW = 984.0          # region R1
    CORE_CLOCK_DYNAMIC_MW = 1577.0   # R2 − R1: clock tree + idle dynamic
    CORE_OS_BASELINE_MW = 514.0      # idle − R2: OS housekeeping
    # Activity slopes (shared across workloads; see module docstring).
    CORE_PER_IPC_MW = 500.0
    CORE_PER_FLOP_MW = 800.0
    CORE_PER_L2_MW = 150.0

    # -- DDR rails ------------------------------------------------------------
    DDR_SOC_LEAKAGE_MW = 59.0
    DDR_SOC_CLOCKED_MW = 80.0        # controller clocking once trained
    DDR_SOC_PER_CTRL_MW = 600.0
    DDR_SOC_TRAINING_MW = 58.0       # extra during R2 DDR training

    DDR_MEM_LEAKAGE_MW = 275.0       # module standby (68% of its idle, §V-B)
    DDR_MEM_REFRESH_MW = 129.0       # self-refresh + OS housekeeping traffic
    DDR_MEM_PER_DATA_MW = 1213.0
    DDR_MEM_TRAINING_MW = 63.0

    DDR_PLL_ON_MW = 28.4
    DDR_VPP_LEAKAGE_MW = 49.0
    DDR_VPP_BASE_MW = 18.0
    DDR_VPP_PER_CTRL_MW = 190.0
    DDR_VPP_PER_FLOP_MW = 35.0
    DDR_VPP_TRAINING_MW = 55.0

    # -- small rails -----------------------------------------------------------
    IO_LEAKAGE_MW = 5.0
    IO_CLOCKED_MW = 15.0
    PLL_LOCKED_MW = 1.4
    PLL_TRAINING_EXTRA_MW = 0.8

    # -- PCIe rails (≈1 W always-on with nothing in the slot, §V-B) -----------
    PCIEVP_LEAKAGE_MW = 12.0
    PCIEVP_TRAINING_MW = 219.0
    PCIEVP_OS_MW = 509.0
    PCIEVP_PER_UTIL_MW = 6.5
    PCIEVPH_LEAKAGE_MW = 1.0
    PCIEVPH_TRAINING_MW = 394.0
    PCIEVPH_OS_MW = 554.0
    PCIEVPH_PER_UTIL_MW = 3.0

    def rail_powers_mw(self, phase: NodePhase,
                       profile: WorkloadProfile = IDLE_PROFILE,
                       frequency_scale: float = 1.0) -> Dict[str, float]:
        """Per-rail power in milliwatts for the given electrical state.

        ``frequency_scale`` models clock throttling (the dynamic thermal
        management of §VI future work): the clock tree and all
        activity-dependent core power scale linearly with frequency (the
        U740 exposes no voltage scaling), while leakage, the OS baseline
        share tied to wakeups, and the non-core rails are unaffected.
        """
        if not 0.1 <= frequency_scale <= 1.0:
            raise ValueError(f"frequency_scale {frequency_scale} "
                             f"outside [0.1, 1.0]")
        if phase is NodePhase.OFF:
            return {name: 0.0 for name in TABLE_VI_MILLIWATTS["idle"]}
        if phase is NodePhase.R1_POWER_ON:
            return dict(TABLE_VI_MILLIWATTS["boot_r1"])

        booting = phase is NodePhase.R2_BOOTLOADER
        util = 0.0 if booting else profile.utilisation

        core = (self.CORE_LEAKAGE_MW
                + self.CORE_CLOCK_DYNAMIC_MW * frequency_scale)
        if not booting:
            core += self.CORE_OS_BASELINE_MW
            core += frequency_scale * util * (
                self.CORE_PER_IPC_MW * profile.ipc
                + self.CORE_PER_FLOP_MW * profile.flop_fraction
                + self.CORE_PER_L2_MW * profile.l2_traffic)

        ddr_soc = self.DDR_SOC_LEAKAGE_MW + self.DDR_SOC_CLOCKED_MW
        ddr_mem = self.DDR_MEM_LEAKAGE_MW + self.DDR_MEM_REFRESH_MW
        ddr_vpp = self.DDR_VPP_LEAKAGE_MW + self.DDR_VPP_BASE_MW
        if booting:
            ddr_soc += self.DDR_SOC_TRAINING_MW
            ddr_mem += self.DDR_MEM_TRAINING_MW
            ddr_vpp += self.DDR_VPP_TRAINING_MW
        else:
            ddr_soc += self.DDR_SOC_PER_CTRL_MW * profile.ddr_ctrl_activity
            ddr_mem += self.DDR_MEM_PER_DATA_MW * profile.ddr_data_activity
            ddr_vpp += (self.DDR_VPP_PER_CTRL_MW * profile.ddr_ctrl_activity
                        + self.DDR_VPP_PER_FLOP_MW * util * profile.flop_fraction)

        pll = self.PLL_LOCKED_MW + (self.PLL_TRAINING_EXTRA_MW if booting else 0.0)
        io = self.IO_LEAKAGE_MW + self.IO_CLOCKED_MW

        if booting:
            pcievp = self.PCIEVP_LEAKAGE_MW + self.PCIEVP_TRAINING_MW
            pcievph = self.PCIEVPH_LEAKAGE_MW + self.PCIEVPH_TRAINING_MW
        else:
            pcievp = (self.PCIEVP_LEAKAGE_MW + self.PCIEVP_OS_MW
                      + self.PCIEVP_PER_UTIL_MW * util * profile.ipc)
            pcievph = (self.PCIEVPH_OS_MW
                       + self.PCIEVPH_PER_UTIL_MW * util * profile.flop_fraction)

        return {
            "core": core,
            "ddr_soc": ddr_soc,
            "io": io,
            "pll": pll,
            "pcievp": pcievp,
            "pcievph": pcievph,
            "ddr_mem": ddr_mem,
            "ddr_pll": self.DDR_PLL_ON_MW + (0.6 if booting else 0.0),
            "ddr_vpp": ddr_vpp,
        }

    def rail_powers_w(self, phase: NodePhase,
                      profile: WorkloadProfile = IDLE_PROFILE,
                      frequency_scale: float = 1.0) -> Dict[str, float]:
        """Per-rail power in watts (for :class:`repro.hardware.rails.RailSet`)."""
        return {name: mw / 1e3
                for name, mw in self.rail_powers_mw(
                    phase, profile, frequency_scale).items()}

    def total_w(self, phase: NodePhase,
                profile: WorkloadProfile = IDLE_PROFILE) -> float:
        """Total node power in watts."""
        return sum(self.rail_powers_mw(phase, profile).values()) / 1e3

    def core_components_mw(self) -> Dict[str, float]:
        """The §V-B core-rail decomposition (leakage / clock+dyn / OS)."""
        return {
            "leakage": self.CORE_LEAKAGE_MW,
            "clock_and_dynamic": self.CORE_CLOCK_DYNAMIC_MW,
            "os_baseline": self.CORE_OS_BASELINE_MW,
        }
