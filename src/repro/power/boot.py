"""Boot-phase power sequence (Fig. 4 of the paper).

Fig. 4 shows 80 seconds of per-rail power during the boot of one node, with
three regions the paper names and exploits to decompose core power:

* **R1** (4 s < t < 10 s): rails powered, PLL not locked, clock gated —
  core rail shows pure leakage, 0.984 W on average;
* **R2** (10 s ≤ t < 25 s): PLL locked, U-Boot running, DDR training —
  core jumps to 2.561 W (leakage + clock tree + boot dynamic);
* **R3** (t ≥ 40 s): OS booted, idle — core settles at 3.082 W, converging
  to the 3.075 W steady idle value.

The timeline constants reproduce those region boundaries; the derived
quantities (:meth:`BootPowerModel.decomposition`) are the §V-B percentages:
leakage = 32% of idle core power, dynamic + clock tree = 51%, OS = 17%.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.power.model import IDLE_PROFILE, NodePhase, RailPowerModel

__all__ = ["BootPhase", "BOOT_PHASES", "BootPowerModel"]


@dataclass(frozen=True)
class BootPhase:
    """One region of the boot timeline."""

    name: str
    phase: NodePhase
    start_s: float
    end_s: float

    @property
    def duration_s(self) -> float:
        """Length of the region in seconds."""
        return self.end_s - self.start_s

    @property
    def span_name(self) -> str:
        """Trace-span name for this region (``boot.R1``, ``boot.R2``, ...)."""
        return f"boot.{self.name}"

    def span_attributes(self) -> Dict[str, object]:
        """Attribute payload for this region's trace span.

        Used by :meth:`repro.cluster.node.ComputeNode.boot_process` so a
        boot trace carries the Fig. 4 region identity alongside the
        simulated timing.
        """
        return {"region": self.name, "node_phase": self.phase.value,
                "nominal_duration_s": self.duration_s}


#: The Fig. 4 timeline.  Power is applied at t = 4 s; the PLL locks at
#: t = 10 s; the OS takes over at t = 25 s and is fully idle by t = 40 s.
BOOT_PHASES: List[BootPhase] = [
    BootPhase("off", NodePhase.OFF, 0.0, 4.0),
    BootPhase("R1", NodePhase.R1_POWER_ON, 4.0, 10.0),
    BootPhase("R2", NodePhase.R2_BOOTLOADER, 10.0, 25.0),
    BootPhase("R3", NodePhase.R3_OS, 25.0, 80.0),
]


class BootPowerModel:
    """Per-rail power as a function of time-into-boot.

    Combines the :data:`BOOT_PHASES` timeline with
    :class:`~repro.power.model.RailPowerModel`, adding the slow settling
    ramp visible in Fig. 4's R3 region (boot daemons quiescing from
    ~3.082 W down to the 3.075 W steady idle).
    """

    #: Extra core power right after OS handoff, decaying exponentially.
    R3_SETTLING_EXTRA_MW = 7.0
    R3_SETTLING_TAU_S = 12.0

    def __init__(self, rail_model: RailPowerModel | None = None) -> None:
        self.rail_model = rail_model if rail_model is not None else RailPowerModel()

    def phase_at(self, t_s: float) -> BootPhase:
        """The boot region containing time ``t_s``."""
        for phase in BOOT_PHASES:
            if phase.start_s <= t_s < phase.end_s:
                return phase
        return BOOT_PHASES[-1]

    def rail_powers_mw(self, t_s: float) -> Dict[str, float]:
        """Per-rail power (mW) at time ``t_s`` into the boot."""
        phase = self.phase_at(t_s)
        powers = self.rail_model.rail_powers_mw(phase.phase, IDLE_PROFILE)
        if phase.name == "R3":
            import math

            dt = t_s - phase.start_s
            powers["core"] += self.R3_SETTLING_EXTRA_MW * math.exp(
                -dt / self.R3_SETTLING_TAU_S)
        return powers

    def region_average_mw(self, region: str, rail: str,
                          margin_s: float = 1.0, step_s: float = 0.05) -> float:
        """Average rail power over a named region, like the paper computes.

        ``margin_s`` trims the region edges to avoid transition samples, the
        same way the averages quoted in §V-B are taken inside the regions.
        """
        phase = next((p for p in BOOT_PHASES if p.name == region), None)
        if phase is None:
            raise KeyError(f"unknown boot region {region!r}")
        t = phase.start_s + margin_s
        end = phase.end_s - margin_s
        if t >= end:
            raise ValueError(f"region {region} too short for margin {margin_s}")
        samples = []
        while t < end:
            samples.append(self.rail_powers_mw(t)[rail])
            t += step_s
        return sum(samples) / len(samples)

    def decomposition(self) -> Dict[str, float]:
        """The §V-B core-power decomposition as fractions of idle core power.

        Returns a mapping with the three component fractions; the paper
        reports 32% leakage, 51% dynamic + clock tree, 17% OS.
        """
        components = self.rail_model.core_components_mw()
        idle_core = sum(components.values())
        return {name: value / idle_core for name, value in components.items()}
