"""Power models for the Monte Cimone node.

Three layers:

* :mod:`repro.power.model` — the calibrated per-rail power model.  Its
  structure follows the paper's own decomposition of the core rail into
  leakage (0.984 W), clock-tree + dynamic (1.577 W) and OS baseline
  (0.514 W), and its activity slopes are calibrated so each Table VI column
  is reproduced by the corresponding workload profile.
* :mod:`repro.power.boot` — the boot-phase power sequence behind Fig. 4
  (regions R1/R2/R3).
* :mod:`repro.power.traces` — synthesis of the 1 ms-window power traces of
  Fig. 3 and Fig. 4.
"""

from repro.power.boot import BOOT_PHASES, BootPhase, BootPowerModel
from repro.power.model import (
    IDLE_PROFILE,
    HPL_PROFILE,
    QE_PROFILE,
    STREAM_DDR_PROFILE,
    STREAM_L2_PROFILE,
    NodePhase,
    RailPowerModel,
    WorkloadProfile,
)
from repro.power.traces import PowerTrace, TraceSynthesizer

__all__ = [
    "BOOT_PHASES",
    "BootPhase",
    "BootPowerModel",
    "HPL_PROFILE",
    "IDLE_PROFILE",
    "NodePhase",
    "PowerTrace",
    "QE_PROFILE",
    "RailPowerModel",
    "STREAM_DDR_PROFILE",
    "STREAM_L2_PROFILE",
    "TraceSynthesizer",
    "WorkloadProfile",
]
