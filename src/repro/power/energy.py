"""Per-job energy accounting — energy-to-solution from the rail integrals.

The shunt-resistor harness integrates energy per rail
(:attr:`~repro.hardware.rails.PowerRail.energy_j`); this module snapshots
those integrals at job start/end to attribute energy to jobs, giving the
energy-to-solution metric HPC operators (and the paper's ODA framing)
care about.  Wire :class:`JobEnergyAccounting` to a
:class:`~repro.slurm.scheduler.SlurmController` and read the ledger after
the runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.cluster.node import ComputeNode
from repro.slurm.job import Job
from repro.slurm.scheduler import SlurmController

__all__ = ["JobEnergyRecord", "JobEnergyAccounting"]


@dataclass(frozen=True)
class JobEnergyRecord:
    """Energy attributed to one finished job."""

    job_id: int
    name: str
    user: str
    n_nodes: int
    elapsed_s: float
    energy_j: float
    per_rail_j: Dict[str, float]

    @property
    def mean_power_w(self) -> float:
        """Average allocated-node power over the job."""
        if self.elapsed_s <= 0:
            return 0.0
        return self.energy_j / self.elapsed_s

    def energy_per_node_j(self) -> float:
        """Energy per allocated node."""
        return self.energy_j / self.n_nodes


class JobEnergyAccounting:
    """Attributes rail energy to jobs via start/end snapshots."""

    def __init__(self, controller: SlurmController) -> None:
        self.controller = controller
        self._start_snapshots: Dict[int, Dict[str, Dict[str, float]]] = {}
        self.ledger: List[JobEnergyRecord] = []
        controller.on_job_end.append(self._on_job_end)
        self._wrap_start()

    # -- wiring -------------------------------------------------------------
    def _wrap_start(self) -> None:
        original_start = self.controller._start

        def start_with_snapshot(job, partition):
            original_start(job, partition)
            self._start_snapshots[job.job_id] = self._snapshot(job)

        self.controller._start = start_with_snapshot

    def _bound_nodes(self, job: Job) -> Dict[str, ComputeNode]:
        return {hostname: self.controller.compute_nodes[hostname]
                for hostname in job.allocated_nodes
                if hostname in self.controller.compute_nodes}

    def _snapshot(self, job: Job) -> Dict[str, Dict[str, float]]:
        return {hostname: {rail.name: rail.energy_j
                           for rail in node.board.rails}
                for hostname, node in self._bound_nodes(job).items()}

    def _on_job_end(self, job: Job) -> None:
        start = self._start_snapshots.pop(job.job_id, None)
        if start is None:
            return
        # Force the integrals up to the end timestamp before reading.
        for node in self._bound_nodes(job).values():
            node.sync_to(self.controller.engine.now)
        end = self._snapshot(job)
        per_rail: Dict[str, float] = {}
        for hostname, rails in end.items():
            for rail_name, energy in rails.items():
                delta = energy - start.get(hostname, {}).get(rail_name, 0.0)
                per_rail[rail_name] = per_rail.get(rail_name, 0.0) + delta
        self.ledger.append(JobEnergyRecord(
            job_id=job.job_id, name=job.name, user=job.user,
            n_nodes=len(job.allocated_nodes),
            elapsed_s=job.elapsed_s or 0.0,
            energy_j=sum(per_rail.values()),
            per_rail_j=per_rail))

    # -- queries ------------------------------------------------------------
    def record_for(self, job_id: int) -> Optional[JobEnergyRecord]:
        """The ledger entry for one job, or None if not finished/tracked."""
        for record in self.ledger:
            if record.job_id == job_id:
                return record
        return None

    def total_energy_j(self, user: Optional[str] = None) -> float:
        """Total attributed energy, optionally for one user."""
        return sum(record.energy_j for record in self.ledger
                   if user is None or record.user == user)
