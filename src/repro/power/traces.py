"""Synthesis of the power traces shown in Fig. 3 and Fig. 4.

Fig. 3 shows, for each benchmark, 8 seconds of power for three rail groups
(core; DDR; PCIe+PLL+IO), produced by averaging raw shunt samples over 1 ms
windows.  The traces are not flat: HPL alternates panel-factorisation and
update phases, STREAM cycles its four kernels, QE alternates diagonalisation
sweeps.  :class:`TraceSynthesizer` reproduces those shapes with a
deterministic, seeded model so the benchmark harness can regenerate the
figure's series byte-for-byte across runs.
"""

from __future__ import annotations

import math
import zlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence

import numpy as np

from repro.power.boot import BootPowerModel
from repro.power.model import (
    HPL_PROFILE,
    IDLE_PROFILE,
    NodePhase,
    QE_PROFILE,
    RailPowerModel,
    STREAM_DDR_PROFILE,
    STREAM_L2_PROFILE,
    WorkloadProfile,
)

__all__ = ["PowerTrace", "TraceSynthesizer", "RAIL_GROUPS"]

#: The three panels of Fig. 3: core, DDR aggregate, PCIe+PLL+IO aggregate.
RAIL_GROUPS: Dict[str, tuple[str, ...]] = {
    "core": ("core",),
    "ddr": ("ddr_soc", "ddr_mem", "ddr_pll", "ddr_vpp"),
    "pcie_pll_io": ("pcievp", "pcievph", "pll", "io"),
}


@dataclass
class PowerTrace:
    """A sampled power time-series for one rail group.

    ``times_s`` and ``power_w`` are equal-length arrays; ``window_s`` is the
    averaging window used to produce each sample (1 ms in Fig. 3).
    """

    label: str
    times_s: np.ndarray
    power_w: np.ndarray
    window_s: float

    def mean_w(self) -> float:
        """Mean power over the trace."""
        return float(np.mean(self.power_w))

    def peak_w(self) -> float:
        """Maximum windowed power over the trace."""
        return float(np.max(self.power_w))

    def std_w(self) -> float:
        """Standard deviation of the windowed power."""
        return float(np.std(self.power_w))


def _hpl_modulation(t: np.ndarray) -> np.ndarray:
    """HPL phase structure: long update phases dipping for panel+bcast.

    The dips correspond to the communication/panel phases where the FPU
    drains (visible in Fig. 3 and in the Fig. 5 instruction heatmap).
    """
    period = 2.6  # seconds per panel cycle at the single-node problem size
    phase = (t % period) / period
    dip = np.where(phase < 0.18, -0.22, 0.0)
    ripple = 0.02 * np.sin(2 * math.pi * t / 0.4)
    return 1.0 + dip + ripple


def _stream_modulation(t: np.ndarray) -> np.ndarray:
    """STREAM cycles copy→scale→add→triad; each kernel has its own level."""
    period = 1.6
    phase = ((t % period) / period * 4).astype(int)
    levels = np.array([1.04, 0.97, 1.0, 1.0])
    return levels[np.clip(phase, 0, 3)]


def _qe_modulation(t: np.ndarray) -> np.ndarray:
    """QE LAX alternates rotation sweeps and re-blocking pauses."""
    period = 3.1
    phase = (t % period) / period
    pause = np.where(phase > 0.85, -0.15, 0.0)
    return 1.0 + pause + 0.015 * np.sin(2 * math.pi * t / 0.7)


_MODULATIONS: Dict[str, Callable[[np.ndarray], np.ndarray]] = {
    "idle": lambda t: np.ones_like(t),
    "hpl": _hpl_modulation,
    "stream_l2": _stream_modulation,
    "stream_ddr": _stream_modulation,
    "qe": _qe_modulation,
}

def activity_modulation(workload: str, t_s: float) -> float:
    """Scalar phase-structure factor for one workload at time ``t_s``.

    Used by the node lifecycle to modulate instantaneous activity (e.g.
    HPL's panel-broadcast dips show up as lower instruction rates in the
    Fig. 5 heatmap).  Unknown workloads are flat.
    """
    modulation = _MODULATIONS.get(workload)
    if modulation is None:
        return 1.0
    return float(modulation(np.asarray([t_s]))[0])


_PROFILES: Dict[str, WorkloadProfile] = {
    "idle": IDLE_PROFILE,
    "hpl": HPL_PROFILE,
    "stream_l2": STREAM_L2_PROFILE,
    "stream_ddr": STREAM_DDR_PROFILE,
    "qe": QE_PROFILE,
}


class TraceSynthesizer:
    """Deterministic power-trace generator for Fig. 3 and Fig. 4.

    Parameters
    ----------
    seed:
        Seed for the measurement-noise generator; the default reproduces
        the series committed in EXPERIMENTS.md exactly.
    """

    #: Relative RMS of the shunt-ADC measurement noise after 1 ms averaging.
    NOISE_RMS = 0.012

    def __init__(self, seed: int = 2022,
                 rail_model: RailPowerModel | None = None) -> None:
        self.seed = seed
        self.rail_model = rail_model if rail_model is not None else RailPowerModel()

    def benchmark_trace(self, workload: str, group: str = "core",
                        duration_s: float = 8.0,
                        window_s: float = 1e-3) -> PowerTrace:
        """An 8-second Fig. 3-style trace for one workload and rail group.

        Only the *activity-dependent* share of each rail is modulated by
        the workload's phase structure; leakage and always-on components
        stay flat, as they do in the measured traces.
        """
        if workload not in _PROFILES:
            raise KeyError(f"unknown workload {workload!r}; "
                           f"choose from {sorted(_PROFILES)}")
        if group not in RAIL_GROUPS:
            raise KeyError(f"unknown rail group {group!r}; "
                           f"choose from {sorted(RAIL_GROUPS)}")
        profile = _PROFILES[workload]
        rails = RAIL_GROUPS[group]
        times = np.arange(0.0, duration_s, window_s)

        active_mw = self.rail_model.rail_powers_mw(NodePhase.R3_OS, profile)
        idle_mw = self.rail_model.rail_powers_mw(NodePhase.R3_OS, IDLE_PROFILE)
        base = sum(idle_mw[r] for r in rails)
        delta = sum(active_mw[r] - idle_mw[r] for r in rails)

        modulation = _MODULATIONS[workload](times)
        # Decorrelate the noise of each workload×group panel with a digest
        # that is stable across processes — builtin hash() is salted per
        # interpreter (PYTHONHASHSEED), which made reruns non-reproducible.
        stream = zlib.crc32(f"{workload}/{group}".encode("ascii"))
        rng = np.random.default_rng(self.seed + stream % 65536)
        noise = rng.normal(0.0, self.NOISE_RMS * max(base + delta, 1.0),
                           size=times.shape)
        power_mw = base + delta * modulation + noise
        return PowerTrace(label=f"{workload}/{group}", times_s=times,
                          power_w=np.maximum(power_mw, 0.0) / 1e3,
                          window_s=window_s)

    def boot_trace(self, group: str = "core", duration_s: float = 80.0,
                   window_s: float = 0.1) -> PowerTrace:
        """The Fig. 4 boot trace for one rail group."""
        if group not in RAIL_GROUPS:
            raise KeyError(f"unknown rail group {group!r}")
        rails = RAIL_GROUPS[group]
        boot = BootPowerModel(self.rail_model)
        times = np.arange(0.0, duration_s, window_s)
        power_mw = np.array([
            sum(boot.rail_powers_mw(t)[r] for r in rails) for t in times
        ])
        rng = np.random.default_rng(self.seed + 7)
        noise = rng.normal(0.0, self.NOISE_RMS * np.maximum(power_mw, 1.0))
        return PowerTrace(label=f"boot/{group}", times_s=times,
                          power_w=np.maximum(power_mw + noise, 0.0) / 1e3,
                          window_s=window_s)

    def all_benchmark_traces(self, duration_s: float = 8.0) -> Dict[str, Dict[str, PowerTrace]]:
        """Every Fig. 3 panel: workload × rail-group."""
        return {
            workload: {
                group: self.benchmark_trace(workload, group, duration_s)
                for group in RAIL_GROUPS
            }
            for workload in ("hpl", "stream_l2", "stream_ddr", "qe")
        }
