"""The full Monte Cimone machine.

Assembles the whole §III/§IV system:

* eight compute nodes (``mc-node-1`` … ``mc-node-8``) in four RV007
  blades, placed in an :class:`~repro.thermal.enclosure.Enclosure`;
  nodes 1 and 2 carry the Infiniband HCAs;
* a login node and a master node (job scheduler, NFS, LDAP, the ExaMon
  broker and storage run there);
* the GbE star network;
* a SLURM controller bound to the compute nodes;
* a thermal watchdog sampling every SoC sensor and shutting down nodes at
  the 107 °C trip (the Fig. 6 behaviour).

The cluster exposes high-level drivers used by the examples and the
benchmark harness: boot everything, run a benchmark job on N nodes,
change the enclosure configuration (the §V-C mitigation) mid-simulation.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional

from repro.events.engine import Engine, Event
from repro.cluster.blade import RV007Blade
from repro.cluster.node import ComputeNode, NodeState
from repro.cluster.services.ldap import LDAPServer
from repro.cluster.services.modules import EnvironmentModules
from repro.cluster.services.nfs import NFSServer
from repro.network.topology import ClusterTopology
from repro.slurm.partition import Partition, SlurmNodeInfo
from repro.slurm.scheduler import SlurmController
from repro.thermal.enclosure import Enclosure, EnclosureConfig
from repro.thermal.runaway import ThermalWatchdog

__all__ = ["MonteCimoneCluster"]


class MonteCimoneCluster:
    """Eight RISC-V nodes, four blades, one production software stack."""

    N_NODES = 8
    THERMAL_SAMPLE_S = 1.0

    #: Cabling order: which enclosure slot each node (1-based) sits in.
    #: Nodes 3, 4, 7 and 8 occupy the centre blades; node 7 is in slot 4,
    #: the slot with the worst heat-sink seating — it runs away first,
    #: matching Fig. 6.
    SLOT_OF_NODE = {1: 0, 2: 1, 3: 2, 4: 3, 5: 6, 6: 7, 7: 4, 8: 5}

    def __init__(self, engine: Optional[Engine] = None,
                 enclosure_config: Optional[EnclosureConfig] = None,
                 patched_uboot: bool = True) -> None:
        self.engine = engine if engine is not None else Engine()
        self.enclosure = Enclosure(
            enclosure_config if enclosure_config is not None
            else EnclosureConfig.original())

        # -- compute nodes and blades ------------------------------------
        self.nodes: Dict[str, ComputeNode] = {}
        for i in range(self.N_NODES):
            hostname = f"mc-node-{i + 1}"
            node = ComputeNode(hostname=hostname,
                               with_infiniband=(i < 2),
                               patched_uboot=patched_uboot)
            node.attach_thermal(self.enclosure, slot=self.SLOT_OF_NODE[i + 1])
            self.nodes[hostname] = node
        node_list = list(self.nodes.values())
        self.blades: List[RV007Blade] = [
            RV007Blade(blade_id=b, nodes=(node_list[2 * b], node_list[2 * b + 1]))
            for b in range(self.N_NODES // 2)
        ]

        # -- network --------------------------------------------------------
        self.topology = ClusterTopology(
            [*self.nodes, "mc-login", "mc-master"])

        # -- services on the master node -----------------------------------
        self.nfs = NFSServer(hostname="mc-master")
        self.nfs.export("/home")
        self.nfs.export("/opt/spack")
        self.ldap = LDAPServer()
        self.ldap.add_group("hpc-users")
        self.modules = EnvironmentModules()

        # -- scheduler -------------------------------------------------------
        self.slurm = SlurmController(self.engine)
        partition = Partition(name="compute", max_time_s=7 * 86400.0, default=True)
        for hostname, node in self.nodes.items():
            partition.add_node(SlurmNodeInfo(hostname=hostname,
                                             n_cores=node.board.n_cores))
            self.slurm.bind_node(hostname, node)
        self.slurm.add_partition(partition)

        # -- thermal protection -----------------------------------------------
        self.watchdog = ThermalWatchdog(on_trip=self._trip_node)
        self._watchdog_running = False

    # -- lifecycle -----------------------------------------------------------
    def boot_all(self) -> None:
        """Boot every compute node and start the thermal watchdog."""
        processes = [self.engine.spawn(node.boot_process(self.engine),
                                       name=f"boot-{name}")
                     for name, node in self.nodes.items()]
        done = self.engine.all_of(processes)
        self.engine.run_until_complete(done)
        self.start_watchdog()

    def start_watchdog(self) -> None:
        """Start the cluster-wide thermal sampling loop (idempotent)."""
        if not self._watchdog_running:
            self._watchdog_running = True
            self.engine.spawn(self._watchdog_process(), name="thermal-watchdog")

    def _watchdog_process(self) -> Generator[Event, None, None]:
        while True:
            yield self.engine.timeout(self.THERMAL_SAMPLE_S)
            for hostname, node in self.nodes.items():
                # Nodes not driven by a running job still evolve thermally
                # (idle heat, or cooling while off/tripped).
                if node.state is not NodeState.RUNNING:
                    node.sync_to(self.engine.now)
                if node.state in (NodeState.OFF, NodeState.TRIPPED):
                    continue
                self.watchdog.observe(self.engine.now, hostname,
                                      node.cpu_temperature_c())

    def _trip_node(self, hostname: str) -> None:
        self.inject_node_failure(hostname, reason="thermal trip")

    def inject_node_failure(self, hostname: str,
                            reason: str = "injected fault") -> None:
        """Fault injection entry point: trip a node and tell the scheduler.

        Unlike calling ``emergency_shutdown`` on the node directly, this
        also reports the failure to the SLURM controller, so a node tripped
        while idle (or mid-boot) is marked DOWN instead of silently staying
        in the schedulable pool — and, when auto-recovery is enabled, its
        drain→resume lifecycle starts.  The thermal watchdog trips through
        this same path.
        """
        self.nodes[hostname].emergency_shutdown(self.engine.now)
        self.slurm.node_failed(hostname, reason)

    def enable_auto_recovery(self, delay_s: float = 60.0) -> None:
        """Have failed nodes serviced and returned to the pool automatically.

        Wires the controller's drain→resume lifecycle to the cluster's
        cooperative hardware service: after ``delay_s`` of simulated
        operator-response time the node is drained, cooled, rebooted and
        resumed — the recovery half of the Fig. 6 incident response.
        """
        self.slurm.enable_node_recovery(delay_s=delay_s,
                                        service=self.service_node_process)

    def apply_thermal_mitigation(self) -> None:
        """The §V-C fix: remove the lids, add vertical spacing."""
        self.enclosure.config = EnclosureConfig.mitigated()
        for node in self.nodes.values():
            if node.thermal is not None:
                node.thermal.set_enclosure(self.enclosure)

    def service_node(self, hostname: str, cool_below_c: float = 32.0,
                     cooldown_guard_s: float = 3600.0) -> None:
        """Return a tripped node to service after maintenance.

        Waits (in simulated time) for the board to cool below
        ``cool_below_c`` before rebooting, as any operator would.
        """
        node = self.nodes[hostname]
        if node.state is not NodeState.TRIPPED:
            raise RuntimeError(f"{hostname} is {node.state}, not tripped")
        guard = self.engine.now + cooldown_guard_s
        while node.cpu_temperature_c() > cool_below_c:
            if self.engine.now > guard:
                raise RuntimeError(f"{hostname} failed to cool below "
                                   f"{cool_below_c} °C within the guard time")
            self.run_for(10.0)
        node.state = NodeState.OFF
        self.watchdog.reset(hostname)
        self.engine.run_until_complete(
            self.engine.spawn(node.boot_process(self.engine)))
        for partition in self.slurm.partitions.values():
            if hostname in partition.nodes:
                partition.nodes[hostname].resume()

    def service_node_process(self, hostname: str, cool_below_c: float = 32.0,
                             cooldown_guard_s: float = 3600.0
                             ) -> Generator[Event, None, None]:
        """Cooperative (in-simulation) version of :meth:`service_node`.

        Waits for the tripped board to cool, then reboots it — all by
        yielding events, so it can run *inside* the simulation (the
        controller's automatic node-recovery lifecycle drives it while the
        rest of the cluster keeps running).  Scheduler-side state is the
        caller's responsibility, matching ``enable_node_recovery``'s
        contract (the controller resumes the node itself).
        """
        node = self.nodes[hostname]
        if node.state is not NodeState.TRIPPED:
            raise RuntimeError(f"{hostname} is {node.state}, not tripped")
        guard = self.engine.now + cooldown_guard_s
        while node.cpu_temperature_c() > cool_below_c:
            if self.engine.now > guard:
                raise RuntimeError(f"{hostname} failed to cool below "
                                   f"{cool_below_c} °C within the guard time")
            yield self.engine.timeout(10.0)
            node.sync_to(self.engine.now)
        node.state = NodeState.OFF
        self.watchdog.reset(hostname)
        yield from node.boot_process(self.engine)

    # -- convenience views -----------------------------------------------------
    def total_power_w(self) -> float:
        """Instantaneous DC power of all compute nodes."""
        return sum(node.total_power_w() for node in self.nodes.values())

    def hottest_node(self) -> tuple[str, float]:
        """(hostname, SoC °C) of the hottest node right now."""
        name = max(self.nodes, key=lambda n: self.nodes[n].cpu_temperature_c())
        return name, self.nodes[name].cpu_temperature_c()

    def node_states(self) -> Dict[str, NodeState]:
        """Current node lifecycle states."""
        return {name: node.state for name, node in self.nodes.items()}

    def run_for(self, duration_s: float) -> None:
        """Advance the whole simulation by ``duration_s``."""
        self.engine.run(until=self.engine.now + duration_s)
