"""The login node: authenticated user sessions on the cluster.

Ties the production services together the way a real user experiences
them (§IV-A): SSH to ``mc-login`` authenticates against LDAP, lands in an
NFS home directory, gets the Spack stack through environment modules, and
submits work through SLURM.  :class:`LoginNode` is the front door;
:class:`UserSession` is one logged-in shell.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.cluster.services.base import ServiceUnavailableError
from repro.cluster.services.ldap import AuthenticationError, LDAPServer, LDAPUser
from repro.cluster.services.modules import EnvironmentModules, Module
from repro.cluster.services.nfs import NFSMount, NFSServer
from repro.slurm.api import SlurmAPI
from repro.slurm.scheduler import SlurmController

__all__ = ["LoginNode", "UserSession", "QueuedLogin"]


@dataclass
class QueuedLogin:
    """A login attempt parked while the LDAP directory is down.

    The front door stays responsive during a directory outage: instead of
    the connection crashing, the attempt is queued and replayed by
    :meth:`LoginNode.process_queued` once LDAP returns.  ``session`` is
    filled in at replay time; ``error`` records a replay that failed
    authentication (bad credentials do not survive an outage either).
    """

    username: str
    password: str = field(repr=False)
    session: Optional["UserSession"] = None
    error: Optional[str] = None

    @property
    def pending(self) -> bool:
        """Still waiting for the directory to come back."""
        return self.session is None and self.error is None


class UserSession:
    """One authenticated shell on the login node."""

    def __init__(self, user: LDAPUser, home: NFSMount,
                 modules: EnvironmentModules, slurm: SlurmAPI) -> None:
        self.user = user
        self.home = home
        self.modules = modules
        self.slurm = slurm
        self.history: List[str] = []
        #: Home-directory writes parked while NFS was down, as
        #: (absolute_path, data) pairs awaiting :meth:`flush_deferred_writes`.
        self.deferred_writes: List[Tuple[str, bytes]] = []

    # -- home directory -------------------------------------------------------
    def write_file(self, relative_path: str, data: bytes) -> None:
        """Write under the user's NFS home."""
        self.history.append(f"write {relative_path}")
        self.flush_deferred_writes()
        self.home.write(f"{self.user.home}/{relative_path}", data)

    def flush_deferred_writes(self) -> int:
        """Replay writes parked during an NFS outage; returns flush count.

        A still-down server leaves the remainder queued (no exception —
        the point of the deferred queue is to absorb the outage).
        """
        flushed = 0
        while self.deferred_writes:
            path, data = self.deferred_writes[0]
            try:
                self.home.write(path, data)
            except ServiceUnavailableError:
                break
            self.deferred_writes.pop(0)
            flushed += 1
        return flushed

    def read_file(self, relative_path: str) -> bytes:
        """Read from the user's NFS home."""
        self.history.append(f"read {relative_path}")
        return self.home.read(f"{self.user.home}/{relative_path}")

    # -- software environment -----------------------------------------------
    def module_avail(self, pattern: str = "") -> List[str]:
        """``module avail`` in this session."""
        self.history.append(f"module avail {pattern}".strip())
        return self.modules.avail(pattern)

    def module_load(self, full_name: str) -> Module:
        """``module load`` in this session."""
        self.history.append(f"module load {full_name}")
        return self.modules.load(full_name)

    # -- batch system -----------------------------------------------------------
    def sbatch(self, script_text: str, duration_s: float, profile=None) -> int:
        """Submit a batch script as this user; the script is archived in
        the home directory like users actually do.

        Job launch degrades gracefully during an NFS outage: the archive
        write is deferred (flushed once the server returns) while the
        submission itself still reaches the scheduler — SLURM does not
        depend on the user's home being writable.
        """
        job_id_placeholder = len(self.history)
        relative_path = f"jobs/script-{job_id_placeholder}.sh"
        try:
            self.write_file(relative_path, script_text.encode())
        except ServiceUnavailableError:
            self.deferred_writes.append(
                (f"{self.user.home}/{relative_path}", script_text.encode()))
            self.history.append(f"write {relative_path} deferred (nfs down)")
        job_id = self.slurm.sbatch_script(script_text, user=self.user.uid,
                                          duration_s=duration_s,
                                          profile=profile)
        self.history.append(f"sbatch -> job {job_id}")
        return job_id

    def squeue(self) -> str:
        """Queue view."""
        return self.slurm.squeue()


class LoginNode:
    """``mc-login``: the cluster's interactive front door."""

    def __init__(self, ldap: LDAPServer, nfs: NFSServer,
                 modules: EnvironmentModules,
                 controller: SlurmController,
                 hostname: str = "mc-login") -> None:
        self.hostname = hostname
        self.ldap = ldap
        self.nfs = nfs
        self.modules = modules
        self.slurm_api = SlurmAPI(controller)
        self.active_sessions: Dict[str, UserSession] = {}
        self.failed_logins: List[str] = []
        #: Login attempts parked during an LDAP/NFS outage, replayed by
        #: :meth:`process_queued` once the services return.
        self.queued_logins: List[QueuedLogin] = []

    def _open_session(self, username: str, password: str) -> UserSession:
        user = self.ldap.bind(username, password)
        home_mount = NFSMount(server=self.nfs, export_path="/home",
                              mountpoint="/home")
        if not self.nfs.exists(user.home):
            self.nfs.mkdir(user.home, parents=True)
            self.nfs.mkdir(f"{user.home}/jobs", parents=True)
        session = UserSession(user=user, home=home_mount,
                              modules=self.modules, slurm=self.slurm_api)
        self.active_sessions[username] = session
        return session

    def ssh(self, username: str, password: str) -> Union[UserSession,
                                                         QueuedLogin]:
        """Authenticate and open a session.

        Degrades gracefully while LDAP or NFS is down: instead of the
        connection crashing, the attempt is parked as a
        :class:`QueuedLogin` (returned in place of the session) and
        replayed by :meth:`process_queued` once the service is back.

        Raises
        ------
        AuthenticationError
            Bad credentials (recorded in ``failed_logins``, the feedstock
            of the intrusion-detection analytics §II alludes to).
        """
        try:
            return self._open_session(username, password)
        except AuthenticationError:
            self.failed_logins.append(username)
            raise
        except ServiceUnavailableError:
            ticket = QueuedLogin(username=username, password=password)
            self.queued_logins.append(ticket)
            return ticket

    def process_queued(self) -> List[UserSession]:
        """Replay logins parked during a service outage.

        Returns the sessions opened on this pass.  Bad credentials fill
        the ticket's ``error`` (an outage does not launder a wrong
        password); a still-down service leaves the remainder pending.
        """
        opened: List[UserSession] = []
        for ticket in self.queued_logins:
            if not ticket.pending:
                continue
            try:
                ticket.session = self._open_session(ticket.username,
                                                    ticket.password)
            except AuthenticationError as exc:
                self.failed_logins.append(ticket.username)
                ticket.error = str(exc)
            except ServiceUnavailableError:
                break
            else:
                opened.append(ticket.session)
        return opened

    def logout(self, username: str) -> None:
        """Close a session (idempotent)."""
        self.active_sessions.pop(username, None)
