"""The login node: authenticated user sessions on the cluster.

Ties the production services together the way a real user experiences
them (§IV-A): SSH to ``mc-login`` authenticates against LDAP, lands in an
NFS home directory, gets the Spack stack through environment modules, and
submits work through SLURM.  :class:`LoginNode` is the front door;
:class:`UserSession` is one logged-in shell.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cluster.services.ldap import AuthenticationError, LDAPServer, LDAPUser
from repro.cluster.services.modules import EnvironmentModules, Module
from repro.cluster.services.nfs import NFSMount, NFSServer
from repro.slurm.api import SlurmAPI
from repro.slurm.scheduler import SlurmController

__all__ = ["LoginNode", "UserSession"]


class UserSession:
    """One authenticated shell on the login node."""

    def __init__(self, user: LDAPUser, home: NFSMount,
                 modules: EnvironmentModules, slurm: SlurmAPI) -> None:
        self.user = user
        self.home = home
        self.modules = modules
        self.slurm = slurm
        self.history: List[str] = []

    # -- home directory -------------------------------------------------------
    def write_file(self, relative_path: str, data: bytes) -> None:
        """Write under the user's NFS home."""
        self.history.append(f"write {relative_path}")
        self.home.write(f"{self.user.home}/{relative_path}", data)

    def read_file(self, relative_path: str) -> bytes:
        """Read from the user's NFS home."""
        self.history.append(f"read {relative_path}")
        return self.home.read(f"{self.user.home}/{relative_path}")

    # -- software environment -----------------------------------------------
    def module_avail(self, pattern: str = "") -> List[str]:
        """``module avail`` in this session."""
        self.history.append(f"module avail {pattern}".strip())
        return self.modules.avail(pattern)

    def module_load(self, full_name: str) -> Module:
        """``module load`` in this session."""
        self.history.append(f"module load {full_name}")
        return self.modules.load(full_name)

    # -- batch system -----------------------------------------------------------
    def sbatch(self, script_text: str, duration_s: float, profile=None) -> int:
        """Submit a batch script as this user; the script is archived in
        the home directory like users actually do."""
        job_id_placeholder = len(self.history)
        self.write_file(f"jobs/script-{job_id_placeholder}.sh",
                        script_text.encode())
        job_id = self.slurm.sbatch_script(script_text, user=self.user.uid,
                                          duration_s=duration_s,
                                          profile=profile)
        self.history.append(f"sbatch -> job {job_id}")
        return job_id

    def squeue(self) -> str:
        """Queue view."""
        return self.slurm.squeue()


class LoginNode:
    """``mc-login``: the cluster's interactive front door."""

    def __init__(self, ldap: LDAPServer, nfs: NFSServer,
                 modules: EnvironmentModules,
                 controller: SlurmController,
                 hostname: str = "mc-login") -> None:
        self.hostname = hostname
        self.ldap = ldap
        self.nfs = nfs
        self.modules = modules
        self.slurm_api = SlurmAPI(controller)
        self.active_sessions: Dict[str, UserSession] = {}
        self.failed_logins: List[str] = []

    def ssh(self, username: str, password: str) -> UserSession:
        """Authenticate and open a session.

        Raises
        ------
        AuthenticationError
            Bad credentials (recorded in ``failed_logins``, the feedstock
            of the intrusion-detection analytics §II alludes to).
        """
        try:
            user = self.ldap.bind(username, password)
        except AuthenticationError:
            self.failed_logins.append(username)
            raise
        home_mount = NFSMount(server=self.nfs, export_path="/home",
                              mountpoint="/home")
        if not self.nfs.exists(user.home):
            self.nfs.mkdir(user.home, parents=True)
            self.nfs.mkdir(f"{user.home}/jobs", parents=True)
        session = UserSession(user=user, home=home_mount,
                              modules=self.modules, slurm=self.slurm_api)
        self.active_sessions[username] = session
        return session

    def logout(self, username: str) -> None:
        """Close a session (idempotent)."""
        self.active_sessions.pop(username, None)
