"""Bridge from benchmark models to schedulable jobs.

The workload models (:mod:`repro.benchmarks`) predict runtime and
throughput; the scheduler needs (name, profile, duration).  These helpers
produce consistent job requests so that examples and tests never hand-pick
durations that contradict the performance models.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.benchmarks.hpl import HPLConfig, HPLModel
from repro.benchmarks.qe_lax import QELaxConfig, QELaxModel
from repro.benchmarks.stream import StreamConfig, StreamModel
from repro.hardware.specs import MONTE_CIMONE_NODE, NodeSpec
from repro.power.model import (
    HPL_PROFILE,
    QE_PROFILE,
    STREAM_DDR_PROFILE,
    STREAM_L2_PROFILE,
    WorkloadProfile,
)

__all__ = ["JobRequest", "hpl_job", "stream_job", "qe_lax_job"]


@dataclass(frozen=True)
class JobRequest:
    """Everything the scheduler needs to run one benchmark as a job."""

    name: str
    n_nodes: int
    duration_s: float
    profile: WorkloadProfile

    def submit_kwargs(self) -> dict:
        """Keyword arguments for :meth:`SlurmController.submit`."""
        return {"name": self.name, "n_nodes": self.n_nodes,
                "duration_s": self.duration_s, "profile": self.profile}


def hpl_job(config: HPLConfig | None = None,
            node: NodeSpec = MONTE_CIMONE_NODE) -> JobRequest:
    """An HPL job whose duration comes from the HPL performance model."""
    config = config if config is not None else HPLConfig()
    result = HPLModel(node=node).run(config)
    return JobRequest(name=f"hpl-n{config.n}", n_nodes=config.n_nodes,
                      duration_s=result.runtime_s.mean, profile=HPL_PROFILE)


def stream_job(config: StreamConfig | None = None, n_iterations: int = 10,
               node: NodeSpec = MONTE_CIMONE_NODE) -> JobRequest:
    """A STREAM job: duration derived from the bandwidth model.

    Each iteration streams all four kernels over the working set; the
    L2-resident variant selects the L2 activity profile.
    """
    config = config if config is not None else StreamConfig()
    result = StreamModel(node=node).run(config)
    seconds_per_iteration = sum(
        config.total_bytes / (stats.mean * 1e6)
        for stats in result.bandwidth_mb_s.values())
    profile = STREAM_L2_PROFILE if result.regime == "l2" else STREAM_DDR_PROFILE
    return JobRequest(name=f"stream-{result.regime}", n_nodes=1,
                      duration_s=seconds_per_iteration * n_iterations,
                      profile=profile)


def qe_lax_job(config: QELaxConfig | None = None,
               node: NodeSpec = MONTE_CIMONE_NODE) -> JobRequest:
    """A QE-LAX job with the model's 37.4 s duration at the paper size."""
    config = config if config is not None else QELaxConfig()
    result = QELaxModel(node=node).run(config)
    return JobRequest(name=f"qe-lax-{config.n}", n_nodes=config.n_nodes,
                      duration_s=result.runtime_s.mean, profile=QE_PROFILE)
