"""Shared availability semantics for the node services.

Both NFS and LDAP are single-instance daemons on the master node (§IV-A);
when one is down, clients see a hard error on every RPC — the model of
``mount.nfs: Connection timed out`` and ``ldap_bind: Can't contact LDAP
server``.  :class:`ServiceAvailability` gives each service the same
stop/start surface the chaos injectors drive, and the same
:class:`ServiceUnavailableError` clients catch to degrade gracefully
(queue the work, don't crash — see :mod:`repro.cluster.login`).
"""

from __future__ import annotations

__all__ = ["ServiceUnavailableError", "ServiceAvailability"]


class ServiceUnavailableError(ConnectionError):
    """An RPC hit a service that is down."""

    def __init__(self, service: str, operation: str = "") -> None:
        detail = f" during {operation}" if operation else ""
        super().__init__(f"service {service!r} is unavailable{detail}")
        self.service = service
        self.operation = operation


class ServiceAvailability:
    """Mixin: an ``service_available`` flag plus the injection surface."""

    #: Service name used in errors and chaos logs; subclasses override.
    SERVICE_NAME = "service"

    def __init__(self) -> None:
        self.service_available = True
        #: RPCs refused while down (visibility counter for campaigns).
        self.requests_refused = 0

    def stop_service(self) -> None:
        """Take the daemon down; every gated RPC raises until restart."""
        self.service_available = False

    def start_service(self) -> None:
        """Bring the daemon back; queued client work can now be flushed."""
        self.service_available = True

    def _require_available(self, operation: str) -> None:
        if not self.service_available:
            self.requests_refused += 1
            raise ServiceUnavailableError(self.SERVICE_NAME, operation)
