"""Network File System model.

All Monte Cimone nodes "mount a remote NFS" (§IV): home directories and
the Spack software tree live on the master node and are visible cluster-
wide.  The model is a path→content store with export/mount semantics and
enough POSIX surface (mkdir/write/read/listdir) for the Spack installer
and the job scheduler's working directories to use it as their backing
store, plus traffic accounting so NFS activity shows up in the network
counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cluster.services.base import ServiceAvailability

__all__ = ["NFSExport", "NFSServer", "NFSMount"]


def _normalise(path: str) -> str:
    if not path.startswith("/"):
        raise ValueError(f"path must be absolute: {path!r}")
    parts = [p for p in path.split("/") if p]
    return "/" + "/".join(parts)


@dataclass
class NFSExport:
    """One exported subtree with its option string."""

    path: str
    options: str = "rw,sync,no_root_squash"


class NFSServer(ServiceAvailability):
    """The master node's NFS daemon: exports + the backing object store.

    Data-path RPCs (read/write/mkdir/listdir) are gated on availability;
    metadata already cached client-side (``exists``, the export table)
    keeps answering during an outage, which is how real NFS clients limp
    along until the server returns.
    """

    SERVICE_NAME = "nfs"

    def __init__(self, hostname: str = "mc-master") -> None:
        super().__init__()
        self.hostname = hostname
        self.exports: Dict[str, NFSExport] = {}
        self._files: Dict[str, bytes] = {}
        self._dirs: set[str] = {"/"}
        self.bytes_served = 0
        self.bytes_written = 0

    # -- exports ---------------------------------------------------------------
    def export(self, path: str, options: str = "rw,sync,no_root_squash") -> None:
        """Add a subtree to the export table and create its root."""
        path = _normalise(path)
        self.exports[path] = NFSExport(path=path, options=options)
        self.mkdir(path, parents=True)

    def is_exported(self, path: str) -> bool:
        """Whether ``path`` lies inside an exported subtree."""
        path = _normalise(path)
        return any(path == e or path.startswith(e + "/") for e in self.exports)

    # -- object store ------------------------------------------------------------
    def mkdir(self, path: str, parents: bool = False) -> None:
        """Create a directory (like ``mkdir -p`` when ``parents``)."""
        self._require_available("mkdir")
        path = _normalise(path)
        parent = path.rsplit("/", 1)[0] or "/"
        if parent not in self._dirs:
            if not parents:
                raise FileNotFoundError(f"parent missing: {parent}")
            self.mkdir(parent, parents=True)
        self._dirs.add(path)

    def write(self, path: str, data: bytes) -> None:
        """Write a file; the parent directory must exist."""
        self._require_available("write")
        path = _normalise(path)
        parent = path.rsplit("/", 1)[0] or "/"
        if parent not in self._dirs:
            raise FileNotFoundError(f"no such directory: {parent}")
        self._files[path] = bytes(data)
        self.bytes_written += len(data)

    def read(self, path: str) -> bytes:
        """Read a file's content."""
        self._require_available("read")
        path = _normalise(path)
        if path not in self._files:
            raise FileNotFoundError(path)
        data = self._files[path]
        self.bytes_served += len(data)
        return data

    def exists(self, path: str) -> bool:
        """Whether a file or directory exists."""
        path = _normalise(path)
        return path in self._files or path in self._dirs

    def listdir(self, path: str) -> List[str]:
        """Immediate children of a directory."""
        self._require_available("listdir")
        path = _normalise(path)
        if path not in self._dirs:
            raise FileNotFoundError(path)
        prefix = path.rstrip("/") + "/"
        children = set()
        for entry in list(self._files) + list(self._dirs):
            if entry.startswith(prefix) and entry != path:
                children.add(entry[len(prefix):].split("/")[0])
        return sorted(children)


@dataclass
class NFSMount:
    """A client-side mount of one export on one node."""

    server: NFSServer
    export_path: str
    mountpoint: str

    def __post_init__(self) -> None:
        if not self.server.is_exported(self.export_path):
            raise PermissionError(
                f"{self.export_path} is not exported by {self.server.hostname}")

    def _translate(self, path: str) -> str:
        path = _normalise(path)
        mp = _normalise(self.mountpoint)
        if not (path == mp or path.startswith(mp + "/")):
            raise ValueError(f"{path} outside mountpoint {mp}")
        suffix = path[len(mp):]
        return _normalise(self.export_path + suffix)

    def read(self, path: str) -> bytes:
        """Read through the mount (server-side path translation)."""
        return self.server.read(self._translate(path))

    def write(self, path: str, data: bytes) -> None:
        """Write through the mount."""
        self.server.write(self._translate(path), data)

    def exists(self, path: str) -> bool:
        """Existence check through the mount."""
        return self.server.exists(self._translate(path))
