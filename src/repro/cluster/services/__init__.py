"""Production services running on the master/login nodes.

§IV-A: "We ported on Monte Cimone all the essential services needed for
running HPC workloads in a production environment, namely NFS, LDAP and
the SLURM job scheduler."  SLURM lives in :mod:`repro.slurm`; this package
models the other two plus the environment-modules user environment.
"""

from repro.cluster.services.base import (ServiceAvailability,
                                         ServiceUnavailableError)
from repro.cluster.services.ldap import LDAPServer, LDAPUser
from repro.cluster.services.modules import EnvironmentModules, Module
from repro.cluster.services.nfs import NFSExport, NFSServer

__all__ = ["EnvironmentModules", "LDAPServer", "LDAPUser", "Module",
           "NFSExport", "NFSServer", "ServiceAvailability",
           "ServiceUnavailableError"]
