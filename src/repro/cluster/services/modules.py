"""Environment-modules model.

§IV: the Spack-deployed stack is "made available to all system users via
environment modules" [Furlani 1991].  The model implements the parts users
touch: a modulefile registry (populated by the Spack installer), ``module
avail``, ``module load``/``unload`` with conflict handling, and the
resulting environment-variable mutations (PATH/LD_LIBRARY_PATH prepends).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["Module", "EnvironmentModules", "ModuleConflictError"]


class ModuleConflictError(RuntimeError):
    """Loading two versions of the same package simultaneously."""


@dataclass(frozen=True)
class Module:
    """One modulefile: name/version plus its environment edits."""

    name: str
    version: str
    prefix: str
    env_prepend: Dict[str, str] = field(default_factory=dict)

    @property
    def full_name(self) -> str:
        """The ``name/version`` form shown by ``module avail``."""
        return f"{self.name}/{self.version}"

    def default_env(self) -> Dict[str, str]:
        """Standard PATH-style edits derived from the install prefix."""
        env = {"PATH": f"{self.prefix}/bin",
               "LD_LIBRARY_PATH": f"{self.prefix}/lib",
               "MANPATH": f"{self.prefix}/share/man"}
        env.update(self.env_prepend)
        return env


class EnvironmentModules:
    """A user session's module system."""

    def __init__(self) -> None:
        self._registry: Dict[str, Module] = {}
        self._loaded: Dict[str, Module] = {}   # name -> module
        self.environment: Dict[str, str] = {"PATH": "/usr/bin:/bin"}

    # -- registry ----------------------------------------------------------
    def register(self, module: Module) -> None:
        """Install a modulefile (the Spack post-install hook calls this)."""
        self._registry[module.full_name] = module

    def avail(self, pattern: str = "") -> List[str]:
        """``module avail [pattern]``: matching full names, sorted."""
        return sorted(name for name in self._registry if pattern in name)

    # -- load/unload --------------------------------------------------------
    def load(self, full_name: str) -> Module:
        """``module load name/version``.

        Raises :class:`ModuleConflictError` if another version of the same
        package is already loaded (the standard modules semantic).
        """
        if full_name not in self._registry:
            raise KeyError(f"no modulefile {full_name!r}")
        module = self._registry[full_name]
        loaded = self._loaded.get(module.name)
        if loaded is not None and loaded.version != module.version:
            raise ModuleConflictError(
                f"{loaded.full_name} is already loaded; unload it first")
        self._loaded[module.name] = module
        for var, value in module.default_env().items():
            current = self.environment.get(var, "")
            if value not in current.split(":"):
                self.environment[var] = f"{value}:{current}" if current else value
        return module

    def unload(self, full_name: str) -> None:
        """``module unload name/version``: drop it and its env edits."""
        if full_name not in self._registry:
            raise KeyError(f"no modulefile {full_name!r}")
        module = self._registry[full_name]
        if self._loaded.get(module.name) is not module:
            return  # not loaded; modules treats this as a no-op
        del self._loaded[module.name]
        for var, value in module.default_env().items():
            parts = [p for p in self.environment.get(var, "").split(":")
                     if p and p != value]
            self.environment[var] = ":".join(parts)

    def list_loaded(self) -> List[str]:
        """``module list``: loaded full names, sorted."""
        return sorted(m.full_name for m in self._loaded.values())
