"""LDAP directory service model.

The cluster's user accounts live in an LDAP server on the master node
(§IV-A).  The model covers what the rest of the stack needs: posixAccount
entries with uid/gid/home/shell, groups, bind-style authentication and the
NSS-style lookups the login node and SLURM use to resolve job owners.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cluster.services.base import ServiceAvailability

__all__ = ["LDAPUser", "LDAPGroup", "LDAPServer", "AuthenticationError"]


class AuthenticationError(RuntimeError):
    """Bad credentials on a bind attempt."""


def _hash_password(password: str, salt: str) -> str:
    return hashlib.sha256((salt + password).encode()).hexdigest()


@dataclass(frozen=True)
class LDAPUser:
    """A posixAccount entry."""

    uid: str
    uid_number: int
    gid_number: int
    home: str
    shell: str = "/bin/bash"
    gecos: str = ""

    def dn(self, base_dn: str) -> str:
        """Distinguished name under the server's base DN."""
        return f"uid={self.uid},ou=People,{base_dn}"


@dataclass
class LDAPGroup:
    """A posixGroup entry."""

    name: str
    gid_number: int
    members: List[str] = field(default_factory=list)


class LDAPServer(ServiceAvailability):
    """The cluster directory.

    Binds and NSS lookups are gated on availability (``ldap_bind: Can't
    contact LDAP server``); provisioning is an offline/admin path and
    stays open — real deployments edit LDIFs while slapd is down.
    """

    SERVICE_NAME = "ldap"

    def __init__(self, base_dn: str = "dc=montecimone,dc=cineca,dc=it") -> None:
        super().__init__()
        self.base_dn = base_dn
        self._users: Dict[str, LDAPUser] = {}
        self._groups: Dict[str, LDAPGroup] = {}
        self._secrets: Dict[str, tuple[str, str]] = {}  # uid -> (salt, hash)
        self._next_uid = 1000
        self._next_gid = 1000

    # -- provisioning -------------------------------------------------------
    def add_group(self, name: str) -> LDAPGroup:
        """Create a posixGroup; gid numbers are allocated sequentially."""
        if name in self._groups:
            raise ValueError(f"group {name!r} already exists")
        group = LDAPGroup(name=name, gid_number=self._next_gid)
        self._next_gid += 1
        self._groups[name] = group
        return group

    def add_user(self, uid: str, password: str, group: str,
                 gecos: str = "") -> LDAPUser:
        """Create a posixAccount in an existing group."""
        if uid in self._users:
            raise ValueError(f"user {uid!r} already exists")
        if group not in self._groups:
            raise KeyError(f"no such group {group!r}")
        user = LDAPUser(uid=uid, uid_number=self._next_uid,
                        gid_number=self._groups[group].gid_number,
                        home=f"/home/{uid}", gecos=gecos)
        self._next_uid += 1
        self._users[uid] = user
        self._groups[group].members.append(uid)
        salt = f"s{user.uid_number}"
        self._secrets[uid] = (salt, _hash_password(password, salt))
        return user

    # -- lookups (NSS) ----------------------------------------------------------
    def get_user(self, uid: str) -> LDAPUser:
        """getpwnam-style lookup."""
        self._require_available("getpwnam")
        if uid not in self._users:
            raise KeyError(f"no such user {uid!r}")
        return self._users[uid]

    def get_user_by_number(self, uid_number: int) -> LDAPUser:
        """getpwuid-style lookup."""
        for user in self._users.values():
            if user.uid_number == uid_number:
                return user
        raise KeyError(f"no user with uidNumber {uid_number}")

    def users_in_group(self, group: str) -> List[str]:
        """Member uids of a group."""
        return list(self._groups[group].members)

    def search(self, uid_prefix: str = "") -> List[LDAPUser]:
        """Prefix search over uids (the ldapsearch everyone actually runs)."""
        self._require_available("search")
        return sorted((u for u in self._users.values()
                       if u.uid.startswith(uid_prefix)),
                      key=lambda u: u.uid)

    # -- bind ----------------------------------------------------------------
    def bind(self, uid: str, password: str) -> LDAPUser:
        """Authenticate; raises :class:`AuthenticationError` on failure
        and :class:`~repro.cluster.services.base.ServiceUnavailableError`
        while the directory is down."""
        self._require_available("bind")
        if uid not in self._users:
            raise AuthenticationError(f"no such user {uid!r}")
        salt, stored = self._secrets[uid]
        if _hash_password(password, salt) != stored:
            raise AuthenticationError(f"invalid credentials for {uid!r}")
        return self._users[uid]
