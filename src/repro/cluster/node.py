"""A Monte Cimone compute node: board + OS lifecycle + measurement views.

The node ties every substrate together:

* the :class:`~repro.hardware.board.HiFiveUnmatched` board;
* an OS state machine following the boot regions of Fig. 4
  (OFF → R1 power-on → R2 bootloader → R3 OS-running);
* a workload execution path that drives core counters, procfs statistics,
  DDR activity and the power rails coherently;
* a thermal attachment point (slot in an enclosure) with the
  over-temperature shutdown that node 7 suffered in Fig. 6;
* the procfs/sysfs views ExaMon's plugins sample.

The node is engine-agnostic for unit testing (every transition is a plain
method); :meth:`ComputeNode.boot_process` wraps the transitions into a
simulation process with the Fig. 4 timings.
"""

from __future__ import annotations

from enum import Enum
from typing import Generator, Optional

from repro.events.engine import Engine, Event
from repro.hardware.board import HiFiveUnmatched
from repro.hardware.cores import CoreActivity
from repro.power.boot import BOOT_PHASES
from repro.power.model import (
    IDLE_PROFILE,
    NodePhase,
    RailPowerModel,
    WorkloadProfile,
)
from repro.obs.trace import span_of
from repro.cluster.procfs import ProcFS
from repro.thermal.enclosure import Enclosure
from repro.thermal.model import NodeThermalModel

__all__ = ["ComputeNode", "NodeState"]


class NodeState(Enum):
    """Administrative node state, SLURM-style."""

    OFF = "off"
    BOOTING = "booting"
    IDLE = "idle"
    RUNNING = "running"
    TRIPPED = "tripped"   # emergency thermal shutdown


class ComputeNode:
    """One of the eight Monte Cimone compute nodes."""

    #: Boot regions (and their durations) from the Fig. 4 timeline.
    R1_PHASE = next(p for p in BOOT_PHASES if p.name == "R1")
    R2_PHASE = next(p for p in BOOT_PHASES if p.name == "R2")
    R1_DURATION_S = R1_PHASE.duration_s
    R2_DURATION_S = R2_PHASE.duration_s

    def __init__(self, hostname: str, with_infiniband: bool = False,
                 patched_uboot: bool = True,
                 power_model: RailPowerModel | None = None) -> None:
        self.hostname = hostname
        self.board = HiFiveUnmatched(with_infiniband=with_infiniband)
        self.patched_uboot = patched_uboot
        self.power_model = power_model if power_model is not None else RailPowerModel()
        self.procfs = ProcFS(n_cores=self.board.n_cores,
                             dram_bytes=self.board.memory.capacity_bytes)
        self.state = NodeState.OFF
        self.phase = NodePhase.OFF
        self.active_profile: WorkloadProfile = IDLE_PROFILE
        self.thermal: Optional[NodeThermalModel] = None
        #: Clock-throttle factor set by dynamic thermal management
        #: (1.0 = full 1.2 GHz; §VI future-work feature).
        self.frequency_scale = 1.0
        self._now_s = 0.0

    # -- thermal attachment ---------------------------------------------------
    def attach_thermal(self, enclosure: Enclosure, slot: int) -> None:
        """Place the node in an enclosure slot; hwmon starts tracking."""
        self.thermal = NodeThermalModel(enclosure, slot, hwmon=self.board.hwmon)

    # -- state transitions (plain methods, unit-testable) ----------------------
    def power_on(self, now_s: float = 0.0) -> None:
        """Apply power: enter boot region R1 (clock gated, leakage only)."""
        if self.state not in (NodeState.OFF, NodeState.TRIPPED):
            raise RuntimeError(f"{self.hostname}: power_on from {self.state}")
        self.state = NodeState.BOOTING
        self.phase = NodePhase.R1_POWER_ON
        self._now_s = now_s
        for core in self.board.cores:
            core.power_on()
        self._apply_power(now_s)

    def start_bootloader(self, now_s: float) -> None:
        """PLL lock: enter R2; U-Boot runs, DDR trains, PCIe links train."""
        if self.phase is not NodePhase.R1_POWER_ON:
            raise RuntimeError(f"{self.hostname}: bootloader from {self.phase}")
        self.phase = NodePhase.R2_BOOTLOADER
        self._now_s = now_s
        self.board.cores.start_clocks()
        self.board.memory.initialise()
        if self.patched_uboot:
            self.board.enable_hpm_counters()
        self._apply_power(now_s)

    def finish_boot(self, now_s: float) -> None:
        """OS handoff: enter R3; services and network come up."""
        if self.phase is not NodePhase.R2_BOOTLOADER:
            raise RuntimeError(f"{self.hostname}: OS boot from {self.phase}")
        self.phase = NodePhase.R3_OS
        self.state = NodeState.IDLE
        self._now_s = now_s
        self.board.ethernet.bring_up()
        if self.board.infiniband is not None:
            self.board.infiniband.load_driver()
            self.board.infiniband.activate_link()
        self.procfs.procs_new_total += 80  # init + daemons
        self._apply_power(now_s)

    def emergency_shutdown(self, now_s: float) -> None:
        """Over-temperature trip: the node stops executing (Fig. 6)."""
        self.state = NodeState.TRIPPED
        self.phase = NodePhase.OFF
        self.active_profile = IDLE_PROFILE
        self._now_s = max(self._now_s, now_s)
        # Power loss: DRAM contents and activity are gone.
        self.board.memory.release("workload")
        self.board.memory.set_activity(0.0)
        self._apply_power(self._now_s)

    # -- workload execution -----------------------------------------------------
    def begin_workload(self, profile: WorkloadProfile, now_s: float) -> None:
        """Start executing a workload with the given activity profile."""
        if self.state is not NodeState.IDLE:
            raise RuntimeError(
                f"{self.hostname}: cannot start workload while {self.state}")
        self.state = NodeState.RUNNING
        self.active_profile = profile
        self._now_s = max(self._now_s, now_s)
        self.procfs.procs_new_total += 1
        self.procfs.procs_running = 1 + self.board.n_cores
        self.board.memory.set_activity(profile.ddr_data_activity)
        if profile.mem_fraction > 0:
            self.board.memory.allocate(
                "workload",
                int(profile.mem_fraction * self.board.memory.capacity_bytes))
        self._apply_power(self._now_s)

    def end_workload(self, now_s: float) -> None:
        """Workload finished: back to idle."""
        if self.state is NodeState.TRIPPED:
            return
        self.state = NodeState.IDLE
        self.active_profile = IDLE_PROFILE
        self._now_s = max(self._now_s, now_s)
        self.procfs.procs_running = 1
        self.board.memory.set_activity(0.0)
        self.board.memory.release("workload")
        self.procfs.update_memory(self.board.memory.usage())
        self._apply_power(self._now_s)

    def sync_to(self, now_s: float) -> None:
        """Advance the node's accounting up to absolute time ``now_s``.

        A no-op when the node is already at (or past) ``now_s`` — this is
        what makes concurrent drivers (scheduler slices, the cluster
        watchdog) compose without double-counting time.
        """
        dt = now_s - self._now_s
        if dt > 0:
            self.advance(dt)

    def advance(self, dt_s: float) -> None:
        """Advance the node's accounting by ``dt_s`` of simulated time.

        Drives core counters, procfs statistics, thermal state and the
        power-rail energy integrals coherently with the active profile.
        """
        if dt_s < 0:
            raise ValueError("negative time step")
        self._now_s += dt_s
        profile = self.active_profile
        if self.phase is NodePhase.R3_OS:
            if profile.utilisation > 0:
                from repro.power.traces import activity_modulation

                modulation = activity_modulation(profile.name, self._now_s)
                # Clock throttling slows instruction throughput linearly;
                # cycle counts also advance at the reduced clock, so ipc is
                # unchanged but effective throughput drops.
                activity = CoreActivity(
                    duration_s=dt_s * self.frequency_scale,
                    ipc=max(0.0, min(profile.ipc * modulation, 2.0)),
                    flop_fraction=profile.flop_fraction,
                    l2_miss_rate=0.002 + 0.02 * profile.ddr_data_activity,
                    utilisation=profile.utilisation)
                for core in self.board.cores:
                    core.advance(activity)
            else:
                self.board.cores.idle(dt_s)
            self.procfs.account_cpu(dt_s, profile.utilisation)
            self.procfs.update_memory(self.board.memory.usage())
        if self.thermal is not None:
            # Powered-off boards cool toward ambient (rails read zero).
            self.thermal.step(dt_s, self.total_power_w())
            self.board.sync_nvme_temperature()
        self._apply_power(self._now_s)

    # -- measurements -------------------------------------------------------------
    def total_power_w(self) -> float:
        """Instantaneous board power from the rail harness."""
        return self.board.rails.total_w()

    def cpu_temperature_c(self) -> float:
        """The SoC hwmon reading."""
        return self.board.hwmon.read_celsius("cpu_temp")

    def set_frequency_scale(self, scale: float, now_s: float) -> None:
        """Apply a clock-throttle factor (dynamic thermal management)."""
        if not 0.1 <= scale <= 1.0:
            raise ValueError(f"frequency scale {scale} outside [0.1, 1.0]")
        self.frequency_scale = scale
        self._now_s = max(self._now_s, now_s)
        self._apply_power(self._now_s)

    def _apply_power(self, now_s: float) -> None:
        powers = self.power_model.rail_powers_w(
            self.phase, self.active_profile,
            frequency_scale=self.frequency_scale)
        self.board.rails.set_powers(powers, now_s)

    # -- simulation processes -------------------------------------------------------
    def boot_process(self, engine: Engine) -> Generator[Event, None, None]:
        """Boot the node on the simulation engine (Fig. 4 timings).

        A fault injected mid-boot (emergency shutdown during R1/R2) aborts
        the sequence cleanly: the process returns with the node TRIPPED
        instead of raising out of a phase transition — the same "stopped
        executing" outcome a real board shows when it browns out while
        booting.
        """
        self.power_on(engine.now)
        with span_of(engine, self.R1_PHASE.span_name, "boot",
                     node=self.hostname, **self.R1_PHASE.span_attributes()):
            yield engine.timeout(self.R1_DURATION_S)
        if self.state is NodeState.TRIPPED:
            return
        self.start_bootloader(engine.now)
        with span_of(engine, self.R2_PHASE.span_name, "boot",
                     node=self.hostname, **self.R2_PHASE.span_attributes()):
            yield engine.timeout(self.R2_DURATION_S)
        if self.state is NodeState.TRIPPED:
            return
        self.finish_boot(engine.now)

    def workload_process(self, engine: Engine, profile: WorkloadProfile,
                         duration_s: float,
                         step_s: float = 1.0) -> Generator[Event, None, None]:
        """Run a workload for ``duration_s``, advancing in ``step_s`` slices.

        Stops early (without raising) if the node trips mid-run — the
        behaviour of node 7's HPL process in Fig. 6.
        """
        self.begin_workload(profile, engine.now)
        remaining = duration_s
        while remaining > 0:
            slice_s = min(step_s, remaining)
            yield engine.timeout(slice_s)
            if self.state is NodeState.TRIPPED:
                return
            self.advance(slice_s)
            remaining -= slice_s
        self.end_workload(engine.now)
