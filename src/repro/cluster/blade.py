"""The E4 RV007 blade: a 1U dual-node building block.

§III: the RV007 prototype is a dual-board platform server (1 RU high,
42.5 cm wide, 40 cm deep) with **two 250 W power supplies, one per
board**, so every compute node can be powered individually — and with
abundant headroom for future PCIe accelerators.  The PSUs' waste heat is
what starves the centre blades of cool air in the original enclosure
configuration (§V-C).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.cluster.node import ComputeNode

__all__ = ["PSU", "RV007Blade"]


@dataclass
class PSU:
    """One 250 W supply feeding one board."""

    rated_watts: float = 250.0
    efficiency: float = 0.88
    on: bool = False

    def switch_on(self) -> None:
        """Energise the output."""
        self.on = True

    def switch_off(self) -> None:
        """De-energise the output."""
        self.on = False

    def input_power_w(self, load_w: float) -> float:
        """Wall power drawn for a given DC load (conversion losses)."""
        if load_w < 0:
            raise ValueError("negative load")
        if load_w > self.rated_watts:
            raise ValueError(f"load {load_w} W exceeds rating {self.rated_watts} W")
        if not self.on:
            return 0.0
        return load_w / self.efficiency

    def waste_heat_w(self, load_w: float) -> float:
        """Heat dissipated inside the case by the conversion."""
        return self.input_power_w(load_w) - (load_w if self.on else 0.0)


class RV007Blade:
    """One blade: two compute nodes, two PSUs, a shared 1U case."""

    FORM_FACTOR_CM = (4.44, 42.5, 40.0)  # H × W × D

    def __init__(self, blade_id: int, nodes: Tuple[ComputeNode, ComputeNode]) -> None:
        if len(nodes) != 2:
            raise ValueError("an RV007 blade carries exactly two boards")
        self.blade_id = blade_id
        self.nodes: List[ComputeNode] = list(nodes)
        self.psus = [PSU(), PSU()]

    def power_on_node(self, index: int, now_s: float = 0.0) -> None:
        """Energise one board independently (the RV007's key feature)."""
        self.psus[index].switch_on()
        self.nodes[index].power_on(now_s)

    def total_dc_power_w(self) -> float:
        """DC power drawn by both boards."""
        return sum(node.total_power_w() for node in self.nodes)

    def total_wall_power_w(self) -> float:
        """AC power including PSU conversion losses."""
        return sum(psu.input_power_w(node.total_power_w())
                   for psu, node in zip(self.psus, self.nodes))

    def waste_heat_w(self) -> float:
        """PSU heat dumped into the case (the §V-C airflow problem)."""
        return sum(psu.waste_heat_w(node.total_power_w())
                   for psu, node in zip(self.psus, self.nodes))
