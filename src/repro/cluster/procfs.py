"""Simulated /proc for one node.

stats_pub (Table III) collects load averages, CPU usage breakdown, memory
usage, paging, disk and network totals, interrupt/context-switch rates and
process counts.  On the real node those come from /proc; here the node
lifecycle feeds a :class:`ProcFS` whose accessors return both structured
values (what the plugin publishes) and kernel-formatted text (what the
tests assert against, keeping the substitution honest).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

__all__ = ["ProcFS", "CpuTimes"]


@dataclass
class CpuTimes:
    """Cumulative CPU time split, in USER_HZ ticks, /proc/stat style."""

    usr: float = 0.0
    sys: float = 0.0
    idl: float = 0.0
    wai: float = 0.0
    stl: float = 0.0

    def total(self) -> float:
        """All accounted ticks."""
        return self.usr + self.sys + self.idl + self.wai + self.stl

    def percentages(self) -> Dict[str, float]:
        """The total_cpu_usage.* split stats_pub publishes, in percent."""
        total = self.total()
        if total <= 0:
            return {"usr": 0.0, "sys": 0.0, "idl": 100.0, "wai": 0.0, "stl": 0.0}
        return {name: 100.0 * getattr(self, name) / total
                for name in ("usr", "sys", "idl", "wai", "stl")}


class ProcFS:
    """The /proc view of one simulated node."""

    USER_HZ = 100

    def __init__(self, n_cores: int, dram_bytes: int) -> None:
        if n_cores < 1:
            raise ValueError("need at least one core")
        self.n_cores = n_cores
        self.dram_bytes = dram_bytes
        self.cpu = CpuTimes()
        self.load_1m = 0.0
        self.load_5m = 0.0
        self.load_15m = 0.0
        self.procs_running = 1
        self.procs_blocked = 0
        self.procs_new_total = 0
        self.interrupts_total = 0
        self.context_switches_total = 0
        self.paging_in_total = 0
        self.paging_out_total = 0
        self.io_read_total = 0
        self.io_write_total = 0
        self.mem_used = 0
        self.mem_free = dram_bytes
        self.mem_buff = 0
        self.mem_cach = 0

    # -- lifecycle hooks -----------------------------------------------------
    def account_cpu(self, dt_s: float, utilisation: float,
                    sys_fraction: float = 0.08, wait_fraction: float = 0.0) -> None:
        """Advance the CPU time counters for ``dt_s`` of wall time.

        ``utilisation`` is the busy fraction across cores; of the busy
        share, ``sys_fraction`` is kernel time.  Interrupt and context-
        switch counters advance at activity-scaled rates.
        """
        if dt_s < 0:
            raise ValueError("negative interval")
        ticks = dt_s * self.USER_HZ * self.n_cores
        busy = ticks * utilisation
        wait = ticks * wait_fraction
        self.cpu.usr += busy * (1.0 - sys_fraction)
        self.cpu.sys += busy * sys_fraction
        self.cpu.wai += wait
        self.cpu.idl += max(ticks - busy - wait, 0.0)
        self.interrupts_total += int(dt_s * (250 + 4000 * utilisation))
        self.context_switches_total += int(dt_s * (500 + 9000 * utilisation))
        # Exponentially-smoothed load averages driven by the run queue.
        runnable = utilisation * self.n_cores
        for attr, tau in (("load_1m", 60.0), ("load_5m", 300.0), ("load_15m", 900.0)):
            current = getattr(self, attr)
            alpha = min(dt_s / tau, 1.0)
            setattr(self, attr, current + alpha * (runnable - current))

    def update_memory(self, usage: Dict[str, int]) -> None:
        """Mirror the DDR subsystem's usage split (used/free/buff/cach)."""
        self.mem_used = usage["used"]
        self.mem_free = usage["free"]
        self.mem_buff = usage["buff"]
        self.mem_cach = usage["cach"]

    # -- structured reads (what stats_pub publishes) -------------------------
    def loadavg(self) -> Dict[str, float]:
        """The load_avg.* metrics of Table III."""
        return {"1m": self.load_1m, "5m": self.load_5m, "15m": self.load_15m}

    def memory(self) -> Dict[str, int]:
        """The memory_usage.* metrics of Table III."""
        return {"used": self.mem_used, "free": self.mem_free,
                "buff": self.mem_buff, "cach": self.mem_cach}

    def processes(self) -> Dict[str, int]:
        """The procs.* metrics of Table III."""
        return {"run": self.procs_running, "blk": self.procs_blocked,
                "new": self.procs_new_total}

    def system(self) -> Dict[str, int]:
        """The system.* metrics (interrupts, context switches)."""
        return {"int": self.interrupts_total, "csw": self.context_switches_total}

    def paging(self) -> Dict[str, int]:
        """The paging.* metrics."""
        return {"in": self.paging_in_total, "out": self.paging_out_total}

    # -- kernel-formatted text renders ---------------------------------------
    def render_loadavg(self) -> str:
        """/proc/loadavg in kernel format."""
        return (f"{self.load_1m:.2f} {self.load_5m:.2f} {self.load_15m:.2f} "
                f"{self.procs_running}/{self.procs_new_total + 50} 1234\n")

    def render_stat(self) -> str:
        """/proc/stat's aggregate cpu line (ticks are integers)."""
        c = self.cpu
        return (f"cpu  {int(c.usr)} 0 {int(c.sys)} {int(c.idl)} {int(c.wai)} "
                f"0 0 {int(c.stl)} 0 0\n")

    def render_meminfo(self) -> str:
        """MemTotal/MemFree/Buffers/Cached lines of /proc/meminfo (kB)."""
        kb = 1024
        return (f"MemTotal:       {self.dram_bytes // kb} kB\n"
                f"MemFree:        {self.mem_free // kb} kB\n"
                f"Buffers:        {self.mem_buff // kb} kB\n"
                f"Cached:         {self.mem_cach // kb} kB\n")
