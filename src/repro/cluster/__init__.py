"""Cluster assembly: nodes, blades, services, the full Monte Cimone machine.

* :mod:`repro.cluster.node` — a compute node: one HiFive Unmatched board
  plus its OS lifecycle (boot phases R1/R2/R3, workload execution, thermal
  trip shutdown) and the procfs/sysfs views monitoring reads.
* :mod:`repro.cluster.procfs` — simulated /proc (loadavg, stat, meminfo,
  diskstats, net/dev) rendering the Table III metric sources.
* :mod:`repro.cluster.blade` — the E4 RV007 1U dual-node blade with its
  two 250 W PSUs.
* :mod:`repro.cluster.cluster` — the eight-node machine with login and
  master nodes, GbE network, NFS/LDAP services and ExaMon hooks.
* :mod:`repro.cluster.services` — NFS, LDAP and environment-modules
  service models.
"""

from repro.cluster.blade import RV007Blade
from repro.cluster.cluster import MonteCimoneCluster
from repro.cluster.node import ComputeNode, NodeState
from repro.cluster.procfs import ProcFS

__all__ = ["ComputeNode", "MonteCimoneCluster", "NodeState", "ProcFS", "RV007Blade"]
