"""Analytic MPI collective cost model over the cluster topology.

The HPL scaling model (Fig. 2) needs the cost of the communication inside
a distributed LU factorisation: panel broadcasts along process rows, row
swaps (pdlaswp) along columns, and the solve's pipelined exchanges.  This
module provides the standard LogP-flavoured collective costs over the
star-topology GbE network:

* point-to-point:     ``L + m/B``
* broadcast (binomial tree): ``ceil(log2 P) * (L + m/B)``
* allreduce (recursive doubling): ``2*ceil(log2 P) * (L + m/B)``
* ring exchange: ``(P-1) * (L + m/(P*B))``

where ``L`` is end-to-end latency, ``B`` payload bandwidth and ``m`` the
message size.  The model deliberately ignores overlap — upstream HPL on an
unoptimised stack gets essentially no compute/communication overlap, which
is the regime the paper measured.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, Optional

from repro.chaos.backoff import ExponentialBackoff
from repro.network.link import LinkDownError
from repro.network.topology import ClusterTopology

__all__ = ["MPICostModel", "MPIRetryPolicy", "MPIRetryError",
           "run_collective_with_retry"]

#: Observer signature: ``(kind, n_bytes, n_ranks, cost_s)`` per collective.
CollectiveObserver = Callable[[str, int, int, float], None]


class MPIRetryError(RuntimeError):
    """A collective exhausted its retry budget over a down link."""


@dataclass
class MPICostModel:
    """Collective costs over a given topology.

    Parameters
    ----------
    topology:
        The cluster network; per-message latency and payload bandwidth are
        derived from its worst link and switch latency.
    software_overhead_s:
        Per-message MPI software cost on the host CPU; dominated by the
        in-order U74 running the TCP stack (calibrated: 120 µs/message —
        these cores run the whole GbE protocol path in software).
    observer:
        Optional hook called once per modelled collective with
        ``(kind, n_bytes, n_ranks, cost_s)``; the observability layer
        (:func:`repro.obs.instrument.register_mpi_metrics`) uses it to
        count collectives and put them on the trace timeline.  The hook
        never changes a returned cost.
    """

    topology: ClusterTopology
    software_overhead_s: float = 120e-6
    observer: Optional[CollectiveObserver] = field(default=None, repr=False,
                                                   compare=False)

    def _observed(self, kind: str, n_bytes: int, n_ranks: int,
                  cost_s: float) -> float:
        """Report a collective to the observer, returning its cost."""
        if self.observer is not None:
            self.observer(kind, n_bytes, n_ranks, cost_s)
        return cost_s

    def _link_params(self) -> tuple[float, float]:
        links = self.topology.links.values()
        for link in links:
            if not link.up:
                raise LinkDownError(link.name)
        # Degraded links stay usable but slow the whole collective down —
        # the star topology routes every message over the worst pipe.
        bandwidth = min(l.effective_bandwidth_bytes_per_s for l in links)
        latency = (2 * max(l.latency_s for l in links)
                   + self.topology.switch.port_to_port_latency_s
                   + self.software_overhead_s)
        return latency, bandwidth

    def point_to_point(self, n_bytes: int) -> float:
        """One message between two ranks on different nodes."""
        latency, bandwidth = self._link_params()
        return latency + n_bytes / bandwidth

    def broadcast(self, n_bytes: int, n_ranks: int) -> float:
        """Binomial-tree broadcast to ``n_ranks`` participants."""
        if n_ranks < 1:
            raise ValueError("need at least one rank")
        if n_ranks == 1:
            return 0.0
        rounds = math.ceil(math.log2(n_ranks))
        return self._observed("broadcast", n_bytes, n_ranks,
                              rounds * self.point_to_point(n_bytes))

    def allreduce(self, n_bytes: int, n_ranks: int) -> float:
        """Recursive-doubling allreduce."""
        if n_ranks <= 1:
            return 0.0
        rounds = math.ceil(math.log2(n_ranks))
        return self._observed("allreduce", n_bytes, n_ranks,
                              2 * rounds * self.point_to_point(n_bytes))

    def ring_exchange(self, n_bytes_total: int, n_ranks: int) -> float:
        """Ring-based all-to-all of ``n_bytes_total`` spread over ranks."""
        if n_ranks <= 1:
            return 0.0
        latency, bandwidth = self._link_params()
        chunk = n_bytes_total / n_ranks
        return self._observed(
            "ring_exchange", n_bytes_total, n_ranks,
            (n_ranks - 1) * (latency + chunk / bandwidth))

    def scatter(self, n_bytes_total: int, n_ranks: int) -> float:
        """Linear scatter from one root (the scheme LAM-era stacks use)."""
        if n_ranks <= 1:
            return 0.0
        latency, bandwidth = self._link_params()
        per_rank = n_bytes_total / n_ranks
        return self._observed(
            "scatter", n_bytes_total, n_ranks,
            (n_ranks - 1) * (latency + per_rank / bandwidth))


@dataclass
class MPIRetryPolicy:
    """Retry-with-timeout semantics for collectives over a flaky network.

    Each failed attempt costs the MPI-level ``timeout_s`` (the send had to
    time out before the stack noticed) plus a backoff delay before the
    next try — the behaviour of TCP-transport MPI when a GbE port flaps.
    """

    timeout_s: float = 1.0
    max_retries: int = 8
    backoff: ExponentialBackoff = field(
        default_factory=lambda: ExponentialBackoff(base_s=0.5, factor=2.0,
                                                   max_s=16.0))

    def __post_init__(self) -> None:
        if self.timeout_s < 0:
            raise ValueError("retry timeout cannot be negative")
        if self.max_retries < 0:
            raise ValueError("retry budget cannot be negative")


def run_collective_with_retry(engine: Any, model: MPICostModel, kind: str,
                              n_bytes: int, n_ranks: int,
                              policy: Optional[MPIRetryPolicy] = None
                              ) -> Generator[Any, Any, Dict[str, float]]:
    """A collective as a simulation process, retrying over flapping links.

    Attempts ``model.<kind>(n_bytes, n_ranks)``; when the topology has a
    down link the attempt costs ``policy.timeout_s`` plus a backoff delay
    (both in simulated time), then retries, up to ``policy.max_retries``
    times.  On success the modelled cost is waited out and, if the run is
    traced and at least one retry happened, a completed
    ``chaos.recovery`` span covering the retry window is recorded —
    fault-injection campaigns assert on it.

    Returns ``{"cost_s", "retries", "waited_s"}``; raises
    :class:`MPIRetryError` when the budget is exhausted.
    """
    if policy is None:
        policy = MPIRetryPolicy()
    collective = getattr(model, kind)
    retries = 0
    waited_s = 0.0
    first_failure_s: Optional[float] = None
    failed_link = ""
    while True:
        try:
            cost_s = collective(n_bytes, n_ranks)
        except LinkDownError as exc:
            if retries >= policy.max_retries:
                raise MPIRetryError(
                    f"{kind} gave up after {retries} retries: {exc}") from exc
            if first_failure_s is None:
                first_failure_s = engine.now
            failed_link = exc.link_name
            delay_s = policy.timeout_s + policy.backoff.delay(retries)
            retries += 1
            waited_s += delay_s
            yield engine.timeout(delay_s)
            continue
        yield engine.timeout(cost_s)
        if first_failure_s is not None and engine.tracer is not None:
            engine.tracer.record(
                f"recovery:link-down:{failed_link}", first_failure_s,
                engine.now, category="chaos.recovery", kind="link-down",
                target=failed_link, component=f"mpi.{kind}",
                retries=retries, waited_s=waited_s)
        return {"cost_s": cost_s, "retries": float(retries),
                "waited_s": waited_s}
