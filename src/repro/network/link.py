"""Point-to-point link model with serialisation, contention and faults.

A :class:`Link` is the basic pipe of the interconnect model: messages take
``latency + size/bandwidth`` and the link tracks cumulative traffic for the
monitoring plugins (stats_pub's ``net_total.recv``/``net_total.send``).
Contention is modelled by an efficiency factor under concurrent flows
rather than per-packet queueing — adequate because the experiments the
model supports (HPL collectives) synchronise at phase boundaries.

Fault injection (the chaos harness): a link can be taken *down* — any
transfer raises :class:`LinkDownError`, the model of a TCP connect/send
timing out on a flapped port — or *degraded*, dividing its payload
bandwidth by a factor (duplex renegotiated to 100 Mb/s, a half-broken
cable) while staying up.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Link", "LinkDownError"]


class LinkDownError(ConnectionError):
    """A transfer was attempted over a link that is administratively down."""

    def __init__(self, link_name: str) -> None:
        super().__init__(f"link {link_name!r} is down")
        self.link_name = link_name


@dataclass
class Link:
    """A duplex link between two endpoints.

    Attributes
    ----------
    name:
        Identifier, e.g. ``"mc-node-1<->switch"``.
    bandwidth_bytes_per_s:
        Payload bandwidth after protocol overhead (GbE with TCP/MPI
        overhead delivers ~117 MB/s of the 125 MB/s raw).
    latency_s:
        One-way small-message latency, including the software stack
        (~50 µs for MPI-over-TCP-over-GbE on these cores).
    up:
        Availability; a down link refuses transfers (:class:`LinkDownError`).
    degraded_factor:
        Bandwidth divisor while degraded (``1.0`` = healthy); must be
        ``>= 1`` — degradation never *adds* bandwidth.
    """

    name: str
    bandwidth_bytes_per_s: float = 117e6
    latency_s: float = 50e-6
    bytes_carried: int = 0
    up: bool = True
    degraded_factor: float = 1.0
    #: Transfers refused while down (flap-visibility counter).
    transfers_refused: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        if self.bandwidth_bytes_per_s <= 0:
            raise ValueError("bandwidth must be positive")
        if self.latency_s < 0:
            raise ValueError("latency cannot be negative")
        if self.degraded_factor < 1.0:
            raise ValueError("degradation factor must be >= 1")

    @property
    def effective_bandwidth_bytes_per_s(self) -> float:
        """Payload bandwidth after any injected degradation."""
        return self.bandwidth_bytes_per_s / self.degraded_factor

    def transfer_time(self, n_bytes: int, concurrent_flows: int = 1) -> float:
        """Time to move ``n_bytes`` with ``concurrent_flows`` sharing the pipe.

        Raises a clear :class:`ValueError` on a non-positive flow count or
        a negative size (a zero flow count would otherwise divide by zero)
        and :class:`LinkDownError` while the link is down.
        """
        if n_bytes < 0:
            raise ValueError("negative message size")
        if concurrent_flows < 1:
            raise ValueError("need at least one flow")
        if not self.up:
            self.transfers_refused += 1
            raise LinkDownError(self.name)
        effective_bw = self.effective_bandwidth_bytes_per_s / concurrent_flows
        return self.latency_s + n_bytes / effective_bw

    def account(self, n_bytes: int) -> None:
        """Record carried traffic for the monitoring counters."""
        if n_bytes < 0:
            raise ValueError("negative byte count")
        self.bytes_carried += n_bytes

    # -- fault injection -----------------------------------------------------
    def set_down(self) -> None:
        """Flap the link down: transfers raise until :meth:`set_up`."""
        self.up = False

    def set_up(self) -> None:
        """Bring the link back up (degradation, if any, persists)."""
        self.up = True

    def set_degraded(self, factor: float) -> None:
        """Degrade the link's bandwidth by ``factor`` (``>= 1``)."""
        if factor < 1.0:
            raise ValueError("degradation factor must be >= 1")
        self.degraded_factor = float(factor)

    def clear_degraded(self) -> None:
        """Restore full bandwidth."""
        self.degraded_factor = 1.0
