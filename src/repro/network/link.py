"""Point-to-point link model with serialisation and contention.

A :class:`Link` is the basic pipe of the interconnect model: messages take
``latency + size/bandwidth`` and the link tracks cumulative traffic for the
monitoring plugins (stats_pub's ``net_total.recv``/``net_total.send``).
Contention is modelled by an efficiency factor under concurrent flows
rather than per-packet queueing — adequate because the experiments the
model supports (HPL collectives) synchronise at phase boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Link"]


@dataclass
class Link:
    """A duplex link between two endpoints.

    Attributes
    ----------
    name:
        Identifier, e.g. ``"mc-node-1<->switch"``.
    bandwidth_bytes_per_s:
        Payload bandwidth after protocol overhead (GbE with TCP/MPI
        overhead delivers ~117 MB/s of the 125 MB/s raw).
    latency_s:
        One-way small-message latency, including the software stack
        (~50 µs for MPI-over-TCP-over-GbE on these cores).
    """

    name: str
    bandwidth_bytes_per_s: float = 117e6
    latency_s: float = 50e-6
    bytes_carried: int = 0

    def __post_init__(self) -> None:
        if self.bandwidth_bytes_per_s <= 0:
            raise ValueError("bandwidth must be positive")
        if self.latency_s < 0:
            raise ValueError("latency cannot be negative")

    def transfer_time(self, n_bytes: int, concurrent_flows: int = 1) -> float:
        """Time to move ``n_bytes`` with ``concurrent_flows`` sharing the pipe."""
        if n_bytes < 0:
            raise ValueError("negative message size")
        if concurrent_flows < 1:
            raise ValueError("need at least one flow")
        effective_bw = self.bandwidth_bytes_per_s / concurrent_flows
        return self.latency_s + n_bytes / effective_bw

    def account(self, n_bytes: int) -> None:
        """Record carried traffic for the monitoring counters."""
        if n_bytes < 0:
            raise ValueError("negative byte count")
        self.bytes_carried += n_bytes
