"""Cluster network topology: GbE star plus the two-node IB island.

All eight compute nodes, the login node and the master node hang off one
gigabit switch (the paper's "1 Gb/s network currently available").  Two
compute nodes additionally form an Infiniband island used only for the
bring-up experiments of §III.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

from repro.network.link import Link

__all__ = ["Switch", "ClusterTopology"]


@dataclass
class Switch:
    """A non-blocking store-and-forward switch.

    ``port_to_port_latency_s`` adds to the two link latencies on any
    node→node path.  The backplane is non-blocking: concurrent flows only
    contend on the endpoint links, which matches a commodity GbE switch at
    this scale.
    """

    name: str = "tor-switch"
    n_ports: int = 16
    port_to_port_latency_s: float = 5e-6


class ClusterTopology:
    """The star topology of Monte Cimone.

    Parameters
    ----------
    node_names:
        Compute/login/master host names to attach.
    link_bandwidth_bytes_per_s, link_latency_s:
        Per-port link characteristics (defaults: GbE with MPI/TCP overhead).
    """

    def __init__(self, node_names: Iterable[str],
                 link_bandwidth_bytes_per_s: float = 117e6,
                 link_latency_s: float = 50e-6,
                 switch: Switch | None = None) -> None:
        self.switch = switch if switch is not None else Switch()
        self.links: Dict[str, Link] = {}
        for name in node_names:
            self.links[name] = Link(
                name=f"{name}<->{self.switch.name}",
                bandwidth_bytes_per_s=link_bandwidth_bytes_per_s,
                latency_s=link_latency_s)
        if len(self.links) > self.switch.n_ports:
            raise ValueError(
                f"{len(self.links)} nodes exceed switch ports {self.switch.n_ports}")

    @property
    def node_names(self) -> List[str]:
        """Attached host names, in attachment order."""
        return list(self.links)

    def path(self, src: str, dst: str) -> Tuple[Link, Link]:
        """The (uplink, downlink) pair between two hosts."""
        if src == dst:
            raise ValueError(f"src and dst are both {src!r}")
        return self.links[src], self.links[dst]

    def point_to_point_time(self, src: str, dst: str, n_bytes: int,
                            concurrent_flows: int = 1) -> float:
        """End-to-end transfer time src→dst through the switch."""
        uplink, downlink = self.path(src, dst)
        # Store-and-forward: serialisation paid once on the slower link,
        # latency paid on both plus the switch.
        slower = min(uplink.bandwidth_bytes_per_s, downlink.bandwidth_bytes_per_s)
        effective_bw = slower / concurrent_flows
        total_latency = (uplink.latency_s + downlink.latency_s
                         + self.switch.port_to_port_latency_s)
        uplink.account(n_bytes)
        downlink.account(n_bytes)
        return total_latency + n_bytes / effective_bw

    def bisection_bandwidth(self) -> float:
        """Aggregate bandwidth across the worst even cut, bytes/s."""
        n = len(self.links)
        per_link = min(l.bandwidth_bytes_per_s for l in self.links.values())
        return (n // 2) * per_link
