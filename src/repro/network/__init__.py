"""Cluster interconnect models.

Monte Cimone's production interconnect is the on-board gigabit Ethernet
through a top-of-rack switch; two nodes additionally carry Infiniband FDR
HCAs in the partially-working state §III describes.  This package provides:

* :mod:`repro.network.link` — point-to-point latency/bandwidth pipes with
  contention.
* :mod:`repro.network.topology` — the star topology through the GbE switch
  plus the two-node IB island.
* :mod:`repro.network.mpi` — an analytic MPI cost model (point-to-point,
  broadcast, allreduce, ring exchange) used by the HPL scaling model.
* :mod:`repro.network.infiniband` — fabric-level wrapper over the HCA state
  machine: ibping works, RDMA raises.
"""

from repro.network.infiniband import InfinibandFabric
from repro.network.link import Link
from repro.network.mpi import MPICostModel
from repro.network.topology import ClusterTopology, Switch

__all__ = ["ClusterTopology", "InfinibandFabric", "Link", "MPICostModel", "Switch"]
