"""Fabric-level view of the partial Infiniband deployment (§III).

Two Monte Cimone nodes carry ConnectX-4 FDR HCAs.  The fabric object walks
both HCAs through the bring-up the paper achieved — device detected, driver
bound, OFED mounted, link active, ``ibping`` succeeding between the two
boards and between a board and an x86 HPC server — while RDMA verbs remain
non-functional.  The benchmark harness asserts this exact status snapshot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.hardware.nic import IBState, InfinibandHCA, RDMAUnsupportedError

__all__ = ["InfinibandFabric", "IBStatusReport"]


@dataclass(frozen=True)
class IBStatusReport:
    """Snapshot of the IB bring-up, one row per §III claim."""

    device_recognised: bool
    driver_loaded: bool
    ofed_mounted: bool
    board_to_board_ping: bool
    board_to_server_ping: bool
    rdma_functional: bool


class InfinibandFabric:
    """The two-node FDR island plus an external HPC server port."""

    def __init__(self) -> None:
        self.hcas: Dict[str, InfinibandHCA] = {
            "mc-node-1": InfinibandHCA(installed=True),
            "mc-node-2": InfinibandHCA(installed=True),
        }
        #: The x86 HPC server used for the board↔server ping test.
        self.server_hca = InfinibandHCA(installed=True)

    def bring_up(self) -> None:
        """Run the bring-up sequence the authors achieved."""
        for hca in [*self.hcas.values(), self.server_hca]:
            hca.load_driver()
            hca.activate_link()

    def status(self) -> IBStatusReport:
        """The §III status snapshot."""
        boards = list(self.hcas.values())
        board_ping = (len(boards) == 2 and boards[0].ibping(boards[1]))
        server_ping = bool(boards) and boards[0].ibping(self.server_hca)
        driver_ok = all(h.state in (IBState.DRIVER_LOADED, IBState.LINK_ACTIVE)
                        for h in boards)
        rdma_ok = True
        try:
            if len(boards) == 2:
                boards[0].rdma_write(boards[1], 4096)
        except RDMAUnsupportedError:
            rdma_ok = False
        return IBStatusReport(
            device_recognised=all(h.installed for h in boards),
            driver_loaded=driver_ok,
            ofed_mounted=driver_ok,
            board_to_board_ping=board_ping,
            board_to_server_ping=server_ping,
            rdma_functional=rdma_ok,
        )
