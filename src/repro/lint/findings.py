"""Finding and severity types shared by every simlint rule."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Severity(enum.Enum):
    """How bad an unsuppressed finding is.

    ``ERROR`` findings break the determinism/calibration contract outright;
    ``WARNING`` findings are strong smells that occasionally have legitimate
    exceptions (which should be suppressed with a justification comment).
    """

    WARNING = "warning"
    ERROR = "error"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(order=True)
class Finding:
    """One rule violation at one source location.

    Findings sort by location so reports are stable regardless of the order
    rules ran in.  ``suppressed`` is set by the runner when an inline
    ``# simlint: disable=`` comment covers the finding; suppressed findings
    never affect the exit code but can be shown with ``--show-suppressed``.
    """

    path: str
    line: int
    col: int
    rule_id: str
    severity: Severity = field(compare=False)
    message: str = field(compare=False)
    suppressed: bool = field(default=False, compare=False)

    def location(self) -> str:
        """``path:line:col`` — the clickable half of a report line."""
        return f"{self.path}:{self.line}:{self.col}"

    def render(self) -> str:
        """One report line: location, severity, rule id, message."""
        tag = " (suppressed)" if self.suppressed else ""
        return (f"{self.location()}: {self.severity} "
                f"[{self.rule_id}] {self.message}{tag}")
