"""PERF rules — algorithmic smells on the kernel's hot paths.

The event kernel (:mod:`repro.events`) and the monitoring substrate
(:mod:`repro.examon`) are the two packages every simulated second flows
through; the throughput gates in ``benchmarks/test_kernel_throughput.py``
assume their inner loops stay allocation-light and O(1)-ish per event.
These rules flag the three accidental-quadratic patterns that keep
creeping into such code:

* ``PERF301`` — ``list.insert(0, ...)``: O(n) per call; a deque (or
  append-then-reverse) is O(1).
* ``PERF302`` — ``x in some_list``: O(n) membership where a set or dict
  is O(1).
* ``PERF303`` — ``sorted(...)`` / ``.sort(...)``: fine on cold paths,
  quadratic-in-aggregate when it runs per event or per publish (the TSDB
  keeps series sorted *by construction* for exactly this reason).

The rules only fire inside the hot-path packages — a ``sorted`` in a
report renderer is nobody's problem.  Genuine cold paths inside the hot
packages (subscribe, unsubscribe, query endpoints) carry
``# simlint: disable=PERF30x`` with a justification, which is the
intended workflow: the suppression comment documents *why* the pattern
is safe right where a reviewer will look.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro.lint.findings import Finding, Severity
from repro.lint.registry import ModuleContext, Rule, register

#: Path fragments marking the packages whose inner loops are benchmarked.
_HOT_PATHS = ("repro/events/", "repro/examon/")


def _on_hot_path(ctx: ModuleContext) -> bool:
    normalized = ctx.path.replace("\\", "/")
    return any(fragment in normalized for fragment in _HOT_PATHS)


def _is_list_valued(node: ast.AST) -> bool:
    """True for expressions that are statically a list."""
    if isinstance(node, (ast.List, ast.ListComp)):
        return True
    return (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
            and node.func.id == "list")


def _list_bindings(tree: ast.Module) -> Set[str]:
    """Names and attribute names assigned a list anywhere in the module.

    Tracks both ``foo = [...]`` and ``self.foo = [...]`` (plus annotated
    forms), so a later ``x in self.foo`` can be recognised as list
    membership without type inference.
    """
    bound: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign):
            value, targets = node.value, node.targets
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            value, targets = node.value, [node.target]
        else:
            continue
        if not _is_list_valued(value):
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                bound.add(target.id)
            elif isinstance(target, ast.Attribute):
                bound.add(target.attr)
    return bound


@register
class HeadInsertRule(Rule):
    """PERF301: ``list.insert(0, ...)`` on a benchmarked hot path."""

    id = "PERF301"
    family = "PERF"
    severity = Severity.WARNING
    summary = "list.insert(0, ...) on a kernel hot path (use collections.deque)"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not _on_hot_path(ctx):
            return
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "insert"
                    and len(node.args) >= 2):
                continue
            index = node.args[0]
            if isinstance(index, ast.Constant) \
                    and type(index.value) is int and index.value == 0:
                yield self.finding(
                    ctx, node,
                    "insert(0, ...) shifts every element on each call "
                    "(O(n)); use collections.deque.appendleft, or append "
                    "and reverse once after the loop")


@register
class ListMembershipRule(Rule):
    """PERF302: ``in`` against a known list on a benchmarked hot path."""

    id = "PERF302"
    family = "PERF"
    severity = Severity.WARNING
    summary = "membership test against a list on a kernel hot path (use a set/dict)"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not _on_hot_path(ctx):
            return
        lists = _list_bindings(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, (ast.In, ast.NotIn)) for op in node.ops):
                continue
            for comparator in node.comparators:
                if _is_list_valued(comparator):
                    name = "a list literal"
                elif isinstance(comparator, ast.Name) \
                        and comparator.id in lists:
                    name = comparator.id
                elif isinstance(comparator, ast.Attribute) \
                        and comparator.attr in lists:
                    name = comparator.attr
                else:
                    continue
                yield self.finding(
                    ctx, node,
                    f"membership test against {name} scans linearly on "
                    f"every evaluation; keep a parallel set/dict, or "
                    f"suppress with a justification if this path is cold")


@register
class HotSortRule(Rule):
    """PERF303: sorting on a benchmarked hot path."""

    id = "PERF303"
    family = "PERF"
    severity = Severity.WARNING
    summary = "sorted()/.sort() on a kernel hot path (keep data sorted by construction)"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not _on_hot_path(ctx):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if isinstance(node.func, ast.Name) and node.func.id == "sorted":
                what = "sorted()"
            elif isinstance(node.func, ast.Attribute) \
                    and node.func.attr == "sort":
                what = ".sort()"
            else:
                continue
            yield self.finding(
                ctx, node,
                f"{what} is O(n log n) per call; on a per-event or "
                f"per-publish path keep the data ordered by construction "
                f"(append-only fast path, bisect.insort for stragglers), "
                f"or suppress with a justification if this path is cold")
