"""CAL rules — datasheet constants must be imported, never re-typed.

:mod:`repro.hardware.specs` is the single calibration anchor of the whole
reproduction: every efficiency ratio in the evaluation is a ratio against
the peaks it declares (7760 MB/s DDR bandwidth, 1.2 GHz clock, ...).  A
module that re-types one of those numbers as a literal keeps working today
and silently diverges the day the spec is corrected — so the linter treats
any literal equal to a distinctive spec constant as a duplicate.

"Distinctive" filters out numerology noise: only literals with magnitude
>= 1000 that are not exact powers of two or ten become anchors, so ``64``,
``1024`` or ``1e9`` in unrelated code never match.
"""

from __future__ import annotations

import ast
import functools
import math
from typing import Dict, Iterator, Tuple

from repro.lint.astutil import ancestors
from repro.lint.findings import Finding, Severity
from repro.lint.registry import ModuleContext, Rule, register

#: Module holding the calibration anchors, and its path suffix (the file is
#: exempt from CAL301 — it is the one place the literals belong).
SPECS_MODULE = "repro.hardware.specs"
SPECS_PATH_SUFFIX = "repro/hardware/specs.py"

#: Smallest magnitude considered distinctive enough to anchor on.
_MIN_ANCHOR_MAGNITUDE = 1000.0


def _is_distinctive(value: float) -> bool:
    """True for values specific enough that a match is no coincidence."""
    magnitude = abs(value)
    if not math.isfinite(magnitude) or magnitude < _MIN_ANCHOR_MAGNITUDE:
        return False
    for base in (2.0, 10.0):
        exponent = round(math.log(magnitude, base))
        if math.isclose(magnitude, base ** exponent, rel_tol=0.0, abs_tol=0.0):
            return False
    return True


def _context_name(node: ast.AST) -> str:
    """A human label for where a constant sits in specs.py."""
    for parent in ancestors(node):
        if isinstance(parent, ast.keyword) and parent.arg:
            return parent.arg
        if isinstance(parent, ast.Assign):
            targets = [t.id for t in parent.targets if isinstance(t, ast.Name)]
            if targets:
                return targets[0]
        if isinstance(parent, ast.AnnAssign) and isinstance(parent.target, ast.Name):
            return parent.target.id
    return "constant"


def _load_specs_context() -> "ModuleContext | None":
    import importlib.util

    spec = importlib.util.find_spec(SPECS_MODULE)
    if spec is None or not spec.origin:
        return None
    try:
        from pathlib import Path

        source = Path(spec.origin).read_text(encoding="utf-8")
        return ModuleContext.from_source(source, path=spec.origin)
    except (OSError, SyntaxError):
        return None


@functools.lru_cache(maxsize=1)
def anchor_values() -> Dict[float, Tuple[str, int]]:
    """Distinctive numeric literals in specs.py: value → (name, line).

    Cached for the lifetime of the process; an unimportable specs module
    yields an empty anchor set (the rule then finds nothing, rather than
    crashing a lint run over an unrelated tree).
    """
    ctx = _load_specs_context()
    if ctx is None:
        return {}
    anchors: Dict[float, Tuple[str, int]] = {}
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Constant):
            continue
        value = node.value
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        if _is_distinctive(float(value)):
            anchors.setdefault(float(value), (_context_name(node), node.lineno))
    return anchors


@register
class DuplicatedSpecConstantRule(Rule):
    """CAL301: a literal duplicates a datasheet constant from specs.py."""

    id = "CAL301"
    family = "CAL"
    severity = Severity.ERROR
    summary = "numeric literal duplicates a hardware/specs.py datasheet constant"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if ctx.is_module(SPECS_PATH_SUFFIX):
            return
        anchors = anchor_values()
        if not anchors:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Constant):
                continue
            value = node.value
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            match = anchors.get(float(value))
            if match is None:
                continue
            name, line = match
            yield self.finding(
                ctx, node,
                f"literal {value!r} duplicates the datasheet constant "
                f"{name!r} (hardware/specs.py:{line}); import it from "
                f"{SPECS_MODULE} so a spec correction propagates everywhere")
